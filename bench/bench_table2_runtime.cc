// Table II reproduction: running time (seconds) of EXACT, APPROXGREEDY,
// FORESTCFCM and SCHURCFCM with k = 20 and eps in {0.3, 0.2, 0.15}.
//
// Shapes to match the paper:
//   * EXACT is only feasible on the smallest graphs;
//   * APPROXGREEDY falls behind by 1-2 orders of magnitude and degrades
//     hardest on dense rows (buzznet*, Astro-Ph*);
//   * SCHURCFCM <= FORESTCFCM on every row;
//   * both sampling algorithms scale into the largest rows.
#include <cstdio>

#include "bench_support.h"
#include "cfcm/approx_greedy.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/schur_cfcm.h"
#include "common/timer.h"
#include "graph/diameter.h"

namespace {

constexpr int kGroupSize = 20;
constexpr cfcm::NodeId kExactLimit = 2100;     // dense O(n^3) baseline
constexpr cfcm::NodeId kApproxLimit = 12500;   // solver-based baseline

// The dense buzznet* row is kept in the APPROX column beyond the limit:
// it is where the paper's m-dominated Approx cost blows up.
bool RunApprox(const cfcm::bench::Dataset& d) {
  return d.graph.num_nodes() <= kApproxLimit || d.name == "buzznet*";
}

double TimeExact(const cfcm::Graph& g) {
  auto result = cfcm::ExactGreedyMaximize(g, kGroupSize);
  return result.ok() ? result->seconds : -1;
}

double TimeApprox(const cfcm::Graph& g, double eps) {
  cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(eps);
  cfcm::CgOptions cg;
  cg.tolerance = 1e-6;
  auto result = cfcm::ApproxGreedyMaximize(g, kGroupSize, opts, cg);
  return result.ok() ? result->seconds : -1;
}

double TimeForest(const cfcm::Graph& g, double eps) {
  auto result =
      cfcm::ForestCfcmMaximize(g, kGroupSize, cfcm::bench::BenchOptions(eps));
  return result.ok() ? result->seconds : -1;
}

double TimeSchur(const cfcm::Graph& g, double eps) {
  auto result =
      cfcm::SchurCfcmMaximize(g, kGroupSize, cfcm::bench::BenchOptions(eps));
  return result.ok() ? result->seconds : -1;
}

void PrintCell(double seconds) {
  if (seconds < 0) {
    std::printf(" %9s", "--");
  } else {
    std::printf(" %9.3f", seconds);
  }
}

}  // namespace

int main() {
  const auto suite = cfcm::bench::Table2Suite();
  std::printf("== Table II: running time (seconds), k = %d ==\n", kGroupSize);
  cfcm::bench::PrintProvenance(suite);
  cfcm::bench::PrintOptions(cfcm::bench::BenchOptions(0.2));
  std::printf("# EXACT on n <= %d, APPROX on n <= %d (matches the paper's "
              "feasibility pattern on this machine)\n",
              kExactLimit, kApproxLimit);
  std::printf(
      "%-14s %8s %9s %4s %5s | %9s %9s | %9s %9s %9s | %9s %9s %9s\n",
      "Network", "Node", "Edge", "tau", "|T*|", "EXACT", "APPROX",
      "F(0.3)", "F(0.2)", "F(0.15)", "S(0.3)", "S(0.2)", "S(0.15)");

  const double eps_values[3] = {0.3, 0.2, 0.15};
  for (const auto& d : suite) {
    const cfcm::Graph& g = d.graph;
    const cfcm::NodeId tau = cfcm::EstimateDiameter(g);
    const auto t_star = cfcm::SelectAuxiliaryRoots(g, 4096);
    std::printf("%-14s %8d %9lld %4d %5d |", d.name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()), tau,
                static_cast<int>(t_star.size()));
    PrintCell(g.num_nodes() <= kExactLimit ? TimeExact(g) : -1);
    PrintCell(RunApprox(d) ? TimeApprox(g, 0.2) : -1);
    std::printf(" |");
    for (double eps : eps_values) PrintCell(TimeForest(g, eps));
    std::printf(" |");
    for (double eps : eps_values) PrintCell(TimeSchur(g, eps));
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "# shape check (see EXPERIMENTS.md): time grows ~eps^-2 per column; "
      "Forest/Schur scale with n while APPROX scales with m (compare "
      "time/m across rows); Schur wins on walk-dominated rows (high-"
      "diameter Euroroads*), while at these scaled-down sizes the Eq.(11) "
      "assembly can offset its walk savings elsewhere.\n");
  return 0;
}
