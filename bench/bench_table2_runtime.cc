// Table II reproduction: running time (seconds) of EXACT, APPROXGREEDY,
// FORESTCFCM and SCHURCFCM with k = 20 and eps in {0.3, 0.2, 0.15}.
//
// Shapes to match the paper:
//   * EXACT is only feasible on the smallest graphs;
//   * APPROXGREEDY falls behind by 1-2 orders of magnitude and degrades
//     hardest on dense rows (buzznet*, Astro-Ph*);
//   * SCHURCFCM <= FORESTCFCM on every row;
//   * both sampling algorithms scale into the largest rows.
//
// Flags:
//   --smoke        run the tiny suite only (CI-sized perf point)
//   --json <path>  also write machine-readable rows (seconds, forests,
//                  walk_steps per sampling run) for trend tracking
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support.h"
#include "cfcm/approx_greedy.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/schur_cfcm.h"
#include "common/timer.h"
#include "graph/diameter.h"

namespace {

constexpr int kGroupSize = 20;
constexpr cfcm::NodeId kExactLimit = 2100;     // dense O(n^3) baseline
constexpr cfcm::NodeId kApproxLimit = 12500;   // solver-based baseline

// One timed sampling run, with the runtime's walk-step telemetry.
struct SampledRun {
  double seconds = -1;
  long long forests = 0;
  long long walk_steps = 0;
};

// Machine-readable perf rows accumulated for --json.
struct JsonRow {
  std::string network;
  cfcm::NodeId n;
  long long m;
  std::string algo;
  double eps;
  SampledRun run;
};

std::vector<JsonRow>* g_json_rows = nullptr;

void Record(const cfcm::bench::Dataset& d, const std::string& algo, double eps,
            const SampledRun& run) {
  if (g_json_rows == nullptr || run.seconds < 0) return;
  g_json_rows->push_back({d.name, d.graph.num_nodes(),
                          static_cast<long long>(d.graph.num_edges()), algo,
                          eps, run});
}

// The dense buzznet* row is kept in the APPROX column beyond the limit:
// it is where the paper's m-dominated Approx cost blows up.
bool RunApprox(const cfcm::bench::Dataset& d) {
  return d.graph.num_nodes() <= kApproxLimit || d.name == "buzznet*";
}

double TimeExact(const cfcm::Graph& g) {
  auto result = cfcm::ExactGreedyMaximize(g, kGroupSize);
  return result.ok() ? result->seconds : -1;
}

double TimeApprox(const cfcm::Graph& g, double eps) {
  cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(eps);
  cfcm::CgOptions cg;
  cg.tolerance = 1e-6;
  auto result = cfcm::ApproxGreedyMaximize(g, kGroupSize, opts, cg);
  return result.ok() ? result->seconds : -1;
}

SampledRun TimeForest(const cfcm::Graph& g, double eps) {
  auto result =
      cfcm::ForestCfcmMaximize(g, kGroupSize, cfcm::bench::BenchOptions(eps));
  if (!result.ok()) return {};
  return {result->seconds, static_cast<long long>(result->total_forests),
          static_cast<long long>(result->total_walk_steps)};
}

SampledRun TimeSchur(const cfcm::Graph& g, double eps) {
  auto result =
      cfcm::SchurCfcmMaximize(g, kGroupSize, cfcm::bench::BenchOptions(eps));
  if (!result.ok()) return {};
  return {result->seconds, static_cast<long long>(result->total_forests),
          static_cast<long long>(result->total_walk_steps)};
}

void PrintCell(double seconds) {
  if (seconds < 0) {
    std::printf(" %9s", "--");
  } else {
    std::printf(" %9.3f", seconds);
  }
}

void WriteJson(const char* path, bool smoke) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n  \"bench\":\"table2_runtime\",\"k\":%d,"
               "\"smoke\":%s,\n  \"rows\":[\n",
               kGroupSize, smoke ? "true" : "false");
  for (std::size_t i = 0; i < g_json_rows->size(); ++i) {
    const JsonRow& r = (*g_json_rows)[i];
    std::fprintf(out,
                 "    {\"network\":\"%s\",\"n\":%d,\"m\":%lld,"
                 "\"algo\":\"%s\",\"eps\":%g,\"seconds\":%.6f,"
                 "\"forests\":%lld,\"walk_steps\":%lld}%s\n",
                 r.network.c_str(), r.n, r.m, r.algo.c_str(), r.eps,
                 r.run.seconds, r.run.forests, r.run.walk_steps,
                 i + 1 == g_json_rows->size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("# wrote %zu perf rows to %s\n", g_json_rows->size(), path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }
  std::vector<JsonRow> json_rows;
  if (json_path != nullptr) g_json_rows = &json_rows;

  const auto suite =
      smoke ? cfcm::bench::TinySuite() : cfcm::bench::Table2Suite();
  std::printf("== Table II: running time (seconds), k = %d%s ==\n", kGroupSize,
              smoke ? " (smoke suite)" : "");
  cfcm::bench::PrintProvenance(suite);
  cfcm::bench::PrintOptions(cfcm::bench::BenchOptions(0.2));
  std::printf("# EXACT on n <= %d, APPROX on n <= %d (matches the paper's "
              "feasibility pattern on this machine)\n",
              kExactLimit, kApproxLimit);
  std::printf(
      "%-14s %8s %9s %4s %5s | %9s %9s | %9s %9s %9s | %9s %9s %9s\n",
      "Network", "Node", "Edge", "tau", "|T*|", "EXACT", "APPROX",
      "F(0.3)", "F(0.2)", "F(0.15)", "S(0.3)", "S(0.2)", "S(0.15)");

  const double eps_values[3] = {0.3, 0.2, 0.15};
  for (const auto& d : suite) {
    const cfcm::Graph& g = d.graph;
    const cfcm::NodeId tau = cfcm::EstimateDiameter(g);
    const auto t_star = cfcm::SelectAuxiliaryRoots(g, 4096);
    std::printf("%-14s %8d %9lld %4d %5d |", d.name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()), tau,
                static_cast<int>(t_star.size()));
    PrintCell(g.num_nodes() <= kExactLimit ? TimeExact(g) : -1);
    PrintCell(RunApprox(d) ? TimeApprox(g, 0.2) : -1);
    std::printf(" |");
    for (double eps : eps_values) {
      const SampledRun run = TimeForest(g, eps);
      Record(d, "forest", eps, run);
      PrintCell(run.seconds);
    }
    std::printf(" |");
    for (double eps : eps_values) {
      const SampledRun run = TimeSchur(g, eps);
      Record(d, "schur", eps, run);
      PrintCell(run.seconds);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "# shape check (see EXPERIMENTS.md): time grows ~eps^-2 per column; "
      "Forest/Schur scale with n while APPROX scales with m (compare "
      "time/m across rows); Schur wins on walk-dominated rows (high-"
      "diameter Euroroads*), while at these scaled-down sizes the Eq.(11) "
      "assembly can offset its walk savings elsewhere.\n");
  if (json_path != nullptr) WriteJson(json_path, smoke);
  return 0;
}
