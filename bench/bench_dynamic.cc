// Dynamic-session throughput bench: the mutate + re-solve pipeline
// through ServeHandler (catalog -> session -> snapshot -> solver ->
// result cache), in-process so the numbers isolate the serving stack
// from socket noise. Three phases per graph:
//
//   hit            repeated identical solve — pure cache-replay path
//   mutate         mutation only — CSR rebuild + snapshot swap + budget
//                  re-charge per round
//   mutate+solve   mutation then the same solve line — every solve is a
//                  guaranteed cache miss because each mutation produces
//                  a fingerprint never seen before
//
// Per-phase round latencies go into a log2 histogram; the table and
// BENCH_dynamic.json report p50/p99/max per phase.
//
//   bench_dynamic [--smoke] [--json BENCH_dynamic.json] [--rounds N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace {

using cfcm::Timer;
using cfcm::bench::LatencyJson;
using cfcm::obs::LatencyHistogram;
using cfcm::serve::JsonValue;
using cfcm::serve::ServeHandler;

struct PhaseRow {
  std::string graph;
  std::string phase;
  int rounds = 0;
  double seconds = 0.0;
  double rps = 0.0;  // rounds per second
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long epoch = 0;  // session epoch when the phase ended
  LatencyHistogram::Snapshot latency;  // per-round latency
};

bool IsOk(const JsonValue& response) {
  const JsonValue* status = response.Find("status");
  return status != nullptr && status->is_string() &&
         status->as_string() == "ok";
}

long long SessionEpoch(ServeHandler& handler, const std::string& name) {
  const JsonValue stats = handler.HandleLine(R"({"op":"stats"})");
  for (const JsonValue& session :
       stats.Find("catalog")->Find("sessions")->array()) {
    const JsonValue* session_name = session.Find("name");
    if (session_name != nullptr && session_name->as_string() == name) {
      return session.Find("epoch")->as_int();
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  int rounds = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>] [--rounds N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) rounds = 16;

  std::vector<std::pair<std::string, std::string>> graphs = {
      {"karate", "karate"}};
  if (!smoke) graphs.emplace_back("ba2000", "ba:2000,4,1");

  ServeHandler handler{{}};
  std::printf("# bench_dynamic: mutate + re-solve pipeline throughput\n");
  std::printf("# rounds=%d per phase\n", rounds);
  std::printf("%-8s %-12s %7s %9s %10s %6s %7s %6s %8s %8s\n", "graph",
              "phase", "rounds", "seconds", "rounds/s", "hits", "misses",
              "epoch", "p50_us", "p99_us");

  std::vector<PhaseRow> rows;
  for (const auto& [name, spec] : graphs) {
    const JsonValue loaded = handler.HandleLine(
        R"({"op":"load","graph":")" + name + R"(","source":")" + spec +
        "\"}");
    if (!IsOk(loaded)) {
      std::fprintf(stderr, "bench_dynamic: load failed: %s\n",
                   loaded.Serialize().c_str());
      return 1;
    }
    const std::string solve_line =
        R"({"op":"solve","graph":")" + name +
        R"(","algorithm":"forest","k":3,"eps":0.3,"seed":1})";
    // Each round adds 0.001 conductance to this edge, so the running sum
    // — and therefore the fingerprint — is new every round: every
    // post-mutation solve is a structural cache miss.
    const std::string mutate_line = R"({"op":"mutate","graph":")" + name +
                                    R"(","add":[[0,1,0.001]]})";

    (void)handler.HandleLine(solve_line);  // warm: one cold solve + insert

    for (const char* phase : {"hit", "mutate", "mutate+solve"}) {
      PhaseRow row;
      row.graph = name;
      row.phase = phase;
      row.rounds = rounds;
      const auto before = handler.cache().stats();
      LatencyHistogram latency;  // one full round = mutate and/or solve
      Timer phase_timer;
      for (int i = 0; i < rounds; ++i) {
        Timer round_timer;
        if (std::strcmp(phase, "hit") != 0) {
          if (!IsOk(handler.HandleLine(mutate_line))) {
            std::fprintf(stderr, "bench_dynamic: mutate failed\n");
            return 1;
          }
        }
        if (std::strcmp(phase, "mutate") != 0) {
          if (!IsOk(handler.HandleLine(solve_line))) {
            std::fprintf(stderr, "bench_dynamic: solve failed\n");
            return 1;
          }
        }
        latency.Record(round_timer.Micros());
      }
      row.seconds = phase_timer.Seconds();
      const auto after = handler.cache().stats();
      row.rps = row.seconds > 0 ? rounds / row.seconds : 0.0;
      row.cache_hits = static_cast<long long>(after.hits - before.hits);
      row.cache_misses = static_cast<long long>(after.misses - before.misses);
      row.epoch = SessionEpoch(handler, name);
      row.latency = latency.snapshot();
      std::printf("%-8s %-12s %7d %9.4f %10.1f %6lld %7lld %6lld %8lld "
                  "%8lld\n",
                  row.graph.c_str(), row.phase.c_str(), row.rounds,
                  row.seconds, row.rps, row.cache_hits, row.cache_misses,
                  row.epoch,
                  static_cast<long long>(row.latency.Percentile(0.50)),
                  static_cast<long long>(row.latency.Percentile(0.99)));
      rows.push_back(row);
    }
  }

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_dynamic: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"dynamic_sessions\",\n"
                 "  \"smoke\": %s,\n  \"rows\": [\n",
                 smoke ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PhaseRow& r = rows[i];
      std::fprintf(out,
                   "    {\"graph\":\"%s\",\"phase\":\"%s\",\"rounds\":%d,"
                   "\"seconds\":%.6f,\"rps\":%.1f,\"cache_hits\":%lld,"
                   "\"cache_misses\":%lld,\"epoch\":%lld,"
                   "\"latency\":%s}%s\n",
                   r.graph.c_str(), r.phase.c_str(), r.rounds, r.seconds,
                   r.rps, r.cache_hits, r.cache_misses, r.epoch,
                   LatencyJson(r.latency).c_str(),
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("# wrote %zu dynamic perf rows to %s\n", rows.size(),
                json_path);
  }
  return 0;
}
