// Dynamic-session throughput bench: the mutate + re-solve pipeline
// through ServeHandler (catalog -> session -> snapshot -> solver ->
// result cache), in-process so the numbers isolate the serving stack
// from socket noise. Three phases per graph:
//
//   hit            repeated identical solve — pure cache-replay path
//   mutate         mutation only — CSR rebuild + snapshot swap + budget
//                  re-charge per round
//   mutate+solve   mutation then the same solve line — every solve is a
//                  guaranteed cache miss because each mutation produces
//                  a fingerprint never seen before
//
// plus, per delta kind (1-edge reweight / ~1% edge churn / node add),
// a warm-vs-cold pair of mutate+resolve phases exercising the
// incremental pipeline (DESIGN.md §16): the cold leg re-solves from
// scratch after every delta, the warm leg sends "warm":true so the
// solver replays retained forests and repairs the previous selection.
// Warm rows carry warm_speedup = cold_seconds / warm_seconds; the JSON
// also reports the top-level "warm_speedup" (best reweight1 speedup
// across graphs) and "warm_beats_cold" (every graph's reweight1 warm
// leg faster than its cold leg) for the CI bench smoke.
//
// Per-phase round latencies go into a log2 histogram; the table and
// BENCH_dynamic.json report p50/p99/max per phase.
//
//   bench_dynamic [--smoke] [--json BENCH_dynamic.json] [--rounds N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace {

using cfcm::Timer;
using cfcm::bench::LatencyJson;
using cfcm::obs::LatencyHistogram;
using cfcm::serve::JsonValue;
using cfcm::serve::ServeHandler;

struct PhaseRow {
  std::string graph;
  std::string phase;
  int rounds = 0;
  double seconds = 0.0;
  double rps = 0.0;  // rounds per second
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long epoch = 0;  // session epoch when the phase ended
  LatencyHistogram::Snapshot latency;  // per-round latency
  long long warm_started = 0;   // solves answered by the warm pipeline
  long long cold_fallbacks = 0; // warm requests that fell back cold
  double warm_speedup = 0.0;    // cold/warm seconds (warm rows only)
};

bool IsOk(const JsonValue& response) {
  const JsonValue* status = response.Find("status");
  return status != nullptr && status->is_string() &&
         status->as_string() == "ok";
}

long long SessionEpoch(ServeHandler& handler, const std::string& name) {
  const JsonValue stats = handler.HandleLine(R"({"op":"stats"})");
  for (const JsonValue& session :
       stats.Find("catalog")->Find("sessions")->array()) {
    const JsonValue* session_name = session.Find("name");
    if (session_name != nullptr && session_name->as_string() == name) {
      return session.Find("epoch")->as_int();
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  int rounds = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>] [--rounds N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) rounds = 16;

  std::vector<std::pair<std::string, std::string>> graphs = {
      {"karate", "karate"}};
  graphs.emplace_back("ba400", "ba:400,4,1");
  if (!smoke) graphs.emplace_back("ba2000", "ba:2000,4,1");

  ServeHandler handler{{}};
  std::printf("# bench_dynamic: mutate + re-solve pipeline throughput\n");
  std::printf("# rounds=%d per phase\n", rounds);
  std::printf("%-8s %-15s %7s %9s %10s %6s %7s %6s %8s %8s %5s %4s %8s\n",
              "graph", "phase", "rounds", "seconds", "rounds/s", "hits",
              "misses", "epoch", "p50_us", "p99_us", "warm", "fb", "speedup");

  std::vector<PhaseRow> rows;
  for (const auto& [name, spec] : graphs) {
    const JsonValue loaded = handler.HandleLine(
        R"({"op":"load","graph":")" + name + R"(","source":")" + spec +
        "\"}");
    if (!IsOk(loaded)) {
      std::fprintf(stderr, "bench_dynamic: load failed: %s\n",
                   loaded.Serialize().c_str());
      return 1;
    }
    const std::string solve_line =
        R"({"op":"solve","graph":")" + name +
        R"(","algorithm":"forest","k":3,"eps":0.3,"seed":1})";
    // Each round adds 0.001 conductance to this edge, so the running sum
    // — and therefore the fingerprint — is new every round: every
    // post-mutation solve is a structural cache miss.
    const std::string mutate_line = R"({"op":"mutate","graph":")" + name +
                                    R"(","add":[[0,1,0.001]]})";

    (void)handler.HandleLine(solve_line);  // warm: one cold solve + insert

    for (const char* phase : {"hit", "mutate", "mutate+solve"}) {
      PhaseRow row;
      row.graph = name;
      row.phase = phase;
      row.rounds = rounds;
      const auto before = handler.cache().stats();
      LatencyHistogram latency;  // one full round = mutate and/or solve
      Timer phase_timer;
      for (int i = 0; i < rounds; ++i) {
        Timer round_timer;
        if (std::strcmp(phase, "hit") != 0) {
          if (!IsOk(handler.HandleLine(mutate_line))) {
            std::fprintf(stderr, "bench_dynamic: mutate failed\n");
            return 1;
          }
        }
        if (std::strcmp(phase, "mutate") != 0) {
          if (!IsOk(handler.HandleLine(solve_line))) {
            std::fprintf(stderr, "bench_dynamic: solve failed\n");
            return 1;
          }
        }
        latency.Record(round_timer.Micros());
      }
      row.seconds = phase_timer.Seconds();
      const auto after = handler.cache().stats();
      row.rps = row.seconds > 0 ? rounds / row.seconds : 0.0;
      row.cache_hits = static_cast<long long>(after.hits - before.hits);
      row.cache_misses = static_cast<long long>(after.misses - before.misses);
      row.epoch = SessionEpoch(handler, name);
      row.latency = latency.snapshot();
      std::printf("%-8s %-15s %7d %9.4f %10.1f %6lld %7lld %6lld %8lld "
                  "%8lld %5lld %4lld %8s\n",
                  row.graph.c_str(), row.phase.c_str(), row.rounds,
                  row.seconds, row.rps, row.cache_hits, row.cache_misses,
                  row.epoch,
                  static_cast<long long>(row.latency.Percentile(0.50)),
                  static_cast<long long>(row.latency.Percentile(0.99)),
                  row.warm_started, row.cold_fallbacks, "-");
      rows.push_back(row);
    }

    // ---- warm vs cold mutate+resolve per delta kind (DESIGN.md §16).
    const long long n0 = loaded.Find("nodes")->as_int();
    const long long m0 = loaded.Find("edges")->as_int();
    // Guarantee edge (0,1) exists so the reweight kind always applies.
    if (!IsOk(handler.HandleLine(R"({"op":"mutate","graph":")" + name +
                                 R"(","add":[[0,1,1.0]]})"))) {
      std::fprintf(stderr, "bench_dynamic: seed mutate failed\n");
      return 1;
    }
    long long next_node = n0;  // nodeadd: id of the next added node
    long long seq = 0;         // global delta sequence: fresh fingerprints
    const long long churn_count = std::max<long long>(1, m0 / 100);
    bool churn_present = false;  // churn batch currently in the graph

    auto mutate_for = [&](const std::string& kind) -> std::string {
      ++seq;
      char weight[32];
      if (kind == "reweight1") {
        std::snprintf(weight, sizeof(weight), "%.6f", 1.0 + 0.001 * seq);
        return R"({"op":"mutate","graph":")" + name +
               R"(","reweight":[[0,1,)" + weight + "]]}";
      }
      if (kind == "churn1pct") {
        // Structurally churn ~1% of the edges each round: drop the
        // previous round's batch and re-add it at a fresh weight
        // (removals apply before additions), so no fingerprint repeats
        // and no solve degenerates into a cache hit.
        std::snprintf(weight, sizeof(weight), "%.6f", 0.05 + 0.0001 * seq);
        std::string remove_list, add_list;
        for (long long j = 0; j < churn_count; ++j) {
          const long long u = j;
          const long long v = n0 - 1 - j;
          if (!remove_list.empty()) {
            remove_list += ",";
            add_list += ",";
          }
          remove_list += "[" + std::to_string(u) + "," + std::to_string(v) +
                         "]";
          add_list += "[" + std::to_string(u) + "," + std::to_string(v) +
                      "," + weight + "]";
        }
        std::string line = R"({"op":"mutate","graph":")" + name + "\",";
        if (churn_present) line += "\"remove\":[" + remove_list + "],";
        churn_present = true;
        line += "\"add\":[" + add_list + "]}";
        return line;
      }
      // nodeadd: one new node, attached to node 0 to stay connected.
      const long long u = next_node++;
      return R"({"op":"mutate","graph":")" + name +
             R"(","add_nodes":1,"add":[[)" + std::to_string(u) + ",0,1.0]]}";
    };

    const std::string cold_solve_line =
        R"({"op":"solve","graph":")" + name +
        R"(","algorithm":"forest","k":3,"eps":0.2,"seed":7})";
    const std::string warm_solve_line =
        R"({"op":"solve","graph":")" + name +
        R"(","algorithm":"forest","k":3,"eps":0.2,"seed":7,"warm":true})";

    for (const char* kind : {"reweight1", "churn1pct", "nodeadd"}) {
      double cold_seconds = 0.0;
      for (const bool warm : {false, true}) {
        PhaseRow row;
        row.graph = name;
        row.phase = std::string(kind) + (warm ? ":warm" : ":cold");
        row.rounds = rounds;
        // Seed the warm chain: an un-timed solve deposits the state the
        // first timed round advances across its delta. (Usually a cache
        // hit right after the cold leg — the deposit then already
        // happened on that leg's final miss.)
        if (!IsOk(handler.HandleLine(cold_solve_line))) {
          std::fprintf(stderr, "bench_dynamic: seed solve failed\n");
          return 1;
        }
        const auto before = handler.cache().stats();
        LatencyHistogram latency;
        Timer phase_timer;
        for (int i = 0; i < rounds; ++i) {
          Timer round_timer;
          if (!IsOk(handler.HandleLine(mutate_for(kind)))) {
            std::fprintf(stderr, "bench_dynamic: %s mutate failed\n", kind);
            return 1;
          }
          const JsonValue solved =
              handler.HandleLine(warm ? warm_solve_line : cold_solve_line);
          if (!IsOk(solved)) {
            std::fprintf(stderr, "bench_dynamic: %s solve failed: %s\n", kind,
                         solved.Serialize().c_str());
            return 1;
          }
          if (const JsonValue* w = solved.Find("warm_started");
              w != nullptr && w->is_bool() && w->as_bool()) {
            ++row.warm_started;
          }
          if (const JsonValue* f = solved.Find("cold_fallback");
              f != nullptr && f->is_bool() && f->as_bool()) {
            ++row.cold_fallbacks;
          }
          latency.Record(round_timer.Micros());
        }
        row.seconds = phase_timer.Seconds();
        const auto after = handler.cache().stats();
        row.rps = row.seconds > 0 ? rounds / row.seconds : 0.0;
        row.cache_hits = static_cast<long long>(after.hits - before.hits);
        row.cache_misses =
            static_cast<long long>(after.misses - before.misses);
        row.epoch = SessionEpoch(handler, name);
        row.latency = latency.snapshot();
        if (warm) {
          row.warm_speedup =
              row.seconds > 0 ? cold_seconds / row.seconds : 0.0;
        } else {
          cold_seconds = row.seconds;
        }
        char speedup[32];
        if (warm) {
          std::snprintf(speedup, sizeof(speedup), "%.2fx", row.warm_speedup);
        } else {
          std::snprintf(speedup, sizeof(speedup), "-");
        }
        std::printf("%-8s %-15s %7d %9.4f %10.1f %6lld %7lld %6lld %8lld "
                    "%8lld %5lld %4lld %8s\n",
                    row.graph.c_str(), row.phase.c_str(), row.rounds,
                    row.seconds, row.rps, row.cache_hits, row.cache_misses,
                    row.epoch,
                    static_cast<long long>(row.latency.Percentile(0.50)),
                    static_cast<long long>(row.latency.Percentile(0.99)),
                    row.warm_started, row.cold_fallbacks, speedup);
        rows.push_back(row);
      }
    }
  }

  // The CI smoke gate: on the 1-edge-reweight kind, every graph's warm
  // leg must beat its cold leg; "warm_speedup" reports the best one.
  double best_reweight_speedup = 0.0;
  bool any_reweight_warm = false;
  bool all_reweight_faster = true;
  for (const PhaseRow& r : rows) {
    if (r.phase != "reweight1:warm") continue;
    any_reweight_warm = true;
    best_reweight_speedup = std::max(best_reweight_speedup, r.warm_speedup);
    all_reweight_faster = all_reweight_faster && r.warm_speedup > 1.0;
  }
  const bool warm_beats_cold = any_reweight_warm && all_reweight_faster;
  std::printf("# reweight1 warm_speedup=%.2fx warm_beats_cold=%s\n",
              best_reweight_speedup, warm_beats_cold ? "true" : "false");

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_dynamic: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"dynamic_sessions\",\n"
                 "  \"smoke\": %s,\n  \"rows\": [\n",
                 smoke ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PhaseRow& r = rows[i];
      std::fprintf(out,
                   "    {\"graph\":\"%s\",\"phase\":\"%s\",\"rounds\":%d,"
                   "\"seconds\":%.6f,\"rps\":%.1f,\"cache_hits\":%lld,"
                   "\"cache_misses\":%lld,\"epoch\":%lld,"
                   "\"warm_started\":%lld,\"cold_fallbacks\":%lld,"
                   "\"warm_speedup\":%.3f,"
                   "\"latency\":%s}%s\n",
                   r.graph.c_str(), r.phase.c_str(), r.rounds, r.seconds,
                   r.rps, r.cache_hits, r.cache_misses, r.epoch,
                   r.warm_started, r.cold_fallbacks, r.warm_speedup,
                   LatencyJson(r.latency).c_str(),
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(out,
                 "  ],\n  \"warm_speedup\": %.3f,\n"
                 "  \"warm_beats_cold\": %s\n}\n",
                 best_reweight_speedup, warm_beats_cold ? "true" : "false");
    std::fclose(out);
    std::printf("# wrote %zu dynamic perf rows to %s\n", rows.size(),
                json_path);
  }
  return 0;
}
