// Shared infrastructure for the paper-reproduction benches.
//
// Every bench binary prints (a) the dataset substitution table (paper
// graph -> generator stand-in, with any size scaling), and (b) rows in
// the same layout as the paper's table/figure so EXPERIMENTS.md can
// compare shapes directly.
#ifndef CFCM_BENCH_BENCH_SUPPORT_H_
#define CFCM_BENCH_BENCH_SUPPORT_H_

#include <string>
#include <vector>

#include "cfcm/cfcc.h"
#include "cfcm/options.h"
#include "graph/graph.h"
#include "obs/metrics.h"

namespace cfcm::bench {

/// One benchmark graph: a named, seeded generator stand-in for a paper
/// dataset (DESIGN.md §5).
struct Dataset {
  std::string name;        ///< e.g. "EmailEnron*" (star = synthetic stand-in)
  std::string paper_size;  ///< the original n/m, for the provenance table
  std::string generator;   ///< generator call that produced the graph
  Graph graph;
};

/// Fig. 1 tiny graphs: Zebra*, Karate, Cont. USA, Dolphins*.
std::vector<Dataset> TinySuite();

/// Fig. 2 / Fig. 5 small graphs (Exact greedy feasible on 2 cores).
std::vector<Dataset> SmallSuite();

/// Fig. 3 large graphs (CFCC evaluated by Hutchinson+CG).
std::vector<Dataset> LargeSuite();

/// Table II suite, ascending n. Sizes above ~30k are scaled down from
/// the paper's originals (the paper used a 72-core server; this
/// environment has 2 cores) — `paper_size` records the original.
std::vector<Dataset> Table2Suite();

/// Fig. 4 epsilon-sweep graphs.
std::vector<Dataset> EpsTimeSuite();

/// Prints the provenance header for a suite.
void PrintProvenance(const std::vector<Dataset>& suite);

/// CFCC of `group`: dense exact for small graphs, Hutchinson+CG above
/// the threshold (the paper's own evaluation protocol for large graphs).
double EvaluateCfcc(const Graph& graph, const std::vector<NodeId>& group,
                    uint64_t seed = 99, NodeId dense_threshold = 3000);

/// Default solver options used by all benches (recorded in the output).
CfcmOptions BenchOptions(double eps, uint64_t seed = 1);

/// Prints "name=value" config lines so every bench output is
/// self-describing.
void PrintOptions(const CfcmOptions& options);

/// JSON object fragment for one latency distribution:
/// {"count":N,"mean_us":X,"p50_us":N,"p95_us":N,"p99_us":N,"max_us":N}.
/// Shared by the bench binaries so every BENCH_*.json reports
/// percentiles in the same shape the serving daemon's `stats` op uses.
std::string LatencyJson(const obs::LatencyHistogram::Snapshot& snapshot);

}  // namespace cfcm::bench

#endif  // CFCM_BENCH_BENCH_SUPPORT_H_
