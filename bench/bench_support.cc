#include "bench_support.h"

#include <cstdio>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/hutchinson.h"

namespace cfcm::bench {

namespace {

Dataset Make(std::string name, std::string paper_size, std::string generator,
             Graph graph) {
  return Dataset{std::move(name), std::move(paper_size), std::move(generator),
                 std::move(graph)};
}

}  // namespace

std::vector<Dataset> TinySuite() {
  std::vector<Dataset> suite;
  suite.push_back(Make("Zebra*", "23/~105", "WattsStrogatz(23,5,0.25,seed)",
                       ZebraSynthetic()));
  suite.push_back(Make("Karate", "34/78 (real)", "embedded Zachary karate",
                       KarateClub()));
  suite.push_back(Make("Cont.USA", "49/107 (real)", "embedded state borders",
                       ContiguousUsa()));
  suite.push_back(Make("Dolphins*", "62/159", "PowerlawCluster(62,3,0.5)+trim",
                       DolphinsSynthetic()));
  return suite;
}

std::vector<Dataset> SmallSuite() {
  // Sizes chosen so the EXACT O(n^3) baseline stays tractable on the
  // 2-core host while preserving each original's structure class.
  std::vector<Dataset> suite;
  suite.push_back(Make("Hamsterster*", "2,000/16,097 (scaled to 1,400)",
                       "PowerlawCluster(1400,8,0.3,41)",
                       PowerlawCluster(1400, 8, 0.3, 41)));
  suite.push_back(Make("web-EPA*", "4,253/8,897 (scaled to 1,500)",
                       "BarabasiAlbert(1500,2,42)",
                       BarabasiAlbert(1500, 2, 42)));
  suite.push_back(Make("Routeviews*", "6,474/13,895 (scaled to 1,600)",
                       "BarabasiAlbert(1600,2,43)",
                       BarabasiAlbert(1600, 2, 43)));
  suite.push_back(Make("soc-PagesGov*", "7,057/89,429 (scaled to 1,300)",
                       "PowerlawCluster(1300,12,0.5,44)",
                       PowerlawCluster(1300, 12, 0.5, 44)));
  suite.push_back(Make("Astro-Ph*", "17,903/197,031 (scaled to 1,500)",
                       "PowerlawCluster(1500,11,0.6,45)",
                       PowerlawCluster(1500, 11, 0.6, 45)));
  suite.push_back(Make("EmailEnron*", "33,696/180,811 (scaled to 1,600)",
                       "PowerlawCluster(1600,5,0.4,46)",
                       PowerlawCluster(1600, 5, 0.4, 46)));
  return suite;
}

std::vector<Dataset> LargeSuite() {
  std::vector<Dataset> suite;
  suite.push_back(Make("Livemocha*", "104,103/2,193,083 (scaled to 20,000)",
                       "PowerlawCluster(20000,10,0.3,51)",
                       PowerlawCluster(20000, 10, 0.3, 51)));
  suite.push_back(Make("WordNet*", "145,145/656,230 (scaled to 30,000)",
                       "PowerlawCluster(30000,4,0.5,52)",
                       PowerlawCluster(30000, 4, 0.5, 52)));
  suite.push_back(Make("Gowalla*", "196,591/950,327 (scaled to 40,000)",
                       "BarabasiAlbert(40000,5,53)",
                       BarabasiAlbert(40000, 5, 53)));
  return suite;
}

std::vector<Dataset> Table2Suite() {
  std::vector<Dataset> suite;
  suite.push_back(Make("Euroroads*", "1,039/1,305 (same size)",
                       "RandomGeometric(1039,0.032,61)",
                       RandomGeometric(1039, 0.032, 61)));
  suite.push_back(Make("Hamsterster*", "2,000/16,097 (same size)",
                       "PowerlawCluster(2000,8,0.3,41)",
                       PowerlawCluster(2000, 8, 0.3, 41)));
  suite.push_back(Make("GR-QC*", "4,158/13,428 (same size)",
                       "PowerlawCluster(4158,3,0.6,62)",
                       PowerlawCluster(4158, 3, 0.6, 62)));
  suite.push_back(Make("web-EPA*", "4,253/8,897 (same size)",
                       "BarabasiAlbert(4253,2,63)",
                       BarabasiAlbert(4253, 2, 63)));
  suite.push_back(Make("Routeviews*", "6,474/13,895 (same size)",
                       "BarabasiAlbert(6474,2,64)",
                       BarabasiAlbert(6474, 2, 64)));
  suite.push_back(Make("HEP-Th*", "8,638/24,827 (same size)",
                       "PowerlawCluster(8638,3,0.4,65)",
                       PowerlawCluster(8638, 3, 0.4, 65)));
  suite.push_back(Make("Astro-Ph*", "17,903/197,031 (scaled to 12,000)",
                       "PowerlawCluster(12000,11,0.6,66)",
                       PowerlawCluster(12000, 11, 0.6, 66)));
  suite.push_back(Make("CAIDA*", "26,475/53,381 (scaled to 16,000)",
                       "BarabasiAlbert(16000,2,67)",
                       BarabasiAlbert(16000, 2, 67)));
  suite.push_back(Make("EmailEnron*", "33,696/180,811 (scaled to 20,000)",
                       "PowerlawCluster(20000,5,0.4,68)",
                       PowerlawCluster(20000, 5, 0.4, 68)));
  suite.push_back(Make("buzznet*", "101,163/2,763,066 (scaled to 24,000)",
                       "PowerlawCluster(24000,14,0.3,69)",
                       PowerlawCluster(24000, 14, 0.3, 69)));
  suite.push_back(Make("Gowalla*", "196,591/950,327 (scaled to 32,000)",
                       "BarabasiAlbert(32000,5,70)",
                       BarabasiAlbert(32000, 5, 70)));
  suite.push_back(Make("com-DBLP*", "317,080/1,049,866 (scaled to 40,000)",
                       "PowerlawCluster(40000,3,0.6,71)",
                       PowerlawCluster(40000, 3, 0.6, 71)));
  return suite;
}

std::vector<Dataset> EpsTimeSuite() {
  std::vector<Dataset> suite;
  suite.push_back(Make("Euroroads*", "1,039/1,305 (same size)",
                       "RandomGeometric(1039,0.032,61)",
                       RandomGeometric(1039, 0.032, 61)));
  suite.push_back(Make("soc-PagesGov*", "7,057/89,429 (same n)",
                       "PowerlawCluster(7057,12,0.5,72)",
                       PowerlawCluster(7057, 12, 0.5, 72)));
  suite.push_back(Make("EmailEnron*", "33,696/180,811 (scaled to 12,000)",
                       "PowerlawCluster(12000,5,0.4,73)",
                       PowerlawCluster(12000, 5, 0.4, 73)));
  suite.push_back(Make("com-DBLP*", "317,080/1,049,866 (scaled to 20,000)",
                       "PowerlawCluster(20000,3,0.6,74)",
                       PowerlawCluster(20000, 3, 0.6, 74)));
  return suite;
}

void PrintProvenance(const std::vector<Dataset>& suite) {
  std::printf("# dataset provenance (paper graph -> offline stand-in; see "
              "DESIGN.md §5)\n");
  for (const auto& d : suite) {
    std::printf("#   %-14s paper n/m: %-38s generator: %s (n=%d, m=%lld)\n",
                d.name.c_str(), d.paper_size.c_str(), d.generator.c_str(),
                d.graph.num_nodes(),
                static_cast<long long>(d.graph.num_edges()));
  }
}

double EvaluateCfcc(const Graph& graph, const std::vector<NodeId>& group,
                    uint64_t seed, NodeId dense_threshold) {
  if (graph.num_nodes() <= dense_threshold) {
    return ExactGroupCfcc(graph, group);
  }
  CgOptions cg;
  cg.tolerance = 1e-6;
  return ApproximateGroupCfcc(graph, group, /*probes=*/12, seed, cg).cfcc;
}

CfcmOptions BenchOptions(double eps, uint64_t seed) {
  CfcmOptions opts;
  opts.eps = eps;
  opts.seed = seed;
  opts.num_threads = 0;  // all cores
  // Bench-scale engineering knobs (DESIGN.md "Engineering constants"):
  // the adaptive Bernstein exit still applies on top of these targets.
  // Scaled for the 2-core offline host; quality-focused benches (Fig. 1,
  // Fig. 2) raise them explicitly.
  opts.forest_factor = 0.35;
  opts.max_forests = 4096;
  opts.max_jl_rows = 16;
  opts.min_batch = 64;
  return opts;
}

std::string LatencyJson(const obs::LatencyHistogram::Snapshot& snapshot) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "{\"count\":%llu,\"mean_us\":%.1f,\"p50_us\":%lld,"
                "\"p95_us\":%lld,\"p99_us\":%lld,\"max_us\":%lld}",
                static_cast<unsigned long long>(snapshot.count),
                snapshot.Mean(),
                static_cast<long long>(snapshot.Percentile(0.50)),
                static_cast<long long>(snapshot.Percentile(0.95)),
                static_cast<long long>(snapshot.Percentile(0.99)),
                static_cast<long long>(snapshot.max));
  return buffer;
}

void PrintOptions(const CfcmOptions& options) {
  std::printf(
      "# options: eps=%.2f seed=%llu forest_factor=%.2f max_forests=%d "
      "max_jl_rows=%d adaptive=%d\n",
      options.eps, static_cast<unsigned long long>(options.seed),
      options.forest_factor, options.max_forests, options.max_jl_rows,
      options.adaptive ? 1 : 0);
}

}  // namespace cfcm::bench
