// Google-benchmark micro suite: throughput of the substrate components
// (Wilson sampling, subtree accumulation, prefix passes, CG, LDLT, JL),
// including the Schur-root ablation at the kernel level.
#include <map>

#include <benchmark/benchmark.h>

#include "cfcm/schur_cfcm.h"
#include "common/rng.h"
#include "estimators/phi_estimators.h"
#include "forest/bfs_tree.h"
#include "forest/subtree.h"
#include "forest/wilson.h"
#include "graph/generators.h"
#include "linalg/cg.h"
#include "linalg/jl.h"
#include "linalg/laplacian.h"
#include "linalg/ldlt.h"

namespace {

using cfcm::Graph;
using cfcm::NodeId;

const Graph& SharedBaGraph(NodeId n) {
  static auto* cache = new std::map<NodeId, Graph>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, cfcm::BarabasiAlbert(n, 3, 7)).first;
  }
  return it->second;
}

void BM_WilsonSingleRoot(benchmark::State& state) {
  const Graph& g = SharedBaGraph(static_cast<NodeId>(state.range(0)));
  std::vector<char> roots(static_cast<std::size_t>(g.num_nodes()), 0);
  roots[g.MaxDegreeNode()] = 1;
  cfcm::ForestSampler sampler(g);
  cfcm::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(roots, &rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_WilsonSingleRoot)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_WilsonHubRoots(benchmark::State& state) {
  // The SchurCFCM configuration: hubs grounded. Compare against
  // BM_WilsonSingleRoot at equal n for the paper's core speed claim.
  const Graph& g = SharedBaGraph(static_cast<NodeId>(state.range(0)));
  std::vector<char> roots(static_cast<std::size_t>(g.num_nodes()), 0);
  roots[g.MaxDegreeNode()] = 1;
  for (NodeId t : cfcm::SelectAuxiliaryRoots(g, 4096)) roots[t] = 1;
  cfcm::ForestSampler sampler(g);
  cfcm::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(roots, &rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_WilsonHubRoots)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_SubtreeJlSums(benchmark::State& state) {
  const Graph& g = SharedBaGraph(10000);
  const int w = static_cast<int>(state.range(0));
  std::vector<char> roots(static_cast<std::size_t>(g.num_nodes()), 0);
  roots[0] = 1;
  const cfcm::JlSketch sketch(w, g.num_nodes(), 3);
  cfcm::ForestSampler sampler(g);
  cfcm::Rng rng(2);
  const cfcm::RootedForest& forest = sampler.Sample(roots, &rng);
  std::vector<double> buf(static_cast<std::size_t>(g.num_nodes()) * w);
  for (auto _ : state) {
    cfcm::SubtreeJlSums(forest, roots, sketch, buf.data());
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes() * w);
}
BENCHMARK(BM_SubtreeJlSums)->Arg(8)->Arg(24)->Arg(64);

void BM_PrefixPasses(benchmark::State& state) {
  const Graph& g = SharedBaGraph(10000);
  const cfcm::TreeScaffold scaffold = cfcm::MakeTreeScaffold(g, {0});
  cfcm::ForestSampler sampler(g);
  cfcm::Rng rng(4);
  const cfcm::RootedForest& forest = sampler.Sample(scaffold.is_root, &rng);
  std::vector<double> xbuf(static_cast<std::size_t>(g.num_nodes()));
  for (auto _ : state) {
    cfcm::DiagPrefixPass(scaffold, forest, &xbuf);
    benchmark::DoNotOptimize(xbuf.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_PrefixPasses);

void BM_CgGroundedSolve(benchmark::State& state) {
  const Graph& g = SharedBaGraph(static_cast<NodeId>(state.range(0)));
  std::vector<char> mask(static_cast<std::size_t>(g.num_nodes()), 0);
  mask[0] = 1;
  const cfcm::LaplacianSubmatrixOp op(g, mask);
  cfcm::Vector b(static_cast<std::size_t>(g.num_nodes()), 0.0);
  cfcm::Rng rng(5);
  for (auto& v : b) v = rng.NextDouble() - 0.5;
  b[0] = 0;
  cfcm::Vector x(b.size(), 0.0);
  for (auto _ : state) {
    x.assign(b.size(), 0.0);
    benchmark::DoNotOptimize(cfcm::SolveGroundedLaplacian(op, b, &x));
  }
}
BENCHMARK(BM_CgGroundedSolve)->Arg(1000)->Arg(10000);

void BM_LdltFactorize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = cfcm::BarabasiAlbert(n, 3, 11);
  const cfcm::DenseMatrix l =
      cfcm::DenseLaplacianSubmatrix(g, cfcm::MakeSubmatrixIndex(n, {0}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfcm::LdltFactorization::Compute(l));
  }
}
BENCHMARK(BM_LdltFactorize)->Arg(100)->Arg(400);

void BM_JlColumn(benchmark::State& state) {
  const cfcm::JlSketch sketch(64, 100000, 9);
  std::vector<double> out(64);
  NodeId v = 0;
  for (auto _ : state) {
    sketch.ColumnInto(v, out.data());
    benchmark::DoNotOptimize(out.data());
    v = (v + 1) % 100000;
  }
}
BENCHMARK(BM_JlColumn);

}  // namespace

BENCHMARK_MAIN();
