// Fig. 2 reproduction: CFCC C(S) vs k = 4..20 on six small graphs for
// Exact / Top-CFCC / Degree / Approx / Forest / Schur.
//
// Shapes to match: SchurCFCM tracks Exact throughout; ForestCFCM close;
// Top-CFCC is comparable to or worse than Degree; greedy methods beat
// both heuristics.
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "cfcm/approx_greedy.h"
#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "cfcm/schur_cfcm.h"

namespace {

constexpr int kMaxGroup = 20;

std::vector<double> PrefixCfcc(const cfcm::Graph& g,
                               const std::vector<cfcm::NodeId>& selected) {
  // One inversion + downdates for the whole curve.
  const auto traces = cfcm::ExactPrefixTraces(g, selected);
  std::vector<double> out(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    out[i] = static_cast<double>(g.num_nodes()) / traces[i];
  }
  return out;
}

}  // namespace

int main() {
  const auto suite = cfcm::bench::SmallSuite();
  std::printf(
      "== Fig. 2: C(S) vs k on small graphs (6 algorithms, k=4..20) ==\n");
  cfcm::bench::PrintProvenance(suite);
  cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(0.2);
  // Small graphs: spend the budget the paper's 72-core runs implied
  // (its w = 24 (eps/7)^{-2} ln n is in the hundreds even at eps=0.2).
  opts.forest_factor = 3.0;
  opts.max_forests = 4096;
  opts.jl_rows = 64;
  cfcm::bench::PrintOptions(opts);

  for (const auto& d : suite) {
    const cfcm::Graph& g = d.graph;
    auto exact = cfcm::ExactGreedyMaximize(g, kMaxGroup);
    auto forest = cfcm::ForestCfcmMaximize(g, kMaxGroup, opts);
    auto schur = cfcm::SchurCfcmMaximize(g, kMaxGroup, opts);
    auto approx = cfcm::ApproxGreedyMaximize(g, kMaxGroup, opts);
    if (!exact.ok() || !forest.ok() || !schur.ok() || !approx.ok()) {
      std::printf("%s: solver failure\n", d.name.c_str());
      return 1;
    }
    const auto degree = cfcm::DegreeSelect(g, kMaxGroup);
    const auto topcfcc = cfcm::TopCfccSelectExact(g, kMaxGroup);

    const auto c_exact = PrefixCfcc(g, exact->selected);
    const auto c_forest = PrefixCfcc(g, forest->selected);
    const auto c_schur = PrefixCfcc(g, schur->selected);
    const auto c_approx = PrefixCfcc(g, approx->selected);
    const auto c_degree = PrefixCfcc(g, degree);
    const auto c_top = PrefixCfcc(g, topcfcc);

    std::printf("\n-- %s (n=%d, m=%lld) --\n", d.name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()));
    std::printf("%2s %9s %9s %9s %9s %9s %9s\n", "k", "Exact", "TopCFCC",
                "Degree", "Approx", "Forest", "Schur");
    for (int k = 4; k <= kMaxGroup; k += 4) {
      std::printf("%2d %9.5f %9.5f %9.5f %9.5f %9.5f %9.5f\n", k,
                  c_exact[k - 1], c_top[k - 1], c_degree[k - 1],
                  c_approx[k - 1], c_forest[k - 1], c_schur[k - 1]);
    }
    std::fflush(stdout);
  }
  std::printf("\n# paper shape check: greedy methods (Exact/Approx/Forest/"
              "Schur) cluster together and beat Degree/TopCFCC at k=20; "
              "Schur is the best sampled method throughout.\n");
  return 0;
}
