// Ablation (ours): effect of the auxiliary root set size |T| on
// SchurCFCM sampling cost and solution quality, validating the
// |T*| = argmin { |T| - dmax(T) } selection rule of paper Section V-A.
//
// Expected shape: Wilson walk steps per forest drop steeply as the first
// auxiliary roots are grounded and then flatten (diminishing returns);
// solution quality is insensitive to |T| in a broad band around |T*|.
// The effect is measured on a road-like geometric graph — the
// walk-dominated regime (high diameter, long hitting times) where
// SchurCFCM's advantage materializes (cf. the Euroroads* rows of
// Table II); on small-world graphs with a grounded hub the walks are
// already short and the |T| sensitivity is mild (see the micro bench's
// BA-graph Wilson comparison).
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "cfcm/cfcc.h"
#include "cfcm/schur_cfcm.h"
#include "common/rng.h"
#include "forest/wilson.h"
#include "graph/generators.h"

namespace {

// Mean loop-erased walk steps per forest with roots = {s} ∪ T-prefix.
double MeanWalkSteps(const cfcm::Graph& g, const std::vector<cfcm::NodeId>& t,
                     int prefix, int samples) {
  std::vector<char> roots(static_cast<std::size_t>(g.num_nodes()), 0);
  roots[g.MaxDegreeNode()] = 1;
  for (int i = 0; i < prefix && i < static_cast<int>(t.size()); ++i) {
    roots[t[i]] = 1;
  }
  cfcm::ForestSampler sampler(g);
  cfcm::Rng rng(12345);
  std::int64_t total = 0;
  for (int i = 0; i < samples; ++i) {
    sampler.Sample(roots, &rng);
    total += sampler.last_walk_steps();
  }
  return static_cast<double>(total) / samples;
}

}  // namespace

int main() {
  std::printf("== Ablation: auxiliary root set size |T| in SchurCFCM ==\n");
  const cfcm::Graph g = cfcm::RandomGeometric(20000, 0.009, 81);
  std::printf("# graph: RandomGeometric(20000,0.009,81) road-like: n=%d "
              "m=%lld\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()));

  const auto t_order = cfcm::SelectAuxiliaryRoots(g, g.num_nodes() - 2);
  const auto t_star = cfcm::SelectAuxiliaryRoots(g, 4096);
  std::printf("# |T*| rule selects %d hubs\n\n",
              static_cast<int>(t_star.size()));

  std::printf("%-6s %16s %14s %12s\n", "|T|", "walkSteps/forest",
              "SchurCFCM(s)", "C(S) @k=10");
  for (int size : {0, 1, 8, 64, 256, static_cast<int>(t_star.size())}) {
    if (size > static_cast<int>(t_order.size())) continue;
    const double steps = MeanWalkSteps(g, t_order, size, 20);
    cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(0.2);
    opts.t_size = size == 0 ? 1 : size;  // SchurDelta needs |T| >= 1
    auto result = cfcm::SchurCfcmMaximize(g, 10, opts);
    if (!result.ok()) return 1;
    const double cfcc = cfcm::bench::EvaluateCfcc(g, result->selected);
    std::printf("%-6d %16.1f %14.3f %12.6f%s\n", size, steps, result->seconds,
                cfcc,
                size == static_cast<int>(t_star.size()) ? "   <- |T*|" : "");
    std::fflush(stdout);
  }
  std::printf("\n# shape check: walk steps collapse ~3x once the first "
              "auxiliary roots are grounded, then flatten — the speedup "
              "SchurCFCM banks on road-like graphs. The trade-off the "
              "|T*| rule balances is visible too: at tight sampling "
              "budgets, larger |T| shifts estimation into the sampled "
              "rooted-probability matrix and can cost solution quality; "
              "raise forest_factor/jl_rows to buy it back.\n");
  return 0;
}
