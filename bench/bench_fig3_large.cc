// Fig. 3 reproduction: CFCC C(S) vs k on large graphs where dense exact
// computation is infeasible; C(S) is evaluated with Hutchinson probing +
// conjugate gradient, exactly the paper's protocol ("we employ the
// conjugate gradient method to examine approximate solutions").
//
// Shape to match: SchurCFCM delivers the best C(S) at every k; Forest
// close; heuristics below.
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "cfcm/cfcc.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "cfcm/schur_cfcm.h"

namespace {

constexpr int kMaxGroup = 20;

std::vector<double> PrefixCfcc(const cfcm::Graph& g,
                               const std::vector<cfcm::NodeId>& selected) {
  std::vector<double> out;
  std::vector<cfcm::NodeId> prefix;
  for (int k = 0; k < kMaxGroup; ++k) {
    prefix.push_back(selected[k]);
    const bool eval = (k + 1) == 4 || (k + 1) == 12 || (k + 1) == 20;
    out.push_back(eval ? cfcm::bench::EvaluateCfcc(g, prefix, /*seed=*/7)
                       : 0.0);
  }
  return out;
}

}  // namespace

int main() {
  const auto suite = cfcm::bench::LargeSuite();
  std::printf("== Fig. 3: C(S) vs k on large graphs (CG-evaluated CFCC) ==\n");
  cfcm::bench::PrintProvenance(suite);
  cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(0.2);
  opts.forest_factor = 1.0;
  opts.max_jl_rows = 32;
  cfcm::bench::PrintOptions(opts);

  for (const auto& d : suite) {
    const cfcm::Graph& g = d.graph;
    auto forest = cfcm::ForestCfcmMaximize(g, kMaxGroup, opts);
    auto schur = cfcm::SchurCfcmMaximize(g, kMaxGroup, opts);
    if (!forest.ok() || !schur.ok()) {
      std::printf("%s: solver failure\n", d.name.c_str());
      return 1;
    }
    const auto degree = cfcm::DegreeSelect(g, kMaxGroup);
    cfcm::CfcmOptions top_opts = opts;
    const auto topcfcc = cfcm::TopCfccSelectEstimated(g, kMaxGroup, top_opts);

    const auto c_forest = PrefixCfcc(g, forest->selected);
    const auto c_schur = PrefixCfcc(g, schur->selected);
    const auto c_degree = PrefixCfcc(g, degree);
    const auto c_top = PrefixCfcc(g, topcfcc);

    std::printf("\n-- %s (n=%d, m=%lld) --\n", d.name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()));
    std::printf("%2s %9s %9s %9s %9s\n", "k", "TopCFCC", "Degree", "Forest",
                "Schur");
    for (int k : {4, 12, 20}) {
      std::printf("%2d %9.5f %9.5f %9.5f %9.5f\n", k, c_top[k - 1],
                  c_degree[k - 1], c_forest[k - 1], c_schur[k - 1]);
      std::fflush(stdout);
    }
  }
  std::printf("\n# paper shape check: Schur >= Forest >= heuristics at "
              "every k (CG-evaluated, so small probe noise is expected).\n");
  return 0;
}
