// Fig. 1 reproduction: CFCC C(S) for k = 1..5 on four tiny graphs,
// comparing Optimum / Exact / Approx / Forest / Schur.
//
// Shape to match: all greedy curves sit essentially on the Optimum curve
// (practical approximation ratios far better than the theory), with
// APPROXGREEDY occasionally a hair below the others.
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "cfcm/approx_greedy.h"
#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/optimum.h"
#include "cfcm/schur_cfcm.h"

namespace {

constexpr int kMaxGroup = 5;

// CFCC of each greedy prefix (greedy algorithms are nested by design;
// Optimum is re-solved per k).
std::vector<double> PrefixCfcc(const cfcm::Graph& g,
                               const std::vector<cfcm::NodeId>& selected) {
  std::vector<double> out;
  std::vector<cfcm::NodeId> prefix;
  for (int k = 0; k < kMaxGroup; ++k) {
    prefix.push_back(selected[k]);
    out.push_back(cfcm::ExactGroupCfcc(g, prefix));
  }
  return out;
}

}  // namespace

int main() {
  const auto suite = cfcm::bench::TinySuite();
  std::printf("== Fig. 1: C(S) vs k on tiny graphs (Optimum/Exact/Approx/"
              "Forest/Schur) ==\n");
  cfcm::bench::PrintProvenance(suite);
  cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(0.2);
  opts.forest_factor = 8.0;  // tiny graphs: accuracy is free
  opts.max_forests = 8192;
  opts.jl_rows = 64;
  cfcm::bench::PrintOptions(opts);

  for (const auto& d : suite) {
    const cfcm::Graph& g = d.graph;
    auto exact = cfcm::ExactGreedyMaximize(g, kMaxGroup);
    auto forest = cfcm::ForestCfcmMaximize(g, kMaxGroup, opts);
    auto schur = cfcm::SchurCfcmMaximize(g, kMaxGroup, opts);
    auto approx = cfcm::ApproxGreedyMaximize(g, kMaxGroup, opts);
    if (!exact.ok() || !forest.ok() || !schur.ok() || !approx.ok()) {
      std::printf("%s: solver failure\n", d.name.c_str());
      return 1;
    }
    const auto c_exact = PrefixCfcc(g, exact->selected);
    const auto c_forest = PrefixCfcc(g, forest->selected);
    const auto c_schur = PrefixCfcc(g, schur->selected);
    const auto c_approx = PrefixCfcc(g, approx->selected);

    std::printf("\n-- %s (n=%d, m=%lld) --\n", d.name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()));
    std::printf("%2s %10s %10s %10s %10s %10s\n", "k", "Optimum", "Exact",
                "Approx", "Forest", "Schur");
    for (int k = 1; k <= kMaxGroup; ++k) {
      auto opt = cfcm::OptimumSearch(g, k);
      if (!opt.ok()) return 1;
      std::printf("%2d %10.5f %10.5f %10.5f %10.5f %10.5f\n", k, opt->cfcc,
                  c_exact[k - 1], c_approx[k - 1], c_forest[k - 1],
                  c_schur[k - 1]);
      std::fflush(stdout);
    }
  }
  std::printf("\n# paper shape check: every greedy column within a few "
              "percent of Optimum at all k.\n");
  return 0;
}
