// Sparse-solver-core bench (DESIGN.md §14): dense LDL^T vs RCM-ordered
// sparse LDL^T vs Jacobi-CG on grounded Laplacians of growing size.
// For each (graph, backend) it times the factorization, a batch of
// right-hand-side solves and the trace of the inverse, and records the
// resident bytes of the factorization state — the two axes the sparse
// core is supposed to win on beyond the dense ceiling.
//
//   bench_sparse_solver [--smoke] [--json BENCH_sparse.json]
//
// The JSON carries a "sparse_beats_dense" verdict: on every graph with
// n >= 2048 where both backends ran, sparse_ldlt must beat dense on
// factor+solve time AND on memory. CI greps for it.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "linalg/solver.h"

namespace {

using cfcm::Graph;
using cfcm::LaplacianSolver;
using cfcm::MakeGroundedSolver;
using cfcm::NodeId;
using cfcm::SolverBackend;
using cfcm::SolverBackendName;
using cfcm::Timer;
using cfcm::Vector;

// Above this n the dense O(n^3) factorization (and O(n^2) memory) is
// minutes of work for no information: the crossover is long decided.
constexpr NodeId kDenseCapN = 4096;

// The trace phase (diag of the inverse) is the quadratic tail of every
// backend — O(fill^2) selected inverse, O(n^3) dense, n CG solves. It
// is timed as a cross-check on small graphs only; the headline numbers
// are factor + solve.
constexpr NodeId kTraceMaxN = 1024;

struct Row {
  std::string graph;
  NodeId n = 0;
  long long m = 0;
  SolverBackend backend = SolverBackend::kDense;
  double factor_s = 0.0;
  double solve_s = 0.0;  // kSolves right-hand sides
  double trace_s = 0.0;  // InverseDiagonal
  double trace = 0.0;
  long long memory_bytes = 0;
};

constexpr int kSolves = 16;

struct BenchGraph {
  std::string name;
  Graph graph;
};

std::vector<BenchGraph> Suite(bool smoke) {
  std::vector<BenchGraph> suite;
  const std::vector<NodeId> sizes =
      smoke ? std::vector<NodeId>{512, 2048}
            : std::vector<NodeId>{512, 2048, 8192, 20000, 50000};
  for (NodeId n : sizes) {
    suite.push_back({"ba:" + std::to_string(n) + ",4",
                     cfcm::BarabasiAlbert(n, 4, 1)});
  }
  // One mesh-like and one small-world graph at the crossover size:
  // fill-in behaves very differently on meshes than on scale-free
  // graphs, so the verdict should not rest on one topology.
  const NodeId side = smoke ? 48 : 144;  // 48^2 = 2304, 144^2 = 20736
  suite.push_back({"grid:" + std::to_string(side) + "x" + std::to_string(side),
                   cfcm::GridGraph(side, side)});
  const NodeId ws_n = smoke ? 2048 : 20000;
  suite.push_back({"ws:" + std::to_string(ws_n) + ",6,0.1",
                   cfcm::WattsStrogatz(ws_n, 6, 0.1, 1)});
  return suite;
}

bool RunBackend(const BenchGraph& bg, SolverBackend backend, Row* row) {
  const std::vector<NodeId> removed = {0};
  Timer factor_timer;
  auto solver = MakeGroundedSolver(bg.graph, removed, backend);
  if (!solver.ok()) {
    std::fprintf(stderr, "factor failed on %s/%s: %s\n", bg.name.c_str(),
                 SolverBackendName(backend), solver.status().ToString().c_str());
    return false;
  }
  row->factor_s = factor_timer.Seconds();

  const int dim = (*solver)->dim();
  Timer solve_timer;
  double checksum = 0.0;
  for (int i = 0; i < kSolves; ++i) {
    Vector b(dim, 0.0);
    b[i % dim] = 1.0;
    checksum += (*solver)->Solve(b)[i % dim];
  }
  row->solve_s = solve_timer.Seconds();
  (void)checksum;

  if (bg.graph.num_nodes() <= kTraceMaxN) {
    Timer trace_timer;
    row->trace = (*solver)->TraceInverse();
    row->trace_s = trace_timer.Seconds();
  }
  row->memory_bytes = (*solver)->MemoryBytes();
  row->backend = backend;
  row->n = bg.graph.num_nodes();
  row->m = static_cast<long long>(bg.graph.num_edges());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  std::printf("# bench_sparse_solver: grounded-Laplacian backends "
              "(factor + %d solves + trace)\n", kSolves);
  std::printf("%-14s %7s %9s %-11s %10s %10s %10s %12s\n", "graph", "n", "m",
              "backend", "factor_s", "solve_s", "trace_s", "mem_bytes");

  std::vector<Row> rows;
  bool sparse_beats_dense = true;
  bool any_crossover_pair = false;
  for (const BenchGraph& bg : Suite(smoke)) {
    const NodeId n = bg.graph.num_nodes();
    Row dense_row, sparse_row, cg_row;
    const bool ran_dense =
        n <= kDenseCapN && RunBackend(bg, SolverBackend::kDense, &dense_row);
    const bool ran_sparse =
        RunBackend(bg, SolverBackend::kSparseLdlt, &sparse_row);
    const bool ran_cg = RunBackend(bg, SolverBackend::kCg, &cg_row);
    for (const auto* row :
         {ran_dense ? &dense_row : nullptr, ran_sparse ? &sparse_row : nullptr,
          ran_cg ? &cg_row : nullptr}) {
      if (row == nullptr) continue;
      Row printed = *row;
      printed.graph = bg.name;
      std::printf("%-14s %7d %9lld %-11s %10.4f %10.4f %10.4f %12lld\n",
                  printed.graph.c_str(), printed.n, printed.m,
                  SolverBackendName(printed.backend), printed.factor_s,
                  printed.solve_s, printed.trace_s, printed.memory_bytes);
      rows.push_back(std::move(printed));
    }
    if (ran_dense && ran_sparse && n >= 2048) {
      any_crossover_pair = true;
      const double dense_time = dense_row.factor_s + dense_row.solve_s;
      const double sparse_time = sparse_row.factor_s + sparse_row.solve_s;
      if (sparse_time >= dense_time ||
          sparse_row.memory_bytes >= dense_row.memory_bytes) {
        sparse_beats_dense = false;
        std::fprintf(stderr,
                     "crossover violated on %s: sparse %.4fs/%lldB vs dense "
                     "%.4fs/%lldB\n",
                     bg.name.c_str(), sparse_time, sparse_row.memory_bytes,
                     dense_time, dense_row.memory_bytes);
      }
    }
  }
  sparse_beats_dense = sparse_beats_dense && any_crossover_pair;
  std::printf("# sparse_beats_dense (n >= 2048): %s\n",
              sparse_beats_dense ? "true" : "false");

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\":\"sparse_solver\",\"smoke\":%s,"
                 "\"solves_per_backend\":%d,\n  \"rows\":[\n",
                 smoke ? "true" : "false", kSolves);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"graph\":\"%s\",\"n\":%d,\"m\":%lld,"
                   "\"backend\":\"%s\",\"factor_s\":%.6f,\"solve_s\":%.6f,"
                   "\"trace_s\":%.6f,\"trace\":%.9g,\"memory_bytes\":%lld}%s\n",
                   row.graph.c_str(), row.n, row.m,
                   SolverBackendName(row.backend), row.factor_s, row.solve_s,
                   row.trace_s, row.trace, row.memory_bytes,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"sparse_beats_dense\":%s\n}\n",
                 sparse_beats_dense ? "true" : "false");
    std::fclose(out);
    std::printf("# wrote %s\n", json_path);
  }
  return sparse_beats_dense ? 0 : 1;
}
