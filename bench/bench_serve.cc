// Loopback throughput bench for the serving layer: an in-process daemon
// on an ephemeral port, hammered by C client connections issuing solve
// requests. Two phases per graph — a cold phase of distinct seeds
// (every request computes) and a hot phase replaying the same seeds
// (every request is a cache hit) — so the JSON rows separate solver
// throughput from serving-stack overhead. Each phase also records every
// request's client-visible latency into a log2 histogram and reports
// p50/p95/p99/max alongside throughput.
//
// An admin_scrape phase prices the diagnostics plane (DESIGN.md §15):
// with cache-hit traffic running in the background, it scrapes the
// admin HTTP /metrics endpoint repeatedly and reports scrape latency as
// its own row.
//
// A final overhead phase replays the hot (cache-hit) path — which now
// includes the flight-recorder commit — with the global instrumentation
// kill switch off and on, repeated three times, and reports the minimum
// relative cost across the repetitions (min-of-3 filters scheduler
// noise; the instrumentation delta is systematic, the noise is not).
// The budget is <= 2% (DESIGN.md §12); the process exits nonzero when
// the measured overhead busts it, so CI fails loudly.
//
//   bench_serve [--smoke] [--json BENCH_serve.json]
//               [--connections C] [--requests N]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using cfcm::Timer;
using cfcm::bench::LatencyJson;
using cfcm::obs::LatencyHistogram;
using cfcm::serve::HandlerOptions;
using cfcm::serve::JsonValue;
using cfcm::serve::ServeClient;
using cfcm::serve::ServeHandler;
using cfcm::serve::Server;
using cfcm::serve::ServerOptions;

struct PhaseRow {
  std::string graph;
  std::string phase;  // "cold", "hot" or "admin_scrape"
  int connections = 0;
  int requests = 0;
  double seconds = 0.0;
  double rps = 0.0;
  long long cache_hits = 0;
  LatencyHistogram::Snapshot latency;  // client-visible request latency
};

// Each connection thread sends `per_connection` solve requests, seeds
// chosen so the whole phase covers [seed_base, seed_base + requests).
// Per-request round-trip times are recorded into `latency` (the
// histogram's lock-free Record makes one shared instance safe across
// connection threads); pass nullptr to skip recording — the overhead
// phases do, because the kill switch they are pricing would gate the
// recording itself.
void RunPhase(int port, const std::string& graph, int connections,
              int per_connection, uint64_t seed_base,
              LatencyHistogram* latency, PhaseRow* row) {
  Timer phase_timer;
  std::vector<std::thread> threads;
  std::vector<int> failures(static_cast<std::size_t>(connections), 0);
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([=, &failures] {
      auto client = ServeClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures[static_cast<std::size_t>(c)] = per_connection;
        return;
      }
      for (int i = 0; i < per_connection; ++i) {
        const uint64_t seed =
            seed_base + static_cast<uint64_t>(c * per_connection + i);
        const std::string request =
            R"({"op":"solve","graph":")" + graph +
            R"(","algorithm":"forest","k":3,"eps":0.3,"seed":)" +
            std::to_string(seed) + "}";
        Timer request_timer;
        if (!client->SendLine(request).ok() || !client->ReadLine().ok()) {
          ++failures[static_cast<std::size_t>(c)];
        } else if (latency != nullptr) {
          latency->Record(request_timer.Micros());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = phase_timer.Seconds();
  row->connections = connections;
  row->requests = connections * per_connection;
  for (int f : failures) row->requests -= f;  // report successes only
  row->seconds = seconds;
  row->rps = seconds > 0 ? row->requests / seconds : 0.0;
  if (latency != nullptr) row->latency = latency->snapshot();
}

// Minimal blocking HTTP/1.1 GET against the admin plane; returns the
// full response (headers + body), or "" on any socket error.
std::string HttpGet(int port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = std::string("GET ") + path +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  int connections = 4;
  int per_connection = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      per_connection = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--connections C] "
                   "[--requests N-per-connection]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    connections = 2;
    per_connection = 8;
  }

  // Suite: one small and one mid-size graph (smoke keeps just karate).
  std::vector<std::pair<std::string, std::string>> graphs = {
      {"karate", "karate"}};
  if (!smoke) graphs.emplace_back("ba2000", "ba:2000,4,1");

  HandlerOptions handler_options;
  ServeHandler handler{handler_options};
  ServerOptions server_options;
  server_options.num_workers = 4;
  server_options.max_queue = 256;
  server_options.admin_port = 0;  // ephemeral, for the admin_scrape phase
  server_options.watchdog_interval_ms = 0;  // scrape-driven sampling only
  Server server{&handler, server_options};
  if (!server.Start().ok()) {
    std::fprintf(stderr, "bench_serve: failed to start server\n");
    return 1;
  }

  std::printf("# bench_serve: loopback serving throughput\n");
  std::printf("# connections=%d requests_per_connection=%d workers=%d\n",
              connections, per_connection, server_options.num_workers);
  std::printf("%-8s %-5s %6s %8s %9s %10s %6s %8s %8s %8s\n", "graph",
              "phase", "conns", "requests", "seconds", "req/s", "hits",
              "p50_us", "p99_us", "max_us");

  std::vector<PhaseRow> rows;
  for (const auto& [name, spec] : graphs) {
    {
      auto client = ServeClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return 1;
      const std::string load =
          R"({"op":"load","graph":")" + name + R"(","source":")" + spec +
          "\"}";
      (void)client->SendLine(load);
      (void)client->ReadLine();
    }
    for (const char* phase : {"cold", "hot"}) {
      PhaseRow row;
      row.graph = name;
      row.phase = phase;
      const auto before = handler.cache().stats();
      // The hot phase replays the cold phase's seed range, so every
      // request is answerable from the cache.
      LatencyHistogram latency;
      RunPhase(server.port(), name, connections, per_connection,
               /*seed_base=*/1, &latency, &row);
      const auto after = handler.cache().stats();
      row.cache_hits = static_cast<long long>(after.hits - before.hits);
      std::printf(
          "%-8s %-5s %6d %8d %9.3f %10.1f %6lld %8lld %8lld %8lld\n",
          row.graph.c_str(), row.phase.c_str(), row.connections,
          row.requests, row.seconds, row.rps, row.cache_hits,
          static_cast<long long>(row.latency.Percentile(0.50)),
          static_cast<long long>(row.latency.Percentile(0.99)),
          static_cast<long long>(row.latency.max));
      rows.push_back(row);
    }
  }

  // Admin-scrape phase: cache-hit traffic keeps hammering in the
  // background while we repeatedly GET /metrics off the admin plane, so
  // the scrape latency row reflects a loaded daemon, not an idle one.
  {
    const std::string& scrape_graph = graphs.front().first;
    const int scrapes = smoke ? 32 : 200;
    PhaseRow row;
    row.graph = scrape_graph;
    row.phase = "admin_scrape";
    std::atomic<bool> stop_traffic{false};
    std::thread traffic([&] {
      auto client = ServeClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      uint64_t i = 0;
      while (!stop_traffic.load(std::memory_order_acquire)) {
        const uint64_t seed =
            1 + i++ % static_cast<uint64_t>(connections * per_connection);
        const std::string request =
            R"({"op":"solve","graph":")" + scrape_graph +
            R"(","algorithm":"forest","k":3,"eps":0.3,"seed":)" +
            std::to_string(seed) + "}";
        if (!client->SendLine(request).ok() || !client->ReadLine().ok()) break;
      }
    });
    LatencyHistogram scrape_latency;
    Timer scrape_timer;
    int ok_scrapes = 0;
    for (int i = 0; i < scrapes; ++i) {
      Timer one;
      const std::string response = HttpGet(server.admin_port(), "/metrics");
      if (response.find("200 OK") != std::string::npos &&
          response.find("# TYPE") != std::string::npos) {
        scrape_latency.Record(one.Micros());
        ++ok_scrapes;
      }
    }
    const double seconds = scrape_timer.Seconds();
    stop_traffic.store(true, std::memory_order_release);
    traffic.join();
    row.connections = 1;
    row.requests = ok_scrapes;
    row.seconds = seconds;
    row.rps = seconds > 0 ? ok_scrapes / seconds : 0.0;
    row.latency = scrape_latency.snapshot();
    std::printf("%-8s %-12s %6d %8d %9.3f %10.1f %6lld %8lld %8lld %8lld\n",
                row.graph.c_str(), row.phase.c_str(), row.connections,
                row.requests, row.seconds, row.rps, row.cache_hits,
                static_cast<long long>(row.latency.Percentile(0.50)),
                static_cast<long long>(row.latency.Percentile(0.99)),
                static_cast<long long>(row.latency.max));
    if (ok_scrapes != scrapes) {
      std::fprintf(stderr, "bench_serve: only %d/%d /metrics scrapes ok\n",
                   ok_scrapes, scrapes);
      server.Shutdown();
      return 1;
    }
    rows.push_back(row);
  }

  // Overhead phase: the same hot cache-hit replay on the first graph,
  // first with every Counter::Add / Histogram::Record / flight-recorder
  // Commit turned into a no-op by the global kill switch, then with
  // instrumentation live. Both runs hit only the cache path, so the
  // delta prices the observability layer itself. Three repetitions,
  // minimum overhead kept: the instrumentation cost is systematic and
  // survives the min, scheduler noise does not. Enough requests per
  // repetition to make the ratio meaningful even in smoke mode.
  const std::string& overhead_graph = graphs.front().first;
  const int overhead_per_connection =
      per_connection < 200 ? 200 : per_connection;
  double overhead_pct = 0.0;
  double off_rps = 0.0, on_rps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    PhaseRow off_row, on_row;
    cfcm::obs::SetMetricsEnabled(false);
    RunPhase(server.port(), overhead_graph, connections,
             overhead_per_connection, /*seed_base=*/1, nullptr, &off_row);
    cfcm::obs::SetMetricsEnabled(true);
    RunPhase(server.port(), overhead_graph, connections,
             overhead_per_connection, /*seed_base=*/1, nullptr, &on_row);
    const double pct =
        off_row.rps > 0 ? (off_row.rps - on_row.rps) / off_row.rps * 100.0
                        : 0.0;
    if (rep == 0 || pct < overhead_pct) {
      overhead_pct = pct;
      off_rps = off_row.rps;
      on_rps = on_row.rps;
    }
  }
  server.Shutdown();

  const bool within_budget = overhead_pct <= 2.0;
  std::printf(
      "# instrumentation overhead (hot path, %s, min of 3): off=%.1f req/s "
      "on=%.1f req/s overhead=%.2f%% (budget 2%%) %s\n",
      overhead_graph.c_str(), off_rps, on_rps, overhead_pct,
      within_budget ? "OK" : "OVER BUDGET");

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"serve_loopback\",\n"
                 "  \"smoke\": %s,\n  \"rows\": [\n",
                 smoke ? "true" : "false");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const PhaseRow& r = rows[i];
      std::fprintf(out,
                   "    {\"graph\":\"%s\",\"phase\":\"%s\","
                   "\"connections\":%d,\"requests\":%d,\"seconds\":%.6f,"
                   "\"rps\":%.1f,\"cache_hits\":%lld,\"latency\":%s}%s\n",
                   r.graph.c_str(), r.phase.c_str(), r.connections,
                   r.requests, r.seconds, r.rps, r.cache_hits,
                   LatencyJson(r.latency).c_str(),
                   i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(out,
                 "  ],\n  \"instrumentation_overhead\": "
                 "{\"graph\":\"%s\",\"rps_disabled\":%.1f,"
                 "\"rps_enabled\":%.1f,\"overhead_pct\":%.2f,"
                 "\"budget_pct\":2.0,\"within_budget\":%s}\n}\n",
                 overhead_graph.c_str(), off_rps, on_rps, overhead_pct,
                 within_budget ? "true" : "false");
    std::fclose(out);
    std::printf("# wrote %zu serving perf rows to %s\n", rows.size(),
                json_path);
  }
  if (!within_budget) {
    std::fprintf(stderr,
                 "bench_serve: instrumentation overhead %.2f%% exceeds the "
                 "2%% budget\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}
