// Fig. 5 reproduction: relative difference of the maximized CFCC versus
// EXACT as eps varies over [0.15, 0.4] on small graphs.
//
// Shapes to match: differences shrink as eps decreases and become
// negligible by eps = 0.2; SchurCFCM dominates ForestCFCM at every eps.
#include <cmath>
#include <cstdio>

#include "bench_support.h"
#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/schur_cfcm.h"

namespace {

constexpr int kGroupSize = 10;
constexpr double kEpsValues[] = {0.40, 0.35, 0.30, 0.25, 0.20, 0.15};

}  // namespace

int main() {
  auto suite = cfcm::bench::SmallSuite();
  suite.resize(4);  // four eps-sweep graphs (time budget; paper used six)
  std::printf("== Fig. 5: relative CFCC difference vs EXACT under varying "
              "eps, k = %d ==\n",
              kGroupSize);
  cfcm::bench::PrintProvenance(suite);
  cfcm::bench::PrintOptions(cfcm::bench::BenchOptions(0.2));

  for (const auto& d : suite) {
    const cfcm::Graph& g = d.graph;
    auto exact = cfcm::ExactGreedyMaximize(g, kGroupSize);
    if (!exact.ok()) return 1;
    const double c_exact =
        static_cast<double>(g.num_nodes()) / exact->trace_after.back();

    std::printf("\n-- %s (n=%d, m=%lld, exact C(S)=%.5f) --\n", d.name.c_str(),
                g.num_nodes(), static_cast<long long>(g.num_edges()), c_exact);
    std::printf("%6s %14s %14s\n", "eps", "Forest relDiff", "Schur relDiff");
    for (double eps : kEpsValues) {
      const cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(eps);
      auto forest = cfcm::ForestCfcmMaximize(g, kGroupSize, opts);
      auto schur = cfcm::SchurCfcmMaximize(g, kGroupSize, opts);
      if (!forest.ok() || !schur.ok()) return 1;
      const double n = g.num_nodes();
      const double c_forest =
          n / cfcm::ExactPrefixTraces(g, forest->selected).back();
      const double c_schur =
          n / cfcm::ExactPrefixTraces(g, schur->selected).back();
      const double rel_forest = (c_exact - c_forest) / c_exact;
      const double rel_schur = (c_exact - c_schur) / c_exact;
      std::printf("%6.2f %14.5f %14.5f\n", eps, rel_forest, rel_schur);
      std::fflush(stdout);
    }
  }
  std::printf("\n# paper shape check: columns shrink toward 0 as eps -> "
              "0.15, Schur <= Forest on average; quality saturates beyond "
              "eps=0.2.\n");
  return 0;
}
