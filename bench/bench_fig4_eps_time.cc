// Fig. 4 reproduction: running time of ForestCFCM / SchurCFCM as the
// error parameter eps varies over [0.15, 0.4].
//
// Shapes to match: time grows like eps^{-2}; SchurCFCM is faster at
// every eps and its advantage widens as eps shrinks (more forests =>
// the cheaper-per-forest sampler wins more).
#include <cstdio>

#include "bench_support.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/schur_cfcm.h"

namespace {

constexpr int kGroupSize = 10;
constexpr double kEpsValues[] = {0.40, 0.35, 0.30, 0.25, 0.20, 0.15};

}  // namespace

int main() {
  const auto suite = cfcm::bench::EpsTimeSuite();
  std::printf(
      "== Fig. 4: running time (s) vs eps for Forest/Schur, k = %d ==\n",
      kGroupSize);
  cfcm::bench::PrintProvenance(suite);
  cfcm::bench::PrintOptions(cfcm::bench::BenchOptions(0.2));

  for (const auto& d : suite) {
    const cfcm::Graph& g = d.graph;
    std::printf("\n-- %s (n=%d, m=%lld) --\n", d.name.c_str(), g.num_nodes(),
                static_cast<long long>(g.num_edges()));
    std::printf("%6s %12s %12s\n", "eps", "ForestCFCM", "SchurCFCM");
    for (double eps : kEpsValues) {
      const cfcm::CfcmOptions opts = cfcm::bench::BenchOptions(eps);
      auto forest = cfcm::ForestCfcmMaximize(g, kGroupSize, opts);
      auto schur = cfcm::SchurCfcmMaximize(g, kGroupSize, opts);
      if (!forest.ok() || !schur.ok()) return 1;
      std::printf("%6.2f %12.3f %12.3f\n", eps, forest->seconds,
                  schur->seconds);
      std::fflush(stdout);
    }
  }
  std::printf("\n# shape check (see EXPERIMENTS.md): both columns grow as "
              "eps shrinks (eps^-2 targets, flattened at large eps by the "
              "min-batch floor); Schur wins on walk-dominated graphs "
              "(Euroroads*), Forest on assembly-dominated small/scaled "
              "rows.\n");
  return 0;
}
