// Selection-layer bench: exhaustive re-scoring (the paper's literal
// Alg. 3/5 greedy loop) vs the lazy CELF layer (DESIGN.md §13) on the
// two synthetic families the lazy heuristics were tuned on — BA
// (scale-free) and WS (small world). For each graph x solver the bench
// runs both modes with identical options/seed and reports
//
//   rescored        candidate gain evaluations across rounds 2..k
//   pops / reused   lazy-heap pops and arena forest replays
//   seconds         mean end-to-end solve wall time over --reps runs
//   cfcc            CFCC of the selected group (Hutchinson+CG referee)
//
// plus per-run latency percentiles. The bench FAILS (exit 1) if any
// lazy run re-scores as many candidates as its exhaustive twin — the
// CI smoke run doubles as a regression gate on the lazy layer.
//
//   bench_selection [--smoke] [--json BENCH_selection.json]
//                   [--k N] [--reps N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_support.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/options.h"
#include "cfcm/schur_cfcm.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "obs/metrics.h"

namespace {

using cfcm::CfcmOptions;
using cfcm::CfcmResult;
using cfcm::Graph;
using cfcm::SelectionMode;
using cfcm::StatusOr;
using cfcm::Timer;
using cfcm::bench::EvaluateCfcc;
using cfcm::bench::LatencyJson;
using cfcm::obs::LatencyHistogram;

struct SelectionRow {
  std::string graph;
  std::string generator;
  std::string algo;
  std::string mode;
  int k = 0;
  cfcm::NodeId n = 0;
  int reps = 0;
  long long rescored = 0;
  long long heap_pops = 0;
  long long forests_reused = 0;
  long long total_forests = 0;
  double seconds = 0.0;  // mean per solve
  double cfcc = 0.0;
  LatencyHistogram::Snapshot latency;  // per-solve end-to-end
};

StatusOr<CfcmResult> Solve(const std::string& algo, const Graph& graph,
                           int k, const CfcmOptions& options) {
  if (algo == "schur") return cfcm::SchurCfcmMaximize(graph, k, options);
  return cfcm::ForestCfcmMaximize(graph, k, options);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  int k = 0;     // 0 = mode default (smoke 8, full 12)
  int reps = 0;  // 0 = mode default (smoke 1, full 3)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json <path>] [--k N] [--reps N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (k <= 0) k = smoke ? 8 : 12;
  if (reps <= 0) reps = smoke ? 1 : 3;

  struct Spec {
    std::string name;
    std::string generator;
    Graph graph;
  };
  std::vector<Spec> specs;
  if (smoke) {
    specs.push_back({"ba1000", "ba:1000,4,1", cfcm::BarabasiAlbert(1000, 4, 1)});
    specs.push_back(
        {"ws1000", "ws:1000,6,0.1,1", cfcm::WattsStrogatz(1000, 6, 0.1, 1)});
  } else {
    specs.push_back({"ba2000", "ba:2000,4,1", cfcm::BarabasiAlbert(2000, 4, 1)});
    specs.push_back(
        {"ws2000", "ws:2000,6,0.1,1", cfcm::WattsStrogatz(2000, 6, 0.1, 1)});
  }
  const std::vector<std::string> algos =
      smoke ? std::vector<std::string>{"forest"}
            : std::vector<std::string>{"forest", "schur"};

  // Solver defaults (= cfcm_cli defaults), not the bench-scale knobs:
  // the lazy layer's decayed-regime calibration was validated against
  // the default sampling schedule, and the comparison needs both modes
  // on the exact configuration users get out of the box.
  CfcmOptions options;
  options.seed = 1;
  options.num_threads = 0;

  std::printf("# bench_selection: exhaustive vs lazy greedy selection\n");
  std::printf("# k=%d reps=%d eps=%g seed=%llu\n", k, reps, options.eps,
              static_cast<unsigned long long>(options.seed));
  std::printf("%-8s %-7s %-11s %9s %7s %7s %8s %9s %9s %8s\n", "graph",
              "algo", "mode", "rescored", "pops", "reused", "forests",
              "seconds", "cfcc", "p50_us");

  std::vector<SelectionRow> rows;
  bool lazy_beats_exhaustive = true;
  for (const Spec& spec : specs) {
    for (const std::string& algo : algos) {
      long long exhaustive_rescored = -1;
      for (const SelectionMode mode :
           {SelectionMode::kExhaustive, SelectionMode::kLazy}) {
        CfcmOptions run_options = options;
        run_options.selection = mode;
        SelectionRow row;
        row.graph = spec.name;
        row.generator = spec.generator;
        row.algo = algo;
        row.mode = cfcm::SelectionModeName(mode);
        row.k = k;
        row.n = spec.graph.num_nodes();
        row.reps = reps;
        LatencyHistogram latency;
        double total_seconds = 0.0;
        CfcmResult last;
        for (int r = 0; r < reps; ++r) {
          Timer timer;
          StatusOr<CfcmResult> solved = Solve(algo, spec.graph, k, run_options);
          if (!solved.ok()) {
            std::fprintf(stderr, "bench_selection: %s/%s/%s failed: %s\n",
                         spec.name.c_str(), algo.c_str(), row.mode.c_str(),
                         solved.status().message().c_str());
            return 1;
          }
          const double micros = timer.Micros();
          latency.Record(static_cast<uint64_t>(micros));
          total_seconds += micros * 1e-6;
          last = std::move(solved).value();
        }
        row.rescored = last.rescored_candidates;
        row.heap_pops = last.heap_pops;
        row.forests_reused = last.forests_reused;
        row.total_forests = last.total_forests;
        row.seconds = total_seconds / reps;
        // Hutchinson+CG referee (dense_threshold=1): both modes are
        // judged by the same external evaluator, not their own samples.
        row.cfcc = EvaluateCfcc(spec.graph, last.selected, /*seed=*/99,
                                /*dense_threshold=*/1);
        row.latency = latency.snapshot();
        std::printf("%-8s %-7s %-11s %9lld %7lld %7lld %8lld %9.3f %9.4f "
                    "%8lld\n",
                    row.graph.c_str(), row.algo.c_str(), row.mode.c_str(),
                    row.rescored, row.heap_pops, row.forests_reused,
                    row.total_forests, row.seconds, row.cfcc,
                    static_cast<long long>(row.latency.Percentile(0.50)));
        rows.push_back(row);

        if (mode == SelectionMode::kExhaustive) {
          exhaustive_rescored = row.rescored;
        } else if (exhaustive_rescored >= 0) {
          const double ratio =
              exhaustive_rescored > 0
                  ? static_cast<double>(row.rescored) / exhaustive_rescored
                  : 1.0;
          std::printf("# %s/%s lazy/exhaustive rescored ratio = %.2f\n",
                      spec.name.c_str(), algo.c_str(), ratio);
          if (row.rescored >= exhaustive_rescored) {
            lazy_beats_exhaustive = false;
            std::fprintf(stderr,
                         "bench_selection: FAIL %s/%s lazy rescored %lld >= "
                         "exhaustive %lld\n",
                         spec.name.c_str(), algo.c_str(), row.rescored,
                         exhaustive_rescored);
          }
        }
      }
    }
  }

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_selection: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"benchmark\": \"selection\",\n  \"smoke\": %s,\n"
                 "  \"k\": %d,\n  \"reps\": %d,\n  \"eps\": %g,\n"
                 "  \"seed\": %llu,\n  \"rows\": [\n",
                 smoke ? "true" : "false", k, reps, options.eps,
                 static_cast<unsigned long long>(options.seed));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SelectionRow& r = rows[i];
      std::fprintf(
          out,
          "    {\"graph\":\"%s\",\"generator\":\"%s\",\"algo\":\"%s\","
          "\"mode\":\"%s\",\"k\":%d,\"n\":%lld,\"reps\":%d,"
          "\"rescored_candidates\":%lld,\"heap_pops\":%lld,"
          "\"forests_reused\":%lld,\"total_forests\":%lld,"
          "\"seconds\":%.6f,\"cfcc\":%.9g,\"latency\":%s}%s\n",
          r.graph.c_str(), r.generator.c_str(), r.algo.c_str(),
          r.mode.c_str(), r.k, static_cast<long long>(r.n), r.reps,
          r.rescored, r.heap_pops, r.forests_reused, r.total_forests,
          r.seconds, r.cfcc, LatencyJson(r.latency).c_str(),
          i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(out, "  ],\n  \"lazy_beats_exhaustive\": %s\n}\n",
                 lazy_beats_exhaustive ? "true" : "false");
    std::fclose(out);
    std::printf("# wrote %zu selection rows to %s\n", rows.size(), json_path);
  }

  if (!lazy_beats_exhaustive) return 1;
  return 0;
}
