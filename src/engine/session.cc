#include "engine/session.h"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <utility>

#include "graph/components.h"

namespace cfcm::engine {

namespace {

// FNV-1a, the standard 64-bit offset basis / prime.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

GraphSession::GraphSession(Graph graph, int num_threads)
    : graph_(std::move(graph)), num_threads_(num_threads) {}

GraphSession::GraphSession(Graph graph, ThreadPool* shared_pool)
    : graph_(std::move(graph)), num_threads_(0), shared_pool_(shared_pool) {}

bool GraphSession::is_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_.has_value()) connected_ = IsConnected(graph_);
  return *connected_;
}

const std::vector<NodeId>& GraphSession::degree_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!degree_order_.has_value()) {
    std::vector<NodeId> order(graph_.num_nodes());
    std::iota(order.begin(), order.end(), NodeId{0});
    std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
      return graph_.degree(a) != graph_.degree(b)
                 ? graph_.degree(a) > graph_.degree(b)
                 : a < b;
    });
    degree_order_ = std::move(order);
  }
  return *degree_order_;
}

const CsrMatrix& GraphSession::laplacian() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!laplacian_.has_value()) {
    const NodeId n = graph_.num_nodes();
    std::vector<std::tuple<int, int, double>> triplets;
    triplets.reserve(static_cast<std::size_t>(n) +
                     graph_.raw_neighbors().size());
    for (NodeId u = 0; u < n; ++u) {
      triplets.emplace_back(u, u, graph_.weighted_degree(u));
      const auto adj = graph_.neighbors(u);
      const auto w = graph_.weights(u);
      for (std::size_t k = 0; k < adj.size(); ++k) {
        triplets.emplace_back(u, adj[k], w.empty() ? -1.0 : -w[k]);
      }
    }
    laplacian_ = CsrMatrix::FromTriplets(n, n, std::move(triplets));
  }
  return *laplacian_;
}

ThreadPool& GraphSession::pool() const {
  if (shared_pool_ != nullptr) return *shared_pool_;
  std::lock_guard<std::mutex> lock(mu_);
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(
        num_threads_ > 0 ? static_cast<std::size_t>(num_threads_) : 0);
  }
  return *pool_;
}

uint64_t GraphSession::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fingerprint_.has_value()) {
    const NodeId n = graph_.num_nodes();
    const EdgeId m = graph_.num_edges();
    uint64_t hash = kFnvOffset;
    hash = FnvMix(hash, &n, sizeof(n));
    hash = FnvMix(hash, &m, sizeof(m));
    hash = FnvMix(hash, graph_.offsets().data(),
                  graph_.offsets().size() * sizeof(EdgeId));
    hash = FnvMix(hash, graph_.raw_neighbors().data(),
                  graph_.raw_neighbors().size() * sizeof(NodeId));
    hash = FnvMix(hash, graph_.raw_weights().data(),
                  graph_.raw_weights().size() * sizeof(double));
    fingerprint_ = hash;
  }
  return *fingerprint_;
}

std::size_t GraphSession::memory_bytes() const {
  const auto n = static_cast<std::size_t>(graph_.num_nodes());
  const std::size_t adjacency = graph_.raw_neighbors().size();  // 2m
  // Graph CSR: offsets + neighbors (+ weights and weighted degrees when
  // conductances are stored).
  std::size_t bytes = (n + 1) * sizeof(EdgeId) + adjacency * sizeof(NodeId);
  if (!graph_.is_unit_weighted()) {
    bytes += adjacency * sizeof(double) + n * sizeof(double);
  }
  // Lazy caches at full materialization: CSR Laplacian (n + 2m entries of
  // value + column index, n + 1 row offsets) and the degree order.
  bytes += (n + adjacency) * (sizeof(double) + sizeof(int)) +
           (n + 1) * sizeof(EdgeId);
  bytes += n * sizeof(NodeId);
  return bytes;
}

}  // namespace cfcm::engine
