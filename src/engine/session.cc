#include "engine/session.h"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <utility>

#include "graph/components.h"

namespace cfcm::engine {

namespace {

// FNV-1a, the standard 64-bit offset basis / prime.
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

GraphSnapshot::GraphSnapshot(Graph graph) : graph_(std::move(graph)) {}

bool GraphSnapshot::is_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_.has_value()) connected_ = IsConnected(graph_);
  return *connected_;
}

const std::vector<NodeId>& GraphSnapshot::degree_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!degree_order_.has_value()) {
    std::vector<NodeId> order(graph_.num_nodes());
    std::iota(order.begin(), order.end(), NodeId{0});
    std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
      return graph_.degree(a) != graph_.degree(b)
                 ? graph_.degree(a) > graph_.degree(b)
                 : a < b;
    });
    degree_order_ = std::move(order);
  }
  return *degree_order_;
}

const CsrMatrix& GraphSnapshot::laplacian() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!laplacian_.has_value()) {
    const NodeId n = graph_.num_nodes();
    std::vector<std::tuple<int, int, double>> triplets;
    triplets.reserve(static_cast<std::size_t>(n) +
                     graph_.raw_neighbors().size());
    for (NodeId u = 0; u < n; ++u) {
      triplets.emplace_back(u, u, graph_.weighted_degree(u));
      const auto adj = graph_.neighbors(u);
      const auto w = graph_.weights(u);
      for (std::size_t k = 0; k < adj.size(); ++k) {
        triplets.emplace_back(u, adj[k], w.empty() ? -1.0 : -w[k]);
      }
    }
    laplacian_ = CsrMatrix::FromTriplets(n, n, std::move(triplets));
  }
  return *laplacian_;
}

uint64_t GraphSnapshot::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fingerprint_.has_value()) {
    const NodeId n = graph_.num_nodes();
    const EdgeId m = graph_.num_edges();
    uint64_t hash = kFnvOffset;
    hash = FnvMix(hash, &n, sizeof(n));
    hash = FnvMix(hash, &m, sizeof(m));
    hash = FnvMix(hash, graph_.offsets().data(),
                  graph_.offsets().size() * sizeof(EdgeId));
    hash = FnvMix(hash, graph_.raw_neighbors().data(),
                  graph_.raw_neighbors().size() * sizeof(NodeId));
    hash = FnvMix(hash, graph_.raw_weights().data(),
                  graph_.raw_weights().size() * sizeof(double));
    fingerprint_ = hash;
  }
  return *fingerprint_;
}

std::size_t EstimateSessionBytes(NodeId n_nodes, EdgeId m_edges,
                                 bool weighted) {
  const auto n = static_cast<std::size_t>(n_nodes);
  const std::size_t adjacency = 2 * static_cast<std::size_t>(m_edges);
  // Graph CSR: offsets + neighbors (+ weights and weighted degrees when
  // conductances are stored).
  std::size_t bytes = (n + 1) * sizeof(EdgeId) + adjacency * sizeof(NodeId);
  if (weighted) {
    bytes += adjacency * sizeof(double) + n * sizeof(double);
  }
  // Lazy caches at full materialization: CSR Laplacian (n + 2m entries of
  // value + column index, n + 1 row offsets) and the degree order.
  bytes += (n + adjacency) * (sizeof(double) + sizeof(int)) +
           (n + 1) * sizeof(EdgeId);
  bytes += n * sizeof(NodeId);
  return bytes;
}

std::size_t GraphSnapshot::memory_bytes() const {
  return EstimateSessionBytes(graph_.num_nodes(), graph_.num_edges(),
                              !graph_.is_unit_weighted());
}

GraphSession::GraphSession(Graph graph, int num_threads)
    : num_threads_(num_threads),
      snapshot_(std::make_shared<const GraphSnapshot>(std::move(graph))) {}

GraphSession::GraphSession(Graph graph, ThreadPool* shared_pool)
    : num_threads_(0),
      shared_pool_(shared_pool),
      snapshot_(std::make_shared<const GraphSnapshot>(std::move(graph))) {}

std::shared_ptr<const GraphSnapshot> GraphSession::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

uint64_t GraphSession::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

GraphSession::VersionedSnapshot GraphSession::versioned_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {snapshot_, epoch_};
}

namespace {

// Warm/staleness state kept per session is bounded: epoch records this
// deep cover any realistic "max_epochs" staleness request.
constexpr std::size_t kEpochHistoryCap = 64;

}  // namespace

StatusOr<GraphSession::VersionedSnapshot> GraphSession::Mutate(
    const GraphDelta& delta) {
  // Mutators serialize on mutate_mu_ so concurrent deltas compose
  // (second applies to first's result, no lost update); readers only
  // contend on mu_ for the pointer swap, never the CSR rebuild.
  std::lock_guard<std::mutex> mutate_lock(mutate_mu_);
  const std::shared_ptr<const GraphSnapshot> current = snapshot();

  // Staleness bound of this transition (needs PRE-delta conductances;
  // see EpochRecord). Only reweight-only deltas are boundable.
  EpochRecord record;
  record.boundable = delta.add_nodes() == 0 && delta.add_edges().empty() &&
                     delta.remove_edges().empty();
  if (record.boundable) {
    for (const auto& e : delta.reweight_edges()) {
      const double old_w = current->graph().EdgeWeight(e.u, e.v);
      if (!(old_w > 0.0)) {
        record.boundable = false;  // missing edge; Apply rejects below
        break;
      }
      const double ratio = e.weight / old_w;
      record.cfcc_lo = std::min(record.cfcc_lo, ratio);
      record.cfcc_hi = std::max(record.cfcc_hi, ratio);
    }
  }

  StatusOr<Graph> next = current->graph().Apply(delta);
  if (!next.ok()) return next.status();
  auto fresh = std::make_shared<const GraphSnapshot>(std::move(*next));
  record.parent_fingerprint = current->fingerprint();

  // Advance the warm state across the delta (classification of the
  // retained forests; serialized with other mutators by mutate_mu_).
  std::shared_ptr<const cfcm::WarmState> advanced;
  {
    std::shared_ptr<const cfcm::WarmState> base;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (warm_.state != nullptr && warm_.target.lock() == current) {
        base = warm_.state;
      }
    }
    if (base != nullptr) {
      advanced = cfcm::AdvanceWarmState(*base, current->graph(), delta);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  snapshot_ = fresh;
  ++epoch_;
  record.epoch = epoch_;
  prev_warm_ = std::move(warm_);  // in-flight jobs pinned on `current`
  warm_ = WarmSlot{fresh, std::move(advanced)};
  history_.push_front(record);
  if (history_.size() > kEpochHistoryCap) history_.pop_back();
  return VersionedSnapshot{std::move(fresh), epoch_};
}

void GraphSession::DepositWarmState(
    const std::shared_ptr<const GraphSnapshot>& target,
    std::shared_ptr<const cfcm::WarmState> state) {
  if (state == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (target == snapshot_) {
    warm_ = WarmSlot{target, std::move(state)};
  } else if (prev_warm_.target.lock() == target) {
    prev_warm_.state = std::move(state);
  }
  // Older targets: the delta summary can no longer be brought current —
  // drop the deposit.
}

std::shared_ptr<const cfcm::WarmState> GraphSession::WarmStateFor(
    const GraphSnapshot* snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (warm_.state != nullptr && warm_.target.lock().get() == snap) {
    return warm_.state;
  }
  if (prev_warm_.state != nullptr && prev_warm_.target.lock().get() == snap) {
    return prev_warm_.state;
  }
  return nullptr;
}

std::vector<GraphSession::EpochRecord> GraphSession::EpochHistory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {history_.begin(), history_.end()};
}

ThreadPool& GraphSession::pool() const {
  if (shared_pool_ != nullptr) return *shared_pool_;
  std::lock_guard<std::mutex> lock(mu_);
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(
        num_threads_ > 0 ? static_cast<std::size_t>(num_threads_) : 0);
  }
  return *pool_;
}

}  // namespace cfcm::engine
