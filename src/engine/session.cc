#include "engine/session.h"

#include <algorithm>
#include <numeric>
#include <tuple>
#include <utility>

#include "graph/components.h"

namespace cfcm::engine {

GraphSession::GraphSession(Graph graph, int num_threads)
    : graph_(std::move(graph)), num_threads_(num_threads) {}

bool GraphSession::is_connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_.has_value()) connected_ = IsConnected(graph_);
  return *connected_;
}

const std::vector<NodeId>& GraphSession::degree_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!degree_order_.has_value()) {
    std::vector<NodeId> order(graph_.num_nodes());
    std::iota(order.begin(), order.end(), NodeId{0});
    std::stable_sort(order.begin(), order.end(), [this](NodeId a, NodeId b) {
      return graph_.degree(a) != graph_.degree(b)
                 ? graph_.degree(a) > graph_.degree(b)
                 : a < b;
    });
    degree_order_ = std::move(order);
  }
  return *degree_order_;
}

const CsrMatrix& GraphSession::laplacian() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!laplacian_.has_value()) {
    const NodeId n = graph_.num_nodes();
    std::vector<std::tuple<int, int, double>> triplets;
    triplets.reserve(static_cast<std::size_t>(n) +
                     graph_.raw_neighbors().size());
    for (NodeId u = 0; u < n; ++u) {
      triplets.emplace_back(u, u, graph_.weighted_degree(u));
      const auto adj = graph_.neighbors(u);
      const auto w = graph_.weights(u);
      for (std::size_t k = 0; k < adj.size(); ++k) {
        triplets.emplace_back(u, adj[k], w.empty() ? -1.0 : -w[k]);
      }
    }
    laplacian_ = CsrMatrix::FromTriplets(n, n, std::move(triplets));
  }
  return *laplacian_;
}

ThreadPool& GraphSession::pool() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(
        num_threads_ > 0 ? static_cast<std::size_t>(num_threads_) : 0);
  }
  return *pool_;
}

}  // namespace cfcm::engine
