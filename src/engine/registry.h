// Solver registry: every CFCM maximization algorithm behind one
// polymorphic, string-keyed interface (DESIGN.md §6).
#ifndef CFCM_ENGINE_REGISTRY_H_
#define CFCM_ENGINE_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cfcm/options.h"
#include "common/status.h"
#include "graph/graph.h"

namespace cfcm::engine {

/// \brief What a solver promises and how it scales.
///
/// Lets callers (CLI, engine, tests) enumerate and pick algorithms
/// without hard-coding the concrete free functions.
struct SolverCapabilities {
  bool optimal = false;      ///< returns the true optimum (exhaustive)
  bool deterministic = false;  ///< output independent of options.seed
  bool randomized = false;   ///< Monte-Carlo; deterministic per seed
  bool approximation_guarantee = false;  ///< (1 - k/((k-1)e) - eps) w.h.p.
  bool lazy_selection = false;  ///< supports CfcmOptions::selection (CELF
                                ///< lazy greedy, DESIGN.md §13)
  std::string complexity;    ///< human-readable cost, e.g. "O(n^3 + k n^2)"
  NodeId max_recommended_n = 0;  ///< soft size ceiling; 0 = no limit
};

/// \brief Uniform result of any registered solver: the union of the
/// per-algorithm result structs. Fields that do not apply to a given
/// algorithm keep their defaults.
struct SolveOutput {
  std::vector<NodeId> selected;    ///< chosen group, greedy/rank order
  double seconds = 0.0;            ///< solver wall time
  std::int64_t total_forests = 0;  ///< forest samplers only
  std::int64_t total_walk_steps = 0;  ///< loop-erased walk steps (samplers)
  int jl_rows = 0;                 ///< JL sketch rows (samplers only)
  int auxiliary_roots = 0;         ///< SchurCFCM |T|
  int solver_calls = 0;            ///< APPROXGREEDY Laplacian systems

  // Selection-layer work counters (lazy_selection solvers; DESIGN.md
  // §13). Exhaustive runs fill rescored_candidates only.
  std::int64_t rescored_candidates = 0;
  std::int64_t heap_pops = 0;
  std::int64_t forests_reused = 0;

  // Incremental warm-start diagnostics (DESIGN.md §16). Only the forest
  // solver running through the warm pipeline ever sets them.
  std::int64_t forests_resampled = 0;
  std::int64_t swap_moves = 0;
  bool warm_started = false;
  bool cold_fallback = false;

  /// Resolved Laplacian kernel ("dense" / "sparse_ldlt" / "cg";
  /// DESIGN.md §14). Empty for solvers that never run exact algebra.
  std::string solver_backend;
};

/// \brief Interface implemented by every maximization algorithm.
///
/// Implementations are stateless adapters over the free functions in
/// src/cfcm/, so Solve() is safe to call concurrently from many jobs;
/// randomized solvers are fully deterministic in options.seed.
class Solver {
 public:
  Solver(std::string name, std::string description, SolverCapabilities caps)
      : name_(std::move(name)),
        description_(std::move(description)),
        capabilities_(std::move(caps)) {}
  virtual ~Solver() = default;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  const SolverCapabilities& capabilities() const { return capabilities_; }

  /// Selects a k-node group on `graph` approximately (or exactly)
  /// maximizing C(S).
  virtual StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                                      const CfcmOptions& options) const = 0;

 private:
  std::string name_;
  std::string description_;
  SolverCapabilities capabilities_;
};

/// \brief Immutable name -> Solver table of all built-in algorithms:
/// "forest", "schur", "exact", "approx", "degree", "topcfcc", "optimum".
class SolverRegistry {
 public:
  /// The process-wide registry (built once, never mutated afterwards).
  static const SolverRegistry& Global();

  /// Registered names, ascending.
  std::vector<std::string> Names() const;

  /// True if `name` is registered.
  bool Contains(const std::string& name) const;

  /// Looks up a solver; NotFound (listing the valid names) otherwise.
  StatusOr<const Solver*> Find(const std::string& name) const;

  /// All solvers, ordered by name. Borrowed pointers, registry-owned.
  const std::vector<std::unique_ptr<Solver>>& solvers() const {
    return solvers_;
  }

 private:
  SolverRegistry();
  std::vector<std::unique_ptr<Solver>> solvers_;  // sorted by name()
};

}  // namespace cfcm::engine

#endif  // CFCM_ENGINE_REGISTRY_H_
