#include "engine/registry.h"

#include <algorithm>
#include <utility>

#include "cfcm/approx_greedy.h"
#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "cfcm/optimum.h"
#include "cfcm/schur_cfcm.h"
#include "common/timer.h"

namespace cfcm::engine {
namespace {

// Above this size the dense O(n^3) paths (exact heuristic ranking) switch
// to their sampled counterparts. See DESIGN.md "Engineering constants".
constexpr NodeId kDenseHeuristicMaxN = 512;

class ForestSolver final : public Solver {
 public:
  ForestSolver()
      : Solver("forest",
               "ForestCFCM (Alg. 3): greedy maximization by spanning "
               "forest sampling",
               {.optimal = false,
                .deterministic = false,
                .randomized = true,
                .approximation_guarantee = true,
                .lazy_selection = true,
                .complexity = "~O(k m eps^-2 log n) expected",
                .max_recommended_n = 0}) {}

  StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                              const CfcmOptions& options) const override {
    StatusOr<CfcmResult> result = ForestCfcmMaximize(graph, k, options);
    if (!result.ok()) return result.status();
    SolveOutput out;
    out.selected = std::move(result->selected);
    out.seconds = result->seconds;
    out.total_forests = result->total_forests;
    out.total_walk_steps = result->total_walk_steps;
    out.jl_rows = result->jl_rows;
    out.rescored_candidates = result->rescored_candidates;
    out.heap_pops = result->heap_pops;
    out.forests_reused = result->forests_reused;
    out.forests_resampled = result->forests_resampled;
    out.swap_moves = result->swap_moves;
    out.warm_started = result->warm_started;
    out.cold_fallback = result->cold_fallback;
    return out;
  }
};

class SchurSolver final : public Solver {
 public:
  SchurSolver()
      : Solver("schur",
               "SchurCFCM (Alg. 5): forest sampling accelerated by a "
               "Schur complement on hub roots",
               {.optimal = false,
                .deterministic = false,
                .randomized = true,
                .approximation_guarantee = true,
                .lazy_selection = true,
                .complexity = "~O(k m eps^-2 log n) expected, smaller "
                              "constants on scale-free graphs",
                .max_recommended_n = 0}) {}

  StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                              const CfcmOptions& options) const override {
    StatusOr<CfcmResult> result = SchurCfcmMaximize(graph, k, options);
    if (!result.ok()) return result.status();
    SolveOutput out;
    out.selected = std::move(result->selected);
    out.seconds = result->seconds;
    out.total_forests = result->total_forests;
    out.total_walk_steps = result->total_walk_steps;
    out.jl_rows = result->jl_rows;
    out.auxiliary_roots = result->auxiliary_roots;
    out.rescored_candidates = result->rescored_candidates;
    out.heap_pops = result->heap_pops;
    out.forests_reused = result->forests_reused;
    return out;
  }
};

class ExactGreedySolver final : public Solver {
 public:
  ExactGreedySolver()
      : Solver("exact",
               "EXACT baseline: greedy via Sherman-Morrison downdates "
               "(dense inverse or factored-solve backend, DESIGN.md §14)",
               {.optimal = false,
                .deterministic = true,
                .randomized = false,
                .approximation_guarantee = true,
                .complexity = "O(n^3 + k n^2) dense; "
                              "O(n (fill + solve) + k n) sparse",
                .max_recommended_n = 0}) {}

  StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                              const CfcmOptions& options) const override {
    StatusOr<ExactGreedyResult> result =
        ExactGreedyMaximize(graph, k, options);
    if (!result.ok()) return result.status();
    SolveOutput out;
    out.selected = std::move(result->selected);
    out.seconds = result->seconds;
    out.solver_backend = SolverBackendName(result->backend);
    return out;
  }
};

class ApproxGreedySolver final : public Solver {
 public:
  ApproxGreedySolver()
      : Solver("approx",
               "APPROXGREEDY baseline (Li et al.): JL-sketched greedy on "
               "Laplacian solves",
               {.optimal = false,
                .deterministic = false,
                .randomized = true,
                .approximation_guarantee = true,
                .complexity = "O(k eps^-2 log n) Laplacian solves",
                .max_recommended_n = 0}) {}

  StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                              const CfcmOptions& options) const override {
    StatusOr<ApproxGreedyResult> result =
        ApproxGreedyMaximize(graph, k, options);
    if (!result.ok()) return result.status();
    SolveOutput out;
    out.selected = std::move(result->selected);
    out.seconds = result->seconds;
    out.solver_calls = result->solver_calls;
    // APPROXGREEDY's Laplacian systems always run matrix-free CG.
    out.solver_backend = SolverBackendName(SolverBackend::kCg);
    return out;
  }
};

class DegreeSolver final : public Solver {
 public:
  DegreeSolver()
      : Solver("degree",
               "DEGREE heuristic: the k nodes of largest (weighted) degree",
               {.optimal = false,
                .deterministic = true,
                .randomized = false,
                .approximation_guarantee = false,
                .complexity = "O(n log n)",
                .max_recommended_n = 0}) {}

  StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                              const CfcmOptions& options) const override {
    (void)options;
    CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
    Timer timer;
    SolveOutput out;
    out.selected = DegreeSelect(graph, k);
    out.seconds = timer.Seconds();
    return out;
  }
};

class TopCfccSolver final : public Solver {
 public:
  TopCfccSolver()
      : Solver("topcfcc",
               "TOP-CFCC heuristic: the k nodes of largest single-node "
               "CFCC (dense when n <= 512, forest-estimated above)",
               {.optimal = false,
                .deterministic = false,
                .randomized = true,
                .approximation_guarantee = false,
                .complexity = "O(n^3) dense / sampled above n = 512",
                .max_recommended_n = 0}) {}

  StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                              const CfcmOptions& options) const override {
    CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
    Timer timer;
    SolveOutput out;
    out.selected = graph.num_nodes() <= kDenseHeuristicMaxN
                       ? TopCfccSelectExact(graph, k)
                       : TopCfccSelectEstimated(graph, k, options);
    out.seconds = timer.Seconds();
    return out;
  }
};

class OptimumSolver final : public Solver {
 public:
  OptimumSolver()
      : Solver("optimum",
               "Exhaustive optimum over all C(n, k) groups (tiny graphs)",
               {.optimal = true,
                .deterministic = true,
                .randomized = false,
                .approximation_guarantee = true,
                .complexity = "O(C(n, k) n^2); rejects n > 128",
                .max_recommended_n = 128}) {}

  StatusOr<SolveOutput> Solve(const Graph& graph, int k,
                              const CfcmOptions& options) const override {
    StatusOr<OptimumResult> result = OptimumSearch(graph, k, options);
    if (!result.ok()) return result.status();
    SolveOutput out;
    out.selected = std::move(result->best);
    out.seconds = result->seconds;
    out.solver_backend = SolverBackendName(result->backend);
    return out;
  }
};

}  // namespace

SolverRegistry::SolverRegistry() {
  solvers_.push_back(std::make_unique<ApproxGreedySolver>());
  solvers_.push_back(std::make_unique<DegreeSolver>());
  solvers_.push_back(std::make_unique<ExactGreedySolver>());
  solvers_.push_back(std::make_unique<ForestSolver>());
  solvers_.push_back(std::make_unique<OptimumSolver>());
  solvers_.push_back(std::make_unique<SchurSolver>());
  solvers_.push_back(std::make_unique<TopCfccSolver>());
  std::sort(solvers_.begin(), solvers_.end(),
            [](const auto& a, const auto& b) { return a->name() < b->name(); });
}

const SolverRegistry& SolverRegistry::Global() {
  static const SolverRegistry* registry = new SolverRegistry();
  return *registry;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(solvers_.size());
  for (const auto& solver : solvers_) names.push_back(solver->name());
  return names;
}

bool SolverRegistry::Contains(const std::string& name) const {
  return std::any_of(solvers_.begin(), solvers_.end(),
                     [&](const auto& s) { return s->name() == name; });
}

StatusOr<const Solver*> SolverRegistry::Find(const std::string& name) const {
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  std::string valid;
  for (const auto& solver : solvers_) {
    if (!valid.empty()) valid += ", ";
    valid += solver->name();
  }
  return Status::NotFound("unknown solver '" + name + "'; valid names: " +
                          valid);
}

}  // namespace cfcm::engine
