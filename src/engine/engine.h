// Batch-serving front end: Solve/Evaluate jobs against one shared
// GraphSession, dispatched through the SolverRegistry (DESIGN.md §6).
#ifndef CFCM_ENGINE_ENGINE_H_
#define CFCM_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "cfcm/edge_addition.h"
#include "cfcm/options.h"
#include "common/status.h"
#include "engine/registry.h"
#include "engine/session.h"
#include "obs/trace.h"

namespace cfcm::engine {

/// Select a k-node group with a named algorithm from the registry.
///
/// Sampling runs on the cached GraphSession pool (the engine injects it
/// via CfcmOptions::pool), and the sampling runtime makes results
/// bitwise independent of the pool size — so there is no per-job thread
/// knob: EngineOptions::num_threads alone decides the parallelism of
/// both the batch and the sampling inside each job.
struct SolveJob {
  std::string algorithm = "forest";  ///< SolverRegistry key
  int k = 1;
  double eps = 0.2;      ///< error parameter (randomized solvers)
  uint64_t seed = 1;     ///< full determinism per seed
  /// Greedy argmax strategy for solvers with the lazy_selection
  /// capability (DESIGN.md §13); others ignore it.
  SelectionMode selection = SelectionMode::kLazy;
  /// Kernel behind the exact Laplacian paths (DESIGN.md §14); sampled
  /// solvers ignore it apart from exact scoring.
  SolverBackend solver_backend = SolverBackend::kAuto;
  /// Warm-start policy (DESIGN.md §16): kOff = plain cold solve (the
  /// default keeps existing behavior byte-identical), kAuto = warm when
  /// the session holds a usable state for the pinned snapshot, kOn =
  /// warm or report cold_fallback. Only the "forest" algorithm with
  /// lazy selection honors it; every lazy forest solve still deposits a
  /// warm state for successors regardless of the mode.
  cfcm::WarmMode warm = cfcm::WarmMode::kOff;
};

/// Evaluate C(S) for a caller-provided group.
struct EvaluateJob {
  std::vector<NodeId> group;
  int probes = 0;     ///< 0 = exact evaluation (dense only up to
                      ///< EngineOptions::exact_eval_max_n remaining
                      ///< nodes; an explicit sparse_ldlt solver_backend
                      ///< lifts the ceiling); > 0 = Hutchinson probing
  uint64_t seed = 1;  ///< probe RNG seed (probes > 0 only)
  /// Kernel for the trace: exact path factors L_{-S} with it, probed
  /// path runs the probes through it (kAuto keeps the pinned defaults:
  /// dense exact below the ceiling, CG probes above).
  SolverBackend solver_backend = SolverBackend::kAuto;
};

/// Greedy edge addition for a fixed group: which k edges, added to the
/// graph, maximize C(S) — the paper's §VI open problem served as a
/// first-class job. Purely computational: the session graph is not
/// modified (the serving layer turns the result into a GraphDelta when
/// the caller asks for it to be applied).
struct AugmentJob {
  std::vector<NodeId> group;
  int k = 1;  ///< number of edges to add
  EdgeCandidates candidates = EdgeCandidates::kToGroup;
  /// Kernel for the maintained inverse (kAny candidates always run
  /// dense). A factor backend widens the admission budget — see
  /// CheckAugmentBudget.
  SolverBackend solver_backend = SolverBackend::kAuto;
};

using Job = std::variant<SolveJob, EvaluateJob, AugmentJob>;

/// Result of a SolveJob: what the solver returned plus the evaluated
/// group centrality.
struct SolveJobResult {
  std::string algorithm;
  SolveOutput output;
  double cfcc = 0.0;  ///< C(S) of output.selected (exact below
                      ///< EngineOptions::exact_eval_max_n, probed above)
};

/// Result of an EvaluateJob.
struct EvaluateJobResult {
  double cfcc = 0.0;
  double trace = 0.0;             ///< Tr(L_{-S}^{-1})
  double trace_std_error = 0.0;   ///< 0 for exact evaluation
  /// Backend that produced the trace ("dense" / "sparse_ldlt" / "cg").
  std::string solver_backend;
};

/// Result of an AugmentJob.
struct AugmentJobResult {
  std::vector<std::pair<NodeId, NodeId>> added;  ///< greedy order, u < v
  std::vector<double> trace_after;  ///< Tr(L'_{-S}^{-1}) after each edge
  double initial_trace = 0.0;       ///< before any addition
  double cfcc_before = 0.0;         ///< n / initial_trace
  double cfcc_after = 0.0;          ///< n / trace_after.back()
  double seconds = 0.0;
  /// Backend that maintained the inverse (resolved).
  std::string solver_backend;
};

using JobResult = std::variant<SolveJobResult, EvaluateJobResult,
                               AugmentJobResult>;

/// Engine-wide policy knobs.
struct EngineOptions {
  int num_threads = 0;  ///< batch pool size; 0 = hardware concurrency

  /// Solve results are scored exactly (dense LDL^T) while the remaining
  /// matrix is at most this large; above it C(S) is Hutchinson-probed.
  NodeId exact_eval_max_n = 512;
  int eval_probes = 64;  ///< probes used above the exact ceiling
                         ///< (values < 1 are clamped to 1 there)

  /// Base unit of the augment admission budget (see CheckAugmentBudget):
  /// a serving daemon must not let one wire request allocate or compute
  /// unboundedly. On the dense backend both the remaining matrix
  /// (n - |S|) and k are capped at this value — GreedyEdgeAddition then
  /// maintains a dense (n - |S|)^2 inverse in O((n-|S|)^3 + k (n-|S|)^2)
  /// time. A factor backend (explicit sparse_ldlt / cg with kToGroup
  /// candidates) never materializes the inverse and admits
  /// kSparseAugmentBudgetFactor x more remaining nodes for the same
  /// knob. Direct GreedyEdgeAddition callers are deliberately
  /// unlimited; cfcm_cli raises the ceiling to 4096 as a trusted local
  /// caller.
  NodeId augment_max_n = 1024;

  /// Base sampling options for every SolveJob; the job's eps / seed
  /// fields override the corresponding members, and the session pool
  /// overrides any `pool` / `num_threads` set here.
  CfcmOptions solver_defaults;
};

/// Factor backends admit this many times more remaining nodes than the
/// dense augment ceiling (their per-round cost is solves, not an
/// O((n-|S|)^2) dense inverse).
inline constexpr NodeId kSparseAugmentBudgetFactor = 32;

/// \brief Admission decision for an augment request — the backend-aware
/// work budget behind EngineOptions::augment_max_n.
///
/// Shared with the serve layer so wire errors can name exactly why a
/// request was refused (backend, remaining size, effective limit).
struct AugmentBudget {
  bool admitted = false;
  SolverBackend backend = SolverBackend::kDense;  ///< resolved kernel
  NodeId remaining = 0;   ///< kept nodes n - |S|
  NodeId limit = 0;       ///< ceiling on `remaining` for that backend
  NodeId k_limit = 0;     ///< ceiling on k (backend-independent)
};

/// Resolves the kernel an augment job would run on (kAny candidates
/// force dense) and checks the request against the budget: remaining
/// <= limit and k <= k_limit, where limit = augment_max_n on dense and
/// augment_max_n * kSparseAugmentBudgetFactor on factor backends.
AugmentBudget CheckAugmentBudget(const EngineOptions& options, NodeId n,
                                 std::size_t group_size, int k,
                                 SolverBackend requested,
                                 EdgeCandidates candidates);

/// \brief Serves job batches against one cached graph session.
///
/// Jobs in a batch run concurrently on the session pool, yet every
/// result is identical to running that job alone: solvers are
/// deterministic per seed and jobs share only immutable state.
///
/// Every job pins the session's current GraphSnapshot for its whole
/// run, so a concurrent GraphSession::Mutate never changes what an
/// in-flight job computes on — results are bit-for-bit those of the
/// snapshot the job started from (DESIGN.md §11).
class Engine {
 public:
  /// Owns a fresh session over `graph`.
  explicit Engine(Graph graph, EngineOptions options = {});

  /// Shares an existing session (several engines / callers may point at
  /// the same loaded graph).
  explicit Engine(std::shared_ptr<GraphSession> session,
                  EngineOptions options = {});

  const GraphSession& session() const { return *session_; }
  const EngineOptions& options() const { return options_; }

  /// Runs one job synchronously on the calling thread, pinned to the
  /// session's current snapshot.
  StatusOr<JobResult> Run(const Job& job) const;

  /// \brief Runs one job against an explicitly pinned snapshot.
  ///
  /// Callers that derive other state from the graph version (the serve
  /// layer keys its result cache by the content fingerprint) pin once
  /// and pass the snapshot here, so the key and the computation are
  /// guaranteed to describe the same graph even while mutations land
  /// concurrently.
  StatusOr<JobResult> Run(const Job& job,
                          const std::shared_ptr<const GraphSnapshot>&
                              snapshot) const;

  /// \brief Same as Run(job, snapshot), optionally traced.
  ///
  /// With a non-null `trace`, per-phase spans ("solver", "score",
  /// "evaluate", "augment") and sampling annotations (forests,
  /// walk_steps) are recorded into it; a null trace costs one branch.
  /// Every Run also feeds the engine.<job>_us latency histograms in the
  /// global metrics registry. Neither path touches the solver's inputs,
  /// so results stay bitwise identical per seed, traced or not.
  StatusOr<JobResult> Run(const Job& job,
                          const std::shared_ptr<const GraphSnapshot>& snapshot,
                          obs::TraceContext* trace) const;

  /// \brief Runs all jobs concurrently on the session pool.
  ///
  /// results[i] corresponds to jobs[i]; apart from wall-time fields each
  /// result matches a sequential Run(jobs[i]) exactly for the same seed,
  /// regardless of scheduling. A failed job yields its error Status
  /// without affecting the other jobs.
  std::vector<StatusOr<JobResult>> RunBatch(const std::vector<Job>& jobs) const;

 private:
  StatusOr<JobResult> RunSolve(
      const SolveJob& job,
      const std::shared_ptr<const GraphSnapshot>& snapshot,
      obs::TraceContext* trace) const;
  StatusOr<JobResult> RunEvaluate(const EvaluateJob& job,
                                  const GraphSnapshot& snapshot,
                                  obs::TraceContext* trace) const;
  StatusOr<JobResult> RunAugment(const AugmentJob& job,
                                 const GraphSnapshot& snapshot,
                                 obs::TraceContext* trace) const;

  /// C(S) plus trace diagnostics for `group` on the pinned `snapshot`;
  /// exact or probed per EngineOptions (see SolveJobResult::cfcc).
  /// `backend` routes the linear algebra (kAuto = pinned defaults).
  StatusOr<EvaluateJobResult> EvaluateGroup(const GraphSnapshot& snapshot,
                                            const std::vector<NodeId>& group,
                                            int probes, uint64_t seed,
                                            SolverBackend backend) const;

  std::shared_ptr<GraphSession> session_;
  EngineOptions options_;
};

}  // namespace cfcm::engine

#endif  // CFCM_ENGINE_ENGINE_H_
