// Graph session: one loaded graph plus cached derived state shared by
// every job served against it (DESIGN.md §6).
#ifndef CFCM_ENGINE_SESSION_H_
#define CFCM_ENGINE_SESSION_H_

#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "linalg/csr.h"

namespace cfcm::engine {

/// \brief A loaded graph plus lazily-built derived state.
///
/// A session outlives any number of jobs on the same graph: expensive
/// derived structures — connectivity, the degree ordering, the sparse
/// Laplacian, the batch worker pool — are built once on first use and
/// then shared, so repeated queries never re-pay setup costs.
///
/// All accessors are thread-safe (lazy construction happens under a
/// mutex) and the underlying Graph is immutable, so one session can
/// serve many concurrent jobs.
class GraphSession {
 public:
  /// Takes ownership of `graph`. `num_threads` sizes the shared pool
  /// (0 = hardware concurrency); the pool itself is created on first use.
  explicit GraphSession(Graph graph, int num_threads = 0);

  const Graph& graph() const { return graph_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }
  EdgeId num_edges() const { return graph_.num_edges(); }
  bool is_weighted() const { return !graph_.is_unit_weighted(); }
  double total_weight() const { return graph_.total_weight(); }

  /// True if the graph is connected (computed once, cached).
  bool is_connected() const;

  /// Node ids by descending degree, ties broken by smaller id (cached).
  const std::vector<NodeId>& degree_order() const;

  /// Sparse weighted Laplacian L = D_w - A_w of the session graph
  /// (cached); the unweighted L = D - A when the graph is unit-weighted.
  const CsrMatrix& laplacian() const;

  /// Shared worker pool, created on first use.
  ThreadPool& pool() const;

 private:
  const Graph graph_;
  const int num_threads_;

  mutable std::mutex mu_;
  mutable std::optional<bool> connected_;
  mutable std::optional<std::vector<NodeId>> degree_order_;
  mutable std::optional<CsrMatrix> laplacian_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cfcm::engine

#endif  // CFCM_ENGINE_SESSION_H_
