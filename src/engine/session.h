// Graph session: one loaded graph plus cached derived state shared by
// every job served against it (DESIGN.md §6).
#ifndef CFCM_ENGINE_SESSION_H_
#define CFCM_ENGINE_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph.h"
#include "linalg/csr.h"

namespace cfcm::engine {

/// \brief A loaded graph plus lazily-built derived state.
///
/// A session outlives any number of jobs on the same graph: expensive
/// derived structures — connectivity, the degree ordering, the sparse
/// Laplacian, the batch worker pool — are built once on first use and
/// then shared, so repeated queries never re-pay setup costs.
///
/// All accessors are thread-safe (lazy construction happens under a
/// mutex) and the underlying Graph is immutable, so one session can
/// serve many concurrent jobs.
class GraphSession {
 public:
  /// Takes ownership of `graph`. `num_threads` sizes the shared pool
  /// (0 = hardware concurrency); the pool itself is created on first use.
  explicit GraphSession(Graph graph, int num_threads = 0);

  /// Variant that runs on a borrowed pool instead of owning one — the
  /// serving catalog creates every session with one shared pool so N
  /// loaded graphs never hold N idle worker sets. `shared_pool` must
  /// outlive the session.
  GraphSession(Graph graph, ThreadPool* shared_pool);

  const Graph& graph() const { return graph_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }
  EdgeId num_edges() const { return graph_.num_edges(); }
  bool is_weighted() const { return !graph_.is_unit_weighted(); }
  double total_weight() const { return graph_.total_weight(); }

  /// True if the graph is connected (computed once, cached).
  bool is_connected() const;

  /// Node ids by descending degree, ties broken by smaller id (cached).
  const std::vector<NodeId>& degree_order() const;

  /// Sparse weighted Laplacian L = D_w - A_w of the session graph
  /// (cached); the unweighted L = D - A when the graph is unit-weighted.
  const CsrMatrix& laplacian() const;

  /// Shared worker pool, created on first use (or the borrowed pool when
  /// the session was constructed with one).
  ThreadPool& pool() const;

  /// \brief 64-bit content fingerprint of the session graph (FNV-1a over
  /// the CSR arrays and conductances), computed once and cached.
  ///
  /// Two sessions over byte-identical graphs share a fingerprint, so it
  /// is the graph component of serving-layer cache keys: per-seed
  /// bitwise-deterministic solves make (fingerprint, algorithm, k, eps,
  /// seed) fully identify a solve result (DESIGN.md §10).
  uint64_t fingerprint() const;

  /// \brief Deterministic resident footprint in bytes: the graph's CSR
  /// arrays plus every lazy cache *as if materialized* (Laplacian,
  /// degree order, connectivity flag).
  ///
  /// Counting caches up front makes the value a pure function of
  /// (n, m, weighted) — the serving catalog charges it against its byte
  /// budget at load time, before any cache is actually built, and the
  /// charge never drifts as caches fill in.
  std::size_t memory_bytes() const;

 private:
  const Graph graph_;
  const int num_threads_;
  ThreadPool* const shared_pool_ = nullptr;  ///< borrowed; owns none

  mutable std::mutex mu_;
  mutable std::optional<bool> connected_;
  mutable std::optional<std::vector<NodeId>> degree_order_;
  mutable std::optional<CsrMatrix> laplacian_;
  mutable std::optional<uint64_t> fingerprint_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace cfcm::engine

#endif  // CFCM_ENGINE_SESSION_H_
