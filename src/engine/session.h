// Graph session: one loaded graph plus cached derived state shared by
// every job served against it. Since DESIGN.md §11 the graph is no
// longer frozen at load time: the session holds a sequence of immutable
// snapshots and Mutate(delta) swaps in the next one.
#ifndef CFCM_ENGINE_SESSION_H_
#define CFCM_ENGINE_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cfcm/incremental.h"
#include "common/thread_pool.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "linalg/csr.h"

namespace cfcm::engine {

/// The deterministic session footprint of a graph with `n` nodes and
/// `m` undirected edges — the closed-form behind
/// GraphSnapshot::memory_bytes(), exposed so the serving catalog can
/// project a mutation's post-delta charge BEFORE paying for the
/// rebuild.
std::size_t EstimateSessionBytes(NodeId n, EdgeId m, bool weighted);

/// \brief One immutable graph version plus its lazily-built derived
/// state (connectivity, degree order, CSR Laplacian, content
/// fingerprint, memory charge).
///
/// A snapshot never changes after construction: mutation produces a NEW
/// snapshot via Graph::Apply, so derived caches are invalidated
/// wholesale by being snapshot-scoped — there is no per-field staleness
/// protocol to get wrong. Jobs pin the snapshot they start on with a
/// shared_ptr and are therefore immune to concurrent mutations.
///
/// All accessors are thread-safe (lazy construction happens under a
/// mutex) and idempotent.
class GraphSnapshot {
 public:
  explicit GraphSnapshot(Graph graph);

  const Graph& graph() const { return graph_; }
  NodeId num_nodes() const { return graph_.num_nodes(); }
  EdgeId num_edges() const { return graph_.num_edges(); }

  /// True if the graph is connected (computed once, cached).
  bool is_connected() const;

  /// Node ids by descending degree, ties broken by smaller id (cached).
  const std::vector<NodeId>& degree_order() const;

  /// Sparse weighted Laplacian L = D_w - A_w of the snapshot graph
  /// (cached); the unweighted L = D - A when the graph is unit-weighted.
  const CsrMatrix& laplacian() const;

  /// \brief 64-bit content fingerprint of the snapshot graph (FNV-1a
  /// over the CSR arrays and conductances), computed once and cached.
  ///
  /// Two snapshots over byte-identical graphs share a fingerprint, so it
  /// is the graph component of serving-layer cache keys: per-seed
  /// bitwise-deterministic solves make (fingerprint, algorithm, k, eps,
  /// seed) fully identify a solve result, across mutations — a mutation
  /// changes the bytes and therefore the key, and reverting restores
  /// both (DESIGN.md §10–11).
  uint64_t fingerprint() const;

  /// \brief Deterministic resident footprint in bytes: the graph's CSR
  /// arrays plus every lazy cache *as if materialized* (Laplacian,
  /// degree order, connectivity flag).
  ///
  /// Counting caches up front makes the value a pure function of
  /// (n, m, weighted) — the serving catalog charges it against its byte
  /// budget before any cache is built, and the charge never drifts as
  /// caches fill in. Mutation re-derives it on the new snapshot, so the
  /// catalog can re-charge exactly.
  std::size_t memory_bytes() const;

 private:
  const Graph graph_;

  mutable std::mutex mu_;
  mutable std::optional<bool> connected_;
  mutable std::optional<std::vector<NodeId>> degree_order_;
  mutable std::optional<CsrMatrix> laplacian_;
  mutable std::optional<uint64_t> fingerprint_;
};

/// \brief A versioned graph plus the worker pool shared by every job
/// served against it (DESIGN.md §6, §11).
///
/// A session outlives any number of jobs: expensive derived structures
/// live on the current GraphSnapshot and are built once on first use,
/// so repeated queries never re-pay setup costs. Mutate(delta) swaps in
/// a new snapshot under the session mutex and bumps the epoch; jobs
/// that pinned the previous snapshot (Engine does this at job start)
/// finish against it untouched, while new jobs observe the new graph.
///
/// The convenience accessors (graph(), laplacian(), ...) read the
/// *current* snapshot. References they return stay valid until the next
/// Mutate — concurrent readers that must survive mutations hold
/// snapshot() instead. The worker pool is epoch-independent and is
/// deliberately NOT invalidated by mutations.
class GraphSession {
 public:
  /// Takes ownership of `graph`. `num_threads` sizes the shared pool
  /// (0 = hardware concurrency); the pool itself is created on first use.
  explicit GraphSession(Graph graph, int num_threads = 0);

  /// Variant that runs on a borrowed pool instead of owning one — the
  /// serving catalog creates every session with one shared pool so N
  /// loaded graphs never hold N idle worker sets. `shared_pool` must
  /// outlive the session.
  GraphSession(Graph graph, ThreadPool* shared_pool);

  /// Pins the current snapshot. Jobs hold the returned shared_ptr for
  /// their whole run: a concurrent Mutate cannot change — or free —
  /// what a pinned job computes on.
  std::shared_ptr<const GraphSnapshot> snapshot() const;

  /// Number of mutations applied so far; bumped by every successful
  /// Mutate. Stale derived values cannot leak across a bump because
  /// they live on the snapshot the epoch identifies.
  uint64_t epoch() const;

  /// A snapshot together with the epoch that produced it.
  struct VersionedSnapshot {
    std::shared_ptr<const GraphSnapshot> snapshot;
    uint64_t epoch = 0;
  };

  /// Atomically pins the current snapshot AND its epoch — one locked
  /// read, so callers reporting both (the serve layer's response
  /// summaries) can never pair epoch N with epoch-N+1 graph state.
  VersionedSnapshot versioned_snapshot() const;

  /// \brief Applies `delta` to the current graph and swaps in the
  /// resulting snapshot (copy-on-write; all-or-nothing).
  ///
  /// On success the epoch is bumped, every snapshot-derived value
  /// (connectivity, degree order, Laplacian, fingerprint, memory_bytes)
  /// is re-derived lazily on the new snapshot, and the INSTALLED
  /// (snapshot, epoch) pair is returned — callers reporting what their
  /// delta produced use it rather than re-reading the session, which a
  /// concurrent mutation may already have moved past. On failure the
  /// session is unchanged. Mutations serialize against each other;
  /// readers are only blocked for the pointer swap, not the rebuild.
  StatusOr<VersionedSnapshot> Mutate(const GraphDelta& delta);

  // ---- convenience accessors over the current snapshot ----
  const Graph& graph() const { return snapshot()->graph(); }
  NodeId num_nodes() const { return snapshot()->num_nodes(); }
  EdgeId num_edges() const { return snapshot()->num_edges(); }
  bool is_weighted() const { return !graph().is_unit_weighted(); }
  double total_weight() const { return graph().total_weight(); }
  bool is_connected() const { return snapshot()->is_connected(); }
  const std::vector<NodeId>& degree_order() const {
    return snapshot()->degree_order();
  }
  const CsrMatrix& laplacian() const { return snapshot()->laplacian(); }
  uint64_t fingerprint() const { return snapshot()->fingerprint(); }
  std::size_t memory_bytes() const { return snapshot()->memory_bytes(); }

  /// Shared worker pool, created on first use (or the borrowed pool when
  /// the session was constructed with one). Survives mutations.
  ThreadPool& pool() const;

  // ---- incremental warm state (DESIGN.md §16) ----

  /// \brief Retains the warm state a solve produced against `target`.
  ///
  /// Kept only while `target` is the current snapshot or the one-deep
  /// predecessor slot's target; a deposit against an older snapshot is
  /// dropped (its delta summary can no longer be brought current).
  void DepositWarmState(const std::shared_ptr<const GraphSnapshot>& target,
                        std::shared_ptr<const cfcm::WarmState> state);

  /// The warm state targeting exactly `snap` (the current snapshot or
  /// the one-deep predecessor), or null. Jobs pass the snapshot they
  /// pinned, so a solve admitted just before a Mutate still finds the
  /// state that matches its graph.
  std::shared_ptr<const cfcm::WarmState> WarmStateFor(
      const GraphSnapshot* snap) const;

  /// \brief One epoch transition's staleness-bound record.
  ///
  /// A reweight-only delta with per-edge conductance ratios
  /// rho_e = w'_e / w_e satisfies a·L ⪯ L' ⪯ b·L with a = min(1, min
  /// rho) and b = max(1, max rho) (Loewner order), hence
  /// C'(S) ∈ [a·C(S), b·C(S)] for every group — the factors compose
  /// multiplicatively across epochs. Structural deltas are not
  /// boundable this way and carry boundable = false.
  struct EpochRecord {
    uint64_t epoch = 0;               ///< the epoch this record created
    uint64_t parent_fingerprint = 0;  ///< fingerprint of epoch - 1
    double cfcc_lo = 1.0;             ///< factor a (≤ 1)
    double cfcc_hi = 1.0;             ///< factor b (≥ 1)
    bool boundable = false;
  };

  /// Recent epoch transitions, newest first (bounded ring). The serve
  /// layer's staleness cache mode walks this to find a ≤E-epoch-old
  /// cached answer and attach the composed bound.
  std::vector<EpochRecord> EpochHistory() const;

 private:
  struct WarmSlot {
    std::weak_ptr<const GraphSnapshot> target;
    std::shared_ptr<const cfcm::WarmState> state;
  };

  const int num_threads_;
  ThreadPool* const shared_pool_ = nullptr;  ///< borrowed; owns none

  mutable std::mutex mu_;         ///< guards snapshot_/epoch_/pool_/warm
  std::mutex mutate_mu_;          ///< serializes mutators (rebuild phase)
  std::shared_ptr<const GraphSnapshot> snapshot_;  ///< never null
  uint64_t epoch_ = 0;
  mutable std::unique_ptr<ThreadPool> pool_;
  WarmSlot warm_;        ///< state for the current snapshot
  WarmSlot prev_warm_;   ///< one-deep predecessor (in-flight warm jobs)
  std::deque<EpochRecord> history_;  ///< newest first, capped
};

}  // namespace cfcm::engine

#endif  // CFCM_ENGINE_SESSION_H_
