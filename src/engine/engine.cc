#include "engine/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "cfcm/cfcc.h"
#include "common/timer.h"
#include "linalg/laplacian.h"
#include "obs/metrics.h"

namespace cfcm::engine {

namespace {

// Group sanity shared by evaluate and augment jobs: in-range, distinct
// ids leaving at least one free node.
Status ValidateGroup(NodeId n, const std::vector<NodeId>& group) {
  if (group.empty()) {
    return Status::InvalidArgument("group must be non-empty");
  }
  if (static_cast<NodeId>(group.size()) >= n) {
    return Status::InvalidArgument("group must leave at least one free node");
  }
  for (NodeId u : group) {
    if (u < 0 || u >= n) {
      return Status::OutOfRange("group node " + std::to_string(u) +
                                " outside [0, " + std::to_string(n) + ")");
    }
  }
  std::vector<NodeId> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("group contains duplicate node ids");
  }
  return Status::Ok();
}

}  // namespace

AugmentBudget CheckAugmentBudget(const EngineOptions& options, NodeId n,
                                 std::size_t group_size, int k,
                                 SolverBackend requested,
                                 EdgeCandidates candidates) {
  AugmentBudget budget;
  budget.remaining = n - static_cast<NodeId>(group_size);
  budget.backend = ResolveSolverBackend(requested, budget.remaining);
  // kAny scans arbitrary off-diagonal M_uv entries: dense only.
  if (candidates == EdgeCandidates::kAny) {
    budget.backend = SolverBackend::kDense;
  }
  budget.limit = budget.backend == SolverBackend::kDense
                     ? options.augment_max_n
                     : options.augment_max_n * kSparseAugmentBudgetFactor;
  budget.k_limit = options.augment_max_n;
  budget.admitted = budget.remaining <= budget.limit &&
                    k <= static_cast<int>(budget.k_limit);
  return budget;
}

Engine::Engine(Graph graph, EngineOptions options)
    : session_(std::make_shared<GraphSession>(std::move(graph),
                                              options.num_threads)),
      options_(std::move(options)) {}

Engine::Engine(std::shared_ptr<GraphSession> session, EngineOptions options)
    : session_(std::move(session)), options_(std::move(options)) {}

StatusOr<JobResult> Engine::Run(const Job& job) const {
  // Pin the snapshot: a concurrent Mutate swaps the session's current
  // snapshot but cannot change (or free) the graph this job runs on.
  return Run(job, session_->snapshot());
}

StatusOr<JobResult> Engine::Run(
    const Job& job,
    const std::shared_ptr<const GraphSnapshot>& snapshot) const {
  return Run(job, snapshot, nullptr);
}

StatusOr<JobResult> Engine::Run(
    const Job& job, const std::shared_ptr<const GraphSnapshot>& snapshot,
    obs::TraceContext* trace) const {
  // Per-kind latency histograms, resolved once per process. Values are
  // microseconds; observation only, never fed back into the job.
  static obs::LatencyHistogram* const solve_us =
      &obs::MetricsRegistry::Global().histogram("engine.solve_us");
  static obs::LatencyHistogram* const evaluate_us =
      &obs::MetricsRegistry::Global().histogram("engine.evaluate_us");
  static obs::LatencyHistogram* const augment_us =
      &obs::MetricsRegistry::Global().histogram("engine.augment_us");

  Timer timer;
  if (const auto* solve = std::get_if<SolveJob>(&job)) {
    auto result = RunSolve(*solve, snapshot, trace);
    solve_us->Record(timer.Micros());
    return result;
  }
  if (const auto* augment = std::get_if<AugmentJob>(&job)) {
    auto result = RunAugment(*augment, *snapshot, trace);
    augment_us->Record(timer.Micros());
    return result;
  }
  auto result = RunEvaluate(std::get<EvaluateJob>(job), *snapshot, trace);
  evaluate_us->Record(timer.Micros());
  return result;
}

std::vector<StatusOr<JobResult>> Engine::RunBatch(
    const std::vector<Job>& jobs) const {
  // Fill per-index slots from the pool, then move into the result vector
  // (StatusOr is not default-constructible, so resize() is unavailable).
  std::vector<std::optional<StatusOr<JobResult>>> slots(jobs.size());
  session_->pool().ParallelFor(jobs.size(), [&](std::size_t i) {
    slots[i].emplace(Run(jobs[i]));
  });
  std::vector<StatusOr<JobResult>> results;
  results.reserve(jobs.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

StatusOr<JobResult> Engine::RunSolve(
    const SolveJob& job,
    const std::shared_ptr<const GraphSnapshot>& snapshot,
    obs::TraceContext* trace) const {
  if (!snapshot->is_connected()) {
    return Status::FailedPrecondition(
        "session graph must be connected and non-empty");
  }
  // Registry lookup even for the warm-routed forest path, so unknown
  // algorithm names fail with the same NotFound either way.
  StatusOr<const Solver*> solver = SolverRegistry::Global().Find(job.algorithm);
  if (!solver.ok()) return solver.status();

  CfcmOptions options = options_.solver_defaults;
  options.eps = job.eps;
  options.seed = job.seed;
  options.selection = job.selection;
  options.solver_backend = job.solver_backend;
  // Sampling reuses the cached session pool; nested ParallelFor is safe
  // (see ThreadPool) and results are invariant to the pool size.
  options.pool = &session_->pool();

  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("solver");
  StatusOr<SolveOutput> output = Status::FailedPrecondition("unset");
  if (job.algorithm == "forest") {
    // The forest solver runs through the incremental pipeline
    // (DESIGN.md §16): it consumes the session's warm state for this
    // exact snapshot (mode permitting) and deposits the successor
    // state for the next solve/mutation, warm or cold.
    std::shared_ptr<const cfcm::WarmState> warm;
    if (job.warm != cfcm::WarmMode::kOff) {
      warm = session_->WarmStateFor(snapshot.get());
    }
    std::shared_ptr<const cfcm::WarmState> deposit;
    StatusOr<CfcmResult> solved = cfcm::ForestSolveWithWarm(
        snapshot->graph(), job.k, options, job.warm, warm, &deposit);
    if (solved.ok()) {
      if (deposit != nullptr) {
        session_->DepositWarmState(snapshot, std::move(deposit));
      }
      SolveOutput out;
      out.selected = std::move(solved->selected);
      out.seconds = solved->seconds;
      out.total_forests = solved->total_forests;
      out.total_walk_steps = solved->total_walk_steps;
      out.jl_rows = solved->jl_rows;
      out.rescored_candidates = solved->rescored_candidates;
      out.heap_pops = solved->heap_pops;
      out.forests_reused = solved->forests_reused;
      out.forests_resampled = solved->forests_resampled;
      out.swap_moves = solved->swap_moves;
      out.warm_started = solved->warm_started;
      out.cold_fallback = solved->cold_fallback;
      output = std::move(out);
    } else {
      output = solved.status();
    }
  } else {
    output = (*solver)->Solve(snapshot->graph(), job.k, options);
  }
  if (trace != nullptr) {
    if (output.ok()) {
      trace->Annotate("forests", output->total_forests);
      trace->Annotate("walk_steps", output->total_walk_steps);
      trace->Annotate("solver_calls", output->solver_calls);
      // Selection-layer work (DESIGN.md §13): 1 = lazy, 0 = exhaustive.
      trace->Annotate("selection",
                      job.selection == SelectionMode::kLazy ? 1 : 0);
      trace->Annotate("rescored_candidates", output->rescored_candidates);
      trace->Annotate("heap_pops", output->heap_pops);
      trace->Annotate("forests_reused", output->forests_reused);
      // Incremental warm-start work (DESIGN.md §16).
      trace->Annotate("warm_started", output->warm_started ? 1 : 0);
      trace->Annotate("cold_fallback", output->cold_fallback ? 1 : 0);
      trace->Annotate("forests_resampled", output->forests_resampled);
      trace->Annotate("swap_moves", output->swap_moves);
      // Resolved exact kernel as its enum ordinal (annotations are
      // integers); absent when the solver never touched the exact paths.
      if (const auto backend = ParseSolverBackend(output->solver_backend)) {
        trace->Annotate("solver_backend", static_cast<int64_t>(*backend));
      }
    }
    trace->EndSpan(span);
  }
  if (!output.ok()) return output.status();

  SolveJobResult result;
  result.algorithm = job.algorithm;
  result.output = std::move(*output);

  // Policy: exact scoring below the ceiling, probed above. At least one
  // probe when probing is required, so a misconfigured eval_probes never
  // turns a finished solve into an evaluation error. An explicit
  // sparse_ldlt backend scores exactly at any size (no dense inverse).
  const NodeId remaining =
      snapshot->num_nodes() -
      static_cast<NodeId>(result.output.selected.size());
  const bool exact_score =
      remaining <= options_.exact_eval_max_n ||
      job.solver_backend == SolverBackend::kSparseLdlt;
  const int probes = exact_score ? 0 : std::max(1, options_.eval_probes);
  std::size_t score_span = 0;
  if (trace != nullptr) score_span = trace->BeginSpan("score");
  StatusOr<EvaluateJobResult> eval = EvaluateGroup(
      *snapshot, result.output.selected, probes, job.seed, job.solver_backend);
  if (trace != nullptr) trace->EndSpan(score_span);
  if (!eval.ok()) return eval.status();
  result.cfcc = eval->cfcc;
  return JobResult(std::move(result));
}

StatusOr<JobResult> Engine::RunEvaluate(const EvaluateJob& job,
                                        const GraphSnapshot& snapshot,
                                        obs::TraceContext* trace) const {
  if (!snapshot.is_connected()) {
    return Status::FailedPrecondition(
        "session graph must be connected and non-empty");
  }
  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("evaluate");
  StatusOr<EvaluateJobResult> eval = EvaluateGroup(
      snapshot, job.group, job.probes, job.seed, job.solver_backend);
  if (trace != nullptr) trace->EndSpan(span);
  if (!eval.ok()) return eval.status();
  return JobResult(std::move(*eval));
}

StatusOr<JobResult> Engine::RunAugment(const AugmentJob& job,
                                       const GraphSnapshot& snapshot,
                                       obs::TraceContext* trace) const {
  // GreedyEdgeAddition re-checks connectivity, but rejecting here keeps
  // the error identical to the other job kinds.
  if (!snapshot.is_connected()) {
    return Status::FailedPrecondition(
        "session graph must be connected and non-empty");
  }
  // Validate the group BEFORE the size gate: duplicate ids would shrink
  // `remaining` below the true kept-node count and bypass the dense-
  // allocation ceiling.
  const NodeId n = snapshot.num_nodes();
  Status group_ok = ValidateGroup(n, job.group);
  if (!group_ok.ok()) return group_ok;
  const AugmentBudget budget =
      CheckAugmentBudget(options_, n, job.group.size(), job.k,
                         job.solver_backend, job.candidates);
  if (!budget.admitted) {
    // Structured refusal: name the backend, sizes and limits so the
    // caller can see which knob to turn (the serve layer re-derives the
    // same budget to attach machine-readable details).
    return Status::InvalidArgument(
        "augment work budget exceeded: backend=" +
        std::string(SolverBackendName(budget.backend)) + " remaining=" +
        std::to_string(budget.remaining) + " (limit " +
        std::to_string(budget.limit) + "), k=" + std::to_string(job.k) +
        " (limit " + std::to_string(budget.k_limit) + "), n=" +
        std::to_string(n) +
        "; request solver_backend=sparse_ldlt for the wider factor budget "
        "or raise augment_max_n");
  }
  CfcmOptions augment_options = options_.solver_defaults;
  augment_options.solver_backend = job.solver_backend;
  augment_options.pool = &session_->pool();
  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("augment");
  StatusOr<EdgeAdditionResult> added =
      GreedyEdgeAddition(snapshot.graph(), job.group, job.k, job.candidates,
                         augment_options);
  if (trace != nullptr) {
    if (added.ok()) {
      trace->Annotate("edges_added",
                      static_cast<int64_t>(added->added.size()));
      trace->Annotate("solver_backend",
                      static_cast<int64_t>(added->backend));
    }
    trace->EndSpan(span);
  }
  if (!added.ok()) return added.status();

  AugmentJobResult result;
  result.solver_backend = SolverBackendName(added->backend);
  result.added = std::move(added->added);
  result.trace_after = std::move(added->trace_after);
  result.initial_trace = added->initial_trace;
  const double nodes = static_cast<double>(n);
  result.cfcc_before =
      result.initial_trace > 0 ? nodes / result.initial_trace : 0.0;
  result.cfcc_after = !result.trace_after.empty() && result.trace_after.back() > 0
                          ? nodes / result.trace_after.back()
                          : result.cfcc_before;
  result.seconds = added->seconds;
  return JobResult(std::move(result));
}

StatusOr<EvaluateJobResult> Engine::EvaluateGroup(
    const GraphSnapshot& snapshot, const std::vector<NodeId>& group,
    int probes, uint64_t seed, SolverBackend backend) const {
  const NodeId n = snapshot.num_nodes();
  Status group_ok = ValidateGroup(n, group);
  if (!group_ok.ok()) return group_ok;

  EvaluateJobResult result;
  if (probes <= 0) {
    const NodeId remaining = n - static_cast<NodeId>(group.size());
    // The dense ceiling guards the default path; an explicit factor
    // backend never allocates the dense inverse and is admitted at any
    // size (DESIGN.md §14).
    const bool factor_backend = backend == SolverBackend::kSparseLdlt ||
                                backend == SolverBackend::kCg;
    if (remaining > options_.exact_eval_max_n && !factor_backend) {
      return Status::InvalidArgument(
          "exact evaluation needs a dense " + std::to_string(remaining) +
          "^2 inverse (ceiling " + std::to_string(options_.exact_eval_max_n) +
          "); set probes > 0 for Hutchinson estimation or request "
          "solver_backend=sparse_ldlt");
    }
    const SolverBackend resolved = ResolveSolverBackend(
        backend == SolverBackend::kAuto ? SolverBackend::kDense : backend,
        remaining);
    auto trace_or = TraceInverseSubmatrix(snapshot.graph(), group, resolved);
    if (!trace_or.ok()) return trace_or.status();
    result.trace = *trace_or;
    result.cfcc = static_cast<double>(n) / result.trace;
    result.solver_backend = SolverBackendName(resolved);
  } else {
    const ApproxCfcc approx =
        ApproximateGroupCfcc(snapshot.graph(), group, probes, seed, backend);
    result.cfcc = approx.cfcc;
    result.trace = approx.trace;
    result.trace_std_error = approx.trace_std_error;
    result.solver_backend = SolverBackendName(
        backend == SolverBackend::kAuto ? SolverBackend::kCg : backend);
  }
  return result;
}

}  // namespace cfcm::engine
