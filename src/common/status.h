// Lightweight Status / StatusOr error-handling primitives (RocksDB/Arrow
// idiom): fallible library entry points return Status or StatusOr<T>
// instead of throwing.
#ifndef CFCM_COMMON_STATUS_H_
#define CFCM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cfcm {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kNumericalError,
};

/// \brief Result of a fallible operation: a code plus a human-readable
/// message. `Status::Ok()` carries no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Short textual form, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Access the value with `value()` (asserts ok) or check `ok()` first.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define CFCM_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::cfcm::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

}  // namespace cfcm

#endif  // CFCM_COMMON_STATUS_H_
