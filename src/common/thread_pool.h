// Nested-safe fixed-size thread pool for forest batches and engine jobs.
#ifndef CFCM_COMMON_THREAD_POOL_H_
#define CFCM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cfcm {

/// \brief Minimal fixed-size worker pool.
///
/// The only pattern the library needs is "run f(i) for i in [0, count) and
/// wait", exposed as ParallelFor. Iteration order inside an executor is
/// unspecified; callers must make their work items independent (forest
/// samples are seeded by index, and the sampling runtime's sharded
/// reduction makes the results bitwise thread-count-invariant on top —
/// see DESIGN.md §9).
///
/// ParallelFor is safe to call from inside a ParallelFor body running on
/// this pool (the engine runs solve jobs on the session pool, and the
/// solvers run their sampling batches on the same pool). The calling
/// thread participates in its own loop and, while waiting for stragglers,
/// helps drain other queued loops instead of blocking a worker — so
/// nested use can never deadlock on pool capacity.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Runs body(index) for every index in [0, count) exactly once,
  /// blocking until all iterations finish. Iterations are distributed
  /// dynamically in chunks; the caller executes chunks too. On a
  /// single-worker pool the loop runs inline on the caller in index
  /// order. `body` must not throw — an escaping exception terminates
  /// the process (the same fail-fast contract as worker-thread
  /// execution has always had).
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

 private:
  // One ParallelFor invocation: a claim cursor plus a completion counter.
  // Workers and helping callers claim chunks with fetch_add; the loop is
  // complete when `done` reaches `count` (claimed chunks may still be
  // executing after the cursor is exhausted).
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
  };

  void WorkerLoop();
  // Claims and runs chunks of `job` until the cursor is exhausted.
  // Returns true if this call completed the job's final iteration.
  static bool DrainJob(Job& job);
  // Removes `job` from the queue if its cursor is exhausted (any thread
  // may notice and erase). Requires mu_ held.
  void EraseIfExhausted(const std::shared_ptr<Job>& job);

  std::vector<std::thread> threads_;
  std::deque<std::shared_ptr<Job>> queue_;  // loops with unclaimed chunks
  std::mutex mu_;
  // Signals new queued work, job completion, and shutdown.
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace cfcm

#endif  // CFCM_COMMON_THREAD_POOL_H_
