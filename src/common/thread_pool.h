// Fixed-size thread pool for pleasingly-parallel forest batches.
#ifndef CFCM_COMMON_THREAD_POOL_H_
#define CFCM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cfcm {

/// \brief Minimal fixed-size worker pool.
///
/// The only pattern the library needs is "run f(i) for i in [0, count) on
/// all workers and wait", exposed as ParallelFor. Task order inside a
/// worker is unspecified; callers must make their work items independent
/// (forest samples are seeded by index, so results are deterministic).
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Runs body(index) for every index in [0, count), blocking until all
  /// iterations finish. Iterations are distributed dynamically in chunks.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// Runs body(worker_id) once on each worker and waits. Useful for
  /// merging per-worker accumulators.
  void RunPerWorker(const std::function<void(std::size_t)>& body);

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);
  void Wait();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace cfcm

#endif  // CFCM_COMMON_THREAD_POOL_H_
