#include "common/rng.h"

namespace cfcm {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

Rng::Rng(uint64_t seed, uint64_t stream)
    : Rng(seed ^ (0x9e3779b97f4a7c15ULL + stream * 0xda942042e4dd58b5ULL)) {}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint32_t Rng::NextBounded(uint32_t bound) {
  // Lemire (2019): multiply a 32-bit draw by `bound` and keep the high
  // word; reject the short interval that would bias small residues.
  uint64_t m = static_cast<uint64_t>(static_cast<uint32_t>(Next())) * bound;
  auto lo = static_cast<uint32_t>(m);
  if (lo < bound) {
    const uint32_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<uint64_t>(static_cast<uint32_t>(Next())) * bound;
      lo = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

}  // namespace cfcm
