// Wall-clock timing helper used by benches and adaptive samplers.
#ifndef CFCM_COMMON_TIMER_H_
#define CFCM_COMMON_TIMER_H_

#include <chrono>

namespace cfcm {

/// \brief Monotonic wall-clock stopwatch.
///
/// Starts running on construction; `Restart()` resets the origin and
/// `Seconds()` reports the elapsed time without stopping the clock.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the elapsed time to zero.
  void Restart();

  /// Elapsed wall-clock seconds since construction or last Restart().
  double Seconds() const;

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cfcm

#endif  // CFCM_COMMON_TIMER_H_
