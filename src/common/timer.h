// Monotonic (steady_clock) timing helpers used by benches, adaptive
// samplers, and the observability instrumentation. Nothing here reads
// the wall clock — measurements must not move when NTP steps the clock.
#ifndef CFCM_COMMON_TIMER_H_
#define CFCM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cfcm {

/// \brief Monotonic stopwatch.
///
/// Starts running on construction; `Restart()` resets the origin and
/// `Seconds()` reports the elapsed time without stopping the clock.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the elapsed time to zero.
  void Restart();

  /// Elapsed monotonic seconds since construction or last Restart().
  double Seconds() const;

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed whole nanoseconds / microseconds — the integer forms the
  /// observability layer records into histograms.
  int64_t Nanos() const;
  int64_t Micros() const { return Nanos() / 1000; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Nanoseconds on the monotonic clock since an arbitrary fixed origin.
/// Only differences between two calls are meaningful.
int64_t MonotonicNanos();

/// \brief Records a scope's duration into an int64 sink on destruction.
///
/// The sink outlives the timer by contract; units are nanoseconds.
///   { ScopedTimer t(&read_ns); ReadRequest(); }  // read_ns now set
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink_ns) : sink_ns_(sink_ns) {}
  ~ScopedTimer() {
    if (sink_ns_ != nullptr) *sink_ns_ += timer_.Nanos();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_ns_;
  Timer timer_;
};

}  // namespace cfcm

#endif  // CFCM_COMMON_TIMER_H_
