// Small string-parsing helpers shared by the graph spec loader and the
// command-line tools (one implementation of strict number parsing and
// separator splitting instead of per-tool copies).
#ifndef CFCM_COMMON_PARSE_H_
#define CFCM_COMMON_PARSE_H_

#include <string>
#include <vector>

namespace cfcm {

/// Splits on `sep`, dropping empty pieces ("a,,b" -> {"a","b"}).
std::vector<std::string> SplitString(const std::string& s, char sep);

/// Strict base-10 integer parse: the whole string must be the number.
bool ParseInt64(const std::string& s, long long* out);

/// Strict double parse: the whole string must be the number.
bool ParseFloat64(const std::string& s, double* out);

}  // namespace cfcm

#endif  // CFCM_COMMON_PARSE_H_
