// Static build identification surfaced by the `stats` op and the admin
// plane's /statusz endpoint. Deliberately excludes build timestamps so
// binaries stay reproducible.
#ifndef CFCM_COMMON_BUILD_INFO_H_
#define CFCM_COMMON_BUILD_INFO_H_

namespace cfcm {

struct BuildInfo {
  const char* version;       ///< repo version, e.g. "0.9.0"
  const char* compiler;      ///< toolchain family + version string
  const char* build_type;    ///< "release" (NDEBUG) or "debug"
  const char* cxx_standard;  ///< language level, e.g. "c++20"
};

const BuildInfo& GetBuildInfo();

}  // namespace cfcm

#endif  // CFCM_COMMON_BUILD_INFO_H_
