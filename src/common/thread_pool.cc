#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace cfcm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::DrainJob(Job& job) {
  bool finished = false;
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.chunk);
    if (begin >= job.count) break;
    const std::size_t end = std::min(job.count, begin + job.chunk);
    // Bodies must not throw. Pre-rewrite, every body ran on a worker
    // thread where an escaping exception hit std::terminate; keep that
    // fail-fast contract now that bodies also run on caller stacks —
    // unwinding here would destroy `body` under concurrent executors
    // (use-after-free) or leave `done` short forever (a hang).
    try {
      for (std::size_t i = begin; i < end; ++i) (*job.body)(i);
    } catch (...) {
      std::terminate();
    }
    // The final fetch_add's release sequence makes every iteration's
    // writes visible to whoever observes done == count.
    if (job.done.fetch_add(end - begin) + (end - begin) == job.count) {
      finished = true;
    }
  }
  return finished;
}

void ThreadPool::EraseIfExhausted(const std::shared_ptr<Job>& job) {
  if (job->next.load(std::memory_order_relaxed) < job->count) return;
  auto it = std::find(queue_.begin(), queue_.end(), job);
  if (it != queue_.end()) queue_.erase(it);
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    std::shared_ptr<Job> job = queue_.front();
    lock.unlock();
    const bool finished = DrainJob(*job);
    lock.lock();
    EraseIfExhausted(job);
    if (finished) cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || threads_.size() == 1) {
    // Single-worker pools (and single iterations) run inline on the
    // caller: exact index order, zero synchronization.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->count = count;
  // Dynamic chunking: executors pull ranges off a shared cursor so uneven
  // per-iteration cost (forest sizes vary wildly) stays balanced.
  job->chunk = std::max<std::size_t>(1, count / ((threads_.size() + 1) * 8));
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(job);
  }
  cv_.notify_all();

  // The caller claims chunks too — this is what makes nested ParallelFor
  // deadlock-free: an occupied worker finishes its own nested loop even
  // when every other worker is busy.
  if (DrainJob(*job)) {
    std::lock_guard<std::mutex> lock(mu_);
    EraseIfExhausted(job);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  EraseIfExhausted(job);
  while (job->done.load(std::memory_order_acquire) < job->count) {
    if (!queue_.empty()) {
      // Stragglers of this loop are running elsewhere; help another
      // queued loop instead of sleeping on a worker-sized resource.
      std::shared_ptr<Job> other = queue_.front();
      lock.unlock();
      const bool other_finished = DrainJob(*other);
      lock.lock();
      EraseIfExhausted(other);
      if (other_finished) cv_.notify_all();
    } else {
      cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) >= job->count ||
               !queue_.empty();
      });
    }
  }
}

}  // namespace cfcm
