#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace cfcm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++in_flight_;
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || threads_.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Dynamic chunking: workers pull ranges off a shared cursor so uneven
  // per-iteration cost (forest sizes vary wildly) stays balanced.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (threads_.size() * 8));
  const std::size_t num_tasks = std::min(threads_.size(), count);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    Submit([cursor, chunk, count, &body] {
      for (;;) {
        const std::size_t begin = cursor->fetch_add(chunk);
        if (begin >= count) return;
        const std::size_t end = std::min(count, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  Wait();
}

void ThreadPool::RunPerWorker(const std::function<void(std::size_t)>& body) {
  const std::size_t n = threads_.size();
  for (std::size_t t = 0; t < n; ++t) {
    Submit([t, &body] { body(t); });
  }
  Wait();
}

}  // namespace cfcm
