// Fast deterministic random number generation.
//
// Forest sampling draws billions of uniform neighbor indices, so the RNG is
// on the hottest path of the whole library. We use xoshiro256++ seeded via
// SplitMix64; every sampled forest gets its own stream derived from
// (base_seed, forest_index) so results are reproducible regardless of the
// number of worker threads.
#ifndef CFCM_COMMON_RNG_H_
#define CFCM_COMMON_RNG_H_

#include <cstdint>

namespace cfcm {

/// SplitMix64 step; used for seeding and cheap hashing.
uint64_t SplitMix64(uint64_t* state);

/// \brief xoshiro256++ pseudo-random generator.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions in non-critical code.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Deterministic per-stream constructor: mixes `seed` and `stream` so
  /// that streams with the same seed but different indices are independent.
  Rng(uint64_t seed, uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniform random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (no modulo bias).
  uint32_t NextBounded(uint32_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fair coin; used by JL sketches (+1/-1 entries).
  bool NextBool() { return (Next() >> 63) != 0; }

 private:
  uint64_t s_[4];
};

}  // namespace cfcm

#endif  // CFCM_COMMON_RNG_H_
