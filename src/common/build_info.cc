#include "common/build_info.h"

namespace cfcm {

namespace {

#if defined(__clang__)
constexpr const char* kCompiler = "clang " __clang_version__;
#elif defined(__GNUC__)
constexpr const char* kCompiler = "gcc " __VERSION__;
#else
constexpr const char* kCompiler = "unknown";
#endif

#if defined(NDEBUG)
constexpr const char* kBuildType = "release";
#else
constexpr const char* kBuildType = "debug";
#endif

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{"0.9.0", kCompiler, kBuildType, "c++20"};
  return info;
}

}  // namespace cfcm
