#include "common/parse.h"

#include <cerrno>
#include <cstdlib>

namespace cfcm {

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

bool ParseInt64(const std::string& s, long long* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end && *end == '\0' && !s.empty() && errno == 0;
}

bool ParseFloat64(const std::string& s, double* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtod(s.c_str(), &end);
  return end && *end == '\0' && !s.empty() && errno == 0;
}

}  // namespace cfcm
