#include "common/timer.h"

namespace cfcm {

void Timer::Restart() { start_ = std::chrono::steady_clock::now(); }

double Timer::Seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

}  // namespace cfcm
