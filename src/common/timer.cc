#include "common/timer.h"

namespace cfcm {

void Timer::Restart() { start_ = std::chrono::steady_clock::now(); }

double Timer::Seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

int64_t Timer::Nanos() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
      .count();
}

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace cfcm
