#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#ifdef __linux__
#include <unistd.h>
#endif

#include "obs/log.h"

namespace cfcm::obs {

namespace {

int64_t NowMonoNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int64_t ProcessStartMonoNs() {
  static const int64_t start = NowMonoNs();
  return start;
}

int64_t ProcessUptimeSeconds() {
  return (NowMonoNs() - ProcessStartMonoNs()) / 1'000'000'000;
}

int64_t ProcessRssBytes() {
#ifdef __linux__
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return -1;
  long size_pages = 0;
  long rss_pages = 0;
  const int fields = std::fscanf(statm, "%ld %ld", &size_pages, &rss_pages);
  std::fclose(statm);
  if (fields != 2) return -1;
  return rss_pages * sysconf(_SC_PAGESIZE);
#else
  return -1;
#endif
}

bool ParseSloSpec(std::string_view spec, std::vector<SloObjective>* out,
                  std::string* error) {
  std::vector<SloObjective> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) {
      if (spec.empty()) break;  // empty spec: no objectives
      if (error != nullptr) *error = "empty objective in --slo spec";
      return false;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 == item.size()) {
      if (error != nullptr) {
        *error = "expected op=threshold, got '" + std::string(item) + "'";
      }
      return false;
    }
    const std::string_view op = item.substr(0, eq);
    std::string_view value = item.substr(eq + 1);
    int64_t scale_us = 1000;  // bare numbers are milliseconds
    if (value.size() > 2 && value.substr(value.size() - 2) == "us") {
      scale_us = 1;
      value.remove_suffix(2);
    } else if (value.size() > 2 && value.substr(value.size() - 2) == "ms") {
      scale_us = 1000;
      value.remove_suffix(2);
    } else if (value.size() > 1 && value.back() == 's') {
      scale_us = 1'000'000;
      value.remove_suffix(1);
    }
    int64_t number = 0;
    for (const char c : value) {
      if (c < '0' || c > '9') {
        if (error != nullptr) {
          *error = "bad threshold '" + std::string(item.substr(eq + 1)) +
                   "' (want integer with optional us/ms/s suffix)";
        }
        return false;
      }
      number = number * 10 + (c - '0');
    }
    if (value.empty() || number <= 0) {
      if (error != nullptr) {
        *error = "threshold must be positive in '" + std::string(item) + "'";
      }
      return false;
    }
    for (const SloObjective& existing : parsed) {
      if (existing.op == op) {
        if (error != nullptr) {
          *error = "duplicate op '" + std::string(op) + "' in --slo spec";
        }
        return false;
      }
    }
    parsed.push_back(SloObjective{std::string(op), number * scale_us});
    if (end == spec.size()) break;
  }
  if (out != nullptr) *out = std::move(parsed);
  return true;
}

SloTracker::SloTracker(std::vector<SloObjective> objectives, Options options)
    : options_(options) {
  ops_.reserve(objectives.size());
  for (SloObjective& objective : objectives) {
    const std::string base = "serve.slo." + objective.op;
    MetricsRegistry& registry = MetricsRegistry::Global();
    PerOp per_op{std::move(objective),
                 &registry.counter(base + ".good"),
                 &registry.counter(base + ".total"),
                 &registry.gauge(base + ".burn_short_milli"),
                 &registry.gauge(base + ".burn_long_milli"),
                 {},
                 false};
    ops_.push_back(std::move(per_op));
  }
}

std::vector<SloObjective> SloTracker::objectives() const {
  std::vector<SloObjective> out;
  out.reserve(ops_.size());
  for (const PerOp& per_op : ops_) out.push_back(per_op.objective);
  return out;
}

void SloTracker::Record(std::string_view op, int64_t latency_us, bool ok) {
  for (PerOp& per_op : ops_) {
    if (per_op.objective.op != op) continue;
    per_op.total_counter->Add(1);
    if (ok && latency_us <= per_op.objective.threshold_us) {
      per_op.good_counter->Add(1);
    }
    return;
  }
}

double SloTracker::WindowBurn(const std::deque<Sample>& history,
                              const Sample& now, int64_t window_ns,
                              double error_budget) {
  if (error_budget <= 0) return 0.0;
  // Baseline = newest sample at or before the window start; with no
  // history that old, the oldest sample we have (the window simply
  // hasn't filled yet).
  const int64_t window_start = now.mono_ns - window_ns;
  const Sample* baseline = nullptr;
  for (const Sample& sample : history) {
    if (sample.mono_ns <= window_start) {
      baseline = &sample;
    } else {
      break;
    }
  }
  if (baseline == nullptr) {
    baseline = history.empty() ? nullptr : &history.front();
  }
  const uint64_t base_good = baseline != nullptr ? baseline->good : 0;
  const uint64_t base_total = baseline != nullptr ? baseline->total : 0;
  if (now.total <= base_total) return 0.0;
  const uint64_t total = now.total - base_total;
  const uint64_t good = now.good > base_good ? now.good - base_good : 0;
  const double bad_fraction =
      static_cast<double>(total - std::min(good, total)) /
      static_cast<double>(total);
  return bad_fraction / error_budget;
}

void SloTracker::Tick(int64_t mono_ns) {
  if (ops_.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t long_window_ns = options_.long_window_s * 1'000'000'000;
  const int64_t short_window_ns = options_.short_window_s * 1'000'000'000;
  for (PerOp& per_op : ops_) {
    Sample now{mono_ns, per_op.good_counter->value(),
               per_op.total_counter->value()};
    const double burn_short =
        WindowBurn(per_op.history, now, short_window_ns, options_.error_budget);
    const double burn_long =
        WindowBurn(per_op.history, now, long_window_ns, options_.error_budget);
    per_op.burn_short->Set(std::llround(burn_short * 1000.0));
    per_op.burn_long->Set(std::llround(burn_long * 1000.0));

    per_op.history.push_back(now);
    // Keep one sample older than the long window so its baseline stays
    // exact; everything older than that is dead weight.
    const int64_t horizon = mono_ns - long_window_ns;
    while (per_op.history.size() > 1 && per_op.history[1].mono_ns <= horizon) {
      per_op.history.pop_front();
    }

    const bool burning = burn_short >= options_.alert_burn &&
                         burn_long >= options_.alert_burn;
    if (burning && !per_op.alerting) {
      LogEvent(LogLevel::kWarn, "slo_burn")
          .Str("op", per_op.objective.op)
          .Int("threshold_us", per_op.objective.threshold_us)
          .Int("burn_short_milli", std::llround(burn_short * 1000.0))
          .Int("burn_long_milli", std::llround(burn_long * 1000.0))
          .Double("error_budget", options_.error_budget);
    }
    per_op.alerting = burning;
  }
}

Watchdog::Watchdog(Options options)
    : options_(options),
      rss_gauge_(&MetricsRegistry::Global().gauge("process.rss_bytes")),
      uptime_gauge_(&MetricsRegistry::Global().gauge("process.uptime_s")) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::AddSampler(std::string name, std::function<void()> sampler) {
  samplers_.emplace_back(std::move(name), std::move(sampler));
}

void Watchdog::Start() {
  if (options_.interval_ms <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void Watchdog::TickOnce() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  const int64_t rss = ProcessRssBytes();
  if (rss >= 0) rss_gauge_->Set(rss);
  uptime_gauge_->Set(ProcessUptimeSeconds());
  for (const auto& [name, sampler] : samplers_) sampler();
  MetricsRegistry::Global().counter("obs.watchdog.ticks").Add(1);
  ticks_.fetch_add(1, std::memory_order_relaxed);
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    TickOnce();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
  }
}

}  // namespace cfcm::obs
