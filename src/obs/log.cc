#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>

namespace cfcm::obs {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

void AppendEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string WallClockTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_utc{};
#if defined(_WIN32)
  gmtime_s(&tm_utc, &secs);
#else
  gmtime_r(&secs, &tm_utc);
#endif
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                static_cast<int>(millis));
  return buf;
}

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogEvent::LogEvent(LogLevel level, std::string_view event)
    : enabled_(level != LogLevel::kOff &&
               static_cast<int>(level) >=
                   g_min_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  line_.reserve(160);
  line_ += "{\"ts\":\"";
  line_ += WallClockTimestamp();
  // The wall clock can step (NTP); mono_ns orders lines reliably and
  // lives on the same clock as trace span offsets.
  char mono[40];
  std::snprintf(mono, sizeof(mono), "\",\"mono_ns\":%" PRId64,
                MonotonicNanos());
  line_ += mono;
  line_ += ",\"level\":\"";
  line_ += LogLevelName(level);
  line_ += "\",\"event\":\"";
  AppendEscaped(&line_, event);
  line_ += '"';
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_ += "}\n";
  // Single fwrite keeps concurrent workers' lines whole (stderr is
  // unbuffered but POSIX write atomicity is what we actually rely on).
  std::fwrite(line_.data(), 1, line_.size(), stderr);
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  line_ += ",\"";
  AppendEscaped(&line_, key);
  line_ += "\":\"";
  AppendEscaped(&line_, value);
  line_ += '"';
  return *this;
}

LogEvent& LogEvent::Int(std::string_view key, int64_t value) {
  if (!enabled_) return *this;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  line_ += ",\"";
  AppendEscaped(&line_, key);
  line_ += "\":";
  line_ += buf;
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  if (!enabled_) return *this;
  line_ += ",\"";
  AppendEscaped(&line_, key);
  line_ += "\":";
  line_ += value ? "true" : "false";
  return *this;
}

LogEvent& LogEvent::Double(std::string_view key, double value) {
  if (!enabled_) return *this;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  line_ += ",\"";
  AppendEscaped(&line_, key);
  line_ += "\":";
  line_ += buf;
  return *this;
}

}  // namespace cfcm::obs
