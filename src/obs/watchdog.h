// Resource watchdog and SLO burn tracking (DESIGN.md §15).
//
// Watchdog: a background thread that samples process/runtime state into
// registry gauges every interval — built-ins (RSS, uptime) plus caller-
// registered sampler callbacks, which is how the serving layer feeds
// queue depth, catalog bytes, cache occupancy and per-session epochs in
// without obs/ knowing anything about serve/. TickOnce() runs one
// sampling pass synchronously, so the admin plane can refresh every
// gauge right before rendering /metrics (scrape-fresh values, and tests
// need no sleeps).
//
// SloTracker: per-op latency objectives ("solve in 50ms") recorded as
// good/total counters on the hot path, with burn rates computed on the
// watchdog tick over a short and a long trailing window:
//   burn = (bad fraction over window) / error_budget
// burn 1.0 means the op is consuming its budget exactly as fast as
// allowed; both windows >= alert threshold emits one edge-triggered
// warn-level "slo_burn" log. The two-window form is the standard
// burn-rate alert shape: the short window makes alerts fast, the long
// window keeps one latency blip from paging anyone.
#ifndef CFCM_OBS_WATCHDOG_H_
#define CFCM_OBS_WATCHDOG_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cfcm::obs {

/// Monotonic nanosecond timestamp of the first call (process start as
/// far as observability is concerned; anchored explicitly by the daemon
/// and the serve handler at construction).
int64_t ProcessStartMonoNs();
/// Whole seconds elapsed since ProcessStartMonoNs' capture.
int64_t ProcessUptimeSeconds();
/// Resident set size in bytes via /proc/self/statm; -1 when unavailable.
int64_t ProcessRssBytes();

/// One per-op latency objective: requests slower than threshold_us (or
/// failed) consume error budget.
struct SloObjective {
  std::string op;
  int64_t threshold_us = 0;
};

/// Parses "--slo solve=50ms,mutate=2s" specs. Accepted value suffixes:
/// us, ms (default for bare numbers), s. Returns false and fills *error
/// on malformed input, duplicate ops, or non-positive thresholds.
bool ParseSloSpec(std::string_view spec, std::vector<SloObjective>* out,
                  std::string* error);

/// \brief Good/total SLO counters with multi-window burn-rate gauges.
///
/// Record() is the hot path (two lock-free counter bumps); Tick() is
/// called by the watchdog, maintains the trailing sample history, and
/// publishes `serve.slo.<op>.burn_{short,long}_milli` gauges (burn rate
/// x1000). Thread-safe.
class SloTracker {
 public:
  struct Options {
    double error_budget = 0.01;  ///< tolerated bad-request fraction
    int64_t short_window_s = 60;
    int64_t long_window_s = 300;
    double alert_burn = 1.0;  ///< warn-log when both windows reach this
  };

  // Split default: GCC rejects `Options options = {}` for a nested
  // aggregate with member initializers inside the enclosing class.
  explicit SloTracker(std::vector<SloObjective> objectives)
      : SloTracker(std::move(objectives), Options()) {}
  SloTracker(std::vector<SloObjective> objectives, Options options);

  bool enabled() const { return !ops_.empty(); }
  std::vector<SloObjective> objectives() const;

  /// Scores one request against its op's objective (no-op for ops
  /// without one). A request is good when it succeeded AND met the
  /// latency threshold.
  void Record(std::string_view op, int64_t latency_us, bool ok);

  /// Appends one (good, total) sample at `mono_ns`, recomputes both
  /// window burn rates per op, publishes the gauges, and emits the
  /// edge-triggered "slo_burn" warn log.
  void Tick(int64_t mono_ns);

 private:
  struct Sample {
    int64_t mono_ns = 0;
    uint64_t good = 0;
    uint64_t total = 0;
  };
  struct PerOp {
    SloObjective objective;
    Counter* good_counter;
    Counter* total_counter;
    Gauge* burn_short;
    Gauge* burn_long;
    std::deque<Sample> history;  // guarded by mu_
    bool alerting = false;       // guarded by mu_
  };

  static double WindowBurn(const std::deque<Sample>& history,
                           const Sample& now, int64_t window_ns,
                           double error_budget);

  const Options options_;
  std::vector<PerOp> ops_;
  std::mutex mu_;  // serializes Tick (history + alert edge state)
};

/// \brief Background gauge sampler with a synchronous TickOnce.
///
/// Built-ins: `process.rss_bytes`, `process.uptime_s` gauges and an
/// `obs.watchdog.ticks` counter. AddSampler registers additional
/// callbacks (run on every tick, registration must finish before
/// Start). Start spawns the sampling thread when interval_ms > 0;
/// TickOnce works either way and is safe concurrently with the thread.
class Watchdog {
 public:
  struct Options {
    int interval_ms = 1000;  ///< <= 0: no thread, sample via TickOnce only
  };

  Watchdog() : Watchdog(Options()) {}
  explicit Watchdog(Options options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers a sampler; must not be called after Start. Samplers must
  /// not throw.
  void AddSampler(std::string name, std::function<void()> sampler);

  void Start();
  void Stop();  ///< idempotent; joins the sampling thread

  /// One synchronous sampling pass (built-ins + registered samplers).
  void TickOnce();

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  const Options options_;
  std::vector<std::pair<std::string, std::function<void()>>> samplers_;
  Gauge* const rss_gauge_;
  Gauge* const uptime_gauge_;
  std::atomic<uint64_t> ticks_{0};

  std::mutex tick_mu_;  // TickOnce callers vs. the sampling thread
  std::mutex mu_;       // thread lifecycle
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_ = false;
};

}  // namespace cfcm::obs

#endif  // CFCM_OBS_WATCHDOG_H_
