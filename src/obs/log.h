// Structured single-line JSON logging to stderr (DESIGN.md §12).
//
// One line per event:
//   {"ts":"...","mono_ns":N,"level":"info","event":"request",...}.
// Fields are emitted in insertion order after ts/mono_ns/level/event,
// values are JSON-escaped, and the whole line is written with a single
// fwrite so concurrent workers never interleave mid-line. `ts` is the
// wall clock (system_clock) because log lines are correlated with the
// outside world; `mono_ns` is the monotonic clock, immune to NTP steps,
// so lines order reliably and correlate with trace span offsets.
#ifndef CFCM_OBS_LOG_H_
#define CFCM_OBS_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace cfcm::obs {

enum class LogLevel { kDebug = 0, kError = 3, kInfo = 1, kOff = 4, kWarn = 2 };

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns false on anything
/// else and leaves *out untouched.
bool ParseLogLevel(std::string_view text, LogLevel* out);
std::string_view LogLevelName(LogLevel level);

/// Process-wide minimum level; events below it are dropped before any
/// formatting happens. Defaults to kWarn so library users and tests see
/// nothing unless something is actually wrong.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// \brief One log event under construction. Usage:
///   LogEvent(LogLevel::kInfo, "request").Str("op", op).Int("us", us);
/// The line is emitted by the destructor; a dropped level makes every
/// method a no-op.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Int(std::string_view key, int64_t value);
  LogEvent& Bool(std::string_view key, bool value);
  LogEvent& Double(std::string_view key, double value);

 private:
  bool enabled_;
  std::string line_;
};

}  // namespace cfcm::obs

#endif  // CFCM_OBS_LOG_H_
