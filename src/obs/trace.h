// Per-request tracing (DESIGN.md §12).
//
// A TraceContext is an opt-in, single-request span recorder: the serve
// handler creates one only when the request asks for it ("trace":true)
// or the CLI runs --verbose, threads a pointer through Engine down to the
// sampling runtime, and renders the collected spans into the response.
// A null TraceContext* everywhere means tracing is off and costs one
// pointer compare per instrumentation point — the always-on metrics in
// obs/metrics.h are the cheap path; spans are the detailed one.
//
// Spans are flat (name, start offset, duration, optional annotations)
// rather than a tree: request phases in this codebase are sequential, so
// a depth field would only ever be 0 or 1 and a flat list keeps the
// JSON rendering trivial and deterministic.
#ifndef CFCM_OBS_TRACE_H_
#define CFCM_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cfcm::obs {

/// Process-unique hex trace id (16 chars). Mixes a process-wide atomic
/// sequence number through splitmix64 so ids from concurrent workers
/// never collide and do not leak a raw counter.
std::string NextTraceId();

/// One timed request phase.
struct TraceSpan {
  std::string name;       ///< phase name, e.g. "solver", "queue_wait"
  int64_t start_ns = 0;   ///< offset from the context's epoch
  int64_t duration_ns = 0;
  bool nested = false;    ///< opened while another span was already open
  /// Phase-scoped measurements (e.g. {"walk_steps", 123}).
  std::vector<std::pair<std::string, int64_t>> annotations;
};

/// \brief Span recorder for one request.
///
/// Not thread-safe — each request is traced by the worker that owns it.
/// Begin/End must nest like a stack; AddSpan records an already-measured
/// phase (used for socket read and queue wait, which finish before the
/// handler ever sees the request).
class TraceContext {
 public:
  TraceContext();

  const std::string& trace_id() const { return trace_id_; }
  void set_trace_id(std::string id) { trace_id_ = std::move(id); }

  /// Starts a phase; pair with EndSpan. Returns a token for sanity checks.
  std::size_t BeginSpan(std::string name);
  void EndSpan(std::size_t token);

  /// Records a phase that was timed externally. start_ns < 0 places the
  /// span before the context's epoch (socket read happened before the
  /// handler started).
  void AddSpan(std::string name, int64_t start_ns, int64_t duration_ns);

  /// Attaches a measurement to the innermost open span, or to the last
  /// closed one if nothing is open.
  void Annotate(std::string key, int64_t value);

  /// Nanoseconds since the context was created (monotonic clock).
  int64_t ElapsedNs() const;

  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// Sum of all top-level span durations (nested spans excluded).
  int64_t SpanTotalNs() const;

 private:
  std::string trace_id_;
  int64_t epoch_ns_ = 0;           ///< steady_clock at construction
  std::vector<TraceSpan> spans_;   ///< completed + in-flight, open last
  std::vector<std::size_t> open_;  ///< indices of unclosed spans (stack)
};

}  // namespace cfcm::obs

#endif  // CFCM_OBS_TRACE_H_
