#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <thread>

namespace cfcm::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

// Shard index for the calling thread: hash the thread id once per thread.
std::size_t ThisThreadShard() {
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      LatencyHistogram::kShards;
  return shard;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void LatencyHistogram::Record(int64_t value) {
  if (!MetricsEnabled()) return;
  if (value < 0) value = 0;
  const int bucket = std::bit_width(static_cast<uint64_t>(value));
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  int64_t seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !shard.max.compare_exchange_weak(seen, value,
                                          std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot merged;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      merged.buckets[static_cast<std::size_t>(b)] +=
          shard.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    merged.sum += shard.sum.load(std::memory_order_relaxed);
    merged.max = std::max(merged.max,
                          shard.max.load(std::memory_order_relaxed));
  }
  for (uint64_t c : merged.buckets) merged.count += c;
  return merged;
}

int64_t LatencyHistogram::Snapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the order statistic we bound, 1-based; ceil without floats
  // drifting: rank q*count rounded up, at least 1.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      // Upper edge of bucket b: 0 for b == 0, else 2^b - 1; never report
      // past the exact max.
      const int64_t edge =
          b == 0 ? 0
                 : static_cast<int64_t>((uint64_t{1} << b) - 1);
      return std::min(edge, max);
    }
  }
  return max;
}

double LatencyHistogram::Snapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->snapshot());
  }
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// scheme maps onto it by replacing every other character with '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

// Every metric gets a `# HELP` line immediately before its `# TYPE` —
// scrapers expect the pair, and the dotted registry name in the help
// text preserves the original spelling that the underscore mapping
// destroys. Built with string appends, not the fixed line buffer: the
// name appears twice plus free text.
void AppendHeader(std::string* out, const std::string& pname,
                  const std::string& dotted, const char* type) {
  *out += "# HELP ";
  *out += pname;
  *out += " cfcm metric ";
  *out += dotted;
  *out += "\n# TYPE ";
  *out += pname;
  *out += ' ';
  *out += type;
  *out += '\n';
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[160];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = PrometheusName(name);
    AppendHeader(&out, p, name, "counter");
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", p.c_str(), value);
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = PrometheusName(name);
    AppendHeader(&out, p, name, "gauge");
    std::snprintf(line, sizeof(line), "%s %" PRId64 "\n", p.c_str(), value);
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = PrometheusName(name);
    AppendHeader(&out, p, name, "histogram");
    uint64_t cumulative = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const uint64_t in_bucket = h.buckets[static_cast<std::size_t>(b)];
      if (in_bucket == 0) continue;  // sparse: only emit occupied edges
      cumulative += in_bucket;
      const uint64_t edge = b == 0 ? 0 : (uint64_t{1} << b) - 1;
      std::snprintf(line, sizeof(line),
                    "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", p.c_str(),
                    edge, cumulative);
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  p.c_str(), h.count);
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %" PRId64 "\n", p.c_str(),
                  h.sum);
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %" PRIu64 "\n", p.c_str(),
                  h.count);
    out += line;
  }
  return out;
}

}  // namespace cfcm::obs
