#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace cfcm::obs {

namespace {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string NextTraceId() {
  static std::atomic<uint64_t> sequence{0};
  const uint64_t raw =
      SplitMix64(sequence.fetch_add(1, std::memory_order_relaxed) + 1);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(raw));
  return std::string(buf);
}

TraceContext::TraceContext()
    : trace_id_(NextTraceId()), epoch_ns_(MonotonicNowNs()) {}

std::size_t TraceContext::BeginSpan(std::string name) {
  const std::size_t index = spans_.size();
  TraceSpan span;
  span.name = std::move(name);
  span.start_ns = MonotonicNowNs() - epoch_ns_;
  span.duration_ns = -1;  // open
  span.nested = !open_.empty();
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void TraceContext::EndSpan(std::size_t token) {
  // Tolerate mismatched tokens (close whatever is innermost) — a trace
  // must never crash the request it observes.
  if (open_.empty()) return;
  std::size_t index = open_.back();
  if (token < spans_.size() && spans_[token].duration_ns < 0) index = token;
  // Pop through the stack until the span we closed is gone; any spans
  // left open inside it are force-closed at the same instant.
  const int64_t now = MonotonicNowNs() - epoch_ns_;
  while (!open_.empty()) {
    const std::size_t top = open_.back();
    open_.pop_back();
    if (spans_[top].duration_ns < 0) {
      spans_[top].duration_ns = now - spans_[top].start_ns;
    }
    if (top == index) break;
  }
}

void TraceContext::AddSpan(std::string name, int64_t start_ns,
                           int64_t duration_ns) {
  TraceSpan span;
  span.name = std::move(name);
  span.start_ns = start_ns;
  span.duration_ns = duration_ns < 0 ? 0 : duration_ns;
  spans_.push_back(std::move(span));
}

void TraceContext::Annotate(std::string key, int64_t value) {
  if (spans_.empty()) return;
  TraceSpan& target =
      open_.empty() ? spans_.back() : spans_[open_.back()];
  target.annotations.emplace_back(std::move(key), value);
}

int64_t TraceContext::ElapsedNs() const {
  return MonotonicNowNs() - epoch_ns_;
}

int64_t TraceContext::SpanTotalNs() const {
  int64_t total = 0;
  for (const TraceSpan& span : spans_) {
    if (span.nested) continue;
    if (span.duration_ns > 0) total += span.duration_ns;
  }
  return total;
}

}  // namespace cfcm::obs
