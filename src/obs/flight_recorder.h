// Request flight recorder (DESIGN.md §15).
//
// A fixed-size, lock-free ring of compact per-request records: the serve
// handler commits one FlightRecord per request (op, graph, epoch,
// outcome, latency, queue wait, trace id, top-level span timings), always
// on, so a human or the admin plane's /flightz endpoint can reconstruct
// what the daemon just did without having asked in advance. A second,
// smaller ring pins slow and failed requests so a burst of healthy
// traffic cannot evict the interesting entries before anyone looks.
//
// Concurrency model: each ring slot is a ticket-addressed seqlock over a
// buffer of relaxed atomic words. A writer takes a global ticket
// (fetch_add), claims its slot by CAS-ing the slot sequence from the
// previous generation's completion value to the odd in-progress value —
// so a stalled writer from a lapped generation can never clobber a newer
// record — publishes the payload as relaxed atomic word stores, and
// releases the even completion value. Readers copy the words between two
// sequence loads and discard the copy when the sequence moved: a torn
// record is never returned. No mutexes anywhere, so committing never
// blocks the request path and dumping never blocks committers.
#ifndef CFCM_OBS_FLIGHT_RECORDER_H_
#define CFCM_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

namespace cfcm::obs {

/// One request, compacted to a fixed-size POD so it can pass through the
/// ring's word-copy protocol. Strings are truncating copies — the record
/// is a diagnostic sample, not the source of truth.
struct FlightRecord {
  static constexpr int kMaxSpans = 8;
  static constexpr std::size_t kOpBytes = 12;
  static constexpr std::size_t kGraphBytes = 24;
  static constexpr std::size_t kErrorBytes = 20;
  static constexpr std::size_t kTraceIdBytes = 20;
  static constexpr std::size_t kSpanNameBytes = 16;

  struct Span {
    char name[kSpanNameBytes];
    int64_t duration_us;
  };

  uint64_t id = 0;        ///< commit sequence, 1-based; stamped by Commit
  int64_t wall_ms = 0;    ///< system clock at commit (ms since epoch)
  int64_t mono_ns = 0;    ///< monotonic clock at commit
  uint64_t epoch = 0;     ///< graph mutation epoch the request observed
  int64_t latency_us = 0;     ///< whole-request latency
  int64_t queue_wait_us = 0;  ///< admission-queue wait
  uint8_t ok = 1;             ///< response status was "ok"
  uint8_t num_spans = 0;
  char op[kOpBytes] = {};
  char graph[kGraphBytes] = {};
  char error_code[kErrorBytes] = {};  ///< empty when ok
  char trace_id[kTraceIdBytes] = {};
  Span spans[kMaxSpans] = {};

  void set_op(std::string_view value) { Copy(op, sizeof(op), value); }
  void set_graph(std::string_view value) { Copy(graph, sizeof(graph), value); }
  void set_error_code(std::string_view value) {
    Copy(error_code, sizeof(error_code), value);
  }
  void set_trace_id(std::string_view value) {
    Copy(trace_id, sizeof(trace_id), value);
  }
  /// Appends a top-level span timing; silently drops past kMaxSpans.
  void AddSpan(std::string_view name, int64_t duration_us);

 private:
  static void Copy(char* dst, std::size_t capacity, std::string_view src);
};
static_assert(std::is_trivially_copyable_v<FlightRecord>,
              "FlightRecord passes through the ring as raw words");

/// \brief Dual-ring flight recorder: an always-on main ring plus a
/// reserved ring for slow/error records.
///
/// Commit is lock-free and wait-free in the common case (one fetch_add,
/// one CAS, word stores); Recent/Pinned are lock-free snapshots that
/// never block writers. Commit honors the global metrics kill switch, so
/// the instrumentation-overhead bench prices it automatically.
/// Thread-safe.
class FlightRecorder {
 public:
  struct Options {
    std::size_t capacity = 1024;        ///< main ring size (records)
    std::size_t pinned_capacity = 128;  ///< reserved slow/error ring size
    /// Requests at least this slow are pinned; <= 0 pins errors only.
    int64_t slow_us = 100'000;
  };

  // Split default: GCC rejects `Options options = {}` for a nested
  // aggregate with member initializers inside the enclosing class.
  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Stamps id / wall_ms / mono_ns and publishes the record; slow or
  /// failed requests are additionally pinned. No-op when the global
  /// metrics kill switch is off.
  void Commit(FlightRecord record);

  /// The newest `last_n` main-ring records, ascending by id. Concurrent
  /// commits may be missing or already evicted; returned records are
  /// never torn.
  std::vector<FlightRecord> Recent(std::size_t last_n) const;
  /// The newest `last_n` pinned (slow/error) records, ascending by id.
  std::vector<FlightRecord> Pinned(std::size_t last_n) const;

  /// Total records ever committed (== the largest stamped id).
  uint64_t committed() const {
    return next_id_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

 private:
  class Ring {
   public:
    explicit Ring(std::size_t capacity);
    void Commit(const FlightRecord& record);
    std::vector<FlightRecord> Snapshot() const;  // ascending by id

   private:
    static constexpr std::size_t kWords =
        (sizeof(FlightRecord) + sizeof(uint64_t) - 1) / sizeof(uint64_t);
    struct alignas(64) Slot {
      // 0 = never written; 2t+1 = ticket t writing; 2t+2 = ticket t done.
      std::atomic<uint64_t> seq{0};
      std::array<std::atomic<uint64_t>, kWords> words{};
    };
    std::vector<Slot> slots_;
    std::atomic<uint64_t> tickets_{0};
  };

  const Options options_;
  std::atomic<uint64_t> next_id_{0};
  Ring main_;
  Ring pinned_;
};

}  // namespace cfcm::obs

#endif  // CFCM_OBS_FLIGHT_RECORDER_H_
