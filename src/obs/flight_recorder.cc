#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace cfcm::obs {

void FlightRecord::Copy(char* dst, std::size_t capacity,
                        std::string_view src) {
  const std::size_t n = std::min(src.size(), capacity - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void FlightRecord::AddSpan(std::string_view name, int64_t duration_us) {
  if (num_spans >= kMaxSpans) return;
  Span& span = spans[num_spans];
  Copy(span.name, sizeof(span.name), name);
  span.duration_us = duration_us;
  ++num_spans;
}

FlightRecorder::Ring::Ring(std::size_t capacity)
    : slots_(capacity > 0 ? capacity : 1) {}

void FlightRecorder::Ring::Commit(const FlightRecord& record) {
  uint64_t buffer[kWords] = {};  // zeroed: padding bytes stay deterministic
  std::memcpy(buffer, &record, sizeof(record));

  const uint64_t ticket = tickets_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];
  // Claim: only the exact completion value of the generation that last
  // owned this slot (or 0 on first use) may transition to our odd
  // in-progress value. A writer that finds anything newer was lapped a
  // full ring by faster committers — its record is stale by definition,
  // so it drops the write instead of clobbering the newer one.
  const uint64_t previous =
      ticket < slots_.size() ? 0 : 2 * (ticket - slots_.size()) + 2;
  uint64_t expected = previous;
  while (!slot.seq.compare_exchange_weak(expected, 2 * ticket + 1,
                                         std::memory_order_relaxed)) {
    if (expected > 2 * ticket) return;  // lapped by a newer generation
    expected = previous;  // prior-generation writer mid-commit: wait it out
    std::this_thread::yield();
  }
  // Release fence before the payload: a reader that observes any payload
  // word of this generation is guaranteed to also observe the odd
  // sequence (or a later one) on its re-check — the seqlock's tear
  // detection.
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t w = 0; w < kWords; ++w) {
    slot.words[w].store(buffer[w], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::Ring::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(slots_.size());
  uint64_t buffer[kWords];
  for (const Slot& slot : slots_) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0) break;             // never written
      if ((before & 1) != 0) continue;    // writer in progress; retry
      for (std::size_t w = 0; w < kWords; ++w) {
        buffer[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      // Acquire fence pairs with the writer's release fence: if any word
      // above came from a newer write, the re-check below sees its odd
      // (or later) sequence and discards the copy.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != before) continue;
      FlightRecord record;
      std::memcpy(&record, buffer, sizeof(record));
      out.push_back(record);
      break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.id < b.id;
            });
  return out;
}

FlightRecorder::FlightRecorder(Options options)
    : options_(options),
      main_(options_.capacity),
      pinned_(options_.pinned_capacity) {}

void FlightRecorder::Commit(FlightRecord record) {
  if (!MetricsEnabled()) return;
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  record.mono_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  main_.Commit(record);
  const bool slow =
      options_.slow_us > 0 && record.latency_us >= options_.slow_us;
  if (!record.ok || slow) pinned_.Commit(record);
}

std::vector<FlightRecord> FlightRecorder::Recent(std::size_t last_n) const {
  std::vector<FlightRecord> all = main_.Snapshot();
  if (last_n < all.size()) {
    all.erase(all.begin(),
              all.end() - static_cast<std::ptrdiff_t>(last_n));
  }
  return all;
}

std::vector<FlightRecord> FlightRecorder::Pinned(std::size_t last_n) const {
  std::vector<FlightRecord> all = pinned_.Snapshot();
  if (last_n < all.size()) {
    all.erase(all.begin(),
              all.end() - static_cast<std::ptrdiff_t>(last_n));
  }
  return all;
}

}  // namespace cfcm::obs
