// Process-wide observability metrics core (DESIGN.md §12).
//
// Three primitives — Counter, Gauge, LatencyHistogram — owned by a
// MetricsRegistry that maps stable dotted names ("serve.solve.latency_us")
// to instances. The hot path is lock-free: recording is a handful of
// relaxed atomic adds on cache-line-separated shards, and the registry
// mutex is only taken when a call site first resolves a name (call sites
// cache the returned reference). Snapshots are deterministic: names come
// back sorted, and every derived total (histogram count, percentile) is
// computed from the one snapshot rather than from separately maintained
// counters, so the parts of a snapshot always add up.
//
// Dependency-free by design: nothing here knows about graphs, solvers or
// the serving layer, so every layer (runtime -> engine -> serve) can
// record into the same registry without cycles.
#ifndef CFCM_OBS_METRICS_H_
#define CFCM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cfcm::obs {

/// Global instrumentation kill switch. When false, Counter::Add and
/// LatencyHistogram::Record become single relaxed-load no-ops — the
/// overhead bench flips this to price the instrumentation itself.
/// Defaults to enabled.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonic event counter. Thread-safe, lock-free.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, resident bytes).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Log2-bucketed latency histogram with lock-free recording and
/// mergeable shards.
///
/// Bucket b holds values v with std::bit_width(v) == b, i.e. bucket 0 is
/// exactly {0} and bucket b >= 1 covers [2^(b-1), 2^b - 1] — so a
/// percentile read off the bucket upper edge over-estimates the true
/// order statistic by strictly less than 2x. 64 buckets cover the whole
/// non-negative int64 range (negative values clamp to 0); values are
/// conventionally microseconds but the histogram is unit-agnostic.
///
/// Recording picks a shard from the caller's thread id and does two
/// relaxed atomic RMWs (bucket, sum) plus a CAS loop for the exact max;
/// shards are cache-line aligned so concurrent recorders do not false-
/// share. snapshot() merges the shards; the total count is derived from
/// the merged buckets (there is no separately maintained count that
/// could disagree), which is what makes the conservation test exact.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kShards = 8;

  void Record(int64_t value);

  /// Merged, immutable view of the histogram at one point in time.
  struct Snapshot {
    std::array<uint64_t, kBuckets> buckets{};
    int64_t sum = 0;  ///< sum of recorded (clamped) values
    int64_t max = 0;  ///< exact largest recorded value; 0 when empty
    uint64_t count = 0;  ///< derived: sum over buckets

    /// Upper bound of the bucket containing the q-quantile (q in [0,1]),
    /// clamped to the exact max. 0 when empty. Deterministic: a pure
    /// function of the snapshot.
    int64_t Percentile(double q) const;
    /// sum / count; 0 when empty.
    double Mean() const;
  };

  Snapshot snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> max{0};
  };

  std::array<Shard, kShards> shards_;
};

/// One registry entry kind in a snapshot.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  ///< sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;     ///< sorted by name
  std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
      histograms;  ///< sorted by name
};

/// \brief Named metric registry.
///
/// counter()/gauge()/histogram() return a reference that stays valid for
/// the registry's lifetime (instances are heap-allocated and never
/// removed), so call sites resolve once and record lock-free thereafter.
/// Thread-safe.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrumentation point
  /// records into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// One coherent, deterministically ordered view of every metric. Each
  /// histogram snapshot is internally consistent (count derived from its
  /// buckets); distinct metrics are read in one pass in name order.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

/// Prometheus text-exposition rendering of a snapshot: every metric gets
/// a `# HELP`/`# TYPE` pair, histograms render as cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count` (dots in names become
/// underscores; the help text keeps the original dotted spelling).
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

}  // namespace cfcm::obs

#endif  // CFCM_OBS_METRICS_H_
