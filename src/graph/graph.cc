#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace cfcm {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  assert(!offsets_.empty());
  assert(offsets_.front() == 0);
  assert(offsets_.back() == static_cast<EdgeId>(neighbors_.size()));
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

NodeId Graph::MaxDegreeNode() const {
  const NodeId n = num_nodes();
  NodeId best = -1;
  NodeId best_deg = -1;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId d = degree(u);
    if (d > best_deg) {
      best_deg = d;
      best = u;
    }
  }
  return best;
}

std::vector<std::pair<NodeId, NodeId>> Graph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  const NodeId n = num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace cfcm
