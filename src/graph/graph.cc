#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace cfcm {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors)
    : Graph(std::move(offsets), std::move(neighbors), {}) {}

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors,
             std::vector<double> weights)
    : offsets_(std::move(offsets)),
      neighbors_(std::move(neighbors)),
      weights_(std::move(weights)) {
  assert(!offsets_.empty());
  assert(offsets_.front() == 0);
  assert(offsets_.back() == static_cast<EdgeId>(neighbors_.size()));
  assert(weights_.empty() || weights_.size() == neighbors_.size());
  if (!weights_.empty()) {
    const NodeId n = num_nodes();
    weighted_degree_.assign(static_cast<std::size_t>(n), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      double acc = 0;
      for (EdgeId k = offsets_[u]; k < offsets_[u + 1]; ++k) {
        acc += weights_[static_cast<std::size_t>(k)];
      }
      weighted_degree_[u] = acc;
      total_weight_ += acc;
    }
    total_weight_ *= 0.5;  // each undirected edge was counted twice
  }
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return 0.0;
  if (weights_.empty()) return 1.0;
  return weights_[static_cast<std::size_t>(offsets_[u] + (it - adj.begin()))];
}

NodeId Graph::MaxDegreeNode() const {
  const NodeId n = num_nodes();
  NodeId best = -1;
  NodeId best_deg = -1;
  for (NodeId u = 0; u < n; ++u) {
    const NodeId d = degree(u);
    if (d > best_deg) {
      best_deg = d;
      best = u;
    }
  }
  return best;
}

NodeId Graph::MaxWeightedDegreeNode() const {
  if (weights_.empty()) return MaxDegreeNode();
  const NodeId n = num_nodes();
  NodeId best = -1;
  double best_deg = -1;
  for (NodeId u = 0; u < n; ++u) {
    const double d = weighted_degree_[u];
    if (d > best_deg) {
      best_deg = d;
      best = u;
    }
  }
  return best;
}

std::vector<std::pair<NodeId, NodeId>> Graph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  const NodeId n = num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::vector<WeightedEdge> Graph::WeightedEdges() const {
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(num_edges()));
  const NodeId n = num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    const auto adj = neighbors(u);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      const NodeId v = adj[i];
      if (u >= v) continue;
      const double w =
          weights_.empty()
              ? 1.0
              : weights_[static_cast<std::size_t>(offsets_[u]) + i];
      edges.push_back({u, v, w});
    }
  }
  return edges;
}

}  // namespace cfcm
