// Versioned mutation pipeline, graph layer: a GraphDelta batches edge
// and node changes, and Graph::Apply(delta) materializes them as a NEW
// immutable CSR snapshot (shared-nothing rebuild). The base graph is
// never touched, so snapshots already handed to running jobs stay valid
// — the property the engine's versioned sessions and the serving
// layer's cache-soundness argument rest on (DESIGN.md §11).
#ifndef CFCM_GRAPH_DELTA_H_
#define CFCM_GRAPH_DELTA_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief An ordered batch of mutations against one base graph.
///
/// Apply order is fixed: removals, then reweights, then node additions,
/// then edge additions — so one delta can remove an edge and re-add it
/// with a new conductance, and added edges may touch nodes the same
/// delta introduces.
///
/// Validation follows GraphBuilder: endpoints must be existing (or
/// just-added) node ids, conductances must be positive and finite, and
/// duplicate additions of the same edge sum their conductances
/// (parallel conductors). Unlike the builder, a delta is strict where
/// silence would hide a bug: self-loops, removing or reweighting a
/// missing edge, and endpoints beyond the post-delta node count are
/// errors instead of silent drops or implicit node growth.
class GraphDelta {
 public:
  /// One edge endpoint pair with a conductance (additions / reweights).
  struct Edge {
    NodeId u = -1;
    NodeId v = -1;
    double weight = 1.0;
  };

  /// Appends `count` isolated nodes after the base graph's ids. The
  /// solvers still require connectivity, so a useful delta connects new
  /// nodes with edge additions in the same batch. Accumulates in 64
  /// bits so repeated calls cannot overflow before Apply's node-id
  /// range check runs; a negative count is remembered and rejected at
  /// Apply (it must not silently cancel against later positive calls).
  void AddNodes(NodeId count) {
    add_nodes_ += count;
    if (count < 0) negative_add_nodes_ = true;
  }

  /// Adds undirected edge {u, v} with conductance `weight`. Adding an
  /// edge that already exists (in the base or earlier in this delta)
  /// sums the conductances, the GraphBuilder parallel-conductor rule.
  void AddEdge(NodeId u, NodeId v, double weight = 1.0) {
    add_edges_.push_back({u, v, weight});
  }

  /// Removes existing edge {u, v}; Apply fails with NotFound if absent.
  void RemoveEdge(NodeId u, NodeId v) { remove_edges_.emplace_back(u, v); }

  /// Replaces the conductance of existing edge {u, v}; Apply fails with
  /// NotFound if absent, InvalidArgument on a bad weight.
  void ReweightEdge(NodeId u, NodeId v, double weight) {
    reweight_edges_.push_back({u, v, weight});
  }

  bool empty() const {
    return add_nodes_ == 0 && add_edges_.empty() && remove_edges_.empty() &&
           reweight_edges_.empty();
  }

  /// Total number of batched operations (node additions count once per
  /// AddNodes call's node).
  std::size_t num_operations() const {
    return static_cast<std::size_t>(add_nodes_ > 0 ? add_nodes_ : 0) +
           add_edges_.size() + remove_edges_.size() + reweight_edges_.size();
  }

  int64_t add_nodes() const { return add_nodes_; }
  bool has_negative_add_nodes() const { return negative_add_nodes_; }
  const std::vector<Edge>& add_edges() const { return add_edges_; }
  const std::vector<std::pair<NodeId, NodeId>>& remove_edges() const {
    return remove_edges_;
  }
  const std::vector<Edge>& reweight_edges() const { return reweight_edges_; }

 private:
  int64_t add_nodes_ = 0;
  bool negative_add_nodes_ = false;
  std::vector<Edge> add_edges_;
  std::vector<std::pair<NodeId, NodeId>> remove_edges_;
  std::vector<Edge> reweight_edges_;
};

/// \brief The delta that undoes `delta` on `base`.
///
/// Computed by diffing `base` against `base.Apply(delta)`, so it is
/// correct for any applicable delta regardless of how its operations
/// overlap: applying `delta` and then the inverse yields a graph
/// byte-identical to `base` (same CSR arrays, same conductance bits,
/// same fingerprint) — the revert half of the serving layer's
/// cache-soundness proof. Fails if `delta` does not apply to `base`, or
/// if it adds nodes (nodes cannot be removed).
StatusOr<GraphDelta> InverseOf(const Graph& base, const GraphDelta& delta);

}  // namespace cfcm

#endif  // CFCM_GRAPH_DELTA_H_
