// Mutable edge accumulator that produces immutable CSR graphs.
#ifndef CFCM_GRAPH_BUILDER_H_
#define CFCM_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief Accumulates undirected edges and builds a Graph.
///
/// Self-loops are dropped and parallel edges deduplicated at Build() time.
/// Node count is max(explicit num_nodes, max endpoint + 1).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares at least `n` nodes (isolated nodes are allowed here;
  /// most algorithms additionally require connectivity, checked by them).
  explicit GraphBuilder(NodeId n) : num_nodes_(n) {}

  /// Adds undirected edge {u, v}. Negative ids are rejected at Build().
  void AddEdge(NodeId u, NodeId v);

  /// Number of (not yet deduplicated) added edges.
  std::size_t num_added_edges() const { return edges_.size(); }

  /// Builds the CSR graph; fails on negative endpoints.
  StatusOr<Graph> Build() &&;

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

/// Convenience for tests/generators: builds from an edge list, asserting
/// validity.
Graph BuildGraph(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges);

}  // namespace cfcm

#endif  // CFCM_GRAPH_BUILDER_H_
