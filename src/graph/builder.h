// Mutable edge accumulator that produces immutable CSR graphs.
#ifndef CFCM_GRAPH_BUILDER_H_
#define CFCM_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief Accumulates undirected edges and builds a Graph.
///
/// Self-loops are dropped at insertion. Unweighted accumulation (only
/// the two-argument AddEdge is used) deduplicates parallel edges at
/// Build() time and produces a unit-weighted Graph, exactly as before
/// weights existed. As soon as any edge carries an explicit conductance,
/// the builder switches to weighted semantics: duplicate edges have
/// their conductances *summed* (parallel conductors), and Build()
/// rejects non-finite or non-positive weights. If every merged weight
/// ends up exactly 1.0 the result degrades gracefully to a
/// unit-weighted Graph so the fast paths still apply.
///
/// Node count is max(explicit num_nodes, max endpoint + 1).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares at least `n` nodes (isolated nodes are allowed here;
  /// most algorithms additionally require connectivity, checked by them).
  explicit GraphBuilder(NodeId n) : num_nodes_(n) {}

  /// Adds undirected unit edge {u, v}. Negative ids are rejected at
  /// Build().
  void AddEdge(NodeId u, NodeId v);

  /// Adds undirected edge {u, v} with conductance `weight`. Switches the
  /// builder to weighted semantics (duplicates summed). Weight validity
  /// is checked at Build().
  void AddEdge(NodeId u, NodeId v, double weight);

  /// Number of (not yet deduplicated) added edges.
  std::size_t num_added_edges() const { return edges_.size(); }

  /// True once any explicit conductance has been added.
  bool has_weights() const { return has_weights_; }

  /// Builds the CSR graph; fails on negative endpoints or (weighted
  /// mode) non-finite / non-positive conductances.
  StatusOr<Graph> Build() &&;

 private:
  NodeId num_nodes_ = 0;
  bool has_weights_ = false;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<double> weights_;  // parallel to edges_
};

/// Convenience for tests/generators: builds from an edge list, asserting
/// validity.
Graph BuildGraph(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges);

/// Weighted convenience: builds from (u, v, w) triples, asserting
/// validity (positive finite weights, non-negative ids).
Graph BuildWeightedGraph(NodeId num_nodes,
                         const std::vector<WeightedEdge>& edges);

}  // namespace cfcm

#endif  // CFCM_GRAPH_BUILDER_H_
