// Textual graph sources: one string names a built-in dataset, a seeded
// generator spec, or an edge-list file. Shared by cfcm_cli and the
// serving layer's SessionCatalog so every front end accepts the same
// graph vocabulary.
#ifndef CFCM_GRAPH_SPEC_H_
#define CFCM_GRAPH_SPEC_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief Loads a graph from a source spec.
///
/// Accepted forms:
///   - built-ins: "karate", "karate-w", "usa", "zebra", "dolphins"
///   - generators: "ba:<n>,<m>[,<seed>]", "ws:<n>,<k>,<beta>[,<seed>]",
///     "grid:<rows>x<cols>"
///   - anything else is treated as an edge-list file path (optional
///     third column = edge conductance, see LoadEdgeList)
///
/// Generator seeds default to 1, so the same spec string always yields
/// the same graph — a load is reproducible from its spec alone.
StatusOr<Graph> LoadGraphFromSpec(const std::string& spec);

}  // namespace cfcm

#endif  // CFCM_GRAPH_SPEC_H_
