// Synthetic graph generators.
//
// The paper evaluates on KONECT/SNAP/NetworkRepository downloads that are
// unavailable in this offline environment; DESIGN.md §5 documents how each
// dataset is substituted by a generator from this header with matched size
// and structure class. All generators are deterministic in `seed`.
#ifndef CFCM_GRAPH_GENERATORS_H_
#define CFCM_GRAPH_GENERATORS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfcm {

/// Path graph 0-1-2-...-(n-1).
Graph PathGraph(NodeId n);

/// Cycle graph on n >= 3 nodes.
Graph CycleGraph(NodeId n);

/// Complete graph K_n.
Graph CompleteGraph(NodeId n);

/// Star graph: node 0 adjacent to 1..n-1.
Graph StarGraph(NodeId n);

/// rows x cols 4-neighbor lattice.
Graph GridGraph(NodeId rows, NodeId cols);

/// \brief Barabási–Albert preferential attachment.
///
/// Starts from a clique on `m + 1` nodes; each new node attaches to `m`
/// distinct existing nodes chosen proportionally to degree. Produces the
/// scale-free degree sequences typical of social/web graphs; always
/// connected.
Graph BarabasiAlbert(NodeId n, NodeId m, uint64_t seed);

/// Erdős–Rényi G(n, m): m distinct uniform edges (may be disconnected;
/// callers usually take the LCC).
Graph ErdosRenyiGnm(NodeId n, EdgeId m, uint64_t seed);

/// \brief Watts–Strogatz small world: ring lattice with `k` neighbors per
/// side, each edge rewired with probability `beta`.
Graph WattsStrogatz(NodeId n, NodeId k, double beta, uint64_t seed);

/// \brief Holme–Kim power-law cluster model: BA attachment where each of
/// the `m` links follows a triad-closure step with probability `p`.
/// Mimics clustered collaboration networks (Astro-Ph, HEP-Th, DBLP).
Graph PowerlawCluster(NodeId n, NodeId m, double p, uint64_t seed);

/// \brief Random geometric graph on the unit square (radius connectivity),
/// plus a Hamiltonian-path backbone so the graph is connected. High
/// diameter and near-constant degree: the stand-in for road networks
/// (Euroroads).
Graph RandomGeometric(NodeId n, double radius, uint64_t seed);

/// \brief k-nearest-neighbor graph of a 3D point set (symmetrized).
/// Substrate for the point-cloud sampling example.
Graph KnnGraph(const std::vector<std::array<double, 3>>& points, int k);

/// \brief Returns a copy of `graph` with the same topology and per-edge
/// conductances drawn i.i.d. uniform from [lo, hi], deterministic in
/// `seed`. Turns any generator output into a weighted instance (road
/// networks, similarity graphs). Requires 0 < lo <= hi; if lo == hi ==
/// 1 the result is unit-weighted.
Graph AssignUniformWeights(const Graph& graph, double lo, double hi,
                           uint64_t seed);

}  // namespace cfcm

#endif  // CFCM_GRAPH_GENERATORS_H_
