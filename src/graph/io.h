// Plain-text edge-list input/output (SNAP/KONECT style).
#ifndef CFCM_GRAPH_IO_H_
#define CFCM_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief Loads an undirected graph from a whitespace-separated edge list.
///
/// Lines starting with '#' or '%' are comments. Each data line must start
/// with two integer node ids (trailing columns, e.g. weights or
/// timestamps, are ignored). Self-loops and duplicates are cleaned up.
StatusOr<Graph> LoadEdgeList(const std::string& path);

/// Writes `graph` as "u v" lines (u < v), one edge per line.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace cfcm

#endif  // CFCM_GRAPH_IO_H_
