// Plain-text edge-list input/output (SNAP/KONECT style).
#ifndef CFCM_GRAPH_IO_H_
#define CFCM_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief Loads an undirected graph from a whitespace-separated edge list.
///
/// Lines starting with '#' or '%' are comments; blank lines and CRLF
/// endings are tolerated. Each data line is
///
///   u v [weight] [ignored trailing columns...]
///
/// with integer node ids and an optional conductance in the third
/// column. A present weight must be a positive finite number — zero,
/// negative, NaN or infinite weights are rejected with an IoError naming
/// the line. Any columns after the weight (e.g. KONECT timestamps) are
/// ignored. Duplicate weighted edges have their conductances summed;
/// duplicate unweighted edges are deduplicated; self-loops are dropped.
/// A file whose weights are all exactly 1 (or absent) loads as a
/// unit-weighted graph.
StatusOr<Graph> LoadEdgeList(const std::string& path);

/// Writes `graph` as "u v" lines (u < v), or "u v w" lines when the
/// graph is weighted, one edge per line. LoadEdgeList round-trips both.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace cfcm

#endif  // CFCM_GRAPH_IO_H_
