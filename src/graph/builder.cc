#include "graph/builder.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace cfcm {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u == v) return;  // Self-loops carry no resistance information.
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  if (v + 1 > num_nodes_) num_nodes_ = v + 1;
}

StatusOr<Graph> GraphBuilder::Build() && {
  for (const auto& [u, v] : edges_) {
    if (u < 0) {
      return Status::InvalidArgument("negative node id " + std::to_string(u));
    }
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  const NodeId n = num_nodes_;
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (NodeId i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  std::vector<NodeId> neighbors(static_cast<std::size_t>(offsets[n]));
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    neighbors[static_cast<std::size_t>(cursor[u]++)] = v;
    neighbors[static_cast<std::size_t>(cursor[v]++)] = u;
  }
  // Edges were sorted by (u, v) so each u-list is already ascending, but
  // the v-side inserts are interleaved; sort each list to guarantee order.
  for (NodeId u = 0; u < n; ++u) {
    std::sort(neighbors.begin() + offsets[u], neighbors.begin() + offsets[u + 1]);
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph BuildGraph(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  auto graph = std::move(builder).Build();
  assert(graph.ok());
  return std::move(graph).value();
}

}  // namespace cfcm
