#include "graph/builder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <string>

namespace cfcm {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u == v) return;  // Self-loops carry no resistance information.
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  if (has_weights_) weights_.push_back(1.0);
  if (v + 1 > num_nodes_) num_nodes_ = v + 1;
}

void GraphBuilder::AddEdge(NodeId u, NodeId v, double weight) {
  if (u == v) return;
  if (!has_weights_) {
    // Retroactively weight the unit edges added so far.
    weights_.assign(edges_.size(), 1.0);
    has_weights_ = true;
  }
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  weights_.push_back(weight);
  if (v + 1 > num_nodes_) num_nodes_ = v + 1;
}

StatusOr<Graph> GraphBuilder::Build() && {
  for (const auto& [u, v] : edges_) {
    if (u < 0) {
      return Status::InvalidArgument("negative node id " + std::to_string(u));
    }
  }

  if (!has_weights_) {
    // Unit-weighted path: identical to the original builder — duplicate
    // edges are deduplicated, not summed.
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  } else {
    for (double w : weights_) {
      if (!std::isfinite(w) || w <= 0.0) {
        return Status::InvalidArgument(
            "edge conductances must be positive and finite, got " +
            std::to_string(w));
      }
    }
    // Weighted path: sort edges (stably, so duplicate conductances sum
    // in insertion order and the merged bits are identical across
    // standard libraries) and merge duplicates by summing (parallel
    // conductors).
    std::vector<std::size_t> order(edges_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                       return edges_[a] < edges_[b];
                     });
    std::vector<std::pair<NodeId, NodeId>> merged;
    std::vector<double> merged_w;
    merged.reserve(edges_.size());
    merged_w.reserve(edges_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto& e = edges_[order[i]];
      if (!merged.empty() && merged.back() == e) {
        merged_w.back() += weights_[order[i]];
      } else {
        merged.push_back(e);
        merged_w.push_back(weights_[order[i]]);
      }
    }
    edges_ = std::move(merged);
    weights_ = std::move(merged_w);
    // All-ones weights carry no information: emit a unit-weighted graph
    // so every downstream fast path (and bit-for-bit determinism with
    // the unweighted tree) applies.
    if (std::all_of(weights_.begin(), weights_.end(),
                    [](double w) { return w == 1.0; })) {
      has_weights_ = false;
      weights_.clear();
    }
  }

  const NodeId n = num_nodes_;
  std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (NodeId i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  std::vector<NodeId> neighbors(static_cast<std::size_t>(offsets[n]));
  std::vector<double> csr_weights;
  if (has_weights_) csr_weights.resize(neighbors.size());
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    const auto ku = static_cast<std::size_t>(cursor[u]++);
    const auto kv = static_cast<std::size_t>(cursor[v]++);
    neighbors[ku] = v;
    neighbors[kv] = u;
    if (has_weights_) {
      csr_weights[ku] = weights_[e];
      csr_weights[kv] = weights_[e];
    }
  }
  // Edges were sorted by (u, v) so each u-list is already ascending, but
  // the v-side inserts are interleaved; sort each list to guarantee order
  // (weights travel with their neighbor entries).
  for (NodeId u = 0; u < n; ++u) {
    if (!has_weights_) {
      std::sort(neighbors.begin() + offsets[u],
                neighbors.begin() + offsets[u + 1]);
      continue;
    }
    const std::size_t lo = static_cast<std::size_t>(offsets[u]);
    const std::size_t hi = static_cast<std::size_t>(offsets[u + 1]);
    std::vector<std::pair<NodeId, double>> list;
    list.reserve(hi - lo);
    for (std::size_t k = lo; k < hi; ++k) {
      list.emplace_back(neighbors[k], csr_weights[k]);
    }
    std::sort(list.begin(), list.end());
    for (std::size_t k = lo; k < hi; ++k) {
      neighbors[k] = list[k - lo].first;
      csr_weights[k] = list[k - lo].second;
    }
  }
  return Graph(std::move(offsets), std::move(neighbors),
               std::move(csr_weights));
}

Graph BuildGraph(NodeId num_nodes,
                 const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  auto graph = std::move(builder).Build();
  assert(graph.ok());
  return std::move(graph).value();
}

Graph BuildWeightedGraph(NodeId num_nodes,
                         const std::vector<WeightedEdge>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& e : edges) builder.AddEdge(e.u, e.v, e.weight);
  auto graph = std::move(builder).Build();
  assert(graph.ok());
  return std::move(graph).value();
}

}  // namespace cfcm
