#include "graph/delta.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

#include "graph/builder.h"

namespace cfcm {

namespace {

std::string EdgeName(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return "{" + std::to_string(u) + ", " + std::to_string(v) + "}";
}

// Shared endpoint validation: ids must name a base node or one of the
// nodes this delta appends. `op` labels the error.
Status CheckEndpoints(NodeId u, NodeId v, NodeId num_nodes, const char* op) {
  if (u < 0 || v < 0) {
    return Status::InvalidArgument(std::string(op) + " edge " +
                                   EdgeName(u, v) +
                                   " has a negative node id");
  }
  if (u >= num_nodes || v >= num_nodes) {
    return Status::OutOfRange(
        std::string(op) + " edge " + EdgeName(u, v) + " endpoint outside [0, " +
        std::to_string(num_nodes) + ") — AddNodes first to grow the graph");
  }
  if (u == v) {
    return Status::InvalidArgument(std::string(op) + " edge " +
                                   EdgeName(u, v) +
                                   " is a self-loop (no resistance "
                                   "information; rejected)");
  }
  return Status::Ok();
}

Status CheckWeight(double weight, NodeId u, NodeId v, const char* op) {
  if (!std::isfinite(weight) || weight <= 0.0) {
    return Status::InvalidArgument(
        std::string(op) + " edge " + EdgeName(u, v) +
        ": conductance must be positive and finite, got " +
        std::to_string(weight));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Graph> Graph::Apply(const GraphDelta& delta) const {
  if (delta.add_nodes() < 0 || delta.has_negative_add_nodes()) {
    return Status::InvalidArgument(
        "AddNodes counts must be non-negative (accumulated " +
        std::to_string(delta.add_nodes()) + ")");
  }
  const int64_t n_total =
      static_cast<int64_t>(num_nodes()) + delta.add_nodes();
  if (n_total > std::numeric_limits<NodeId>::max()) {
    return Status::OutOfRange("AddNodes would overflow the node id space (" +
                              std::to_string(n_total) + " total nodes)");
  }
  const NodeId n_new = static_cast<NodeId>(n_total);

  // Working copy of the undirected edge set with conductances. The map
  // carries the mutation phase; the deterministic CSR layout comes from
  // the final GraphBuilder pass, which sorts regardless of visit order.
  std::vector<WeightedEdge> edges = WeightedEdges();
  std::unordered_map<uint64_t, std::size_t> index;  // key -> edges slot
  index.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    index.emplace(UndirectedEdgeKey(edges[i].u, edges[i].v), i);
  }
  // Removed slots are tombstoned with weight 0 (never a valid
  // conductance) instead of erased, keeping the pass O(m + |delta|).
  constexpr double kRemoved = 0.0;

  // Phase 1: removals.
  for (const auto& [u, v] : delta.remove_edges()) {
    Status valid = CheckEndpoints(u, v, n_new, "remove");
    if (!valid.ok()) return valid;
    auto it = index.find(UndirectedEdgeKey(u, v));
    if (it == index.end()) {
      return Status::NotFound("remove edge " + EdgeName(u, v) +
                              ": not an edge of the graph");
    }
    edges[it->second].weight = kRemoved;
    index.erase(it);
  }

  // Phase 2: reweights.
  for (const GraphDelta::Edge& e : delta.reweight_edges()) {
    Status valid = CheckEndpoints(e.u, e.v, n_new, "reweight");
    if (!valid.ok()) return valid;
    Status weight_ok = CheckWeight(e.weight, e.u, e.v, "reweight");
    if (!weight_ok.ok()) return weight_ok;
    auto it = index.find(UndirectedEdgeKey(e.u, e.v));
    if (it == index.end()) {
      return Status::NotFound("reweight edge " + EdgeName(e.u, e.v) +
                              ": not an edge of the graph (removals in the "
                              "same delta apply first)");
    }
    edges[it->second].weight = e.weight;
  }

  // Phase 3: additions — duplicates (against the base or within the
  // delta) sum conductances, the GraphBuilder parallel-conductor rule.
  for (const GraphDelta::Edge& e : delta.add_edges()) {
    Status valid = CheckEndpoints(e.u, e.v, n_new, "add");
    if (!valid.ok()) return valid;
    Status weight_ok = CheckWeight(e.weight, e.u, e.v, "add");
    if (!weight_ok.ok()) return weight_ok;
    auto [it, inserted] = index.emplace(UndirectedEdgeKey(e.u, e.v), edges.size());
    if (inserted) {
      edges.push_back({std::min(e.u, e.v), std::max(e.u, e.v), e.weight});
    } else {
      edges[it->second].weight += e.weight;
    }
  }

  // Shared-nothing rebuild. Weighted AddEdge keeps builder semantics:
  // validation already happened above, and a surviving all-1.0 weight
  // set degrades back to a unit-weighted graph.
  GraphBuilder builder(n_new);
  for (const WeightedEdge& e : edges) {
    if (e.weight == kRemoved) continue;
    builder.AddEdge(e.u, e.v, e.weight);
  }
  return std::move(builder).Build();
}

StatusOr<GraphDelta> InverseOf(const Graph& base, const GraphDelta& delta) {
  if (delta.add_nodes() != 0) {
    return Status::InvalidArgument(
        "a delta that adds nodes has no inverse (nodes cannot be removed)");
  }
  StatusOr<Graph> applied = base.Apply(delta);
  if (!applied.ok()) return applied.status();

  // Diff the two sorted edge sets; WeightedEdges() is ordered by (u, v).
  const std::vector<WeightedEdge> before = base.WeightedEdges();
  const std::vector<WeightedEdge> after = applied->WeightedEdges();
  auto precedes = [](const WeightedEdge& a, const WeightedEdge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  };
  GraphDelta inverse;
  std::size_t i = 0, j = 0;
  while (i < before.size() || j < after.size()) {
    if (j == after.size() ||
        (i < before.size() && precedes(before[i], after[j]))) {
      // Removed by the delta: the inverse restores the original bits.
      inverse.AddEdge(before[i].u, before[i].v, before[i].weight);
      ++i;
    } else if (i == before.size() || precedes(after[j], before[i])) {
      // Introduced by the delta: the inverse removes it.
      inverse.RemoveEdge(after[j].u, after[j].v);
      ++j;
    } else {
      if (before[i].weight != after[j].weight) {
        inverse.ReweightEdge(before[i].u, before[i].v, before[i].weight);
      }
      ++i;
      ++j;
    }
  }
  return inverse;
}

}  // namespace cfcm
