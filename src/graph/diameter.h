// Graph diameter: exact (all-pairs BFS) and double-sweep estimate.
#ifndef CFCM_GRAPH_DIAMETER_H_
#define CFCM_GRAPH_DIAMETER_H_

#include "graph/graph.h"

namespace cfcm {

/// Exact diameter of a connected graph via BFS from every node. O(nm);
/// intended for tests and tiny graphs.
NodeId ExactDiameter(const Graph& graph);

/// \brief Double-sweep lower bound on the diameter.
///
/// Runs `sweeps` rounds of BFS(farthest-node) ping-pong starting from the
/// max-degree node. On real-world graphs the bound is typically exact or
/// off by one; estimator sample bounds only need the right order of
/// magnitude (the adaptive Bernstein rule governs actual sample counts).
NodeId EstimateDiameter(const Graph& graph, int sweeps = 4);

}  // namespace cfcm

#endif  // CFCM_GRAPH_DIAMETER_H_
