// Embedded tiny benchmark graphs (paper Fig. 1).
#ifndef CFCM_GRAPH_DATASETS_H_
#define CFCM_GRAPH_DATASETS_H_

#include "graph/graph.h"

namespace cfcm {

/// Zachary's karate club: 34 nodes, 78 edges (the real network).
Graph KarateClub();

/// Contiguous-USA state adjacency: 49 nodes (48 states + DC), 107 edges
/// (the real network, built from geographic border pairs; four-corner
/// point contacts AZ–CO and NM–UT are not edges, matching the standard
/// dataset).
Graph ContiguousUsa();

/// \brief "Zebra*": fixed-seed synthetic stand-in for the 23-node zebra
/// interaction network used in the paper's Fig. 1; same node/edge budget
/// and connectivity, dense social-clique structure. The original edge
/// list is not redistributable offline; DESIGN.md §5 documents the
/// substitution.
Graph ZebraSynthetic();

/// "Dolphins*": fixed-seed synthetic stand-in for the 62-node, 159-edge
/// dolphin social network (same rationale as ZebraSynthetic()).
Graph DolphinsSynthetic();

/// Karate club with fixed-seed uniform conductances in [0.5, 2]: the
/// small weighted reference instance used by tests and the README
/// weighted quickstart.
Graph KarateClubWeighted();

}  // namespace cfcm

#endif  // CFCM_GRAPH_DATASETS_H_
