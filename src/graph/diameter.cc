#include "graph/diameter.h"

#include <algorithm>

#include "graph/bfs.h"

namespace cfcm {

namespace {

// Returns (farthest node, eccentricity) from `source`.
std::pair<NodeId, NodeId> FarthestFrom(const Graph& graph, NodeId source) {
  const BfsResult bfs = Bfs(graph, source);
  NodeId far_node = source;
  NodeId far_depth = 0;
  for (NodeId u : bfs.order) {
    if (bfs.depth[u] > far_depth) {
      far_depth = bfs.depth[u];
      far_node = u;
    }
  }
  return {far_node, far_depth};
}

}  // namespace

NodeId ExactDiameter(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  NodeId diameter = 0;
  for (NodeId s = 0; s < n; ++s) {
    diameter = std::max(diameter, FarthestFrom(graph, s).second);
  }
  return diameter;
}

NodeId EstimateDiameter(const Graph& graph, int sweeps) {
  if (graph.num_nodes() == 0) return 0;
  NodeId start = graph.MaxDegreeNode();
  NodeId best = 0;
  for (int i = 0; i < sweeps; ++i) {
    const auto [far_node, ecc] = FarthestFrom(graph, start);
    best = std::max(best, ecc);
    if (far_node == start) break;
    start = far_node;
  }
  return best;
}

}  // namespace cfcm
