// Connected components and largest-connected-component extraction.
#ifndef CFCM_GRAPH_COMPONENTS_H_
#define CFCM_GRAPH_COMPONENTS_H_

#include <vector>

#include "graph/graph.h"

namespace cfcm {

/// Component label per node (labels are dense, 0-based, ordered by the
/// smallest node id in each component).
std::vector<NodeId> ConnectedComponents(const Graph& graph);

/// Number of connected components.
NodeId NumComponents(const Graph& graph);

/// True if the graph is connected (and non-empty).
bool IsConnected(const Graph& graph);

/// \brief Largest connected component with its node mapping.
struct LccResult {
  Graph graph;                      ///< Induced subgraph, relabeled [0, n').
  std::vector<NodeId> to_original;  ///< LCC id -> original id.
};

/// Extracts the largest connected component (ties: smallest label),
/// preserving edge conductances. Matches the paper's preprocessing: "we
/// perform our experiments on their largest connected components".
LccResult LargestConnectedComponent(const Graph& graph);

}  // namespace cfcm

#endif  // CFCM_GRAPH_COMPONENTS_H_
