#include "graph/io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "graph/builder.h"

namespace cfcm {

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  GraphBuilder builder;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const char c = line[first];
    if (c == '#' || c == '%') continue;
    std::istringstream fields(line);
    long long u = 0;
    long long v = 0;
    if (!(fields >> u >> v)) {
      return Status::IoError(path + ":" + std::to_string(line_no) +
                             ": expected two integer node ids");
    }
    if (u < 0 || v < 0) {
      return Status::IoError(path + ":" + std::to_string(line_no) +
                             ": negative node id");
    }
    std::string weight_field;
    if (fields >> weight_field) {
      // Third column present: parse it as the edge conductance. Columns
      // after it (e.g. timestamps) are ignored.
      char* end = nullptr;
      const double w = std::strtod(weight_field.c_str(), &end);
      if (end == weight_field.c_str() || *end != '\0') {
        return Status::IoError(path + ":" + std::to_string(line_no) +
                               ": bad edge weight '" + weight_field + "'");
      }
      if (!std::isfinite(w) || w <= 0.0) {
        return Status::IoError(path + ":" + std::to_string(line_no) +
                               ": edge weight must be positive and finite"
                               " (not NaN/inf/zero/negative), got " +
                               weight_field);
      }
      // Weight column present -> weighted semantics (duplicates sum);
      // an all-1.0 duplicate-free file still builds unit-weighted.
      builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    } else {
      builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  return std::move(builder).Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing: " +
                           std::strerror(errno));
  }
  out << "# cfcm edge list: " << graph.num_nodes() << " nodes, "
      << graph.num_edges() << " edges";
  if (!graph.is_unit_weighted()) out << ", weighted";
  out << "\n";
  if (graph.is_unit_weighted()) {
    for (const auto& [u, v] : graph.Edges()) {
      out << u << ' ' << v << '\n';
    }
  } else {
    char buf[64];
    for (const auto& e : graph.WeightedEdges()) {
      std::snprintf(buf, sizeof(buf), "%.17g", e.weight);
      out << e.u << ' ' << e.v << ' ' << buf << '\n';
    }
  }
  if (!out.flush()) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::Ok();
}

}  // namespace cfcm
