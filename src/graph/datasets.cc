#include "graph/datasets.h"

#include <array>
#include <cassert>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace cfcm {

Graph KarateClub() {
  // Zachary (1977), 1-indexed as in the original paper.
  static constexpr std::array<std::pair<int, int>, 78> kEdges = {{
      {1, 2},   {1, 3},   {1, 4},   {1, 5},   {1, 6},   {1, 7},   {1, 8},
      {1, 9},   {1, 11},  {1, 12},  {1, 13},  {1, 14},  {1, 18},  {1, 20},
      {1, 22},  {1, 32},  {2, 3},   {2, 4},   {2, 8},   {2, 14},  {2, 18},
      {2, 20},  {2, 22},  {2, 31},  {3, 4},   {3, 8},   {3, 9},   {3, 10},
      {3, 14},  {3, 28},  {3, 29},  {3, 33},  {4, 8},   {4, 13},  {4, 14},
      {5, 7},   {5, 11},  {6, 7},   {6, 11},  {6, 17},  {7, 17},  {9, 31},
      {9, 33},  {9, 34},  {10, 34}, {14, 34}, {15, 33}, {15, 34}, {16, 33},
      {16, 34}, {19, 33}, {19, 34}, {20, 34}, {21, 33}, {21, 34}, {23, 33},
      {23, 34}, {24, 26}, {24, 28}, {24, 30}, {24, 33}, {24, 34}, {25, 26},
      {25, 28}, {25, 32}, {26, 32}, {27, 30}, {27, 34}, {28, 34}, {29, 32},
      {29, 34}, {30, 33}, {30, 34}, {31, 33}, {31, 34}, {32, 33}, {32, 34},
      {33, 34},
  }};
  GraphBuilder builder(34);
  for (const auto& [u, v] : kEdges) builder.AddEdge(u - 1, v - 1);
  auto graph = std::move(std::move(builder).Build()).value();
  assert(graph.num_nodes() == 34 && graph.num_edges() == 78);
  return graph;
}

Graph ContiguousUsa() {
  // 48 contiguous states + DC; 107 land/water border pairs.
  static const std::vector<std::pair<std::string, std::string>> kBorders = {
      {"AL", "FL"}, {"AL", "GA"}, {"AL", "MS"}, {"AL", "TN"}, {"AR", "LA"},
      {"AR", "MO"}, {"AR", "MS"}, {"AR", "OK"}, {"AR", "TN"}, {"AR", "TX"},
      {"AZ", "CA"}, {"AZ", "NM"}, {"AZ", "NV"}, {"AZ", "UT"}, {"CA", "NV"},
      {"CA", "OR"}, {"CO", "KS"}, {"CO", "NE"}, {"CO", "NM"}, {"CO", "OK"},
      {"CO", "UT"}, {"CO", "WY"}, {"CT", "MA"}, {"CT", "NY"}, {"CT", "RI"},
      {"DC", "MD"}, {"DC", "VA"}, {"DE", "MD"}, {"DE", "NJ"}, {"DE", "PA"},
      {"FL", "GA"}, {"GA", "NC"}, {"GA", "SC"}, {"GA", "TN"}, {"IA", "IL"},
      {"IA", "MN"}, {"IA", "MO"}, {"IA", "NE"}, {"IA", "SD"}, {"IA", "WI"},
      {"ID", "MT"}, {"ID", "NV"}, {"ID", "OR"}, {"ID", "UT"}, {"ID", "WA"},
      {"ID", "WY"}, {"IL", "IN"}, {"IL", "KY"}, {"IL", "MO"}, {"IL", "WI"},
      {"IN", "KY"}, {"IN", "MI"}, {"IN", "OH"}, {"KS", "MO"}, {"KS", "NE"},
      {"KS", "OK"}, {"KY", "MO"}, {"KY", "OH"}, {"KY", "TN"}, {"KY", "VA"},
      {"KY", "WV"}, {"LA", "MS"}, {"LA", "TX"}, {"MA", "NH"}, {"MA", "NY"},
      {"MA", "RI"}, {"MA", "VT"}, {"MD", "PA"}, {"MD", "VA"}, {"MD", "WV"},
      {"ME", "NH"}, {"MI", "OH"}, {"MI", "WI"}, {"MN", "ND"}, {"MN", "SD"},
      {"MN", "WI"}, {"MO", "NE"}, {"MO", "OK"}, {"MO", "TN"}, {"MS", "TN"},
      {"MT", "ND"}, {"MT", "SD"}, {"MT", "WY"}, {"NC", "SC"}, {"NC", "TN"},
      {"NC", "VA"}, {"ND", "SD"}, {"NE", "SD"}, {"NE", "WY"}, {"NH", "VT"},
      {"NJ", "NY"}, {"NJ", "PA"}, {"NM", "OK"}, {"NM", "TX"}, {"NV", "OR"},
      {"NV", "UT"}, {"NY", "PA"}, {"NY", "VT"}, {"OH", "PA"}, {"OH", "WV"},
      {"OK", "TX"}, {"OR", "WA"}, {"PA", "WV"}, {"SD", "WY"}, {"TN", "VA"},
      {"UT", "WY"}, {"VA", "WV"},
  };
  std::map<std::string, NodeId> ids;
  for (const auto& [a, b] : kBorders) {
    ids.emplace(a, 0);
    ids.emplace(b, 0);
  }
  NodeId next = 0;
  for (auto& [name, id] : ids) id = next++;
  GraphBuilder builder(next);
  for (const auto& [a, b] : kBorders) builder.AddEdge(ids[a], ids[b]);
  auto graph = std::move(std::move(builder).Build()).value();
  assert(graph.num_nodes() == 49 && graph.num_edges() == 107);
  return graph;
}

Graph KarateClubWeighted() {
  Graph g = AssignUniformWeights(KarateClub(), 0.5, 2.0, /*seed=*/0x5ca1ab1e);
  assert(!g.is_unit_weighted());
  return g;
}

Graph ZebraSynthetic() {
  // 23 nodes; dense clustered contact structure (the real zebra LCC has
  // mean degree ~9). Watts–Strogatz base keeps it clique-ish.
  Graph g = WattsStrogatz(/*n=*/23, /*k=*/5, /*beta=*/0.25, /*seed=*/0x5eb7a);
  assert(IsConnected(g));
  return g;
}

Graph DolphinsSynthetic() {
  // 62 nodes / 159 edges, like the Doubtful Sound dolphin network.
  Graph g = PowerlawCluster(/*n=*/62, /*m=*/3, /*p=*/0.5, /*seed=*/0xd01f1);
  // PowerlawCluster(62, 3) yields 3 + 59*3 = 180 edges minus dedup; trim
  // to 159 by dropping the highest-index surplus edges deterministically.
  auto edges = g.Edges();
  if (edges.size() > 159) {
    // Drop edges whose removal keeps the graph connected, scanning from
    // the back (later preferential edges are redundant closures).
    std::vector<std::pair<NodeId, NodeId>> kept(edges.begin(), edges.end());
    std::size_t i = kept.size();
    while (kept.size() > 159 && i > 0) {
      --i;
      std::vector<std::pair<NodeId, NodeId>> trial;
      trial.reserve(kept.size() - 1);
      for (std::size_t j = 0; j < kept.size(); ++j) {
        if (j != i) trial.push_back(kept[j]);
      }
      Graph candidate = BuildGraph(62, trial);
      if (IsConnected(candidate)) {
        kept.swap(trial);
      }
    }
    g = BuildGraph(62, kept);
  }
  assert(g.num_nodes() == 62 && IsConnected(g));
  return g;
}

}  // namespace cfcm
