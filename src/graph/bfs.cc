#include "graph/bfs.h"

#include <cassert>

namespace cfcm {

BfsResult Bfs(const Graph& graph, const std::vector<NodeId>& sources) {
  const NodeId n = graph.num_nodes();
  BfsResult result;
  result.parent.assign(static_cast<std::size_t>(n), BfsResult::kUnreached);
  result.depth.assign(static_cast<std::size_t>(n), BfsResult::kUnreached);
  result.order.reserve(static_cast<std::size_t>(n));

  for (NodeId s : sources) {
    assert(s >= 0 && s < n);
    if (result.depth[s] == 0) continue;  // duplicate source
    result.depth[s] = 0;
    result.order.push_back(s);
  }
  // `order` doubles as the BFS queue: nodes are appended exactly once.
  for (std::size_t head = 0; head < result.order.size(); ++head) {
    const NodeId u = result.order[head];
    for (NodeId v : graph.neighbors(u)) {
      if (result.depth[v] != BfsResult::kUnreached) continue;
      result.depth[v] = result.depth[u] + 1;
      result.parent[v] = u;
      result.order.push_back(v);
    }
  }
  return result;
}

BfsResult Bfs(const Graph& graph, NodeId source) {
  return Bfs(graph, std::vector<NodeId>{source});
}

}  // namespace cfcm
