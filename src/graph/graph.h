// Immutable CSR representation of a simple undirected graph with
// optional per-edge conductances (weights).
#ifndef CFCM_GRAPH_GRAPH_H_
#define CFCM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"

namespace cfcm {

class GraphDelta;

using NodeId = int32_t;
using EdgeId = int64_t;

/// An undirected edge with its conductance.
struct WeightedEdge {
  NodeId u = -1;
  NodeId v = -1;
  double weight = 1.0;
};

/// Canonical 64-bit key of the undirected edge {u, v}: endpoint order
/// does not matter. Shared by everything that hash-indexes edge sets
/// (delta application, greedy edge addition).
inline uint64_t UndirectedEdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
         static_cast<uint32_t>(v);
}

/// \brief Simple undirected graph in compressed sparse row form.
///
/// Nodes are dense integers [0, n). Every undirected edge {u, v} is stored
/// twice (once in each adjacency list); `num_edges()` reports the
/// undirected count m. Self-loops and parallel edges are rejected by
/// GraphBuilder, so degree(u) == adjacency size.
///
/// Edges optionally carry positive conductances w_e (electrical weights;
/// larger = lower resistance). A graph built without weights is
/// *unit-weighted*: `is_unit_weighted()` is true, no weight array is
/// stored, and every algorithm takes its original unweighted fast path,
/// bit-for-bit. Weighted graphs store `weights_` parallel to
/// `neighbors_` plus the per-node weighted degrees, so
/// `weighted_degree()` stays O(1).
///
/// The structure is immutable after construction which makes it safe to
/// share across sampling threads without synchronization.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` has n+1 entries,
  /// `neighbors` has 2m entries with each list sorted ascending.
  /// The graph is unit-weighted.
  Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors);

  /// Weighted variant: `weights` is parallel to `neighbors` (2m entries,
  /// symmetric: the weight of {u,v} appears in both lists). An empty
  /// `weights` vector yields a unit-weighted graph.
  Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors,
        std::vector<double> weights);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  EdgeId num_edges() const { return static_cast<EdgeId>(neighbors_.size()) / 2; }

  /// True when no explicit conductances are stored (all weights are 1).
  bool is_unit_weighted() const { return weights_.empty(); }

  /// Degree of node u.
  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }

  /// Weighted degree d_w(u) = sum of conductances at u (the Laplacian
  /// diagonal). Equals degree(u) on unit-weighted graphs. O(1).
  double weighted_degree(NodeId u) const {
    return weights_.empty() ? static_cast<double>(degree(u))
                            : weighted_degree_[u];
  }

  /// Sum of all edge conductances (each undirected edge counted once);
  /// equals num_edges() on unit-weighted graphs.
  double total_weight() const {
    return weights_.empty() ? static_cast<double>(num_edges())
                            : total_weight_;
  }

  /// Adjacency list of u, sorted ascending.
  std::span<const NodeId> neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Conductances parallel to neighbors(u). Empty span on unit-weighted
  /// graphs — callers on hot paths branch on is_unit_weighted().
  std::span<const double> weights(NodeId u) const {
    if (weights_.empty()) return {};
    return {weights_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// True if {u, v} is an edge (binary search, O(log deg)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Conductance of edge {u, v}; 0 if absent. O(log deg).
  double EdgeWeight(NodeId u, NodeId v) const;

  /// Node with maximum degree (smallest id wins ties); -1 on empty graph.
  NodeId MaxDegreeNode() const;

  /// Node with maximum weighted degree (smallest id wins ties); equal to
  /// MaxDegreeNode() on unit-weighted graphs. -1 on empty graph.
  NodeId MaxWeightedDegreeNode() const;

  /// All undirected edges as (u, v) pairs with u < v.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  /// All undirected edges with conductances, u < v.
  std::vector<WeightedEdge> WeightedEdges() const;

  /// \brief Applies `delta` and returns a NEW immutable graph; this
  /// graph is untouched (copy-on-write snapshot semantics).
  ///
  /// The result is rebuilt shared-nothing through GraphBuilder, so every
  /// builder invariant carries over: sorted adjacency lists, duplicate
  /// additions summing conductances, and degradation to a unit-weighted
  /// graph whenever every surviving conductance is exactly 1.0.
  /// Validation errors (missing edge removal/reweight, non-positive or
  /// non-finite weight, self-loop, endpoint outside the post-delta node
  /// range) reject the whole delta — Apply is all-or-nothing.
  /// Defined in graph/delta.cc.
  StatusOr<Graph> Apply(const GraphDelta& delta) const;

  /// Raw CSR access for kernels that iterate all adjacencies.
  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<NodeId>& raw_neighbors() const { return neighbors_; }
  /// Raw weight array parallel to raw_neighbors(); empty when unit.
  const std::vector<double>& raw_weights() const { return weights_; }

 private:
  std::vector<EdgeId> offsets_;
  std::vector<NodeId> neighbors_;
  std::vector<double> weights_;          // empty = unit-weighted
  std::vector<double> weighted_degree_;  // empty = unit-weighted
  double total_weight_ = 0.0;
};

}  // namespace cfcm

#endif  // CFCM_GRAPH_GRAPH_H_
