// Immutable CSR representation of a simple undirected graph.
#ifndef CFCM_GRAPH_GRAPH_H_
#define CFCM_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace cfcm {

using NodeId = int32_t;
using EdgeId = int64_t;

/// \brief Simple undirected graph in compressed sparse row form.
///
/// Nodes are dense integers [0, n). Every undirected edge {u, v} is stored
/// twice (once in each adjacency list); `num_edges()` reports the
/// undirected count m. Self-loops and parallel edges are rejected by
/// GraphBuilder, so degree(u) == adjacency size.
///
/// The structure is immutable after construction which makes it safe to
/// share across sampling threads without synchronization.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` has n+1 entries,
  /// `neighbors` has 2m entries with each list sorted ascending.
  Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1); }
  EdgeId num_edges() const { return static_cast<EdgeId>(neighbors_.size()) / 2; }

  /// Degree of node u.
  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }

  /// Adjacency list of u, sorted ascending.
  std::span<const NodeId> neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// True if {u, v} is an edge (binary search, O(log deg)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Node with maximum degree (smallest id wins ties); -1 on empty graph.
  NodeId MaxDegreeNode() const;

  /// All undirected edges as (u, v) pairs with u < v.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  /// Raw CSR access for kernels that iterate all adjacencies.
  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<NodeId>& raw_neighbors() const { return neighbors_; }

 private:
  std::vector<EdgeId> offsets_;
  std::vector<NodeId> neighbors_;
};

}  // namespace cfcm

#endif  // CFCM_GRAPH_GRAPH_H_
