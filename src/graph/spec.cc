#include "graph/spec.h"

#include <vector>

#include "common/parse.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace cfcm {
namespace {

// Hard ceiling on generator sizes: specs arrive over the wire, NodeId is
// 32-bit, and the generators assert (Release builds compile the asserts
// out) — so every count is bounds-checked *before* any narrowing cast.
constexpr long long kMaxGeneratedNodes = 100'000'000;

bool FitsNodeCount(long long n) { return n >= 0 && n <= kMaxGeneratedNodes; }

}  // namespace

StatusOr<Graph> LoadGraphFromSpec(const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("empty graph spec");
  if (spec == "karate") return KarateClub();
  if (spec == "karate-w") return KarateClubWeighted();
  if (spec == "usa") return ContiguousUsa();
  if (spec == "zebra") return ZebraSynthetic();
  if (spec == "dolphins") return DolphinsSynthetic();
  if (spec.rfind("ba:", 0) == 0) {
    const auto args = SplitString(spec.substr(3), ',');
    long long n = 0, m = 0, seed = 1;
    if (args.size() < 2 || args.size() > 3 || !ParseInt64(args[0], &n) ||
        !ParseInt64(args[1], &m) ||
        (args.size() == 3 && !ParseInt64(args[2], &seed))) {
      return Status::InvalidArgument("expected ba:<n>,<m>[,<seed>]");
    }
    if (m < 1 || n <= m || !FitsNodeCount(n)) {
      return Status::InvalidArgument("ba spec requires 1 <= m < n <= " +
                                     std::to_string(kMaxGeneratedNodes));
    }
    return BarabasiAlbert(static_cast<NodeId>(n), static_cast<NodeId>(m),
                          static_cast<uint64_t>(seed));
  }
  if (spec.rfind("ws:", 0) == 0) {
    const auto args = SplitString(spec.substr(3), ',');
    long long n = 0, k = 0, seed = 1;
    double beta = 0.0;
    if (args.size() < 3 || args.size() > 4 || !ParseInt64(args[0], &n) ||
        !ParseInt64(args[1], &k) || !ParseFloat64(args[2], &beta) ||
        (args.size() == 4 && !ParseInt64(args[3], &seed))) {
      return Status::InvalidArgument("expected ws:<n>,<k>,<beta>[,<seed>]");
    }
    if (k < 1 || n <= 2 * k || !FitsNodeCount(n) || beta < 0.0 ||
        beta > 1.0) {
      return Status::InvalidArgument(
          "ws spec requires 2k < n <= " + std::to_string(kMaxGeneratedNodes) +
          ", k >= 1 and beta in [0, 1]");
    }
    return WattsStrogatz(static_cast<NodeId>(n), static_cast<NodeId>(k), beta,
                         static_cast<uint64_t>(seed));
  }
  if (spec.rfind("grid:", 0) == 0) {
    const auto args = SplitString(spec.substr(5), 'x');
    long long rows = 0, cols = 0;
    if (args.size() != 2 || !ParseInt64(args[0], &rows) ||
        !ParseInt64(args[1], &cols) || rows < 1 || cols < 1 ||
        !FitsNodeCount(rows) || !FitsNodeCount(cols) ||
        !FitsNodeCount(rows * cols)) {
      return Status::InvalidArgument(
          "expected grid:<rows>x<cols> with rows*cols <= " +
          std::to_string(kMaxGeneratedNodes));
    }
    return GridGraph(static_cast<NodeId>(rows), static_cast<NodeId>(cols));
  }
  return LoadEdgeList(spec);
}

}  // namespace cfcm
