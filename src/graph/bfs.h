// Multi-source breadth-first search.
#ifndef CFCM_GRAPH_BFS_H_
#define CFCM_GRAPH_BFS_H_

#include <vector>

#include "graph/graph.h"

namespace cfcm {

/// \brief Result of a (multi-source) BFS.
///
/// Unreached nodes have parent == -1 and depth == kUnreached and do not
/// appear in `order`. Sources have parent == -1 and depth == 0.
struct BfsResult {
  static constexpr NodeId kUnreached = -1;

  std::vector<NodeId> order;   ///< Visit order; sources first.
  std::vector<NodeId> parent;  ///< BFS-tree parent per node (-1 for sources).
  std::vector<NodeId> depth;   ///< Hop distance from the nearest source.

  NodeId num_reached() const { return static_cast<NodeId>(order.size()); }
};

/// Runs BFS from every node in `sources` simultaneously.
BfsResult Bfs(const Graph& graph, const std::vector<NodeId>& sources);

/// Single-source overload.
BfsResult Bfs(const Graph& graph, NodeId source);

}  // namespace cfcm

#endif  // CFCM_GRAPH_BFS_H_
