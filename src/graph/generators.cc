#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <utility>

#include "common/rng.h"
#include "graph/builder.h"

namespace cfcm {

Graph PathGraph(NodeId n) {
  assert(n >= 1);
  GraphBuilder builder(n);
  for (NodeId i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1);
  return std::move(std::move(builder).Build()).value();
}

Graph CycleGraph(NodeId n) {
  assert(n >= 3);
  GraphBuilder builder(n);
  for (NodeId i = 0; i < n; ++i) builder.AddEdge(i, (i + 1) % n);
  return std::move(std::move(builder).Build()).value();
}

Graph CompleteGraph(NodeId n) {
  assert(n >= 1);
  GraphBuilder builder(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) builder.AddEdge(i, j);
  }
  return std::move(std::move(builder).Build()).value();
}

Graph StarGraph(NodeId n) {
  assert(n >= 2);
  GraphBuilder builder(n);
  for (NodeId i = 1; i < n; ++i) builder.AddEdge(0, i);
  return std::move(std::move(builder).Build()).value();
}

Graph GridGraph(NodeId rows, NodeId cols) {
  assert(rows >= 1 && cols >= 1);
  GraphBuilder builder(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(std::move(builder).Build()).value();
}

Graph BarabasiAlbert(NodeId n, NodeId m, uint64_t seed) {
  assert(m >= 1 && n > m);
  Rng rng(seed);
  GraphBuilder builder(n);
  // `targets` holds one entry per edge endpoint, so uniform sampling from
  // it is exactly degree-proportional sampling.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2) * n * m);
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) {
      builder.AddEdge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  std::vector<NodeId> chosen;
  for (NodeId u = m + 1; u < n; ++u) {
    chosen.clear();
    while (static_cast<NodeId>(chosen.size()) < m) {
      const NodeId t = endpoints[rng.NextBounded(
          static_cast<uint32_t>(endpoints.size()))];
      if (std::find(chosen.begin(), chosen.end(), t) == chosen.end()) {
        chosen.push_back(t);
      }
    }
    for (NodeId t : chosen) {
      builder.AddEdge(u, t);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return std::move(std::move(builder).Build()).value();
}

Graph ErdosRenyiGnm(NodeId n, EdgeId m, uint64_t seed) {
  assert(n >= 2);
  const EdgeId max_edges = static_cast<EdgeId>(n) * (n - 1) / 2;
  assert(m <= max_edges);
  (void)max_edges;
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> edges;
  while (static_cast<EdgeId>(edges.size()) < m) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(static_cast<uint32_t>(n)));
    NodeId v = static_cast<NodeId>(rng.NextBounded(static_cast<uint32_t>(n)));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    edges.emplace(u, v);
  }
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(std::move(builder).Build()).value();
}

Graph WattsStrogatz(NodeId n, NodeId k, double beta, uint64_t seed) {
  assert(k >= 1 && n > 2 * k);
  Rng rng(seed);
  std::set<std::pair<NodeId, NodeId>> edges;
  auto norm = [](NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k; ++j) edges.insert(norm(u, (u + j) % n));
  }
  // Rewire the far endpoint of each original lattice edge with prob beta.
  std::vector<std::pair<NodeId, NodeId>> lattice(edges.begin(), edges.end());
  for (const auto& e : lattice) {
    if (rng.NextDouble() >= beta) continue;
    edges.erase(e);
    // Keep u, pick a fresh partner not already linked.
    const NodeId u = e.first;
    for (int attempts = 0; attempts < 64; ++attempts) {
      const NodeId w =
          static_cast<NodeId>(rng.NextBounded(static_cast<uint32_t>(n)));
      if (w == u || edges.count(norm(u, w)) != 0) continue;
      edges.insert(norm(u, w));
      break;
    }
    if (edges.count(e) == 0 &&
        static_cast<EdgeId>(edges.size()) < static_cast<EdgeId>(lattice.size())) {
      edges.insert(e);  // all attempts collided: restore the lattice edge
    }
  }
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(std::move(builder).Build()).value();
}

Graph PowerlawCluster(NodeId n, NodeId m, double p, uint64_t seed) {
  assert(m >= 1 && n > m);
  Rng rng(seed);
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  std::vector<NodeId> endpoints;
  auto connect = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
    endpoints.push_back(a);
    endpoints.push_back(b);
  };
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) connect(i, j);
  }
  auto linked = [&](NodeId a, NodeId b) {
    return std::find(adj[a].begin(), adj[a].end(), b) != adj[a].end();
  };
  for (NodeId u = m + 1; u < n; ++u) {
    NodeId added = 0;
    NodeId last = -1;
    while (added < m) {
      NodeId target = -1;
      if (last != -1 && rng.NextDouble() < p) {
        // Triad closure: link to a random neighbor of the last target.
        const auto& cand = adj[last];
        target = cand[rng.NextBounded(static_cast<uint32_t>(cand.size()))];
      } else {
        target = endpoints[rng.NextBounded(
            static_cast<uint32_t>(endpoints.size()))];
      }
      if (target == u || linked(u, target)) {
        // Fall back to a fresh preferential draw next round.
        last = -1;
        continue;
      }
      connect(u, target);
      last = target;
      ++added;
    }
  }
  GraphBuilder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : adj[u]) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  return std::move(std::move(builder).Build()).value();
}

Graph RandomGeometric(NodeId n, double radius, uint64_t seed) {
  assert(n >= 2);
  Rng rng(seed);
  std::vector<std::pair<double, double>> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) p = {rng.NextDouble(), rng.NextDouble()};
  // Sort by x so the radius search only scans a window; O(n * window).
  std::vector<NodeId> by_x(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) by_x[i] = i;
  std::sort(by_x.begin(), by_x.end(), [&](NodeId a, NodeId b) {
    return pts[a].first < pts[b].first;
  });
  GraphBuilder builder(n);
  const double r2 = radius * radius;
  for (std::size_t i = 0; i < by_x.size(); ++i) {
    const NodeId a = by_x[i];
    for (std::size_t j = i + 1; j < by_x.size(); ++j) {
      const NodeId b = by_x[j];
      const double dx = pts[b].first - pts[a].first;
      if (dx > radius) break;
      const double dy = pts[b].second - pts[a].second;
      if (dx * dx + dy * dy <= r2) builder.AddEdge(a, b);
    }
  }
  // Hamiltonian backbone along x keeps the graph connected (road networks
  // are connected by construction; LCC extraction would shrink n).
  for (std::size_t i = 0; i + 1 < by_x.size(); ++i) {
    builder.AddEdge(by_x[i], by_x[i + 1]);
  }
  return std::move(std::move(builder).Build()).value();
}

Graph AssignUniformWeights(const Graph& graph, double lo, double hi,
                           uint64_t seed) {
  assert(lo > 0 && lo <= hi);
  Rng rng(seed ^ 0x5bd1e995u);
  GraphBuilder builder(graph.num_nodes());
  for (const auto& [u, v] : graph.Edges()) {
    builder.AddEdge(u, v, lo + (hi - lo) * rng.NextDouble());
  }
  return std::move(std::move(builder).Build()).value();
}

Graph KnnGraph(const std::vector<std::array<double, 3>>& points, int k) {
  const NodeId n = static_cast<NodeId>(points.size());
  assert(k >= 1 && n > k);
  GraphBuilder builder(n);
  std::vector<std::pair<double, NodeId>> dist;
  for (NodeId i = 0; i < n; ++i) {
    dist.clear();
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      double d2 = 0;
      for (int c = 0; c < 3; ++c) {
        const double d = points[i][c] - points[j][c];
        d2 += d * d;
      }
      dist.emplace_back(d2, j);
    }
    std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
    for (int t = 0; t < k; ++t) builder.AddEdge(i, dist[t].second);
  }
  return std::move(std::move(builder).Build()).value();
}

}  // namespace cfcm
