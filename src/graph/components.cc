#include "graph/components.h"

#include <algorithm>

#include "graph/bfs.h"
#include "graph/builder.h"

namespace cfcm {

std::vector<NodeId> ConnectedComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> label(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> queue;
  NodeId next_label = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (label[s] != -1) continue;
    label[s] = next_label;
    queue.assign(1, s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (NodeId v : graph.neighbors(queue[head])) {
        if (label[v] != -1) continue;
        label[v] = next_label;
        queue.push_back(v);
      }
    }
    ++next_label;
  }
  return label;
}

NodeId NumComponents(const Graph& graph) {
  const auto label = ConnectedComponents(graph);
  NodeId count = 0;
  for (NodeId l : label) count = std::max(count, l + 1);
  return count;
}

bool IsConnected(const Graph& graph) {
  return graph.num_nodes() > 0 && NumComponents(graph) == 1;
}

LccResult LargestConnectedComponent(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  const auto label = ConnectedComponents(graph);
  NodeId num_labels = 0;
  for (NodeId l : label) num_labels = std::max(num_labels, l + 1);

  std::vector<NodeId> size(static_cast<std::size_t>(num_labels), 0);
  for (NodeId l : label) ++size[l];
  const NodeId best = static_cast<NodeId>(
      std::max_element(size.begin(), size.end()) - size.begin());

  LccResult result;
  std::vector<NodeId> to_new(static_cast<std::size_t>(n), -1);
  for (NodeId u = 0; u < n; ++u) {
    if (label[u] == best) {
      to_new[u] = static_cast<NodeId>(result.to_original.size());
      result.to_original.push_back(u);
    }
  }
  GraphBuilder builder(static_cast<NodeId>(result.to_original.size()));
  const bool weighted = !graph.is_unit_weighted();
  for (NodeId u = 0; u < n; ++u) {
    if (to_new[u] == -1) continue;
    const auto adj = graph.neighbors(u);
    const auto w = graph.weights(u);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const NodeId v = adj[k];
      if (u >= v || to_new[v] == -1) continue;
      if (weighted) {
        builder.AddEdge(to_new[u], to_new[v], w[k]);
      } else {
        builder.AddEdge(to_new[u], to_new[v]);
      }
    }
  }
  auto built = std::move(builder).Build();
  result.graph = std::move(built).value();
  return result;
}

}  // namespace cfcm
