// Fixed BFS-tree scaffold shared by all forest estimators.
//
// Every Phi estimator in the paper telescopes per-edge flow statistics
// along a fixed path from u to the root set (Lemma 3.3). Using the BFS
// tree from S keeps paths shortest (length <= tau) and lets all n values
// be computed by one prefix pass over the BFS order.
#ifndef CFCM_FOREST_BFS_TREE_H_
#define CFCM_FOREST_BFS_TREE_H_

#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief BFS tree rooted at a node set, plus the root indicator mask.
struct TreeScaffold {
  std::vector<NodeId> roots;  ///< deduplicated root set
  std::vector<char> is_root;  ///< n-length 0/1 mask
  BfsResult bfs;              ///< order/parent/depth from the roots
};

/// Builds the scaffold; requires a connected graph and non-empty roots
/// (asserts that BFS reaches every node).
TreeScaffold MakeTreeScaffold(const Graph& graph,
                              const std::vector<NodeId>& roots);

}  // namespace cfcm

#endif  // CFCM_FOREST_BFS_TREE_H_
