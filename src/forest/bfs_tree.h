// Fixed BFS-tree scaffold shared by all forest estimators.
//
// Every Phi estimator in the paper telescopes per-edge flow statistics
// along a fixed path from u to the root set (Lemma 3.3). Using the BFS
// tree from S keeps paths shortest (length <= tau) and lets all n values
// be computed by one prefix pass over the BFS order. On weighted graphs
// the telescoped identities carry a 1/w_e factor per traversed edge
// (see phi_estimators.h), so the scaffold precomputes each node's
// up-edge inverse conductance and its cumulative "resistance depth".
#ifndef CFCM_FOREST_BFS_TREE_H_
#define CFCM_FOREST_BFS_TREE_H_

#include <vector>

#include "graph/bfs.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief BFS tree rooted at a node set, plus the root indicator mask.
struct TreeScaffold {
  std::vector<NodeId> roots;  ///< deduplicated root set
  std::vector<char> is_root;  ///< n-length 0/1 mask
  BfsResult bfs;              ///< order/parent/depth from the roots

  /// 1 / w(u, bfs.parent[u]) for non-roots; 0 at roots. All-ones on
  /// unit-weighted graphs.
  std::vector<double> up_inv_weight;

  /// Resistance depth: sum of up_inv_weight along u's BFS path to the
  /// roots. Equals (double)bfs.depth[u] exactly on unit-weighted graphs;
  /// bounds the per-edge estimator increments for Bernstein sups.
  std::vector<double> resistance_depth;
};

/// Builds the scaffold; requires a connected graph and non-empty roots
/// (asserts that BFS reaches every node).
TreeScaffold MakeTreeScaffold(const Graph& graph,
                              const std::vector<NodeId>& roots);

}  // namespace cfcm

#endif  // CFCM_FOREST_BFS_TREE_H_
