#include "forest/bfs_tree.h"

#include <cassert>

namespace cfcm {

TreeScaffold MakeTreeScaffold(const Graph& graph,
                              const std::vector<NodeId>& roots) {
  assert(!roots.empty());
  TreeScaffold scaffold;
  scaffold.is_root.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
  for (NodeId r : roots) {
    assert(r >= 0 && r < graph.num_nodes());
    if (!scaffold.is_root[r]) {
      scaffold.is_root[r] = 1;
      scaffold.roots.push_back(r);
    }
  }
  scaffold.bfs = Bfs(graph, scaffold.roots);
  assert(scaffold.bfs.num_reached() == graph.num_nodes() &&
         "estimators require a connected graph");
  return scaffold;
}

}  // namespace cfcm
