#include "forest/bfs_tree.h"

#include <cassert>

namespace cfcm {

TreeScaffold MakeTreeScaffold(const Graph& graph,
                              const std::vector<NodeId>& roots) {
  assert(!roots.empty());
  TreeScaffold scaffold;
  scaffold.is_root.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
  for (NodeId r : roots) {
    assert(r >= 0 && r < graph.num_nodes());
    if (!scaffold.is_root[r]) {
      scaffold.is_root[r] = 1;
      scaffold.roots.push_back(r);
    }
  }
  scaffold.bfs = Bfs(graph, scaffold.roots);
  assert(scaffold.bfs.num_reached() == graph.num_nodes() &&
         "estimators require a connected graph");

  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  scaffold.up_inv_weight.assign(n, 0.0);
  scaffold.resistance_depth.assign(n, 0.0);
  const bool unit = graph.is_unit_weighted();
  // BFS order visits parents before children, so resistance_depth can be
  // accumulated in one pass.
  for (NodeId u : scaffold.bfs.order) {
    if (scaffold.is_root[u]) continue;
    const NodeId p = scaffold.bfs.parent[u];
    const double iw = unit ? 1.0 : 1.0 / graph.EdgeWeight(u, p);
    scaffold.up_inv_weight[u] = iw;
    scaffold.resistance_depth[u] = scaffold.resistance_depth[p] + iw;
  }
  return scaffold;
}

}  // namespace cfcm
