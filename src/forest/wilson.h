// Wilson's algorithm for random rooted spanning forests (paper Alg. 1).
#ifndef CFCM_FOREST_WILSON_H_
#define CFCM_FOREST_WILSON_H_

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief A rooted spanning forest of G with a fixed root set.
///
/// `parent[u]` is pi_u for non-roots and -1 for roots. `leaves_first`
/// lists all non-root nodes such that every node appears before its
/// forest parent (the paper's reverse-DFS order L_DFS); iterating it
/// lets subtree aggregates be computed with one visit per node.
/// `root_of[u]` is rho_u, the root of u's tree (roots map to themselves).
struct RootedForest {
  std::vector<NodeId> parent;
  std::vector<NodeId> leaves_first;
  std::vector<NodeId> root_of;
};

/// \brief Scratch buffers for repeated sampling (avoids reallocation on
/// the hot path). One instance per worker thread.
///
/// On unit-weighted graphs the walk picks a uniform neighbor per step
/// (the original integer fast path, bit-for-bit identical RNG
/// consumption). On weighted graphs each step picks neighbor v of u with
/// probability w_uv / d_w(u) via a per-node prefix-sum table built once
/// at construction (O(log deg) binary search per step), so sampled
/// forests follow the weighted forest measure Pr[F] ∝ prod_{e in F} w_e.
class ForestSampler {
 public:
  explicit ForestSampler(const Graph& graph);

  /// Samples a random spanning forest rooted at {u : is_root[u] != 0}
  /// via loop-erased random walks. The root set must be non-empty and the
  /// graph connected. Deterministic in *rng.
  ///
  /// The returned reference points at internal buffers valid until the
  /// next Sample() call on this sampler.
  const RootedForest& Sample(const std::vector<char>& is_root, Rng* rng);

  /// Total random-walk steps taken by the last Sample() call (the cost
  /// measure of Lemma 3.7: Tr((I - P_{-S})^{-1}) in expectation).
  std::int64_t last_walk_steps() const { return last_walk_steps_; }

 private:
  NodeId StepFrom(NodeId u, Rng* rng) const;

  const Graph& graph_;
  RootedForest forest_;
  std::vector<char> in_forest_;
  std::vector<NodeId> chain_;
  // Weighted walks only: prefix sums of each node's adjacency weights,
  // aligned with the CSR layout (prefix_[k] = cumulative weight through
  // raw neighbor slot k within its node's list). Empty on unit graphs.
  std::vector<double> prefix_;
  std::int64_t last_walk_steps_ = 0;
};

}  // namespace cfcm

#endif  // CFCM_FOREST_WILSON_H_
