#include "forest/subtree.h"

#include <cassert>
#include <cstring>

namespace cfcm {

void SubtreeSizes(const RootedForest& forest, std::vector<int32_t>* sizes) {
  const std::size_t n = forest.parent.size();
  sizes->assign(n, 0);
  for (NodeId u : forest.leaves_first) (*sizes)[u] += 1;  // self-weight
  for (NodeId u : forest.leaves_first) {
    (*sizes)[forest.parent[u]] += (*sizes)[u];
  }
}

void SubtreeJlSums(const RootedForest& forest, const std::vector<char>& is_root,
                   const JlSketch& sketch, double* buf) {
  const std::size_t n = forest.parent.size();
  const int w = sketch.num_rows();
  // Roots carry no self-weight; overwrite everything else below.
  for (std::size_t u = 0; u < n; ++u) {
    double* row = buf + u * static_cast<std::size_t>(w);
    if (is_root[u]) {
      std::memset(row, 0, sizeof(double) * static_cast<std::size_t>(w));
    } else {
      sketch.ColumnInto(static_cast<NodeId>(u), row);
    }
  }
  for (NodeId u : forest.leaves_first) {
    const double* src = buf + static_cast<std::size_t>(u) * w;
    double* dst = buf + static_cast<std::size_t>(forest.parent[u]) * w;
    for (int j = 0; j < w; ++j) dst[j] += src[j];
  }
}

}  // namespace cfcm
