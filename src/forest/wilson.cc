#include "forest/wilson.h"

#include <algorithm>
#include <cassert>

namespace cfcm {

ForestSampler::ForestSampler(const Graph& graph) : graph_(graph) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  forest_.parent.assign(n, -1);
  forest_.root_of.assign(n, -1);
  forest_.leaves_first.reserve(n);
  in_forest_.assign(n, 0);
  if (!graph.is_unit_weighted()) {
    const auto& raw_w = graph.raw_weights();
    prefix_.resize(raw_w.size());
    const auto& offsets = graph.offsets();
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      double acc = 0;
      for (EdgeId k = offsets[u]; k < offsets[u + 1]; ++k) {
        acc += raw_w[static_cast<std::size_t>(k)];
        prefix_[static_cast<std::size_t>(k)] = acc;
      }
    }
  }
}

NodeId ForestSampler::StepFrom(NodeId u, Rng* rng) const {
  const auto nbrs = graph_.neighbors(u);
  if (prefix_.empty()) {
    // Unit-weighted fast path: uniform neighbor, one bounded draw.
    return nbrs[rng->NextBounded(static_cast<uint32_t>(nbrs.size()))];
  }
  const auto& offsets = graph_.offsets();
  const std::size_t lo = static_cast<std::size_t>(offsets[u]);
  const std::size_t hi = static_cast<std::size_t>(offsets[u + 1]);
  const double total = prefix_[hi - 1];
  const double r = rng->NextDouble() * total;
  // First slot whose cumulative weight exceeds r; r < total almost
  // surely, but clamp against rounding at the boundary.
  const auto it =
      std::upper_bound(prefix_.begin() + lo, prefix_.begin() + hi, r);
  const std::size_t k =
      it == prefix_.begin() + hi ? hi - 1
                                 : static_cast<std::size_t>(it - prefix_.begin());
  return graph_.raw_neighbors()[k];
}

const RootedForest& ForestSampler::Sample(const std::vector<char>& is_root,
                                          Rng* rng) {
  const NodeId n = graph_.num_nodes();
  assert(static_cast<NodeId>(is_root.size()) == n);

  std::copy(is_root.begin(), is_root.end(), in_forest_.begin());
  forest_.leaves_first.clear();
  last_walk_steps_ = 0;

  auto& parent = forest_.parent;
  for (NodeId u = 0; u < n; ++u) {
    parent[u] = -1;
    forest_.root_of[u] = is_root[u] ? u : -1;
  }

  for (NodeId start = 0; start < n; ++start) {
    if (in_forest_[start]) continue;
    // Phase 1: random walk until the current forest is hit. Only the last
    // exit edge per node survives, which is exactly loop erasure.
    NodeId i = start;
    while (!in_forest_[i]) {
      parent[i] = StepFrom(i, rng);
      ++last_walk_steps_;
      i = parent[i];
    }
    // Phase 2: retrace the loop-erased path and commit it to the forest.
    chain_.clear();
    i = start;
    while (!in_forest_[i]) {
      in_forest_[i] = 1;
      chain_.push_back(i);
      i = parent[i];
    }
    // Append root-to-leaf so that the final global reversal yields a
    // leaves-before-parents order (paper Alg. 1 lines 13-14).
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
      forest_.leaves_first.push_back(*it);
    }
  }
  std::reverse(forest_.leaves_first.begin(), forest_.leaves_first.end());

  // rho_u: parents precede children in the reversed iteration below.
  for (auto it = forest_.leaves_first.rbegin();
       it != forest_.leaves_first.rend(); ++it) {
    forest_.root_of[*it] = forest_.root_of[parent[*it]];
  }
  return forest_;
}

}  // namespace cfcm
