#include "forest/wilson.h"

#include <algorithm>
#include <cassert>

namespace cfcm {

ForestSampler::ForestSampler(const Graph& graph) : graph_(graph) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  forest_.parent.assign(n, -1);
  forest_.root_of.assign(n, -1);
  forest_.leaves_first.reserve(n);
  in_forest_.assign(n, 0);
}

const RootedForest& ForestSampler::Sample(const std::vector<char>& is_root,
                                          Rng* rng) {
  const NodeId n = graph_.num_nodes();
  assert(static_cast<NodeId>(is_root.size()) == n);

  std::copy(is_root.begin(), is_root.end(), in_forest_.begin());
  forest_.leaves_first.clear();
  last_walk_steps_ = 0;

  auto& parent = forest_.parent;
  for (NodeId u = 0; u < n; ++u) {
    parent[u] = -1;
    forest_.root_of[u] = is_root[u] ? u : -1;
  }

  for (NodeId start = 0; start < n; ++start) {
    if (in_forest_[start]) continue;
    // Phase 1: random walk until the current forest is hit. Only the last
    // exit edge per node survives, which is exactly loop erasure.
    NodeId i = start;
    while (!in_forest_[i]) {
      const auto nbrs = graph_.neighbors(i);
      parent[i] = nbrs[rng->NextBounded(static_cast<uint32_t>(nbrs.size()))];
      ++last_walk_steps_;
      i = parent[i];
    }
    // Phase 2: retrace the loop-erased path and commit it to the forest.
    chain_.clear();
    i = start;
    while (!in_forest_[i]) {
      in_forest_[i] = 1;
      chain_.push_back(i);
      i = parent[i];
    }
    // Append root-to-leaf so that the final global reversal yields a
    // leaves-before-parents order (paper Alg. 1 lines 13-14).
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
      forest_.leaves_first.push_back(*it);
    }
  }
  std::reverse(forest_.leaves_first.begin(), forest_.leaves_first.end());

  // rho_u: parents precede children in the reversed iteration below.
  for (auto it = forest_.leaves_first.rbegin();
       it != forest_.leaves_first.rend(); ++it) {
    forest_.root_of[*it] = forest_.root_of[parent[*it]];
  }
  return forest_;
}

}  // namespace cfcm
