// Subtree aggregation kernels over sampled forests.
//
// For a forest edge (u, pi_u), the set of sources whose root path
// traverses u -> pi_u is exactly subtree(u); all per-forest weighted flow
// statistics therefore reduce to subtree sums, computable in one pass
// over the leaves-first order (paper Alg. 2 lines 8-10).
#ifndef CFCM_FOREST_SUBTREE_H_
#define CFCM_FOREST_SUBTREE_H_

#include <cstdint>
#include <vector>

#include "forest/wilson.h"
#include "linalg/jl.h"

namespace cfcm {

/// \brief sizes[u] = |subtree(u)| counting only non-root nodes as weight
/// carriers, i.e. every non-root contributes 1, roots contribute 0 but
/// still accumulate their descendants. O(n).
void SubtreeSizes(const RootedForest& forest, std::vector<int32_t>* sizes);

/// \brief Per-node JL subtree sums.
///
/// On return buf[u*w + j] = sum over v in subtree(u) of W(j, v), where
/// roots carry zero self-weight (W is defined on V \ roots, matching the
/// paper's W in R^{w x |V\S|}). `buf` must have n*w entries. O(n*w).
void SubtreeJlSums(const RootedForest& forest, const std::vector<char>& is_root,
                   const JlSketch& sketch, double* buf);

}  // namespace cfcm

#endif  // CFCM_FOREST_SUBTREE_H_
