#include "runtime/mc_runtime.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cfcm {

namespace {

// Per-shard commit turnstile: the next relative forest index allowed to
// commit. Spin briefly (the predecessor is usually mid-commit on another
// core), then yield so an oversubscribed host still makes progress.
void AwaitTurn(const std::atomic<int>& ticket, int relative_forest) {
  int spins = 0;
  while (ticket.load(std::memory_order_acquire) != relative_forest) {
    if (++spins >= 256) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace

std::size_t McScratchSlots(const ThreadPool& pool) {
  return pool.num_threads() + 1;
}

McRunStats RunForestBatch(ThreadPool& pool, const McRunOptions& options,
                          std::uint64_t base_forest, int count,
                          ForestKernel& kernel) {
  McRunStats stats;
  if (count <= 0) return stats;
  stats.forests = count;

  const int chunk = std::max(1, options.chunk_forests);
  const int num_chunks = (count + chunk - 1) / chunk;
  stats.chunks = num_chunks;

  const NodeId n = options.num_nodes;
  const NodeId shard_width = std::max<NodeId>(1, options.shard_nodes);
  // Overflow-safe ceil-div: n can sit near the NodeId maximum.
  const int num_shards =
      n > 0 ? static_cast<int>(n / shard_width + (n % shard_width != 0)) : 0;

  // tickets[s] gates shard s; tickets[num_shards] gates AccumulateTail.
  // Progress argument: chunks are claimed in increasing order, so every
  // forest a committer waits on is owned by an executor that is already
  // running, and the globally smallest uncommitted forest never waits.
  std::vector<std::atomic<int>> tickets(
      static_cast<std::size_t>(num_shards) + 1);
  for (auto& t : tickets) t.store(0, std::memory_order_relaxed);

  std::atomic<int> next_chunk{0};
  std::atomic<std::int64_t> walk_steps{0};

  pool.ParallelFor(McScratchSlots(pool), [&](std::size_t slot) {
    std::int64_t local_steps = 0;
    for (;;) {
      const int c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const int first = c * chunk;
      const int last = std::min(count, first + chunk);
      for (int r = first; r < last; ++r) {
        local_steps +=
            kernel.ProcessForest(slot, base_forest + static_cast<uint64_t>(r));
        for (int s = 0; s < num_shards; ++s) {
          AwaitTurn(tickets[s], r);
          const NodeId begin = static_cast<NodeId>(s) * shard_width;
          kernel.Accumulate(slot, begin,
                            begin + std::min<NodeId>(shard_width, n - begin));
          tickets[s].store(r + 1, std::memory_order_release);
        }
        AwaitTurn(tickets[num_shards], r);
        kernel.AccumulateTail(slot);
        tickets[num_shards].store(r + 1, std::memory_order_release);
      }
    }
    walk_steps.fetch_add(local_steps, std::memory_order_relaxed);
  });

  stats.walk_steps = walk_steps.load(std::memory_order_relaxed);

  // Observability only: these counters never feed back into scheduling,
  // so the per-seed bitwise determinism of the batch is untouched.
  // Name resolution happens once per process; recording is relaxed adds.
  static obs::Counter* const batches =
      &obs::MetricsRegistry::Global().counter("runtime.batches");
  static obs::Counter* const forests =
      &obs::MetricsRegistry::Global().counter("runtime.forests");
  static obs::Counter* const steps =
      &obs::MetricsRegistry::Global().counter("runtime.walk_steps");
  static obs::Counter* const chunks =
      &obs::MetricsRegistry::Global().counter("runtime.chunks");
  batches->Add(1);
  forests->Add(static_cast<uint64_t>(stats.forests));
  steps->Add(static_cast<uint64_t>(stats.walk_steps));
  chunks->Add(static_cast<uint64_t>(stats.chunks));
  return stats;
}

}  // namespace cfcm
