#include "runtime/shared_pool.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

namespace cfcm {

ThreadPool& SharedThreadPool(int num_threads) {
  // Intentionally leaked: pools must outlive any static-destruction-time
  // caller, mirroring the SolverRegistry singleton.
  static std::mutex* mu = new std::mutex;
  static auto* pools = new std::map<std::size_t, std::unique_ptr<ThreadPool>>;

  const std::size_t resolved =
      num_threads > 0
          ? static_cast<std::size_t>(num_threads)
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::lock_guard<std::mutex> lock(*mu);
  std::unique_ptr<ThreadPool>& slot = (*pools)[resolved];
  if (!slot) slot = std::make_unique<ThreadPool>(resolved);
  return *slot;
}

}  // namespace cfcm
