// Deterministic Monte-Carlo sampling runtime shared by every forest
// estimator (DESIGN.md §9).
//
// The paper's estimators (Alg. 1-4) all follow one loop: sample a rooted
// spanning forest, run O(n) / O(n·w) per-forest passes, accumulate the
// per-node statistics, and periodically test an empirical-Bernstein stop
// rule. This header factors the scheduling + reduction half of that loop
// out of the estimators so that
//   (a) forests are assigned to fixed-size chunks keyed by the global
//       forest index and stolen dynamically by pool executors,
//   (b) accumulation happens in *forest-index order per node shard*, so
//       every estimate is bitwise identical for 1, 2, 8 or N threads,
//   (c) there is exactly one accumulator copy (the kernel's), not one
//       per worker — accumulator memory no longer scales with the
//       thread count (per-slot scratch for the per-forest passes
//       remains, as any parallel execution requires), and
//   (d) random-walk step counts are aggregated for load-balance
//       telemetry (ForestSampler::last_walk_steps).
#ifndef CFCM_RUNTIME_MC_RUNTIME_H_
#define CFCM_RUNTIME_MC_RUNTIME_H_

#include <cstddef>
#include <cstdint>

#include "common/thread_pool.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief Per-forest estimator kernel plugged into RunForestBatch.
///
/// A kernel owns (1) one scratch state per executor slot (sampler plus
/// per-forest pass buffers) and (2) one shared set of accumulators.
/// The runtime drives it under this contract:
///
///  * ProcessForest(slot, f) samples forest `f` and computes its
///    per-forest statistics into slot-private scratch. Different slots
///    run concurrently; a slot never runs two forests at once.
///  * Accumulate(slot, begin, end) folds the slot's current forest into
///    the shared accumulators for nodes [begin, end). The runtime
///    serializes these calls per node shard *in increasing forest
///    order*, so plain (non-atomic) accumulators are race-free and the
///    reduction order — hence every IEEE rounding — is a pure function
///    of the forest indices, not of the thread count.
///  * AccumulateTail(slot) is the same ordered commit for statistics not
///    indexed by node (e.g. SchurDelta's per-tree JL sums); called once
///    per forest after all node shards.
class ForestKernel {
 public:
  virtual ~ForestKernel() = default;

  /// Samples forest `forest_index` into the scratch of `slot` and runs
  /// the per-forest passes. Returns the random-walk step count.
  virtual std::int64_t ProcessForest(std::size_t slot,
                                     std::uint64_t forest_index) = 0;

  /// Folds the slot's current forest into the shared accumulators for
  /// nodes [begin, end). Serialized per shard, in forest order.
  virtual void Accumulate(std::size_t slot, NodeId begin, NodeId end) = 0;

  /// Ordered per-forest commit of non-node-sharded statistics.
  virtual void AccumulateTail(std::size_t slot) { (void)slot; }
};

/// Scheduling/reduction geometry. Both knobs are deliberately
/// independent of the thread count: they shape the work and commit
/// granularity, never the result.
struct McRunOptions {
  /// Node-domain size; shards tile [0, num_nodes).
  NodeId num_nodes = 0;
  /// Forests per scheduling chunk (a chunk is claimed atomically by one
  /// executor and processed in forest order). Default 1: an executor
  /// samples its forest fully in parallel and only the commit passes
  /// through the turnstile. Larger chunks amortize the claim fetch_add
  /// but serialize sampling — forest r+1 of a chunk is not sampled
  /// until forest r has committed behind every earlier forest, capping
  /// speedup near chunk/(chunk-1) regardless of thread count.
  int chunk_forests = 1;
  /// Nodes per reduction shard. Smaller shards pipeline the ordered
  /// commits across more executors; 1 shard serializes them entirely.
  NodeId shard_nodes = 4096;
};

/// Telemetry of one RunForestBatch call.
struct McRunStats {
  std::int64_t walk_steps = 0;  ///< total loop-erased walk steps
  int forests = 0;              ///< forests processed (== count)
  int chunks = 0;               ///< scheduling chunks used
};

/// Number of scratch slots a kernel must provision to run on `pool`
/// (every pool worker plus the calling thread can execute chunks).
std::size_t McScratchSlots(const ThreadPool& pool);

/// \brief Runs forests [base_forest, base_forest + count) through
/// `kernel` on `pool`.
///
/// Chunks are stolen dynamically, yet all Accumulate/AccumulateTail
/// calls land in forest-index order per shard, so the kernel's
/// accumulators end up bitwise identical for every pool size — equal,
/// in particular, to a sequential run in pure forest order.
McRunStats RunForestBatch(ThreadPool& pool, const McRunOptions& options,
                          std::uint64_t base_forest, int count,
                          ForestKernel& kernel);

}  // namespace cfcm

#endif  // CFCM_RUNTIME_MC_RUNTIME_H_
