#include "runtime/forest_arena.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cfcm {
namespace {

// splitmix64 finalizer — turns an UndirectedEdgeKey into two independent
// bit positions in [0, 128) for the per-forest Bloom signature.
inline uint64_t MixEdgeKey(uint64_t key) {
  key += 0x9e3779b97f4a7c15ULL;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  return key ^ (key >> 31);
}

}  // namespace

void ForestArena::BeginRound(NodeId n, const std::vector<NodeId>& roots,
                             uint64_t seed, int capacity) {
  if (!MatchesRound(n, roots, seed)) {
    n_ = n;
    roots_ = roots;
    seed_ = seed;
    committed_ = 0;
    leaves_len_ = n - static_cast<NodeId>(roots.size());
  }
  if (capacity > capacity_) {
    capacity_ = capacity;
    const std::size_t cap = static_cast<std::size_t>(capacity_);
    parent_slab_.resize(cap * static_cast<std::size_t>(n_));
    leaves_slab_.resize(cap * static_cast<std::size_t>(leaves_len_));
    root_of_slab_.resize(cap * static_cast<std::size_t>(n_));
    signature_slab_.resize(cap * static_cast<std::size_t>(kSignatureWords));
  }
}

bool ForestArena::MatchesRound(NodeId n, const std::vector<NodeId>& roots,
                               uint64_t seed) const {
  return n == n_ && seed == seed_ && roots == roots_;
}

void ForestArena::Store(int f, const RootedForest& forest) {
  assert(f >= 0 && f < capacity_);
  assert(static_cast<NodeId>(forest.parent.size()) == n_);
  assert(static_cast<NodeId>(forest.leaves_first.size()) == leaves_len_);
  const std::size_t nf = static_cast<std::size_t>(f);
  std::memcpy(parent_slab_.data() + nf * static_cast<std::size_t>(n_),
              forest.parent.data(), sizeof(NodeId) * forest.parent.size());
  std::memcpy(leaves_slab_.data() + nf * static_cast<std::size_t>(leaves_len_),
              forest.leaves_first.data(),
              sizeof(NodeId) * forest.leaves_first.size());
  std::memcpy(root_of_slab_.data() + nf * static_cast<std::size_t>(n_),
              forest.root_of.data(), sizeof(NodeId) * forest.root_of.size());
  uint64_t* sig = signature_slab_.data() + nf * kSignatureWords;
  sig[0] = sig[1] = 0;
  for (NodeId u = 0; u < n_; ++u) {
    const NodeId p = forest.parent[static_cast<std::size_t>(u)];
    if (p < 0) continue;  // root
    const uint64_t h = MixEdgeKey(UndirectedEdgeKey(u, p));
    const unsigned b0 = static_cast<unsigned>(h & 127u);
    const unsigned b1 = static_cast<unsigned>((h >> 7) & 127u);
    sig[b0 >> 6] |= uint64_t{1} << (b0 & 63u);
    sig[b1 >> 6] |= uint64_t{1} << (b1 & 63u);
  }
}

bool ForestArena::MaybeContainsEdge(int f, uint64_t edge_key) const {
  assert(f >= 0 && f < committed_);
  const uint64_t* sig =
      signature_slab_.data() + static_cast<std::size_t>(f) * kSignatureWords;
  const uint64_t h = MixEdgeKey(edge_key);
  const unsigned b0 = static_cast<unsigned>(h & 127u);
  const unsigned b1 = static_cast<unsigned>((h >> 7) & 127u);
  return (sig[b0 >> 6] >> (b0 & 63u) & 1u) != 0 &&
         (sig[b1 >> 6] >> (b1 & 63u) & 1u) != 0;
}

bool ForestArena::ContainsUpEdge(int f, NodeId u, NodeId v) const {
  assert(f >= 0 && f < committed_);
  if (u < 0 || v < 0 || u >= n_ || v >= n_) return false;
  const NodeId* parents =
      parent_slab_.data() + static_cast<std::size_t>(f) * n_;
  return parents[static_cast<std::size_t>(u)] == v ||
         parents[static_cast<std::size_t>(v)] == u;
}

void ForestArena::Commit(int upto) {
  committed_ = std::max(committed_, std::min(upto, capacity_));
}

void ForestArena::LoadInto(int f, RootedForest* out) const {
  assert(f >= 0 && f < committed_);
  const std::size_t nf = static_cast<std::size_t>(f);
  out->parent.assign(
      parent_slab_.data() + nf * static_cast<std::size_t>(n_),
      parent_slab_.data() + (nf + 1) * static_cast<std::size_t>(n_));
  out->leaves_first.assign(
      leaves_slab_.data() + nf * static_cast<std::size_t>(leaves_len_),
      leaves_slab_.data() + (nf + 1) * static_cast<std::size_t>(leaves_len_));
  out->root_of.assign(
      root_of_slab_.data() + nf * static_cast<std::size_t>(n_),
      root_of_slab_.data() + (nf + 1) * static_cast<std::size_t>(n_));
}

}  // namespace cfcm
