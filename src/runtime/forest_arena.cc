#include "runtime/forest_arena.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace cfcm {

void ForestArena::BeginRound(NodeId n, const std::vector<NodeId>& roots,
                             uint64_t seed, int capacity) {
  if (!MatchesRound(n, roots, seed)) {
    n_ = n;
    roots_ = roots;
    seed_ = seed;
    committed_ = 0;
    leaves_len_ = n - static_cast<NodeId>(roots.size());
  }
  if (capacity > capacity_) {
    capacity_ = capacity;
    const std::size_t cap = static_cast<std::size_t>(capacity_);
    parent_slab_.resize(cap * static_cast<std::size_t>(n_));
    leaves_slab_.resize(cap * static_cast<std::size_t>(leaves_len_));
    root_of_slab_.resize(cap * static_cast<std::size_t>(n_));
  }
}

bool ForestArena::MatchesRound(NodeId n, const std::vector<NodeId>& roots,
                               uint64_t seed) const {
  return n == n_ && seed == seed_ && roots == roots_;
}

void ForestArena::Store(int f, const RootedForest& forest) {
  assert(f >= 0 && f < capacity_);
  assert(static_cast<NodeId>(forest.parent.size()) == n_);
  assert(static_cast<NodeId>(forest.leaves_first.size()) == leaves_len_);
  const std::size_t nf = static_cast<std::size_t>(f);
  std::memcpy(parent_slab_.data() + nf * static_cast<std::size_t>(n_),
              forest.parent.data(), sizeof(NodeId) * forest.parent.size());
  std::memcpy(leaves_slab_.data() + nf * static_cast<std::size_t>(leaves_len_),
              forest.leaves_first.data(),
              sizeof(NodeId) * forest.leaves_first.size());
  std::memcpy(root_of_slab_.data() + nf * static_cast<std::size_t>(n_),
              forest.root_of.data(), sizeof(NodeId) * forest.root_of.size());
}

void ForestArena::Commit(int upto) {
  committed_ = std::max(committed_, std::min(upto, capacity_));
}

void ForestArena::LoadInto(int f, RootedForest* out) const {
  assert(f >= 0 && f < committed_);
  const std::size_t nf = static_cast<std::size_t>(f);
  out->parent.assign(
      parent_slab_.data() + nf * static_cast<std::size_t>(n_),
      parent_slab_.data() + (nf + 1) * static_cast<std::size_t>(n_));
  out->leaves_first.assign(
      leaves_slab_.data() + nf * static_cast<std::size_t>(leaves_len_),
      leaves_slab_.data() + (nf + 1) * static_cast<std::size_t>(leaves_len_));
  out->root_of.assign(
      root_of_slab_.data() + nf * static_cast<std::size_t>(n_),
      root_of_slab_.data() + (nf + 1) * static_cast<std::size_t>(n_));
}

}  // namespace cfcm
