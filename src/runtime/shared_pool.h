// Process-wide shared worker pools (DESIGN.md §9).
//
// Solvers used to construct a throwaway ThreadPool per call, which paid
// thread spawn/join on every greedy iteration and meant the engine's
// cached GraphSession::pool() was never used by the hot path. Callers
// that hold a pool (the engine session) now inject it via
// CfcmOptions::pool; everyone else shares a lazily-created,
// process-lifetime pool per requested size from this registry.
#ifndef CFCM_RUNTIME_SHARED_POOL_H_
#define CFCM_RUNTIME_SHARED_POOL_H_

#include "common/thread_pool.h"

namespace cfcm {

/// \brief The process-wide pool with `num_threads` workers
/// (<= 0 resolves to hardware concurrency, matching
/// CfcmOptions::num_threads semantics).
///
/// Pools are created on first use, cached per resolved size, and live for
/// the process (results are thread-count-invariant, so sharing a pool
/// across callers never changes any output). Thread-safe.
ThreadPool& SharedThreadPool(int num_threads = 0);

}  // namespace cfcm

#endif  // CFCM_RUNTIME_SHARED_POOL_H_
