// Round-scoped retention pool for sampled rooted forests.
//
// The lazy-greedy selection layer re-scores small candidate subsets
// several times within one greedy round, and each re-score call walks
// the same forest stream (same seed, same indices). Retaining every
// sampled forest in flat per-forest slabs lets later calls *replay* a
// forest (an O(n) copy) instead of re-running its loop-erased walks,
// and lets the next round's reuse pre-screen re-read the previous
// round's forests after cutting out the newly selected node.
//
// Storage is three flat slabs (parent / leaves_first / root_of), one
// stride per forest, sized once per round and recycled across rounds —
// steady-state rounds allocate nothing. Store() calls for distinct
// forest indices write disjoint slab regions, so the sampling runtime's
// executors can store concurrently without locks; Commit() publishes a
// prefix of forests for replay and is only called between batches (the
// runtime's join is the synchronization point).
#ifndef CFCM_RUNTIME_FOREST_ARENA_H_
#define CFCM_RUNTIME_FOREST_ARENA_H_

#include <cstdint>
#include <vector>

#include "forest/wilson.h"
#include "graph/graph.h"

namespace cfcm {

class ForestArena {
 public:
  /// Prepares the arena for sampling forests rooted at `roots` under
  /// stream seed `seed`, with room for `capacity` forests. When the
  /// (n, roots, seed) signature matches the current round the stored
  /// forests stay valid (capacity may still grow); otherwise the arena
  /// forgets its forests but keeps the slab memory.
  void BeginRound(NodeId n, const std::vector<NodeId>& roots, uint64_t seed,
                  int capacity);

  /// True if stored forests were sampled for exactly this root set and
  /// seed (i.e. replaying them is bitwise equivalent to resampling).
  bool MatchesRound(NodeId n, const std::vector<NodeId>& roots,
                    uint64_t seed) const;

  /// Forests available for replay: indices [0, committed()).
  int committed() const { return committed_; }

  /// Slab capacity in forests for the current round.
  int capacity() const { return capacity_; }

  /// Copies forest `f` (must be < capacity()) into the arena. Safe to
  /// call concurrently for distinct `f`.
  void Store(int f, const RootedForest& forest);

  /// Publishes forests [0, upto) for replay; never shrinks.
  void Commit(int upto);

  /// Reconstructs stored forest `f` (must be < committed()) into `out`,
  /// bitwise identical to the RootedForest passed to Store().
  void LoadInto(int f, RootedForest* out) const;

  /// Bloom pre-filter over forest f's up-edge set: false means no walk
  /// of the stored forest crossed the undirected edge with this
  /// UndirectedEdgeKey; true may be a false positive (confirm with
  /// ContainsUpEdge). 128 bits / 2 hash probes per forest, filled by
  /// Store() from the parent array.
  bool MaybeContainsEdge(int f, uint64_t edge_key) const;

  /// Exact membership test: forest f (must be < committed()) uses
  /// {u, v} as an up-edge, i.e. parent[u] == v or parent[v] == u.
  bool ContainsUpEdge(int f, NodeId u, NodeId v) const;

  /// Root set the stored forests were sampled for.
  const std::vector<NodeId>& roots() const { return roots_; }

  /// Drops all stored forests (keeps slab memory for reuse).
  void Invalidate() { committed_ = 0; }

 private:
  NodeId n_ = 0;
  uint64_t seed_ = 0;
  std::vector<NodeId> roots_;
  int capacity_ = 0;
  int committed_ = 0;
  NodeId leaves_len_ = 0;  // n - |roots|: fixed leaves_first length
  std::vector<NodeId> parent_slab_;
  std::vector<NodeId> leaves_slab_;
  std::vector<NodeId> root_of_slab_;
  // Per-forest 128-bit edge-set Bloom signature (kSignatureWords words).
  std::vector<uint64_t> signature_slab_;

  static constexpr int kSignatureWords = 2;
};

}  // namespace cfcm

#endif  // CFCM_RUNTIME_FOREST_ARENA_H_
