// Laplacian matrices and grounded submatrices L_{-S}.
#ifndef CFCM_LINALG_LAPLACIAN_H_
#define CFCM_LINALG_LAPLACIAN_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/dense.h"

namespace cfcm {

/// \brief Index bookkeeping for the grounded submatrix L_{-S}.
///
/// `kept` lists nodes of V \ S in ascending order; `pos[u]` is u's row
/// index in L_{-S} or -1 if u is in S.
struct SubmatrixIndex {
  std::vector<NodeId> kept;
  std::vector<NodeId> pos;
};

/// Builds the index for removing `removed` (duplicates allowed).
SubmatrixIndex MakeSubmatrixIndex(NodeId n, const std::vector<NodeId>& removed);

/// Full dense Laplacian L = D_w - A_w (weighted degrees on the diagonal,
/// -w_uv off-diagonal; the unweighted L = D - A when unit-weighted).
DenseMatrix DenseLaplacian(const Graph& graph);

/// Dense grounded submatrix L_{-S} over index.kept (full-graph weighted
/// degrees on the diagonal).
DenseMatrix DenseLaplacianSubmatrix(const Graph& graph,
                                    const SubmatrixIndex& index);

/// \brief Dense Moore–Penrose pseudoinverse of the Laplacian:
/// L† = (L + J/n)^{-1} - J/n, where J = 11^T.
DenseMatrix LaplacianPseudoinverse(const Graph& graph);

/// Exact Tr(L_{-S}^{-1}) via dense LDL^T (reference / EXACT baseline).
double ExactTraceInverseSubmatrix(const Graph& graph,
                                  const std::vector<NodeId>& removed);

/// Exact dense L_{-S}^{-1} (test reference).
DenseMatrix ExactLaplacianSubmatrixInverse(const Graph& graph,
                                           const std::vector<NodeId>& removed);

/// \brief Exact Tr((I - P_{-S})^{-1}) = sum_u d_w(u) (L_{-S}^{-1})_uu:
/// the expected absorbing-walk cost that bounds Wilson's running time
/// (paper Lemma 3.7; weighted degrees). Dense; small graphs / tests.
double ExactAbsorptionWalkCost(const Graph& graph,
                               const std::vector<NodeId>& removed);

/// \brief Matrix-free y = L_{-S} x operator on full-length vectors.
///
/// Vectors live in R^n with entries at S pinned to zero; the operator
/// writes zeros there. This keeps CG code independent of submatrix
/// reindexing.
class LaplacianSubmatrixOp {
 public:
  /// `in_removed` is an n-length 0/1 mask of S (may be all-zero, in which
  /// case the operator is the singular full Laplacian).
  LaplacianSubmatrixOp(const Graph& graph, std::vector<char> in_removed);

  NodeId n() const { return graph_.num_nodes(); }
  bool removed(NodeId u) const { return in_removed_[u] != 0; }

  /// y = L_{-S} x  (entries at S zeroed).
  void Apply(const Vector& x, Vector* y) const;

  /// Jacobi preconditioner z = diag(L)^{-1} r with diag(L) the weighted
  /// degrees (entries at S zeroed).
  void ApplyJacobi(const Vector& r, Vector* z) const;

 private:
  const Graph& graph_;
  std::vector<char> in_removed_;
};

}  // namespace cfcm

#endif  // CFCM_LINALG_LAPLACIAN_H_
