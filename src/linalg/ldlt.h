// LDL^T factorization for symmetric positive-definite matrices.
#ifndef CFCM_LINALG_LDLT_H_
#define CFCM_LINALG_LDLT_H_

#include "common/status.h"
#include "linalg/dense.h"

namespace cfcm {

/// \brief Cholesky-style LDL^T factorization (no pivoting).
///
/// Grounded Laplacian submatrices L_{-S} are symmetric positive definite
/// for non-empty S on a connected graph, so unpivoted LDL^T is stable.
/// Factorization fails with NumericalError if a pivot drops below a
/// tolerance (e.g. the matrix was singular or indefinite).
class LdltFactorization {
 public:
  /// Factors SPD matrix `a` (only the lower triangle is read).
  static StatusOr<LdltFactorization> Compute(const DenseMatrix& a);

  int dim() const { return lower_.rows(); }

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;

  /// Solves A X = B for a dense right-hand-side block. Row-oriented
  /// substitution over all columns at once: same flop count as per-column
  /// solves but contiguous inner loops (the O(n^3) path the EXACT and
  /// OPTIMUM baselines live on).
  DenseMatrix SolveMatrix(DenseMatrix b) const;

  /// Dense inverse A^{-1} (block solve against the identity).
  DenseMatrix Inverse() const;

  /// log(det A) = sum log d_i.
  double LogDet() const;

 private:
  LdltFactorization(DenseMatrix lower, Vector diag)
      : lower_(std::move(lower)), diag_(std::move(diag)) {}

  DenseMatrix lower_;  // unit lower-triangular L
  Vector diag_;        // D
};

}  // namespace cfcm

#endif  // CFCM_LINALG_LDLT_H_
