#include "linalg/cg.h"

#include <cmath>

namespace cfcm {

namespace {

// Subtracts the mean so the vector is orthogonal to the all-ones kernel.
void ProjectAgainstOnes(Vector* v) {
  double mean = 0;
  for (double x : *v) mean += x;
  mean /= static_cast<double>(v->size());
  for (double& x : *v) x -= mean;
}

// Shared PCG loop over an abstract SPD operator.
template <typename ApplyFn, typename PrecondFn, typename PostFn>
CgSummary Pcg(std::size_t n, const ApplyFn& apply, const PrecondFn& precond,
              const PostFn& post_iterate, const Vector& b, Vector* x,
              const CgOptions& options) {
  Vector r(n, 0.0), z(n, 0.0), p(n, 0.0), ap(n, 0.0);

  apply(*x, &ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  precond(r, &z);
  p = z;

  const double b_norm = Norm2(b);
  CgSummary summary;
  if (b_norm == 0.0) {
    x->assign(n, 0.0);
    summary.converged = true;
    return summary;
  }
  double rz = Dot(r, z);
  for (int it = 0; it < options.max_iterations; ++it) {
    summary.relative_residual = Norm2(r) / b_norm;
    if (summary.relative_residual <= options.tolerance) {
      summary.converged = true;
      return summary;
    }
    apply(p, &ap);
    const double pap = Dot(p, ap);
    if (!(pap > 0)) break;  // lost positive-definiteness numerically
    const double alpha = rz / pap;
    Axpy(alpha, p, x);
    Axpy(-alpha, ap, &r);
    post_iterate(x, &r);
    precond(r, &z);
    const double rz_next = Dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    summary.iterations = it + 1;
  }
  summary.relative_residual = Norm2(r) / b_norm;
  summary.converged = summary.relative_residual <= options.tolerance;
  return summary;
}

}  // namespace

CgSummary SolveGroundedLaplacian(const LaplacianSubmatrixOp& op,
                                 const Vector& b, Vector* x,
                                 const CgOptions& options) {
  const std::size_t n = static_cast<std::size_t>(op.n());
  Vector rhs = b;
  for (std::size_t u = 0; u < n; ++u) {
    if (op.removed(static_cast<NodeId>(u))) {
      rhs[u] = 0;
      (*x)[u] = 0;
    }
  }
  return Pcg(
      n, [&op](const Vector& v, Vector* out) { op.Apply(v, out); },
      [&op](const Vector& r, Vector* z) { op.ApplyJacobi(r, z); },
      [](Vector*, Vector*) {}, rhs, x, options);
}

CgSummary SolveLaplacianPseudoinverse(const Graph& graph, const Vector& b,
                                      Vector* x, const CgOptions& options) {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  LaplacianSubmatrixOp op(graph,
                          std::vector<char>(static_cast<std::size_t>(n), 0));
  Vector rhs = b;
  ProjectAgainstOnes(&rhs);
  ProjectAgainstOnes(x);
  // Re-project every iteration: rounding slowly leaks mass into the
  // all-ones null space and would stall convergence.
  auto post = [](Vector* xi, Vector* ri) {
    ProjectAgainstOnes(xi);
    ProjectAgainstOnes(ri);
  };
  return Pcg(
      n, [&op](const Vector& v, Vector* out) { op.Apply(v, out); },
      [&op](const Vector& r, Vector* z) { op.ApplyJacobi(r, z); }, post, rhs,
      x, options);
}

}  // namespace cfcm
