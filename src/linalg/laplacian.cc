#include "linalg/laplacian.h"

#include <cassert>

#include "linalg/ldlt.h"

namespace cfcm {

SubmatrixIndex MakeSubmatrixIndex(NodeId n, const std::vector<NodeId>& removed) {
  SubmatrixIndex index;
  index.pos.assign(static_cast<std::size_t>(n), 0);
  for (NodeId s : removed) {
    assert(s >= 0 && s < n);
    index.pos[s] = -1;
  }
  index.kept.reserve(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    if (index.pos[u] == -1) continue;
    index.pos[u] = static_cast<NodeId>(index.kept.size());
    index.kept.push_back(u);
  }
  return index;
}

DenseMatrix DenseLaplacian(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  DenseMatrix l(n, n);
  for (NodeId u = 0; u < n; ++u) {
    l(u, u) = graph.weighted_degree(u);
    if (graph.is_unit_weighted()) {
      for (NodeId v : graph.neighbors(u)) l(u, v) = -1.0;
    } else {
      const auto adj = graph.neighbors(u);
      const auto w = graph.weights(u);
      for (std::size_t i = 0; i < adj.size(); ++i) l(u, adj[i]) = -w[i];
    }
  }
  return l;
}

DenseMatrix DenseLaplacianSubmatrix(const Graph& graph,
                                    const SubmatrixIndex& index) {
  const int dim = static_cast<int>(index.kept.size());
  DenseMatrix l(dim, dim);
  for (int i = 0; i < dim; ++i) {
    const NodeId u = index.kept[i];
    l(i, i) = graph.weighted_degree(u);
    const auto adj = graph.neighbors(u);
    const auto w = graph.weights(u);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const NodeId j = index.pos[adj[k]];
      if (j >= 0) l(i, j) = w.empty() ? -1.0 : -w[k];
    }
  }
  return l;
}

DenseMatrix LaplacianPseudoinverse(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  DenseMatrix shifted = DenseLaplacian(graph);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) shifted(i, j) += inv_n;
  }
  auto ldlt = LdltFactorization::Compute(shifted);
  assert(ldlt.ok() && "L + J/n is SPD for connected graphs");
  DenseMatrix pinv = ldlt->Inverse();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) pinv(i, j) -= inv_n;
  }
  return pinv;
}

double ExactTraceInverseSubmatrix(const Graph& graph,
                                  const std::vector<NodeId>& removed) {
  return ExactLaplacianSubmatrixInverse(graph, removed).Trace();
}

DenseMatrix ExactLaplacianSubmatrixInverse(const Graph& graph,
                                           const std::vector<NodeId>& removed) {
  assert(!removed.empty() && "L is singular; remove at least one node");
  const SubmatrixIndex index = MakeSubmatrixIndex(graph.num_nodes(), removed);
  const DenseMatrix sub = DenseLaplacianSubmatrix(graph, index);
  auto ldlt = LdltFactorization::Compute(sub);
  assert(ldlt.ok() && "L_{-S} is SPD for connected graphs");
  return ldlt->Inverse();
}

double ExactAbsorptionWalkCost(const Graph& graph,
                               const std::vector<NodeId>& removed) {
  const SubmatrixIndex index = MakeSubmatrixIndex(graph.num_nodes(), removed);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(graph, removed);
  double cost = 0;
  for (std::size_t i = 0; i < index.kept.size(); ++i) {
    cost += graph.weighted_degree(index.kept[i]) *
            inv(static_cast<int>(i), static_cast<int>(i));
  }
  return cost;
}

LaplacianSubmatrixOp::LaplacianSubmatrixOp(const Graph& graph,
                                           std::vector<char> in_removed)
    : graph_(graph), in_removed_(std::move(in_removed)) {
  assert(in_removed_.size() == static_cast<std::size_t>(graph.num_nodes()));
}

void LaplacianSubmatrixOp::Apply(const Vector& x, Vector* y) const {
  const NodeId n = graph_.num_nodes();
  assert(static_cast<NodeId>(x.size()) == n &&
         static_cast<NodeId>(y->size()) == n);
  if (graph_.is_unit_weighted()) {
    for (NodeId u = 0; u < n; ++u) {
      if (in_removed_[u]) {
        (*y)[u] = 0;
        continue;
      }
      double acc = static_cast<double>(graph_.degree(u)) * x[u];
      for (NodeId v : graph_.neighbors(u)) {
        if (!in_removed_[v]) acc -= x[v];
      }
      (*y)[u] = acc;
    }
    return;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (in_removed_[u]) {
      (*y)[u] = 0;
      continue;
    }
    const auto adj = graph_.neighbors(u);
    const auto w = graph_.weights(u);
    double acc = graph_.weighted_degree(u) * x[u];
    for (std::size_t k = 0; k < adj.size(); ++k) {
      if (!in_removed_[adj[k]]) acc -= w[k] * x[adj[k]];
    }
    (*y)[u] = acc;
  }
}

void LaplacianSubmatrixOp::ApplyJacobi(const Vector& r, Vector* z) const {
  const NodeId n = graph_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    (*z)[u] = in_removed_[u] ? 0.0 : r[u] / graph_.weighted_degree(u);
  }
}

}  // namespace cfcm
