#include "linalg/schur_exact.h"

#include <algorithm>
#include <cassert>

#include "linalg/ldlt.h"
#include "linalg/laplacian.h"

namespace cfcm {

DenseMatrix ExactSchurComplement(const DenseMatrix& m,
                                 const std::vector<int>& onto) {
  assert(m.rows() == m.cols());
  const int n = m.rows();
  std::vector<char> in_t(static_cast<std::size_t>(n), 0);
  for (int t : onto) {
    assert(t >= 0 && t < n);
    in_t[static_cast<std::size_t>(t)] = 1;
  }
  std::vector<int> u_index;
  for (int i = 0; i < n; ++i) {
    if (!in_t[static_cast<std::size_t>(i)]) u_index.push_back(i);
  }
  const int nu = static_cast<int>(u_index.size());
  const int nt = static_cast<int>(onto.size());

  DenseMatrix m_uu(nu, nu), m_ut(nu, nt), m_tt(nt, nt);
  for (int i = 0; i < nu; ++i) {
    for (int j = 0; j < nu; ++j) m_uu(i, j) = m(u_index[i], u_index[j]);
    for (int j = 0; j < nt; ++j) m_ut(i, j) = m(u_index[i], onto[j]);
  }
  for (int i = 0; i < nt; ++i) {
    for (int j = 0; j < nt; ++j) m_tt(i, j) = m(onto[i], onto[j]);
  }
  auto ldlt = LdltFactorization::Compute(m_uu);
  assert(ldlt.ok() && "M_UU must be SPD");

  // X = M_UU^{-1} M_UT, column by column.
  DenseMatrix x(nu, nt);
  Vector col(static_cast<std::size_t>(nu));
  for (int j = 0; j < nt; ++j) {
    for (int i = 0; i < nu; ++i) col[static_cast<std::size_t>(i)] = m_ut(i, j);
    const Vector sol = ldlt->Solve(col);
    for (int i = 0; i < nu; ++i) x(i, j) = sol[static_cast<std::size_t>(i)];
  }
  // S = M_TT - M_TU X  (M_TU = M_UT^T by symmetry of our inputs).
  DenseMatrix schur = m_tt;
  for (int i = 0; i < nt; ++i) {
    for (int j = 0; j < nt; ++j) {
      double acc = 0;
      for (int k = 0; k < nu; ++k) acc += m_ut(k, i) * x(k, j);
      schur(i, j) -= acc;
    }
  }
  return schur;
}

DenseMatrix ExactRootedProbabilities(const Graph& graph,
                                     const std::vector<NodeId>& s_nodes,
                                     const std::vector<NodeId>& t_nodes) {
  return ExactRootedProbabilities(graph, s_nodes, t_nodes,
                                  SolverBackend::kDense);
}

DenseMatrix ExactRootedProbabilities(const Graph& graph,
                                     const std::vector<NodeId>& s_nodes,
                                     const std::vector<NodeId>& t_nodes,
                                     SolverBackend backend) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> removed = s_nodes;
  removed.insert(removed.end(), t_nodes.begin(), t_nodes.end());
  const SubmatrixIndex index = MakeSubmatrixIndex(n, removed);
  auto solver = MakeGroundedSolver(graph, removed, backend);
  assert(solver.ok() && "L_UU must be SPD");

  const int nu = static_cast<int>(index.kept.size());
  const int nt = static_cast<int>(t_nodes.size());
  // Assemble -L_UT column by column and batch-solve.
  DenseMatrix rhs(nu, nt);
  for (int j = 0; j < nt; ++j) {
    // Column j of -L_UT: +w(u, t_j) for u adjacent to t_j (L_ut = -w).
    const auto adj = graph.neighbors(t_nodes[j]);
    const auto w = graph.weights(t_nodes[j]);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      const NodeId i = index.pos[adj[k]];
      if (i >= 0) rhs(i, j) = w.empty() ? 1.0 : w[k];
    }
  }
  return (*solver)->SolveMatrix(rhs);
}

}  // namespace cfcm
