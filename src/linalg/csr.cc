#include "linalg/csr.h"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace cfcm {

CsrMatrix CsrMatrix::FromTriplets(
    int rows, int cols, std::vector<std::tuple<int, int, double>> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const auto& a, const auto& b) {
              return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                     std::make_pair(std::get<0>(b), std::get<1>(b));
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.offsets_.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (std::size_t i = 0; i < triplets.size();) {
    const auto [r, c, v0] = triplets[i];
    assert(r >= 0 && r < rows && c >= 0 && c < cols);
    double v = v0;
    std::size_t j = i + 1;
    while (j < triplets.size() && std::get<0>(triplets[j]) == r &&
           std::get<1>(triplets[j]) == c) {
      v += std::get<2>(triplets[j]);
      ++j;
    }
    m.col_index_.push_back(c);
    m.values_.push_back(v);
    ++m.offsets_[r + 1];
    i = j;
  }
  for (int r = 0; r < rows; ++r) m.offsets_[r + 1] += m.offsets_[r];
  return m;
}

void CsrMatrix::Multiply(const Vector& x, Vector* y) const {
  assert(static_cast<int>(x.size()) == cols_);
  y->assign(static_cast<std::size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0;
    for (std::int64_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
      acc += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_index_[static_cast<std::size_t>(k)])];
    }
    (*y)[r] = acc;
  }
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (std::int64_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
      d(r, col_index_[static_cast<std::size_t>(k)]) +=
          values_[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

}  // namespace cfcm
