// General sparse matrix in compressed sparse row format.
#ifndef CFCM_LINALG_CSR_H_
#define CFCM_LINALG_CSR_H_

#include <cstdint>
#include <vector>

#include "linalg/dense.h"

namespace cfcm {

/// \brief Read-only CSR matrix of doubles.
///
/// Used for weighted Schur-complement graphs and SpMV tests; the hot
/// Laplacian path uses the matrix-free LaplacianSubmatrixOp instead.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets (duplicates are summed). O(nnz log nnz).
  static CsrMatrix FromTriplets(
      int rows, int cols,
      std::vector<std::tuple<int, int, double>> triplets);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }

  /// y = A x.
  void Multiply(const Vector& x, Vector* y) const;

  /// Dense copy (tests).
  DenseMatrix ToDense() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::int64_t> offsets_;
  std::vector<int> col_index_;
  std::vector<double> values_;
};

}  // namespace cfcm

#endif  // CFCM_LINALG_CSR_H_
