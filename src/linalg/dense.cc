#include "linalg/dense.h"

#include <algorithm>
#include <cmath>

namespace cfcm {

DenseMatrix DenseMatrix::Identity(int n) {
  DenseMatrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double DenseMatrix::Trace() const {
  assert(rows_ == cols_);
  double t = 0;
  for (int i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  assert(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const auto src = other.Row(k);
      auto dst = out.MutableRow(i);
      for (int j = 0; j < other.cols_; ++j) dst[j] += a * src[j];
    }
  }
  return out;
}

Vector DenseMatrix::MultiplyVec(const Vector& x) const {
  assert(static_cast<int>(x.size()) == cols_);
  Vector y(static_cast<std::size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    const auto row = Row(i);
    double acc = 0;
    for (int j = 0; j < cols_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double worst = 0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

double Dot(const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  double acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double Norm2(const Vector& x) { return std::sqrt(Dot(x, x)); }

void Axpy(double alpha, const Vector& x, Vector* y) {
  assert(x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* x) {
  for (double& v : *x) v *= alpha;
}

}  // namespace cfcm
