// Jacobi-preconditioned conjugate gradient for Laplacian systems.
//
// The state-of-the-art baseline APPROXGREEDY [29] relies on a nearly
// linear-time Laplacian solver (Kyng–Sachdeva approximate Cholesky). That
// solver is research software unavailable offline; per the substitution
// rules we implement the classical Jacobi-preconditioned CG of Saad
// (paper ref. [59], the solver the authors themselves use to evaluate
// CFCC on large graphs). The asymptotics differ but every interface and
// experiment shape is preserved; see DESIGN.md.
#ifndef CFCM_LINALG_CG_H_
#define CFCM_LINALG_CG_H_

#include "common/status.h"
#include "linalg/laplacian.h"

namespace cfcm {

/// Convergence knobs for conjugate gradient.
struct CgOptions {
  double tolerance = 1e-8;  ///< relative residual ||r|| / ||b||
  int max_iterations = 5000;
};

/// Outcome of a CG solve.
struct CgSummary {
  int iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// \brief Solves L_{-S} x = b (vectors in R^n, entries at S pinned to 0).
///
/// `b` entries at S are ignored. Returns the summary; the solution is
/// written to *x (which also provides the initial guess).
CgSummary SolveGroundedLaplacian(const LaplacianSubmatrixOp& op,
                                 const Vector& b, Vector* x,
                                 const CgOptions& options = {});

/// \brief Solves the singular system L x = b with b projected against 1
/// (pseudoinverse application: x = L† b, x ⊥ 1).
CgSummary SolveLaplacianPseudoinverse(const Graph& graph, const Vector& b,
                                      Vector* x, const CgOptions& options = {});

}  // namespace cfcm

#endif  // CFCM_LINALG_CG_H_
