// Exact (dense) Schur complements and rooted probabilities.
//
// Test references for Lemmas 4.2/4.3 and Eq. (11)/(15), and the exact
// |T|x|T| algebra inside SchurDelta.
#ifndef CFCM_LINALG_SCHUR_EXACT_H_
#define CFCM_LINALG_SCHUR_EXACT_H_

#include <vector>

#include "graph/graph.h"
#include "linalg/dense.h"
#include "linalg/solver.h"

namespace cfcm {

/// \brief Schur complement S_T(M) = M_TT - M_TU M_UU^{-1} M_UT.
///
/// `onto` lists the retained indices T (ascending); U is the complement.
/// M_UU must be invertible (SPD in all our uses).
DenseMatrix ExactSchurComplement(const DenseMatrix& m,
                                 const std::vector<int>& onto);

/// \brief Exact rooted-probability matrix F = -L_UU^{-1} L_UT for forests
/// rooted at S ∪ T (Lemma 4.2): F[u][t] = Pr(rho_u = t).
///
/// Rows follow ascending order of U = V \ (S ∪ T); columns follow the
/// order of `t_nodes`.
DenseMatrix ExactRootedProbabilities(const Graph& graph,
                                     const std::vector<NodeId>& s_nodes,
                                     const std::vector<NodeId>& t_nodes);

/// Backend-aware overload: the nt solves against L_UU run through the
/// chosen LaplacianSolver (kAuto resolves by |U|; the two-arg overload
/// above stays pinned to the dense kernel).
DenseMatrix ExactRootedProbabilities(const Graph& graph,
                                     const std::vector<NodeId>& s_nodes,
                                     const std::vector<NodeId>& t_nodes,
                                     SolverBackend backend);

}  // namespace cfcm

#endif  // CFCM_LINALG_SCHUR_EXACT_H_
