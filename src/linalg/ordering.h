// Fill-reducing orderings for sparse symmetric factorization.
//
// Reverse Cuthill–McKee (George–Liu): BFS the pattern from a
// pseudo-peripheral vertex, visiting neighbors by ascending degree, and
// reverse the level order. RCM minimizes *bandwidth* rather than fill
// directly, but on the near-planar / small-world graphs this repo
// factors (road lattices, ws rings, ba cores) a banded profile is what
// keeps the up-looking LDL^T in linalg/sparse_ldlt.{h,cc} sparse. All
// tie-breaks are by ascending node id, so the permutation — and hence
// every downstream factorization — is deterministic.
#ifndef CFCM_LINALG_ORDERING_H_
#define CFCM_LINALG_ORDERING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfcm {

/// \brief RCM permutation of a symmetric pattern in CSR arrays.
///
/// `offsets` has n+1 entries and `neighbors` lists each undirected edge
/// in both adjacencies (a Graph's raw CSR, or any pattern with the same
/// shape; self-entries are ignored). Returns `perm` with
/// perm[new_position] = old_id; disconnected patterns are handled by
/// restarting the BFS from the smallest unvisited id.
std::vector<NodeId> ReverseCuthillMcKee(NodeId n,
                                        const std::vector<EdgeId>& offsets,
                                        const std::vector<NodeId>& neighbors);

/// RCM of a graph's adjacency pattern.
std::vector<NodeId> ReverseCuthillMcKee(const Graph& graph);

/// \brief Minimum-degree permutation of a symmetric pattern in CSR
/// arrays (same conventions as ReverseCuthillMcKee).
///
/// Greedy symbolic elimination: repeatedly eliminate the alive node of
/// smallest current degree (ties by ascending id) and connect its
/// neighbors into a clique. Where RCM narrows the band, minimum degree
/// attacks fill directly — on scale-free / power-law graphs (hubs plus
/// many low-degree leaves) it produces orders of magnitude less fill
/// than any bandwidth ordering, which is why SparseLdlt::FactorGrounded
/// counts symbolic fill under both and keeps the cheaper permutation.
std::vector<NodeId> MinimumDegree(NodeId n, const std::vector<EdgeId>& offsets,
                                  const std::vector<NodeId>& neighbors);

/// Minimum degree of a graph's adjacency pattern.
std::vector<NodeId> MinimumDegree(const Graph& graph);

/// \brief Bandwidth max |p(u) - p(v)| over pattern edges under `perm`
/// (perm[new_position] = old_id). 0 for an edgeless pattern. Diagnostic
/// for the RCM property tests and the bench.
NodeId PatternBandwidth(NodeId n, const std::vector<EdgeId>& offsets,
                        const std::vector<NodeId>& neighbors,
                        const std::vector<NodeId>& perm);

/// Bandwidth of the identity ordering (natural labels).
NodeId PatternBandwidth(const Graph& graph);

}  // namespace cfcm

#endif  // CFCM_LINALG_ORDERING_H_
