#include "linalg/ldlt.h"

#include <cmath>
#include <string>

namespace cfcm {

StatusOr<LdltFactorization> LdltFactorization::Compute(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LDLT requires a square matrix");
  }
  const int n = a.rows();
  DenseMatrix lower = DenseMatrix::Identity(n);
  Vector diag(static_cast<std::size_t>(n), 0.0);

  // Scale-aware pivot floor: treat pivots below eps * max|a_ii| as
  // numerically singular.
  double max_diag = 0;
  for (int i = 0; i < n; ++i) max_diag = std::max(max_diag, std::fabs(a(i, i)));
  const double pivot_floor = std::max(1e-300, 1e-12 * max_diag);

  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int k = 0; k < j; ++k) d -= lower(j, k) * lower(j, k) * diag[k];
    if (!(d > pivot_floor)) {
      return Status::NumericalError("non-positive pivot at column " +
                                    std::to_string(j));
    }
    diag[j] = d;
    for (int i = j + 1; i < n; ++i) {
      double v = a(i, j);
      const auto li = lower.Row(i);
      const auto lj = lower.Row(j);
      for (int k = 0; k < j; ++k) v -= li[k] * lj[k] * diag[k];
      lower(i, j) = v / d;
    }
  }
  return LdltFactorization(std::move(lower), std::move(diag));
}

Vector LdltFactorization::Solve(const Vector& b) const {
  const int n = dim();
  assert(static_cast<int>(b.size()) == n);
  Vector x = b;
  // Forward: L y = b.
  for (int i = 0; i < n; ++i) {
    const auto row = lower_.Row(i);
    double acc = x[i];
    for (int k = 0; k < i; ++k) acc -= row[k] * x[k];
    x[i] = acc;
  }
  // Diagonal: D z = y.
  for (int i = 0; i < n; ++i) x[i] /= diag_[i];
  // Backward: L^T w = z.
  for (int i = n - 1; i >= 0; --i) {
    double acc = x[i];
    for (int k = i + 1; k < n; ++k) acc -= lower_(k, i) * x[k];
    x[i] = acc;
  }
  return x;
}

DenseMatrix LdltFactorization::SolveMatrix(DenseMatrix b) const {
  const int n = dim();
  assert(b.rows() == n);
  const int m = b.cols();
  // Forward: L Y = B, processed as row operations over all columns.
  for (int i = 1; i < n; ++i) {
    auto bi = b.MutableRow(i);
    const auto li = lower_.Row(i);
    for (int k = 0; k < i; ++k) {
      const double coef = li[k];
      if (coef == 0.0) continue;
      const auto bk = b.Row(k);
      for (int j = 0; j < m; ++j) bi[j] -= coef * bk[j];
    }
  }
  // Diagonal: D Z = Y.
  for (int i = 0; i < n; ++i) {
    const double inv_d = 1.0 / diag_[i];
    for (double& v : b.MutableRow(i)) v *= inv_d;
  }
  // Backward: L^T X = Z.
  for (int i = n - 2; i >= 0; --i) {
    auto bi = b.MutableRow(i);
    for (int k = i + 1; k < n; ++k) {
      const double coef = lower_(k, i);
      if (coef == 0.0) continue;
      const auto bk = b.Row(k);
      for (int j = 0; j < m; ++j) bi[j] -= coef * bk[j];
    }
  }
  return b;
}

DenseMatrix LdltFactorization::Inverse() const {
  const int n = dim();
  DenseMatrix inv = SolveMatrix(DenseMatrix::Identity(n));
  // Symmetrize to scrub round-off (the exact inverse is symmetric).
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = 0.5 * (inv(i, j) + inv(j, i));
      inv(i, j) = v;
      inv(j, i) = v;
    }
  }
  return inv;
}

double LdltFactorization::LogDet() const {
  double acc = 0;
  for (double d : diag_) acc += std::log(d);
  return acc;
}

}  // namespace cfcm
