// Johnson–Lindenstrauss random-sign sketch (Lemma 3.4).
#ifndef CFCM_LINALG_JL_H_
#define CFCM_LINALG_JL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace cfcm {

/// \brief Implicit w x n random matrix with i.i.d. entries ±1/sqrt(w).
///
/// Entries are derived from one pre-mixed 64-bit word per node per 64
/// rows, so the sketch costs 8*ceil(w/64) bytes per node instead of 8*w,
/// and column extraction is a few bit operations per entry. Deterministic
/// in (seed).
class JlSketch {
 public:
  JlSketch(int num_rows, NodeId num_cols, uint64_t seed);

  int num_rows() const { return num_rows_; }
  NodeId num_cols() const { return num_cols_; }
  double scale() const { return scale_; }

  /// Entry W(j, v) in {+scale, -scale}.
  double Entry(int j, NodeId v) const {
    const uint64_t word = words_[static_cast<std::size_t>(v) * num_words_ +
                                 static_cast<std::size_t>(j >> 6)];
    return ((word >> (j & 63)) & 1) != 0 ? scale_ : -scale_;
  }

  /// out[j] = W(j, v) for all rows j.
  void ColumnInto(NodeId v, double* out) const;

  /// acc[j] += alpha * W(j, v).
  void AddColumn(NodeId v, double alpha, double* acc) const;

 private:
  int num_rows_;
  NodeId num_cols_;
  int num_words_;
  double scale_;
  std::vector<uint64_t> words_;  // n * num_words_ sign words
};

/// Theory-faithful row count 24 * (eps)^{-2} * ln n (Lemma 3.4) — exposed
/// for documentation/tests; production code uses CfcmOptions::JlRows which
/// caps this (see DESIGN.md "Engineering constants").
int JlTheoryRows(NodeId n, double eps);

}  // namespace cfcm

#endif  // CFCM_LINALG_JL_H_
