#include "linalg/jl.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace cfcm {

JlSketch::JlSketch(int num_rows, NodeId num_cols, uint64_t seed)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      num_words_((num_rows + 63) / 64),
      scale_(1.0 / std::sqrt(static_cast<double>(num_rows))) {
  assert(num_rows >= 1 && num_cols >= 0);
  words_.resize(static_cast<std::size_t>(num_cols) * num_words_);
  uint64_t sm = seed ^ 0x8f1bbcdcbfa53e0bULL;
  for (auto& w : words_) w = SplitMix64(&sm);
}

void JlSketch::ColumnInto(NodeId v, double* out) const {
  const uint64_t* words = &words_[static_cast<std::size_t>(v) * num_words_];
  for (int j = 0; j < num_rows_; ++j) {
    out[j] = ((words[j >> 6] >> (j & 63)) & 1) != 0 ? scale_ : -scale_;
  }
}

void JlSketch::AddColumn(NodeId v, double alpha, double* acc) const {
  const uint64_t* words = &words_[static_cast<std::size_t>(v) * num_words_];
  const double plus = alpha * scale_;
  for (int j = 0; j < num_rows_; ++j) {
    acc[j] += ((words[j >> 6] >> (j & 63)) & 1) != 0 ? plus : -plus;
  }
}

int JlTheoryRows(NodeId n, double eps) {
  return static_cast<int>(
      std::ceil(24.0 / (eps * eps) * std::log(std::max<NodeId>(2, n))));
}

}  // namespace cfcm
