// Hutchinson stochastic trace estimation for Tr(L_{-S}^{-1}).
//
// The paper evaluates solution quality on large graphs "employing the
// conjugate gradient method" (Section V-B.2); Hutchinson probing with CG
// solves is the standard way to do that without forming the inverse.
#ifndef CFCM_LINALG_HUTCHINSON_H_
#define CFCM_LINALG_HUTCHINSON_H_

#include <cstdint>
#include <vector>

#include "linalg/cg.h"
#include "linalg/solver.h"

namespace cfcm {

/// Result of a stochastic trace estimate.
struct TraceEstimate {
  double trace = 0.0;
  double std_error = 0.0;  ///< standard error of the mean across probes
  int probes = 0;
};

/// \brief Estimates Tr(L_{-S}^{-1}) with Rademacher probes z and CG
/// solves: E[z^T L_{-S}^{-1} z] = Tr(L_{-S}^{-1}).
TraceEstimate HutchinsonTraceInverse(const Graph& graph,
                                     const std::vector<NodeId>& removed,
                                     int probes, uint64_t seed,
                                     const CgOptions& cg = {});

/// \brief Backend-aware overload. kAuto and kCg keep the pinned
/// matrix-free CG path above (one CG solve per probe — the historical
/// default, so auto does NOT flip large graphs to the factor path
/// behind existing callers). kSparseLdlt/kDense factor L_{-S} once and
/// run every probe as a direct solve — identical probe vectors, so the
/// estimate differs from the CG path only by solver accuracy. Falls
/// back to the CG path if factoring fails (asserts in debug; EvaluateGroup
/// validates connectivity upstream).
TraceEstimate HutchinsonTraceInverse(const Graph& graph,
                                     const std::vector<NodeId>& removed,
                                     int probes, uint64_t seed,
                                     SolverBackend backend,
                                     const CgOptions& cg = {});

}  // namespace cfcm

#endif  // CFCM_LINALG_HUTCHINSON_H_
