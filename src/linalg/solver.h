// Pluggable Laplacian solver backends (DESIGN.md §14).
//
// Every exact path in the repo reduces to the same three operations on
// the grounded submatrix L_{-S}: solve L_{-S} x = b, batch solves, and
// diag(L_{-S}^{-1}). This header puts the three implementations behind
// one interface:
//
//   dense        — DenseLaplacianSubmatrix + LdltFactorization; the
//                  pinned O(n^3)/O(n^2) reference every other backend
//                  must agree with.
//   sparse_ldlt  — RCM-ordered sparse LDL^T (linalg/sparse_ldlt.h); the
//                  workhorse above the dense ceiling.
//   cg           — Jacobi-preconditioned CG per solve (linalg/cg.h);
//                  O(m) memory, no factorization; InverseDiagonal costs
//                  one CG solve per column (fallback / cross-check).
//
// `auto` resolves by size: dense while the kept dimension is at most
// kDenseBackendMaxN, sparse_ldlt above. The resolution is pure policy —
// every backend computes the same numbers (dense vs sparse_ldlt to
// ~1e-12 relative; cg to its own tolerance).
#ifndef CFCM_LINALG_SOLVER_H_
#define CFCM_LINALG_SOLVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/cg.h"
#include "linalg/dense.h"

namespace cfcm {

/// Which kernel backs the exact Laplacian algebra.
enum class SolverBackend { kAuto, kDense, kSparseLdlt, kCg };

/// "auto" / "dense" / "sparse_ldlt" / "cg".
const char* SolverBackendName(SolverBackend backend);

/// Inverse of SolverBackendName; nullopt for unknown strings.
std::optional<SolverBackend> ParseSolverBackend(std::string_view name);

/// Above this kept dimension, `auto` switches from dense to sparse_ldlt
/// (the bench pins the crossover well below this; the margin keeps tiny
/// graphs on the bit-pinned dense reference).
inline constexpr NodeId kDenseBackendMaxN = 512;

/// Resolves kAuto for a kept dimension of `dim`; other values pass
/// through unchanged.
SolverBackend ResolveSolverBackend(SolverBackend requested, NodeId dim);

/// \brief One factorization (or operator) for a fixed L_{-S}.
///
/// All vectors are indexed by submatrix position — the order of
/// SubmatrixIndex::kept — matching the dense reference exactly.
class LaplacianSolver {
 public:
  virtual ~LaplacianSolver() = default;

  /// The concrete backend (never kAuto).
  virtual SolverBackend backend() const = 0;

  /// Kept dimension n - |S|.
  virtual int dim() const = 0;

  /// Solves L_{-S} x = b.
  virtual Vector Solve(const Vector& b) const = 0;

  /// Solves L_{-S} X = B (B is dim() x m).
  virtual DenseMatrix SolveMatrix(const DenseMatrix& b) const = 0;

  /// diag(L_{-S}^{-1}) in kept order. O(fill^2) for sparse_ldlt,
  /// O(n^3) for dense, dim() CG solves for cg.
  virtual Vector InverseDiagonal() const = 0;

  /// Tr(L_{-S}^{-1}).
  virtual double TraceInverse() const;

  /// Resident bytes of the factorization / operator state.
  virtual std::int64_t MemoryBytes() const = 0;
};

/// \brief Factors (or wraps) L_{-S} with the requested backend.
///
/// kAuto resolves via ResolveSolverBackend on the kept dimension.
/// Fails with NumericalError when L_{-S} is singular (disconnected kept
/// component) and InvalidArgument when the group covers every node.
/// The cg backend is matrix-free and borrows `graph` for the solver's
/// lifetime; dense and sparse_ldlt copy everything they need.
/// Bumps the engine.linalg.factorizations counter on success; Solve
/// paths bump engine.linalg.solves and (cg only)
/// engine.linalg.cg_iterations.
StatusOr<std::unique_ptr<LaplacianSolver>> MakeGroundedSolver(
    const Graph& graph, const std::vector<NodeId>& removed,
    SolverBackend backend, const CgOptions& cg_options = {});

/// \brief Tr(L_{-S}^{-1}) through the chosen backend. The dense path is
/// byte-identical to ExactTraceInverseSubmatrix.
StatusOr<double> TraceInverseSubmatrix(const Graph& graph,
                                       const std::vector<NodeId>& removed,
                                       SolverBackend backend);

}  // namespace cfcm

#endif  // CFCM_LINALG_SOLVER_H_
