#include "linalg/sparse_ldlt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/ordering.h"

namespace cfcm {

namespace {

// Binary search for row `r` in the (ascending) slice rows[lo, hi).
// Returns the flat index or -1.
std::int64_t FindRow(const std::vector<NodeId>& rows, std::int64_t lo,
                     std::int64_t hi, NodeId r) {
  auto it = std::lower_bound(rows.begin() + lo, rows.begin() + hi, r);
  if (it != rows.begin() + hi && *it == r) return it - rows.begin();
  return -1;
}

// nnz of the strictly-lower factor under `perm`, by Liu's etree column
// counts on the permuted pattern — O(nnz(A) alpha), no numeric work.
// Cheap enough to run once per candidate ordering before committing to
// the expensive numeric sweep.
std::int64_t SymbolicNonzeros(int n, const std::vector<EdgeId>& offsets,
                              const std::vector<NodeId>& neighbors,
                              const std::vector<NodeId>& perm) {
  std::vector<NodeId> inv(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inv[perm[i]] = static_cast<NodeId>(i);
  std::vector<NodeId> parent(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> flag(static_cast<std::size_t>(n), -1);
  std::int64_t nnz = 0;
  for (int k = 0; k < n; ++k) {
    const NodeId u = perm[k];
    flag[k] = static_cast<NodeId>(k);
    for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
      NodeId i = inv[neighbors[e]];
      while (i < k && flag[i] != k) {
        if (parent[i] == -1) parent[i] = static_cast<NodeId>(k);
        ++nnz;
        flag[i] = static_cast<NodeId>(k);
        i = parent[i];
      }
    }
  }
  return nnz;
}

}  // namespace

StatusOr<SparseLdlt> SparseLdlt::FactorGrounded(const Graph& graph,
                                                const SubmatrixIndex& index) {
  const int n = static_cast<int>(index.kept.size());
  if (n == 0) {
    return Status::InvalidArgument(
        "L_{-S} is empty: the group covers every node");
  }
  SparseLdlt f;
  f.dim_ = n;

  // Kept-subgraph pattern in submatrix positions, for the RCM pass.
  std::vector<EdgeId> sub_offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<NodeId> sub_neighbors;
  for (int i = 0; i < n; ++i) {
    for (const NodeId v : graph.neighbors(index.kept[i])) {
      if (index.pos[v] >= 0) ++sub_offsets[i + 1];
    }
  }
  for (int i = 0; i < n; ++i) sub_offsets[i + 1] += sub_offsets[i];
  sub_neighbors.resize(static_cast<std::size_t>(sub_offsets[n]));
  {
    std::vector<EdgeId> fill = sub_offsets;
    for (int i = 0; i < n; ++i) {
      for (const NodeId v : graph.neighbors(index.kept[i])) {
        if (index.pos[v] >= 0) sub_neighbors[fill[i]++] = index.pos[v];
      }
    }
  }
  // Two fill-reducing candidates: RCM (band profile — wins on meshes,
  // paths, small-world rings) and minimum degree (local fill — wins by
  // orders of magnitude on scale-free graphs, where a band ordering
  // drags every hub across the profile). Liu's symbolic count prices
  // both for this exact pattern; RCM is kept on ties so zero-fill
  // patterns (paths, trees) stay on the historically pinned ordering.
  f.perm_ = ReverseCuthillMcKee(n, sub_offsets, sub_neighbors);
  f.ordering_ = "rcm";
  {
    const std::int64_t rcm_nnz =
        SymbolicNonzeros(n, sub_offsets, sub_neighbors, f.perm_);
    std::vector<NodeId> md_perm = MinimumDegree(n, sub_offsets, sub_neighbors);
    if (SymbolicNonzeros(n, sub_offsets, sub_neighbors, md_perm) < rcm_nnz) {
      f.perm_ = std::move(md_perm);
      f.ordering_ = "min_degree";
    }
  }
  f.inv_perm_.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) f.inv_perm_[f.perm_[i]] = i;
  f.bandwidth_ = PatternBandwidth(n, sub_offsets, sub_neighbors, f.perm_);

  // Permuted A = P L_{-S} P^T in upper-triangular CSC (column k holds
  // rows i <= k ascending), the layout the up-looking sweep consumes.
  std::vector<std::int64_t> a_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<NodeId> a_rows;
  std::vector<double> a_values;
  double max_diag = 0.0;
  {
    std::vector<std::pair<NodeId, double>> column;
    std::vector<std::vector<std::pair<NodeId, double>>> columns(
        static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      const NodeId u = index.kept[f.perm_[k]];
      column.clear();
      const auto adj = graph.neighbors(u);
      const auto w = graph.weights(u);
      for (std::size_t e = 0; e < adj.size(); ++e) {
        const NodeId p = index.pos[adj[e]];
        if (p < 0) continue;  // neighbor grounded into S
        const NodeId i = f.inv_perm_[p];
        if (i < k) column.emplace_back(i, w.empty() ? -1.0 : -w[e]);
      }
      const double d = graph.weighted_degree(u);
      max_diag = std::max(max_diag, d);
      column.emplace_back(static_cast<NodeId>(k), d);
      std::sort(column.begin(), column.end());
      columns[k] = column;
      a_ptr[k + 1] = a_ptr[k] + static_cast<std::int64_t>(column.size());
    }
    a_rows.reserve(static_cast<std::size_t>(a_ptr[n]));
    a_values.reserve(static_cast<std::size_t>(a_ptr[n]));
    for (int k = 0; k < n; ++k) {
      for (const auto& [r, v] : columns[k]) {
        a_rows.push_back(r);
        a_values.push_back(v);
      }
    }
  }

  // Symbolic: elimination tree + column counts by walking etree paths
  // from each upper-triangle entry (Liu's algorithm; O(nnz(L)) total).
  std::vector<NodeId> parent(static_cast<std::size_t>(n), -1);
  std::vector<NodeId> flag(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> count(static_cast<std::size_t>(n), 0);
  for (int k = 0; k < n; ++k) {
    flag[k] = k;
    for (std::int64_t p = a_ptr[k]; p < a_ptr[k + 1]; ++p) {
      NodeId i = a_rows[p];
      while (i < k && flag[i] != k) {
        if (parent[i] == -1) parent[i] = static_cast<NodeId>(k);
        ++count[i];  // column i of L gains row k
        flag[i] = static_cast<NodeId>(k);
        i = parent[i];
      }
    }
  }
  f.col_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int k = 0; k < n; ++k) f.col_ptr_[k + 1] = f.col_ptr_[k] + count[k];
  const std::int64_t nnz = f.col_ptr_[n];
  f.rows_.assign(static_cast<std::size_t>(nnz), 0);
  f.values_.assign(static_cast<std::size_t>(nnz), 0.0);
  f.diag_.assign(static_cast<std::size_t>(n), 0.0);

  // Numeric up-looking sweep. Row k of L is found by scattering column k
  // of A into the dense workspace y, walking the etree to enumerate the
  // row pattern, and eliminating against each earlier column. Columns of
  // L fill in ascending k, so rows_ stays sorted within each column.
  const double pivot_floor = std::max(1e-300, 1e-12 * max_diag);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  std::vector<NodeId> pattern(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> next(f.col_ptr_.begin(), f.col_ptr_.end() - 1);
  std::fill(flag.begin(), flag.end(), -1);
  for (int k = 0; k < n; ++k) {
    int top = n;
    flag[k] = k;
    for (std::int64_t p = a_ptr[k]; p < a_ptr[k + 1]; ++p) {
      const NodeId root = a_rows[p];
      y[root] += a_values[p];
      int len = 0;
      for (NodeId i = root; i < k && flag[i] != k; i = parent[i]) {
        pattern[len++] = i;
        flag[i] = static_cast<NodeId>(k);
      }
      while (len > 0) pattern[--top] = pattern[--len];
    }
    double d = y[k];
    y[k] = 0.0;
    for (int t = top; t < n; ++t) {
      const NodeId i = pattern[t];
      const double yi = y[i];
      y[i] = 0.0;
      for (std::int64_t p = f.col_ptr_[i]; p < next[i]; ++p) {
        y[f.rows_[p]] -= f.values_[p] * yi;
      }
      const double l_ki = yi / f.diag_[i];
      d -= l_ki * yi;
      f.rows_[next[i]] = static_cast<NodeId>(k);
      f.values_[next[i]] = l_ki;
      ++next[i];
    }
    if (!(d > pivot_floor)) {
      return Status::NumericalError(
          "sparse LDL^T pivot " + std::to_string(d) + " at column " +
          std::to_string(k) +
          ": L_{-S} is singular or indefinite (is some kept component "
          "disconnected from the group?)");
    }
    f.diag_[k] = d;
  }
  return f;
}

Vector SparseLdlt::Solve(const Vector& b) const {
  assert(static_cast<int>(b.size()) == dim_);
  const int n = dim_;
  Vector x(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) x[j] = b[perm_[j]];
  // Forward: L z = P b, by columns.
  for (int j = 0; j < n; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (std::int64_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      x[rows_[p]] -= values_[p] * xj;
    }
  }
  for (int j = 0; j < n; ++j) x[j] /= diag_[j];
  // Backward: L^T w = z.
  for (int j = n - 1; j >= 0; --j) {
    double xj = x[j];
    for (std::int64_t p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      xj -= values_[p] * x[rows_[p]];
    }
    x[j] = xj;
  }
  Vector out(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) out[perm_[j]] = x[j];
  return out;
}

DenseMatrix SparseLdlt::SolveMatrix(const DenseMatrix& b) const {
  assert(b.rows() == dim_);
  DenseMatrix x(b.rows(), b.cols());
  Vector col(static_cast<std::size_t>(b.rows()));
  for (int j = 0; j < b.cols(); ++j) {
    for (int i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    const Vector sol = Solve(col);
    for (int i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
  }
  return x;
}

Vector SparseLdlt::InverseDiagonal() const {
  const int n = dim_;
  // Z = (P L_{-S} P^T)^{-1} restricted to the factor pattern: z_values
  // mirrors values_/rows_, z_diag holds Z_jj. Columns are computed in
  // descending j; every Z entry a recurrence references lies in a column
  // > j (already done) because the factor pattern is fill-path closed:
  // r, i in struct(L(:,j)) with i < r implies r in struct(L(:,i)).
  std::vector<double> z_values(values_.size(), 0.0);
  Vector z_diag(static_cast<std::size_t>(n), 0.0);
  for (int j = n - 1; j >= 0; --j) {
    const std::int64_t lo = col_ptr_[j], hi = col_ptr_[j + 1];
    // Z_ij = -sum_{r in struct(L(:,j))} L_rj Z_{ri}  for i in struct.
    for (std::int64_t p = hi - 1; p >= lo; --p) {
      const NodeId i = rows_[p];
      double s = 0.0;
      for (std::int64_t q = lo; q < hi; ++q) {
        const NodeId r = rows_[q];
        double z_ri;
        if (r == i) {
          z_ri = z_diag[i];
        } else {
          const NodeId a = std::min(r, i), b = std::max(r, i);
          const std::int64_t at = FindRow(rows_, col_ptr_[a],
                                          col_ptr_[a + 1], b);
          assert(at >= 0 && "factor pattern must be fill-path closed");
          z_ri = at >= 0 ? z_values[at] : 0.0;
        }
        s += values_[q] * z_ri;
      }
      z_values[p] = -s;
    }
    // Z_jj = 1/d_j - sum_{i in struct} L_ij Z_ij.
    double s = 0.0;
    for (std::int64_t q = lo; q < hi; ++q) s += values_[q] * z_values[q];
    z_diag[j] = 1.0 / diag_[j] - s;
  }
  // The permutation is symmetric, so diagonals just map back.
  Vector out(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) out[perm_[j]] = z_diag[j];
  return out;
}

double SparseLdlt::TraceInverse() const {
  const Vector d = InverseDiagonal();
  double trace = 0.0;
  for (const double v : d) trace += v;
  return trace;
}

double SparseLdlt::LogDet() const {
  double acc = 0.0;
  for (const double d : diag_) acc += std::log(d);
  return acc;
}

std::int64_t SparseLdlt::MemoryBytes() const {
  return static_cast<std::int64_t>(
      col_ptr_.size() * sizeof(std::int64_t) +
      rows_.size() * sizeof(NodeId) + values_.size() * sizeof(double) +
      diag_.size() * sizeof(double) +
      (perm_.size() + inv_perm_.size()) * sizeof(NodeId));
}

}  // namespace cfcm
