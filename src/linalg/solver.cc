#include "linalg/solver.h"

#include <utility>

#include "linalg/laplacian.h"
#include "linalg/ldlt.h"
#include "linalg/sparse_ldlt.h"
#include "obs/metrics.h"

namespace cfcm {

namespace {

// Static-local resolution: the registry mutex is only paid once per
// process for each name (the obs hot-path pattern).
obs::Counter& FactorizationsCounter() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("engine.linalg.factorizations");
  return *c;
}

obs::Counter& SolvesCounter() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("engine.linalg.solves");
  return *c;
}

obs::Counter& CgIterationsCounter() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("engine.linalg.cg_iterations");
  return *c;
}

class DenseSolver final : public LaplacianSolver {
 public:
  DenseSolver(LdltFactorization ldlt) : ldlt_(std::move(ldlt)) {}

  SolverBackend backend() const override { return SolverBackend::kDense; }
  int dim() const override { return ldlt_.dim(); }

  Vector Solve(const Vector& b) const override {
    SolvesCounter().Add(1);
    return ldlt_.Solve(b);
  }

  DenseMatrix SolveMatrix(const DenseMatrix& b) const override {
    SolvesCounter().Add(static_cast<uint64_t>(b.cols()));
    return ldlt_.SolveMatrix(b);
  }

  Vector InverseDiagonal() const override {
    const DenseMatrix inv = ldlt_.Inverse();
    Vector d(static_cast<std::size_t>(inv.rows()));
    for (int i = 0; i < inv.rows(); ++i) d[i] = inv(i, i);
    return d;
  }

  double TraceInverse() const override {
    // Same reduction as the pinned ExactTraceInverseSubmatrix reference:
    // full inverse, then Trace() — bit-identical scoring.
    return ldlt_.Inverse().Trace();
  }

  std::int64_t MemoryBytes() const override {
    const std::int64_t n = ldlt_.dim();
    return n * n * static_cast<std::int64_t>(sizeof(double)) +
           n * static_cast<std::int64_t>(sizeof(double));
  }

 private:
  LdltFactorization ldlt_;
};

class SparseLdltSolver final : public LaplacianSolver {
 public:
  explicit SparseLdltSolver(SparseLdlt factor) : factor_(std::move(factor)) {}

  SolverBackend backend() const override { return SolverBackend::kSparseLdlt; }
  int dim() const override { return factor_.dim(); }

  Vector Solve(const Vector& b) const override {
    SolvesCounter().Add(1);
    return factor_.Solve(b);
  }

  DenseMatrix SolveMatrix(const DenseMatrix& b) const override {
    SolvesCounter().Add(static_cast<uint64_t>(b.cols()));
    return factor_.SolveMatrix(b);
  }

  Vector InverseDiagonal() const override { return factor_.InverseDiagonal(); }

  double TraceInverse() const override { return factor_.TraceInverse(); }

  std::int64_t MemoryBytes() const override { return factor_.MemoryBytes(); }

 private:
  SparseLdlt factor_;
};

class CgSolver final : public LaplacianSolver {
 public:
  CgSolver(const Graph& graph, std::vector<char> mask,
           std::vector<NodeId> kept, CgOptions options)
      : op_(graph, std::move(mask)),
        kept_(std::move(kept)),
        options_(options) {}

  SolverBackend backend() const override { return SolverBackend::kCg; }
  int dim() const override { return static_cast<int>(kept_.size()); }

  Vector Solve(const Vector& b) const override {
    SolvesCounter().Add(1);
    const std::size_t n = static_cast<std::size_t>(op_.n());
    Vector full(n, 0.0), x(n, 0.0);
    for (std::size_t i = 0; i < kept_.size(); ++i) full[kept_[i]] = b[i];
    const CgSummary summary = SolveGroundedLaplacian(op_, full, &x, options_);
    CgIterationsCounter().Add(static_cast<uint64_t>(summary.iterations));
    Vector out(kept_.size());
    for (std::size_t i = 0; i < kept_.size(); ++i) out[i] = x[kept_[i]];
    return out;
  }

  DenseMatrix SolveMatrix(const DenseMatrix& b) const override {
    DenseMatrix x(b.rows(), b.cols());
    Vector col(static_cast<std::size_t>(b.rows()));
    for (int j = 0; j < b.cols(); ++j) {
      for (int i = 0; i < b.rows(); ++i) col[i] = b(i, j);
      const Vector sol = Solve(col);
      for (int i = 0; i < b.rows(); ++i) x(i, j) = sol[i];
    }
    return x;
  }

  Vector InverseDiagonal() const override {
    // One CG solve per column: exact modulo the CG tolerance. This is
    // the documented expensive path — cg exists for low-memory solves,
    // not trace extraction.
    Vector d(kept_.size());
    Vector e(kept_.size(), 0.0);
    for (std::size_t i = 0; i < kept_.size(); ++i) {
      e[i] = 1.0;
      const Vector col = Solve(e);
      d[i] = col[i];
      e[i] = 0.0;
    }
    return d;
  }

  std::int64_t MemoryBytes() const override {
    // Matrix-free: the operator borrows the graph; the solver state is
    // the mask plus CG's four work vectors.
    return static_cast<std::int64_t>(op_.n()) *
           static_cast<std::int64_t>(sizeof(char) + 4 * sizeof(double));
  }

 private:
  LaplacianSubmatrixOp op_;
  std::vector<NodeId> kept_;
  CgOptions options_;
};

}  // namespace

const char* SolverBackendName(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::kAuto:
      return "auto";
    case SolverBackend::kDense:
      return "dense";
    case SolverBackend::kSparseLdlt:
      return "sparse_ldlt";
    case SolverBackend::kCg:
      return "cg";
  }
  return "auto";
}

std::optional<SolverBackend> ParseSolverBackend(std::string_view name) {
  if (name == "auto") return SolverBackend::kAuto;
  if (name == "dense" || name == "full") return SolverBackend::kDense;
  if (name == "sparse_ldlt") return SolverBackend::kSparseLdlt;
  if (name == "cg") return SolverBackend::kCg;
  return std::nullopt;
}

SolverBackend ResolveSolverBackend(SolverBackend requested, NodeId dim) {
  if (requested != SolverBackend::kAuto) return requested;
  return dim <= kDenseBackendMaxN ? SolverBackend::kDense
                                  : SolverBackend::kSparseLdlt;
}

double LaplacianSolver::TraceInverse() const {
  const Vector d = InverseDiagonal();
  double trace = 0.0;
  for (const double v : d) trace += v;
  return trace;
}

StatusOr<std::unique_ptr<LaplacianSolver>> MakeGroundedSolver(
    const Graph& graph, const std::vector<NodeId>& removed,
    SolverBackend backend, const CgOptions& cg_options) {
  const NodeId n = graph.num_nodes();
  if (removed.empty()) {
    return Status::InvalidArgument(
        "grounded solver needs a non-empty removed set (L itself is "
        "singular)");
  }
  for (NodeId s : removed) {
    if (s < 0 || s >= n) {
      return Status::OutOfRange("removed node " + std::to_string(s) +
                                " outside [0, " + std::to_string(n) + ")");
    }
  }
  const SubmatrixIndex index = MakeSubmatrixIndex(n, removed);
  const NodeId dim = static_cast<NodeId>(index.kept.size());
  if (dim == 0) {
    return Status::InvalidArgument(
        "L_{-S} is empty: the group covers every node");
  }
  switch (ResolveSolverBackend(backend, dim)) {
    case SolverBackend::kDense: {
      StatusOr<LdltFactorization> ldlt =
          LdltFactorization::Compute(DenseLaplacianSubmatrix(graph, index));
      if (!ldlt.ok()) return ldlt.status();
      FactorizationsCounter().Add(1);
      return std::unique_ptr<LaplacianSolver>(
          new DenseSolver(std::move(*ldlt)));
    }
    case SolverBackend::kSparseLdlt: {
      StatusOr<SparseLdlt> factor = SparseLdlt::FactorGrounded(graph, index);
      if (!factor.ok()) return factor.status();
      FactorizationsCounter().Add(1);
      return std::unique_ptr<LaplacianSolver>(
          new SparseLdltSolver(std::move(*factor)));
    }
    case SolverBackend::kCg: {
      std::vector<char> mask(static_cast<std::size_t>(n), 0);
      for (NodeId s : removed) mask[s] = 1;
      FactorizationsCounter().Add(1);  // operator setup, for symmetry
      return std::unique_ptr<LaplacianSolver>(
          new CgSolver(graph, std::move(mask), index.kept, cg_options));
    }
    case SolverBackend::kAuto:
      break;  // unreachable: resolved above
  }
  return Status::InvalidArgument("unresolved solver backend");
}

StatusOr<double> TraceInverseSubmatrix(const Graph& graph,
                                       const std::vector<NodeId>& removed,
                                       SolverBackend backend) {
  StatusOr<std::unique_ptr<LaplacianSolver>> solver =
      MakeGroundedSolver(graph, removed, backend);
  if (!solver.ok()) return solver.status();
  return (*solver)->TraceInverse();
}

}  // namespace cfcm
