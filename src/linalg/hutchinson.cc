#include "linalg/hutchinson.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace cfcm {

TraceEstimate HutchinsonTraceInverse(const Graph& graph,
                                     const std::vector<NodeId>& removed,
                                     int probes, uint64_t seed,
                                     const CgOptions& cg) {
  assert(!removed.empty());
  assert(probes >= 1);
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  std::vector<char> mask(n, 0);
  for (NodeId s : removed) mask[static_cast<std::size_t>(s)] = 1;
  LaplacianSubmatrixOp op(graph, mask);

  double sum = 0;
  double sum_sq = 0;
  Vector z(n, 0.0), x(n, 0.0);
  for (int p = 0; p < probes; ++p) {
    Rng rng(seed, static_cast<uint64_t>(p));
    for (std::size_t u = 0; u < n; ++u) {
      z[u] = op.removed(static_cast<NodeId>(u)) ? 0.0
                                                : (rng.NextBool() ? 1.0 : -1.0);
    }
    x.assign(n, 0.0);
    SolveGroundedLaplacian(op, z, &x, cg);
    const double sample = Dot(z, x);
    sum += sample;
    sum_sq += sample * sample;
  }
  TraceEstimate est;
  est.probes = probes;
  est.trace = sum / probes;
  if (probes > 1) {
    const double var =
        std::max(0.0, (sum_sq - sum * sum / probes) / (probes - 1));
    est.std_error = std::sqrt(var / probes);
  }
  return est;
}

TraceEstimate HutchinsonTraceInverse(const Graph& graph,
                                     const std::vector<NodeId>& removed,
                                     int probes, uint64_t seed,
                                     SolverBackend backend,
                                     const CgOptions& cg) {
  if (backend == SolverBackend::kAuto || backend == SolverBackend::kCg) {
    return HutchinsonTraceInverse(graph, removed, probes, seed, cg);
  }
  assert(!removed.empty());
  assert(probes >= 1);
  auto solver = MakeGroundedSolver(graph, removed, backend, cg);
  assert(solver.ok() && "L_{-S} is SPD for connected graphs");
  if (!solver.ok()) {
    return HutchinsonTraceInverse(graph, removed, probes, seed, cg);
  }
  const NodeId n = graph.num_nodes();
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId s : removed) mask[static_cast<std::size_t>(s)] = 1;
  const int dim = (*solver)->dim();

  double sum = 0;
  double sum_sq = 0;
  Vector z(static_cast<std::size_t>(dim));
  for (int p = 0; p < probes; ++p) {
    // Same probe vectors as the CG path: one Rademacher draw per kept
    // node, in node order.
    Rng rng(seed, static_cast<uint64_t>(p));
    int at = 0;
    for (NodeId u = 0; u < n; ++u) {
      if (mask[static_cast<std::size_t>(u)]) continue;
      z[static_cast<std::size_t>(at++)] = rng.NextBool() ? 1.0 : -1.0;
    }
    const Vector x = (*solver)->Solve(z);
    double sample = 0;
    for (int i = 0; i < dim; ++i) sample += z[i] * x[i];
    sum += sample;
    sum_sq += sample * sample;
  }
  TraceEstimate est;
  est.probes = probes;
  est.trace = sum / probes;
  if (probes > 1) {
    const double var =
        std::max(0.0, (sum_sq - sum * sum / probes) / (probes - 1));
    est.std_error = std::sqrt(var / probes);
  }
  return est;
}

}  // namespace cfcm
