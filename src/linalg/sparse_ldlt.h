// Sparse LDL^T factorization of grounded Laplacian submatrices.
//
// The dense LdltFactorization costs O(n^3) time and O(n^2) memory, which
// is the wall every exact path hits (DESIGN.md §14). L_{-S} inherits the
// graph's sparsity, so the classic sparse pipeline applies: RCM reorder
// the kept pattern (linalg/ordering.h), run a symbolic analysis
// (elimination tree + per-column nonzero counts) on the permuted
// pattern, then an up-looking numeric LDL^T that only touches the
// symbolic pattern. Solves are two sparse triangular sweeps, and
// Tr(L_{-S}^{-1}) comes from a Takahashi selected inverse on the factor
// pattern — no dense inverse is ever materialized.
//
// The factorization is exact (no dropping): up to floating-point
// roundoff of a reordered elimination, results match the dense reference
// bit-for-bit in structure and to ~1e-12 relative in value.
#ifndef CFCM_LINALG_SPARSE_LDLT_H_
#define CFCM_LINALG_SPARSE_LDLT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense.h"
#include "linalg/laplacian.h"

namespace cfcm {

/// \brief Sparse LDL^T of the grounded Laplacian submatrix L_{-S}.
///
/// Vectors are indexed by submatrix position (index.kept order), exactly
/// like the dense DenseLaplacianSubmatrix + LdltFactorization pair; the
/// internal RCM permutation is invisible to callers. Factorization fails
/// with NumericalError when a pivot collapses (S empty, or a kept
/// component with no edge into S — L_{-S} singular), mirroring the dense
/// path.
class SparseLdlt {
 public:
  /// Factors L_{-S} over `index` (from MakeSubmatrixIndex).
  static StatusOr<SparseLdlt> FactorGrounded(const Graph& graph,
                                             const SubmatrixIndex& index);

  /// Kept dimension n - |S|.
  int dim() const { return dim_; }

  /// Solves L_{-S} x = b; b has dim() entries in kept order.
  Vector Solve(const Vector& b) const;

  /// Solves L_{-S} X = B column by column (B is dim() x m).
  DenseMatrix SolveMatrix(const DenseMatrix& b) const;

  /// \brief diag(L_{-S}^{-1}) in kept order via the Takahashi selected
  /// inverse: the inverse is computed only on the (fill-path closed)
  /// pattern of the factor, which provably contains every entry the
  /// diagonal recurrences reference. O(sum_j |L(:,j)|^2) time.
  Vector InverseDiagonal() const;

  /// Tr(L_{-S}^{-1}) = sum of InverseDiagonal().
  double TraceInverse() const;

  /// log det L_{-S} = sum log d_i.
  double LogDet() const;

  /// Nonzeros of the strictly-lower factor L (fill included).
  std::int64_t FactorNonzeros() const {
    return static_cast<std::int64_t>(rows_.size());
  }

  /// Resident bytes of the factor (pattern + values + permutations);
  /// the bench compares this against the dense n^2 * 8.
  std::int64_t MemoryBytes() const;

  /// Bandwidth of the permuted pattern (diagnostic).
  NodeId permuted_bandwidth() const { return bandwidth_; }

  /// Which fill-reducing candidate won the symbolic price-out:
  /// "rcm" or "min_degree" (diagnostic).
  const char* ordering() const { return ordering_; }

 private:
  SparseLdlt() = default;

  // Factor of P L_{-S} P^T = L D L^T with L unit lower triangular,
  // stored strictly-lower by columns (rows ascending within a column).
  int dim_ = 0;
  std::vector<std::int64_t> col_ptr_;  // dim_+1 column pointers
  std::vector<NodeId> rows_;           // row indices
  std::vector<double> values_;         // L values
  Vector diag_;                        // D
  std::vector<NodeId> perm_;           // perm_[new] = old kept position
  std::vector<NodeId> inv_perm_;       // inverse of perm_
  NodeId bandwidth_ = 0;
  const char* ordering_ = "rcm";
};

}  // namespace cfcm

#endif  // CFCM_LINALG_SPARSE_LDLT_H_
