// Row-major dense matrix and small vector kernels.
//
// Dense algebra backs the EXACT/OPTIMUM baselines and every estimator
// test reference; it is deliberately simple (no blocking/SIMD) because the
// paper's own EXACT baseline is a cubic-time matrix-inversion loop.
#ifndef CFCM_LINALG_DENSE_H_
#define CFCM_LINALG_DENSE_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace cfcm {

using Vector = std::vector<double>;

/// \brief Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, 0.0) {
    assert(rows >= 0 && cols >= 0);
  }

  static DenseMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int i, int j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  double operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  std::span<const double> Row(int i) const {
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }
  std::span<double> MutableRow(int i) {
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  /// Sum of diagonal entries (square matrices).
  double Trace() const;

  /// this * other.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// this * x.
  Vector MultiplyVec(const Vector& x) const;

  DenseMatrix Transpose() const;

  /// max_ij |A_ij - B_ij|; shapes must match.
  static double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// x . y
double Dot(const Vector& x, const Vector& y);

/// ||x||_2
double Norm2(const Vector& x);

/// y += alpha * x
void Axpy(double alpha, const Vector& x, Vector* y);

/// x *= alpha
void Scale(double alpha, Vector* x);

}  // namespace cfcm

#endif  // CFCM_LINALG_DENSE_H_
