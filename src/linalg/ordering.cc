#include "linalg/ordering.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <iterator>
#include <queue>
#include <utility>

namespace cfcm {

namespace {

// One BFS pass from `root` over the unvisited part of the pattern.
// Appends the level order to *order, marks *visited, and reports the
// eccentricity (number of levels - 1) and the last level's first index
// into *order so the pseudo-peripheral search can inspect it.
struct BfsResult {
  NodeId eccentricity = 0;
  std::size_t last_level_begin = 0;
};

BfsResult BreadthFirstLevels(NodeId root, const std::vector<EdgeId>& offsets,
                             const std::vector<NodeId>& neighbors,
                             std::vector<char>* visited,
                             std::vector<NodeId>* order) {
  const std::size_t begin = order->size();
  (*visited)[root] = 1;
  order->push_back(root);
  BfsResult result;
  std::size_t level_begin = begin;
  std::vector<NodeId> next;
  while (true) {
    const std::size_t level_end = order->size();
    next.clear();
    for (std::size_t i = level_begin; i < level_end; ++i) {
      const NodeId u = (*order)[i];
      for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
        const NodeId v = neighbors[e];
        if (v == u || (*visited)[v]) continue;
        (*visited)[v] = 1;
        next.push_back(v);
      }
    }
    if (next.empty()) {
      result.last_level_begin = level_begin;
      return result;
    }
    // Ascending (degree, id): the Cuthill–McKee visiting order. Sorting
    // the whole level (rather than per-parent buckets) keeps the result
    // independent of adjacency interleaving and is what the classic
    // George–Liu formulation reduces to on sorted CSR inputs.
    std::sort(next.begin(), next.end(), [&](NodeId a, NodeId b) {
      const EdgeId da = offsets[a + 1] - offsets[a];
      const EdgeId db = offsets[b + 1] - offsets[b];
      if (da != db) return da < db;
      return a < b;
    });
    level_begin = order->size();
    order->insert(order->end(), next.begin(), next.end());
    ++result.eccentricity;
  }
}

// George–Liu pseudo-peripheral vertex: start from the minimum-degree
// unvisited node, repeatedly BFS and hop to the minimum-degree node of
// the deepest level while the eccentricity keeps growing.
NodeId PseudoPeripheral(NodeId start, const std::vector<EdgeId>& offsets,
                        const std::vector<NodeId>& neighbors,
                        std::vector<char>* scratch) {
  NodeId root = start;
  NodeId best_ecc = -1;
  std::vector<NodeId> order;
  for (int iter = 0; iter < 8; ++iter) {  // converges in 2-3 in practice
    std::fill(scratch->begin(), scratch->end(), 0);
    order.clear();
    const BfsResult bfs =
        BreadthFirstLevels(root, offsets, neighbors, scratch, &order);
    if (bfs.eccentricity <= best_ecc) break;
    best_ecc = bfs.eccentricity;
    NodeId candidate = order[bfs.last_level_begin];
    EdgeId cand_deg = offsets[candidate + 1] - offsets[candidate];
    for (std::size_t i = bfs.last_level_begin; i < order.size(); ++i) {
      const NodeId u = order[i];
      const EdgeId d = offsets[u + 1] - offsets[u];
      if (d < cand_deg || (d == cand_deg && u < candidate)) {
        candidate = u;
        cand_deg = d;
      }
    }
    if (candidate == root) break;
    root = candidate;
  }
  return root;
}

}  // namespace

std::vector<NodeId> ReverseCuthillMcKee(NodeId n,
                                        const std::vector<EdgeId>& offsets,
                                        const std::vector<NodeId>& neighbors) {
  assert(static_cast<std::size_t>(n) + 1 == offsets.size());
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<char> scratch(static_cast<std::size_t>(n), 0);
  for (NodeId seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Restart per component from a pseudo-peripheral vertex. The probe
    // BFS inside PseudoPeripheral resets `scratch` itself and cannot
    // escape the component, so no cross-component masking is needed.
    const NodeId root = PseudoPeripheral(seed, offsets, neighbors, &scratch);
    BreadthFirstLevels(root, offsets, neighbors, &visited, &order);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<NodeId> ReverseCuthillMcKee(const Graph& graph) {
  return ReverseCuthillMcKee(graph.num_nodes(), graph.offsets(),
                             graph.raw_neighbors());
}

std::vector<NodeId> MinimumDegree(NodeId n, const std::vector<EdgeId>& offsets,
                                  const std::vector<NodeId>& neighbors) {
  assert(static_cast<std::size_t>(n) + 1 == offsets.size());
  // Alive-only adjacency, kept sorted and duplicate-free. The invariant
  // that eliminated nodes never linger holds because eliminating u
  // rewrites the list of every node that held u.
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
      if (neighbors[e] != u) adj[u].push_back(neighbors[e]);
    }
    std::sort(adj[u].begin(), adj[u].end());
    adj[u].erase(std::unique(adj[u].begin(), adj[u].end()), adj[u].end());
  }
  // Min-heap on (degree, id) with lazy deletion: stale entries are
  // skipped when their recorded degree no longer matches.
  using Entry = std::pair<NodeId, NodeId>;  // (degree, id)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (NodeId u = 0; u < n; ++u) {
    heap.emplace(static_cast<NodeId>(adj[u].size()), u);
  }
  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<NodeId> merged;
  while (!heap.empty()) {
    const auto [degree, u] = heap.top();
    heap.pop();
    if (eliminated[u] || degree != static_cast<NodeId>(adj[u].size())) {
      continue;
    }
    eliminated[u] = 1;
    order.push_back(u);
    const std::vector<NodeId> clique = std::move(adj[u]);
    adj[u] = {};
    for (const NodeId v : clique) {
      // adj[v] <- (adj[v] ∪ clique) \ {u, v}: the elimination clique.
      merged.clear();
      merged.reserve(adj[v].size() + clique.size());
      std::set_union(adj[v].begin(), adj[v].end(), clique.begin(),
                     clique.end(), std::back_inserter(merged));
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [&](NodeId w) { return w == u || w == v; }),
                   merged.end());
      adj[v].swap(merged);
      heap.emplace(static_cast<NodeId>(adj[v].size()), v);
    }
  }
  return order;
}

std::vector<NodeId> MinimumDegree(const Graph& graph) {
  return MinimumDegree(graph.num_nodes(), graph.offsets(),
                       graph.raw_neighbors());
}

NodeId PatternBandwidth(NodeId n, const std::vector<EdgeId>& offsets,
                        const std::vector<NodeId>& neighbors,
                        const std::vector<NodeId>& perm) {
  assert(static_cast<std::size_t>(n) == perm.size());
  std::vector<NodeId> position(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) position[perm[i]] = i;
  NodeId bandwidth = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (EdgeId e = offsets[u]; e < offsets[u + 1]; ++e) {
      const NodeId v = neighbors[e];
      if (v == u) continue;
      const NodeId span = position[u] > position[v]
                              ? position[u] - position[v]
                              : position[v] - position[u];
      bandwidth = std::max(bandwidth, span);
    }
  }
  return bandwidth;
}

NodeId PatternBandwidth(const Graph& graph) {
  std::vector<NodeId> identity(static_cast<std::size_t>(graph.num_nodes()));
  for (NodeId i = 0; i < graph.num_nodes(); ++i) identity[i] = i;
  return PatternBandwidth(graph.num_nodes(), graph.offsets(),
                          graph.raw_neighbors(), identity);
}

}  // namespace cfcm
