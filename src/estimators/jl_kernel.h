// Shared JL-sketched sampling kernel under ForestDelta and SchurDelta.
//
// Both Alg. 2 and Alg. 4 run the same per-forest core: sample a rooted
// forest, compute JL subtree sums, run the diagonal and JL prefix
// passes, and fold per-node first/second moments of X_f and Y_f into
// shared accumulators. This kernel implements that core once over the
// sampling runtime (DESIGN.md §9); SchurDelta subclasses it to add the
// rooted-probability counters and per-tree JL sums of Lemma 4.2.
#ifndef CFCM_ESTIMATORS_JL_KERNEL_H_
#define CFCM_ESTIMATORS_JL_KERNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "forest/bfs_tree.h"
#include "forest/wilson.h"
#include "linalg/jl.h"
#include "runtime/forest_arena.h"
#include "runtime/mc_runtime.h"

namespace cfcm {

class JlForestKernel : public ForestKernel {
 public:
  /// `scaffold` and `sketch` must outlive the kernel. `slots` is
  /// McScratchSlots(pool) for the pool the kernel will run on.
  JlForestKernel(const Graph& graph, const TreeScaffold& scaffold,
                 const JlSketch& sketch, uint64_t seed, int jl_rows,
                 std::size_t slots);

  /// Restricts the X/Y moment accumulation to nodes with mask[u] != 0
  /// (null = every non-root node). The per-forest passes stay global —
  /// prefix recursions need every ancestor — but the O(w)-per-node fold
  /// and therefore the accumulator contract shrink to the subset.
  /// A node's accumulated moments at forest count r are bitwise
  /// identical with or without a mask covering it.
  void set_subset(const std::vector<char>* mask) { subset_ = mask; }

  /// Wires in a forest arena: ProcessForest replays forests below the
  /// arena's committed count (no walks, bitwise-identical statistics)
  /// and stores freshly sampled ones for later calls.
  void set_arena(ForestArena* arena) { arena_ = arena; }

  /// Incremental replay plan (DESIGN.md §16). With `clean` set, a
  /// committed forest index f is replayed only when f < clean->size()
  /// and (*clean)[f] != 0; other committed indices are *resampled* on
  /// the current graph from the independent stream Rng(resample_seed, f)
  /// and their arena slots overwritten. Indices at or beyond the
  /// committed count keep the kernel's base seed (those (seed, index)
  /// pairs were never drawn). Null `clean` restores plain replay.
  void set_replay_plan(const std::vector<char>* clean,
                       uint64_t resample_seed) {
    replay_clean_ = clean;
    resample_seed_ = resample_seed;
  }

  /// Forests replayed from the arena instead of sampled.
  int reused_forests() const {
    return reused_.load(std::memory_order_relaxed);
  }

  std::int64_t ProcessForest(std::size_t slot,
                             std::uint64_t forest_index) override;
  void Accumulate(std::size_t slot, NodeId begin, NodeId end) override;

  /// Folds the batch partials into the running sums (`sum_y` is
  /// node-major n x w) and clears them for the next batch.
  void MergeBatch(std::vector<double>* sum_x, std::vector<double>* sum_sq_x,
                  std::vector<double>* sum_y, std::vector<double>* sum_y_sq);

 protected:
  struct Scratch {
    Scratch(const Graph& graph, int w)
        : sampler(graph),
          xbuf(static_cast<std::size_t>(graph.num_nodes())),
          sub(static_cast<std::size_t>(graph.num_nodes()) * w),
          ybuf(static_cast<std::size_t>(graph.num_nodes()) * w) {}

    ForestSampler sampler;
    const RootedForest* forest = nullptr;  ///< last sampled forest
    RootedForest replay;       ///< arena-replayed forest (when used)
    std::vector<double> xbuf;
    std::vector<double> sub;   ///< JL subtree sums, node-major n x w
    std::vector<double> ybuf;  ///< Y_f, node-major n x w
  };

  /// Subclass hook, called inside the ordered shard commit after the
  /// X/Y moments of [begin, end) are folded. Same determinism contract.
  virtual void AccumulateExtra(const Scratch& scratch, NodeId begin,
                               NodeId end) {
    (void)scratch;
    (void)begin;
    (void)end;
  }

  const Scratch& scratch(std::size_t slot) const { return *scratch_[slot]; }
  const TreeScaffold& scaffold() const { return scaffold_; }
  int jl_rows() const { return jl_rows_; }

 private:
  const TreeScaffold& scaffold_;
  const JlSketch& sketch_;
  const uint64_t seed_;
  const int jl_rows_;
  const std::vector<char>* subset_ = nullptr;
  ForestArena* arena_ = nullptr;
  const std::vector<char>* replay_clean_ = nullptr;
  uint64_t resample_seed_ = 0;
  std::atomic<int> reused_{0};
  std::vector<std::unique_ptr<Scratch>> scratch_;
  // Batch partials — exactly one copy regardless of thread count.
  std::vector<double> partial_sum_x_;
  std::vector<double> partial_sum_sq_x_;
  std::vector<double> partial_sum_y_;  // node-major n x w
  std::vector<double> partial_sum_y_sq_;
};

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_JL_KERNEL_H_
