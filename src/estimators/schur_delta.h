// SchurDelta (paper Algorithm 4): marginal gains Delta(u, S) estimated
// from forests rooted at S ∪ T plus an estimated Schur complement.
#ifndef CFCM_ESTIMATORS_SCHUR_DELTA_H_
#define CFCM_ESTIMATORS_SCHUR_DELTA_H_

#include <vector>

#include "common/thread_pool.h"
#include "estimators/forest_delta.h"
#include "estimators/options.h"
#include "graph/graph.h"

namespace cfcm {

/// DeltaEstimate plus Schur-specific diagnostics.
struct SchurDeltaEstimate : DeltaEstimate {
  double ridge = 0.0;       ///< diagonal regularization added to the
                            ///< estimated Schur complement (0 normally)
  int auxiliary_roots = 0;  ///< |T| actually used
};

/// \brief Runs Algorithm 4.
///
/// Forests are rooted at S ∪ T, which makes Wilson walks absorb at hubs
/// (cheap) and L^{-1}_{-S∪T} strongly diagonally dominant (accurate).
/// L_{-S}^{-1} is reconstructed through the block identity Eq. (11) using
/// the rooted-probability matrix F (Lemma 4.2) and the Schur complement
/// estimated entrywise from F via Eq. (15).
///
/// `t_nodes` must be disjoint from `s_nodes`; both non-empty; graph
/// connected; |S| + |T| < n.
SchurDeltaEstimate SchurDelta(const Graph& graph,
                              const std::vector<NodeId>& s_nodes,
                              const std::vector<NodeId>& t_nodes,
                              const EstimatorOptions& options,
                              ThreadPool& pool);

/// SchurDelta restricted by `scope` (subset re-scoring, arena replay).
/// The rooted-probability counters stay global regardless of the
/// subset — the Schur complement (Eq. 15) needs F~(u, t) for every
/// neighbor u of T — but they are O(1) per node per forest; the
/// O(w)-per-node moment folds and the Eq. (11) per-candidate assembly
/// shrink to the subset.
SchurDeltaEstimate SchurDelta(const Graph& graph,
                              const std::vector<NodeId>& s_nodes,
                              const std::vector<NodeId>& t_nodes,
                              const EstimatorOptions& options,
                              ThreadPool& pool, const DeltaScope& scope);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_SCHUR_DELTA_H_
