// ForestDelta (paper Algorithm 2): marginal gains Delta(u, S) from
// sampled spanning forests rooted at S.
#ifndef CFCM_ESTIMATORS_FOREST_DELTA_H_
#define CFCM_ESTIMATORS_FOREST_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "estimators/options.h"
#include "graph/graph.h"

namespace cfcm {

/// Estimates of Delta(u,S) = (L_{-S}^{-2})_uu / (L_{-S}^{-1})_uu.
struct DeltaEstimate {
  std::vector<double> delta;      ///< Delta'(u,S); 0 at nodes of S
  std::vector<double> z;          ///< (L_{-S}^{-1})_uu estimates; 0 at S
  std::vector<double> numerator;  ///< ||W L_{-S}^{-1} e_u||^2 estimates
  int forests = 0;
  int jl_rows = 0;
  std::int64_t walk_steps = 0;  ///< total loop-erased walk steps
  bool converged = false;  ///< Bernstein criterion fired before the cap
};

/// \brief Runs Algorithm 2: samples rooted forests with root set
/// `s_nodes`, maintains diagonal and JL-sketched flow estimators, and
/// applies the empirical-Bernstein adaptive exit.
///
/// Requires a connected graph and a non-empty root set.
DeltaEstimate ForestDelta(const Graph& graph,
                          const std::vector<NodeId>& s_nodes,
                          const EstimatorOptions& options, ThreadPool& pool);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_FOREST_DELTA_H_
