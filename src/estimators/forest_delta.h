// ForestDelta (paper Algorithm 2): marginal gains Delta(u, S) from
// sampled spanning forests rooted at S.
#ifndef CFCM_ESTIMATORS_FOREST_DELTA_H_
#define CFCM_ESTIMATORS_FOREST_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "estimators/options.h"
#include "graph/graph.h"
#include "runtime/forest_arena.h"

namespace cfcm {

/// Estimates of Delta(u,S) = (L_{-S}^{-2})_uu / (L_{-S}^{-1})_uu.
struct DeltaEstimate {
  std::vector<double> delta;      ///< Delta'(u,S); 0 at nodes of S
  std::vector<double> z;          ///< (L_{-S}^{-1})_uu estimates; 0 at S
  std::vector<double> numerator;  ///< ||W L_{-S}^{-1} e_u||^2 estimates
  /// Per-node relative empirical-Bernstein half-width of delta[u] at the
  /// final forest count (numerator and denominator widths combined). The
  /// lazy selection layer inflates stale heap keys by (1 + rel[u]) so a
  /// noisy low draw cannot freeze a candidate below the refresh frontier
  /// (DESIGN.md §13). 0 at roots / outside the subset.
  std::vector<double> rel;
  int forests = 0;
  int reused_forests = 0;  ///< of `forests`, how many were arena replays
  int jl_rows = 0;
  std::int64_t walk_steps = 0;  ///< total loop-erased walk steps
  bool converged = false;  ///< Bernstein criterion fired before the cap
};

/// \brief Restricts one Delta estimation call to a candidate subset
/// and/or wires in a forest arena (lazy-greedy re-scoring).
///
/// With a subset mask, only nodes with mask[u] != 0 are estimated and
/// only they feed the adaptive stop rule — the estimate prices the
/// per-forest passes plus O(|subset| w) accumulation instead of O(n w)
/// accumulation, and typically stops after far fewer forests because
/// only the subset has to converge. delta/z/numerator stay 0 outside
/// the subset. At equal forest counts, a subset node's values are
/// bitwise identical to the unrestricted call's.
struct DeltaScope {
  const std::vector<char>* subset = nullptr;  ///< size-n mask; null = all
  ForestArena* arena = nullptr;  ///< forest replay/retention; may be null
  /// Multiplier on the resolved forest target (floored at min_batch).
  /// The lazy layer lowers it for re-scores in noise-dominated decayed
  /// regimes, where the full budget buys no extra ranking power
  /// (DESIGN.md §13); rel[] reflects the actual sample size, so the
  /// reduced-budget widths stay honest. 1 everywhere fidelity matters.
  double forest_scale = 1.0;
  /// Incremental replay plan (DESIGN.md §16): with `replay_clean` set,
  /// committed arena forests are replayed only where the mask is
  /// nonzero; dirty committed slots resample from Rng(resample_seed, f)
  /// and overwrite their slot. Requires `arena`.
  const std::vector<char>* replay_clean = nullptr;
  uint64_t resample_seed = 0;
  /// Lets a *subset-restricted* call keep the adaptive Bernstein exit
  /// (convergence judged over the subset only). Off by default because
  /// the lazy layer needs subset estimates bitwise exchangeable with
  /// full-schedule ones; the warm repair path opts in — its fresh
  /// subset scores are only compared against each other (DESIGN.md §16).
  bool allow_adaptive_exit = false;
};

/// \brief Runs Algorithm 2: samples rooted forests with root set
/// `s_nodes`, maintains diagonal and JL-sketched flow estimators, and
/// applies the empirical-Bernstein adaptive exit.
///
/// Requires a connected graph and a non-empty root set.
DeltaEstimate ForestDelta(const Graph& graph,
                          const std::vector<NodeId>& s_nodes,
                          const EstimatorOptions& options, ThreadPool& pool);

/// ForestDelta restricted by `scope` (subset re-scoring, arena replay).
DeltaEstimate ForestDelta(const Graph& graph,
                          const std::vector<NodeId>& s_nodes,
                          const EstimatorOptions& options, ThreadPool& pool,
                          const DeltaScope& scope);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_FOREST_DELTA_H_
