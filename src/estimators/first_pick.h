// First greedy pick: argmin_u L†_uu via forest sampling (Alg. 3 lines
// 1-14, using the Lemma 3.5 reformulation through L_{-s}^{-1}).
#ifndef CFCM_ESTIMATORS_FIRST_PICK_H_
#define CFCM_ESTIMATORS_FIRST_PICK_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "estimators/options.h"
#include "graph/graph.h"

namespace cfcm {

/// Outcome of the pseudoinverse-diagonal estimation.
struct FirstPickResult {
  NodeId best = -1;            ///< argmin_u of the estimated L†_uu
  NodeId pivot = -1;           ///< the grounded node s (max degree)
  std::vector<double> scores;  ///< x_u = estimate of L†_uu - L†_ss
  int forests = 0;
  std::int64_t walk_steps = 0;  ///< total loop-erased walk steps
  bool converged = false;  ///< adaptive criterion fired before the cap
};

/// \brief Estimates x_u = (L_{-s}^{-1})_uu - (2/n) 1^T L_{-s}^{-1} e_u for
/// all u (x_s = 0) by sampling spanning forests rooted at the max-degree
/// node s, and returns the argmin.
///
/// By Lemma 3.5, x_u = L†_uu - L†_ss, so the argmin of x equals the
/// argmin of the pseudoinverse diagonal (the node of maximum single-node
/// CFCC). Requires a connected graph with >= 2 nodes.
FirstPickResult EstimateFirstPick(const Graph& graph,
                                  const EstimatorOptions& options,
                                  ThreadPool& pool);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_FIRST_PICK_H_
