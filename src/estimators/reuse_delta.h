// Cross-round forest reuse: Delta(u, S ∪ {v}) estimated from forests
// that were sampled for root set S, by cutting v's up-edge.
//
// Cutting the forest edge (v, pi_v) turns an S-rooted forest F into an
// (S ∪ {v})-rooted forest F' = cut(F). The map is measure-tilted: F
// lands on F' with probability proportional to mu(F') * W_out(F'),
// where W_out(F') = sum of conductances from v to nodes outside v's
// tree in F' (each such edge reconnects F' to a distinct preimage).
// Self-normalized importance sampling with weight 1/W_out therefore
// re-targets the (S ∪ {v})-forest measure — up to the support gap of
// forests whose v-tree swallows every neighbor of v (W_out = 0, never
// produced by cutting). Those drop out with weight 0, which biases the
// estimate by the missing mass; the caller must treat the result as a
// *pre-screen* and only act on it when the Bernstein-style width check
// separates the top candidates (DESIGN.md §13).
#ifndef CFCM_ESTIMATORS_REUSE_DELTA_H_
#define CFCM_ESTIMATORS_REUSE_DELTA_H_

#include <vector>

#include "common/thread_pool.h"
#include "estimators/options.h"
#include "graph/graph.h"
#include "runtime/forest_arena.h"

namespace cfcm {

/// Importance-weighted gain estimates from replayed forests.
struct ReuseEstimate {
  bool usable = false;        ///< weight mass sufficed to evaluate at all
  std::vector<double> gain;   ///< Delta'(u, S ∪ {v}); 0 off-candidates
  std::vector<double> rel;    ///< relative half-width per candidate
  int forests = 0;            ///< forests replayed from the arena
  int zero_weight = 0;        ///< dropped forests (W_out = 0)
  double ess = 0.0;           ///< effective sample size (sum w)^2/sum w^2
};

/// \brief Re-scores `candidates` (size-n mask) against root set `s_new`
/// (which must already contain `v_new`) by replaying the arena's
/// forests — sampled for s_new \ {v_new} — with v_new's up-edge cut.
///
/// No random walks run; the cost is the per-forest O(n w) passes over
/// arena.committed() forests. Deterministic: replay order is the forest
/// index order, and accumulation goes through the ordered MC runtime.
ReuseEstimate ReuseDelta(const Graph& graph,
                         const std::vector<NodeId>& s_new, NodeId v_new,
                         const std::vector<char>& candidates,
                         const ForestArena& arena,
                         const EstimatorOptions& options, ThreadPool& pool);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_REUSE_DELTA_H_
