#include "estimators/jl_kernel.h"

#include <algorithm>

#include "estimators/phi_estimators.h"
#include "forest/subtree.h"

namespace cfcm {

JlForestKernel::JlForestKernel(const Graph& graph, const TreeScaffold& scaffold,
                               const JlSketch& sketch, uint64_t seed,
                               int jl_rows, std::size_t slots)
    : scaffold_(scaffold),
      sketch_(sketch),
      seed_(seed),
      jl_rows_(jl_rows),
      partial_sum_x_(static_cast<std::size_t>(graph.num_nodes()), 0.0),
      partial_sum_sq_x_(static_cast<std::size_t>(graph.num_nodes()), 0.0),
      partial_sum_y_(static_cast<std::size_t>(graph.num_nodes()) * jl_rows,
                     0.0),
      partial_sum_y_sq_(static_cast<std::size_t>(graph.num_nodes()), 0.0) {
  scratch_.reserve(slots);
  for (std::size_t t = 0; t < slots; ++t) {
    scratch_.push_back(std::make_unique<Scratch>(graph, jl_rows));
  }
}

std::int64_t JlForestKernel::ProcessForest(std::size_t slot,
                                           std::uint64_t forest_index) {
  Scratch& ws = *scratch_[slot];
  std::int64_t walk_steps = 0;
  const bool stored =
      arena_ != nullptr &&
      forest_index < static_cast<std::uint64_t>(arena_->committed());
  const bool replayable =
      stored &&
      (replay_clean_ == nullptr ||
       (forest_index < replay_clean_->size() &&
        (*replay_clean_)[forest_index] != 0));
  if (replayable) {
    // Replay: same (seed, index) stream would resample the identical
    // forest, so the copied slabs feed the passes bit-for-bit — only
    // the loop-erased walks are skipped.
    arena_->LoadInto(static_cast<int>(forest_index), &ws.replay);
    ws.forest = &ws.replay;
    reused_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // A stored-but-dirty slot resamples from the resample stream, never
    // the base stream: (seed_, forest_index) already produced the
    // rejected forest, so drawing from it again would not be an
    // independent sample of the post-delta measure.
    Rng rng(stored ? resample_seed_ : seed_, forest_index);
    ws.forest = &ws.sampler.Sample(scaffold_.is_root, &rng);
    walk_steps = ws.sampler.last_walk_steps();
    if (arena_ != nullptr &&
        forest_index < static_cast<std::uint64_t>(arena_->capacity())) {
      arena_->Store(static_cast<int>(forest_index), *ws.forest);
    }
  }
  SubtreeJlSums(*ws.forest, scaffold_.is_root, sketch_, ws.sub.data());
  DiagPrefixPass(scaffold_, *ws.forest, &ws.xbuf);
  JlPrefixPass(scaffold_, *ws.forest, ws.sub.data(), jl_rows_,
               ws.ybuf.data());
  return walk_steps;
}

void JlForestKernel::Accumulate(std::size_t slot, NodeId begin, NodeId end) {
  const Scratch& ws = *scratch_[slot];
  const int w = jl_rows_;
  for (NodeId u = begin; u < end; ++u) {
    if (subset_ != nullptr && !(*subset_)[u]) continue;
    if (scaffold_.is_root[u]) continue;
    const double x = ws.xbuf[u];
    partial_sum_x_[u] += x;
    partial_sum_sq_x_[u] += x * x;
    const double* yr = ws.ybuf.data() + static_cast<std::size_t>(u) * w;
    double* acc = partial_sum_y_.data() + static_cast<std::size_t>(u) * w;
    double sq = 0;
    for (int j = 0; j < w; ++j) {
      acc[j] += yr[j];
      sq += yr[j] * yr[j];
    }
    partial_sum_y_sq_[u] += sq;
  }
  AccumulateExtra(ws, begin, end);
}

void JlForestKernel::MergeBatch(std::vector<double>* sum_x,
                                std::vector<double>* sum_sq_x,
                                std::vector<double>* sum_y,
                                std::vector<double>* sum_y_sq) {
  for (std::size_t u = 0; u < partial_sum_x_.size(); ++u) {
    (*sum_x)[u] += partial_sum_x_[u];
    (*sum_sq_x)[u] += partial_sum_sq_x_[u];
    (*sum_y_sq)[u] += partial_sum_y_sq_[u];
  }
  for (std::size_t i = 0; i < partial_sum_y_.size(); ++i) {
    (*sum_y)[i] += partial_sum_y_[i];
  }
  std::fill(partial_sum_x_.begin(), partial_sum_x_.end(), 0.0);
  std::fill(partial_sum_sq_x_.begin(), partial_sum_sq_x_.end(), 0.0);
  std::fill(partial_sum_y_.begin(), partial_sum_y_.end(), 0.0);
  std::fill(partial_sum_y_sq_.begin(), partial_sum_y_sq_.end(), 0.0);
}

}  // namespace cfcm
