#include "estimators/bernstein.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cfcm {

namespace {

double EmpiricalVariance(std::int64_t count, double sum, double sum_sq) {
  const double mean = sum / static_cast<double>(count);
  return std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean);
}

}  // namespace

double EmpiricalBernsteinHalfWidth(std::int64_t count, double sum,
                                   double sum_sq, double sup, double delta) {
  if (count <= 0) return std::numeric_limits<double>::infinity();
  const double var = EmpiricalVariance(count, sum, sum_sq);
  const double log_term = std::log(3.0 / delta);
  return std::sqrt(2.0 * var * log_term / static_cast<double>(count)) +
         3.0 * sup * log_term / static_cast<double>(count);
}

double VarianceHalfWidth(std::int64_t count, double sum, double sum_sq,
                         double delta) {
  if (count <= 0) return std::numeric_limits<double>::infinity();
  const double var = EmpiricalVariance(count, sum, sum_sq);
  const double log_term = std::log(3.0 / delta);
  return std::sqrt(2.0 * var * log_term / static_cast<double>(count));
}

double HoeffdingSampleBound(double range, double eps_abs, double delta) {
  return range * range * std::log(2.0 / delta) / (2.0 * eps_abs * eps_abs);
}

}  // namespace cfcm
