#include "estimators/first_pick.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "estimators/bernstein.h"
#include "estimators/phi_estimators.h"
#include "forest/bfs_tree.h"
#include "forest/subtree.h"
#include "forest/wilson.h"

namespace cfcm {

namespace {

struct WorkerState {
  explicit WorkerState(const Graph& graph)
      : sampler(graph),
        xbuf(static_cast<std::size_t>(graph.num_nodes())),
        obuf(static_cast<std::size_t>(graph.num_nodes())),
        sum(static_cast<std::size_t>(graph.num_nodes())),
        sum_sq(static_cast<std::size_t>(graph.num_nodes())) {}

  ForestSampler sampler;
  std::vector<int32_t> sizes;
  std::vector<double> xbuf;
  std::vector<double> obuf;
  std::vector<double> sum;
  std::vector<double> sum_sq;
};

}  // namespace

FirstPickResult EstimateFirstPick(const Graph& graph,
                                  const EstimatorOptions& options,
                                  ThreadPool& pool) {
  const NodeId n = graph.num_nodes();
  assert(n >= 2);
  FirstPickResult result;
  // Pivot: the max-weighted-degree node minimizes the absorbing-walk
  // cost; identical to the max-degree node on unit-weighted graphs.
  result.pivot = graph.MaxWeightedDegreeNode();
  const TreeScaffold scaffold = MakeTreeScaffold(graph, {result.pivot});
  const double inv_n = 1.0 / static_cast<double>(n);
  const int target = ResolveTargetForests(options, n);
  const double delta = ResolveBernsteinDelta(options, n);

  const std::size_t num_workers = std::max<std::size_t>(1, pool.num_threads());
  std::vector<WorkerState> workers;
  workers.reserve(num_workers);
  for (std::size_t t = 0; t < num_workers; ++t) workers.emplace_back(graph);

  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_sq(static_cast<std::size_t>(n), 0.0);

  int total = 0;
  int batch = std::max(1, options.min_batch);
  while (total < target) {
    const int current = std::min(batch, target - total);
    const int base = total;
    pool.RunPerWorker([&](std::size_t worker_id) {
      WorkerState& ws = workers[worker_id];
      std::fill(ws.sum.begin(), ws.sum.end(), 0.0);
      std::fill(ws.sum_sq.begin(), ws.sum_sq.end(), 0.0);
      for (int i = static_cast<int>(worker_id); i < current;
           i += static_cast<int>(num_workers)) {
        Rng rng(options.seed, static_cast<uint64_t>(base + i));
        const RootedForest& forest =
            ws.sampler.Sample(scaffold.is_root, &rng);
        SubtreeSizes(forest, &ws.sizes);
        DiagPrefixPass(scaffold, forest, &ws.xbuf);
        OnesPrefixPass(scaffold, forest, ws.sizes, &ws.obuf);
        for (NodeId u = 0; u < n; ++u) {
          const double v = ws.xbuf[u] - 2.0 * inv_n * ws.obuf[u];
          ws.sum[u] += v;
          ws.sum_sq[u] += v * v;
        }
      }
    });
    for (const WorkerState& ws : workers) {
      for (NodeId u = 0; u < n; ++u) {
        sum[u] += ws.sum[u];
        sum_sq[u] += ws.sum_sq[u];
      }
    }
    total += current;
    batch *= 2;

    if (options.adaptive && total < target) {
      // Selection-resolved stop: the best candidate's upper confidence
      // bound lies below the runner-up's lower bound. (The paper's
      // relative criterion is ill-posed here because x_u is a *shifted*
      // diagonal that can be arbitrarily close to zero; resolving the
      // argmin is what the first iteration actually needs.)
      NodeId best = -1, second = -1;
      for (NodeId u = 0; u < n; ++u) {
        const double xu = sum[u] / total;
        if (best == -1 || xu < sum[best] / total) {
          second = best;
          best = u;
        } else if (second == -1 || xu < sum[second] / total) {
          second = u;
        }
      }
      if (best >= 0 && second >= 0) {
        auto half_width = [&](NodeId u) {
          const double sup = 3.0 * scaffold.resistance_depth[u];
          return EmpiricalBernsteinHalfWidth(total, sum[u], sum_sq[u], sup,
                                             delta);
        };
        const double hb = half_width(best);
        const double hs = half_width(second);
        if (sum[best] / total + hb <= sum[second] / total - hs) {
          result.converged = true;
          break;
        }
      }
    }
  }
  result.forests = total;

  result.scores.assign(static_cast<std::size_t>(n), 0.0);
  for (NodeId u = 0; u < n; ++u) {
    result.scores[u] = sum[u] / result.forests;
  }
  result.scores[result.pivot] = 0.0;  // Alg. 3 line 11: x_s <- 0
  result.best = static_cast<NodeId>(
      std::min_element(result.scores.begin(), result.scores.end()) -
      result.scores.begin());
  return result;
}

}  // namespace cfcm
