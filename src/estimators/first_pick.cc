#include "estimators/first_pick.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "estimators/bernstein.h"
#include "estimators/phi_estimators.h"
#include "forest/bfs_tree.h"
#include "forest/subtree.h"
#include "forest/wilson.h"
#include "runtime/mc_runtime.h"

namespace cfcm {

namespace {

// Alg. 3 lines 1-14 as a sampling-runtime kernel: per forest, the
// diagonal and all-ones prefix passes; per node, v = X_f(u) - (2/n) O_f(u)
// folded into first and second moments. One accumulator copy total —
// the runtime's ordered shard commits make the sums thread-invariant.
class FirstPickKernel final : public ForestKernel {
 public:
  FirstPickKernel(const Graph& graph, const TreeScaffold& scaffold,
                  const EstimatorOptions& options, std::size_t slots)
      : scaffold_(scaffold),
        seed_(options.seed),
        inv_n_(1.0 / static_cast<double>(graph.num_nodes())),
        partial_sum_(static_cast<std::size_t>(graph.num_nodes()), 0.0),
        partial_sum_sq_(static_cast<std::size_t>(graph.num_nodes()), 0.0) {
    scratch_.reserve(slots);
    for (std::size_t t = 0; t < slots; ++t) {
      scratch_.push_back(std::make_unique<Scratch>(graph));
    }
  }

  std::int64_t ProcessForest(std::size_t slot,
                             std::uint64_t forest_index) override {
    Scratch& ws = *scratch_[slot];
    Rng rng(seed_, forest_index);
    ws.forest = &ws.sampler.Sample(scaffold_.is_root, &rng);
    SubtreeSizes(*ws.forest, &ws.sizes);
    DiagPrefixPass(scaffold_, *ws.forest, &ws.xbuf);
    OnesPrefixPass(scaffold_, *ws.forest, ws.sizes, &ws.obuf);
    return ws.sampler.last_walk_steps();
  }

  void Accumulate(std::size_t slot, NodeId begin, NodeId end) override {
    const Scratch& ws = *scratch_[slot];
    for (NodeId u = begin; u < end; ++u) {
      const double v = ws.xbuf[u] - 2.0 * inv_n_ * ws.obuf[u];
      partial_sum_[u] += v;
      partial_sum_sq_[u] += v * v;
    }
  }

  /// Folds the batch partials into the running sums and clears them
  /// (the per-batch merge the Bernstein check runs against).
  void MergeBatch(std::vector<double>* sum, std::vector<double>* sum_sq) {
    for (std::size_t u = 0; u < partial_sum_.size(); ++u) {
      (*sum)[u] += partial_sum_[u];
      (*sum_sq)[u] += partial_sum_sq_[u];
    }
    std::fill(partial_sum_.begin(), partial_sum_.end(), 0.0);
    std::fill(partial_sum_sq_.begin(), partial_sum_sq_.end(), 0.0);
  }

 private:
  struct Scratch {
    explicit Scratch(const Graph& graph)
        : sampler(graph),
          xbuf(static_cast<std::size_t>(graph.num_nodes())),
          obuf(static_cast<std::size_t>(graph.num_nodes())) {}

    ForestSampler sampler;
    const RootedForest* forest = nullptr;
    std::vector<int32_t> sizes;
    std::vector<double> xbuf;
    std::vector<double> obuf;
  };

  const TreeScaffold& scaffold_;
  const uint64_t seed_;
  const double inv_n_;
  std::vector<std::unique_ptr<Scratch>> scratch_;
  std::vector<double> partial_sum_;
  std::vector<double> partial_sum_sq_;
};

}  // namespace

FirstPickResult EstimateFirstPick(const Graph& graph,
                                  const EstimatorOptions& options,
                                  ThreadPool& pool) {
  const NodeId n = graph.num_nodes();
  assert(n >= 2);
  FirstPickResult result;
  // Pivot: the max-weighted-degree node minimizes the absorbing-walk
  // cost; identical to the max-degree node on unit-weighted graphs.
  result.pivot = graph.MaxWeightedDegreeNode();
  const TreeScaffold scaffold = MakeTreeScaffold(graph, {result.pivot});
  const int target = ResolveTargetForests(options, n);
  const double delta = ResolveBernsteinDelta(options, n);

  FirstPickKernel kernel(graph, scaffold, options, McScratchSlots(pool));
  McRunOptions run;
  run.num_nodes = n;

  std::vector<double> sum(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_sq(static_cast<std::size_t>(n), 0.0);

  int total = 0;
  int batch = std::max(1, options.min_batch);
  while (total < target) {
    const int current = std::min(batch, target - total);
    const McRunStats stats = RunForestBatch(
        pool, run, static_cast<uint64_t>(total), current, kernel);
    result.walk_steps += stats.walk_steps;
    kernel.MergeBatch(&sum, &sum_sq);
    total += current;
    batch = NextBatchSize(batch, target);

    if (options.adaptive && total < target) {
      // Selection-resolved stop: the best candidate's upper confidence
      // bound lies below the runner-up's lower bound. (The paper's
      // relative criterion is ill-posed here because x_u is a *shifted*
      // diagonal that can be arbitrarily close to zero; resolving the
      // argmin is what the first iteration actually needs.)
      NodeId best = -1, second = -1;
      for (NodeId u = 0; u < n; ++u) {
        const double xu = sum[u] / total;
        if (best == -1 || xu < sum[best] / total) {
          second = best;
          best = u;
        } else if (second == -1 || xu < sum[second] / total) {
          second = u;
        }
      }
      if (best >= 0 && second >= 0) {
        auto half_width = [&](NodeId u) {
          const double sup = 3.0 * scaffold.resistance_depth[u];
          return EmpiricalBernsteinHalfWidth(total, sum[u], sum_sq[u], sup,
                                             delta);
        };
        const double hb = half_width(best);
        const double hs = half_width(second);
        if (sum[best] / total + hb <= sum[second] / total - hs) {
          result.converged = true;
          break;
        }
      }
    }
  }
  result.forests = total;

  result.scores.assign(static_cast<std::size_t>(n), 0.0);
  for (NodeId u = 0; u < n; ++u) {
    result.scores[u] = sum[u] / result.forests;
  }
  result.scores[result.pivot] = 0.0;  // Alg. 3 line 11: x_s <- 0
  result.best = static_cast<NodeId>(
      std::min_element(result.scores.begin(), result.scores.end()) -
      result.scores.begin());
  return result;
}

}  // namespace cfcm
