// Sampling configuration shared by all forest estimators.
#ifndef CFCM_ESTIMATORS_OPTIONS_H_
#define CFCM_ESTIMATORS_OPTIONS_H_

#include <cstdint>

#include "graph/graph.h"

namespace cfcm {

/// \brief Knobs for adaptive forest sampling and JL sketching.
///
/// The paper's closed-form sample bounds (Lemmas 3.9/4.5 and the JL bound
/// of Lemma 3.4) are intentionally conservative; its experiments rely on
/// the empirical-Bernstein early exit (Lemma 3.6). We expose the same
/// structure: a target sample count scaling as eps^{-2} log n, an upper
/// cap, and the adaptive stop. See DESIGN.md "Engineering constants".
struct EstimatorOptions {
  double eps = 0.2;          ///< error parameter (paper's epsilon)
  uint64_t seed = 1;         ///< base seed; forest i uses stream (seed, i)
  int min_batch = 32;        ///< first batch size (doubles each round)
  int max_forests = 1024;    ///< hard cap on sampled forests
  int target_forests = 0;    ///< 0 = derive: forest_factor * eps^-2 * log2 n
  double forest_factor = 1.0;
  int jl_rows = 0;           ///< 0 = derive: clamp(2 log2 n, 8, max_jl_rows)
  int max_jl_rows = 64;
  double bernstein_delta = 0.0;  ///< 0 = 1/n
  bool adaptive = true;      ///< empirical-Bernstein early exit
};

/// Number of JL rows w actually used for an n-node graph.
int ResolveJlRows(const EstimatorOptions& options, NodeId n);

/// Number of forests to sample (before adaptive early exit).
int ResolveTargetForests(const EstimatorOptions& options, NodeId n);

/// Failure probability delta for Bernstein bounds.
double ResolveBernsteinDelta(const EstimatorOptions& options, NodeId n);

/// Next batch size for the doubling sample loops: 2 * batch, clamped to
/// `target` and guarded against int overflow when max_forests is large.
int NextBatchSize(int batch, int target);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_OPTIONS_H_
