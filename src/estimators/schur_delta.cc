#include "estimators/schur_delta.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "estimators/bernstein.h"
#include "estimators/jl_kernel.h"
#include "forest/bfs_tree.h"
#include "linalg/jl.h"
#include "linalg/ldlt.h"

namespace cfcm {

namespace {

// JlForestKernel plus the Schur-specific statistics of Lemma 4.2: the
// rooted-probability counters F~(u, t) and one per-tree JL sum (a forest
// sample of W F) committed in forest order through the tail slot.
class SchurKernel final : public JlForestKernel {
 public:
  SchurKernel(const Graph& graph, const TreeScaffold& scaffold,
              const JlSketch& sketch, uint64_t seed, int jl_rows,
              std::size_t slots, const std::vector<NodeId>& t_nodes,
              const std::vector<int>& t_index)
      : JlForestKernel(graph, scaffold, sketch, seed, jl_rows, slots),
        t_nodes_(t_nodes),
        t_index_(t_index),
        nt_(static_cast<int>(t_nodes.size())),
        partial_counts_(
            static_cast<std::size_t>(graph.num_nodes()) * t_nodes.size(), 0),
        partial_sum_wf_(static_cast<std::size_t>(jl_rows) * t_nodes.size(),
                        0.0) {}

  void AccumulateTail(std::size_t slot) override {
    // Per-tree JL sums: subtree sums at roots t in T are exactly
    // sum_{v rooted at t} W_[:,v], i.e. one forest sample of (W F).
    const Scratch& ws = scratch(slot);
    const int w = jl_rows();
    for (int t = 0; t < nt_; ++t) {
      const double* st =
          ws.sub.data() + static_cast<std::size_t>(t_nodes_[t]) * w;
      for (int j = 0; j < w; ++j) {
        partial_sum_wf_[static_cast<std::size_t>(j) * nt_ + t] += st[j];
      }
    }
  }

  /// Folds the Schur partials into the running accumulators and clears
  /// them (companion to JlForestKernel::MergeBatch).
  void MergeSchurBatch(std::vector<uint32_t>* counts,
                       std::vector<double>* sum_wf) {
    for (std::size_t i = 0; i < partial_counts_.size(); ++i) {
      (*counts)[i] += partial_counts_[i];
    }
    for (std::size_t i = 0; i < partial_sum_wf_.size(); ++i) {
      (*sum_wf)[i] += partial_sum_wf_[i];
    }
    std::fill(partial_counts_.begin(), partial_counts_.end(), 0u);
    std::fill(partial_sum_wf_.begin(), partial_sum_wf_.end(), 0.0);
  }

 protected:
  void AccumulateExtra(const Scratch& ws, NodeId begin, NodeId end) override {
    // Rooted-probability counter (Lemma 4.2): rho_u = t.
    for (NodeId u = begin; u < end; ++u) {
      if (scaffold().is_root[u]) continue;
      const int ti = t_index_[ws.forest->root_of[u]];
      if (ti >= 0) {
        ++partial_counts_[static_cast<std::size_t>(u) * nt_ + ti];
      }
    }
  }

 private:
  const std::vector<NodeId>& t_nodes_;
  const std::vector<int>& t_index_;
  const int nt_;
  std::vector<uint32_t> partial_counts_;  // root-of counters, node-major
  std::vector<double> partial_sum_wf_;    // per-tree JL sums, w x |T|
};

// Inverts the estimated Schur complement, escalating a diagonal ridge if
// sampling noise made it numerically indefinite.
DenseMatrix InvertWithRidge(DenseMatrix schur, double* ridge_used) {
  double max_diag = 0;
  for (int i = 0; i < schur.rows(); ++i) {
    max_diag = std::max(max_diag, std::abs(schur(i, i)));
  }
  double ridge = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    DenseMatrix trial = schur;
    for (int i = 0; i < trial.rows(); ++i) trial(i, i) += ridge;
    auto ldlt = LdltFactorization::Compute(trial);
    if (ldlt.ok()) {
      *ridge_used = ridge;
      return ldlt->Inverse();
    }
    ridge = (ridge == 0) ? 1e-8 * std::max(1.0, max_diag) : ridge * 10.0;
  }
  // Last resort: heavily damped inverse; flagged via ridge_used.
  DenseMatrix trial = schur;
  for (int i = 0; i < trial.rows(); ++i) trial(i, i) += ridge;
  auto ldlt = LdltFactorization::Compute(trial);
  assert(ldlt.ok());
  *ridge_used = ridge;
  return ldlt->Inverse();
}

}  // namespace

SchurDeltaEstimate SchurDelta(const Graph& graph,
                              const std::vector<NodeId>& s_nodes,
                              const std::vector<NodeId>& t_nodes,
                              const EstimatorOptions& options,
                              ThreadPool& pool) {
  return SchurDelta(graph, s_nodes, t_nodes, options, pool, DeltaScope{});
}

SchurDeltaEstimate SchurDelta(const Graph& graph,
                              const std::vector<NodeId>& s_nodes,
                              const std::vector<NodeId>& t_nodes,
                              const EstimatorOptions& options,
                              ThreadPool& pool, const DeltaScope& scope) {
  const NodeId n = graph.num_nodes();
  const int nt = static_cast<int>(t_nodes.size());
  assert(!s_nodes.empty() && nt > 0);

  std::vector<NodeId> roots = s_nodes;
  roots.insert(roots.end(), t_nodes.begin(), t_nodes.end());
  const TreeScaffold scaffold = MakeTreeScaffold(graph, roots);
  assert(static_cast<NodeId>(scaffold.roots.size()) ==
             static_cast<NodeId>(s_nodes.size()) + nt &&
         "S and T must be disjoint");

  const int w = ResolveJlRows(options, n);
  int target = ResolveTargetForests(options, n);
  if (scope.forest_scale < 1.0) {
    target = std::max(std::max(1, options.min_batch),
                      static_cast<int>(target * scope.forest_scale));
  }
  const double delta_fail = ResolveBernsteinDelta(options, n);
  const JlSketch sketch(w, n, options.seed ^ 0xc4ceb9fe1a85ec53ULL);

  // Q in R^{w x |T|}: the JL block covering the T coordinates (Alg. 4
  // line 4); W covers U through `sketch` (roots carry zero weight).
  std::vector<double> q(static_cast<std::size_t>(w) * nt);
  {
    Rng rng(options.seed ^ 0x2545f4914f6cdd1dULL);
    const double scale = 1.0 / std::sqrt(static_cast<double>(w));
    for (double& v : q) v = rng.NextBool() ? scale : -scale;
  }

  std::vector<int> t_index(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < nt; ++i) t_index[t_nodes[i]] = i;
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  for (NodeId s : s_nodes) in_s[s] = 1;

  const std::vector<char>* subset = scope.subset;
  SchurKernel kernel(graph, scaffold, sketch, options.seed, w,
                     McScratchSlots(pool), t_nodes, t_index);
  kernel.set_subset(subset);
  if (scope.arena != nullptr) {
    scope.arena->BeginRound(n, roots, options.seed, target);
    kernel.set_arena(scope.arena);
  }
  McRunOptions run;
  run.num_nodes = n;

  const std::size_t nw = static_cast<std::size_t>(n) * w;
  std::vector<double> sum_x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_sq_x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_y(nw, 0.0);
  std::vector<double> sum_y_sq(static_cast<std::size_t>(n), 0.0);
  std::vector<uint32_t> counts(static_cast<std::size_t>(n) * nt, 0);
  std::vector<double> sum_wf(static_cast<std::size_t>(w) * nt, 0.0);

  SchurDeltaEstimate result;
  result.jl_rows = w;
  result.auxiliary_roots = nt;
  result.delta.assign(static_cast<std::size_t>(n), 0.0);
  result.z.assign(static_cast<std::size_t>(n), 0.0);
  result.numerator.assign(static_cast<std::size_t>(n), 0.0);
  result.rel.assign(static_cast<std::size_t>(n), 0.0);

  // Cheap adaptive criterion on the forest-sampled parts only (no Schur
  // algebra): the sampled z and numerator under-estimate their corrected
  // values, so the relative-error bound is conservative. Keeping the
  // per-batch check free of the Eq. (11) assembly is what preserves
  // SchurDelta's speed advantage over ForestDelta.
  auto cheap_converged = [&](int r) {
    const double inv_r = 1.0 / static_cast<double>(r);
    const double rel_cap = options.eps / (1.0 + options.eps);
    const double log_term = std::log(3.0 / delta_fail);
    for (NodeId u = 0; u < n; ++u) {
      if (scaffold.is_root[u]) continue;  // S and T checked via assembly
      if (subset != nullptr && !(*subset)[u]) continue;
      const double zu = sum_x[u] * inv_r;
      const double* yu = sum_y.data() + static_cast<std::size_t>(u) * w;
      double num = 0;
      for (int j = 0; j < w; ++j) {
        const double mj = yu[j] * inv_r;
        num += mj * mj;
      }
      const double sup_x = 2.0 * scaffold.resistance_depth[u];
      const double hz = EmpiricalBernsteinHalfWidth(r, sum_x[u], sum_sq_x[u],
                                                    sup_x, delta_fail);
      const double v_tot = std::max(0.0, sum_y_sq[u] * inv_r - num);
      const double h_base = 2.0 * log_term * v_tot * inv_r;
      const double h_num = 2.0 * std::sqrt(num * h_base) + h_base;
      const double z_floor = 1.0 / (graph.weighted_degree(u) + 1.0);
      const double rel =
          h_num / std::max(num, 1e-300) + hz / std::max(zu, z_floor);
      if (rel > rel_cap) return false;
    }
    return true;
  };

  // Assembles the block reconstruction of Eq. (11) at sample count r and
  // evaluates the adaptive criterion on the forest-sampled parts.
  auto assemble_and_check = [&](int r) {
    const double inv_r = 1.0 / static_cast<double>(r);

    // Schur complement from rooted probabilities, Eq. (15):
    // S~(i,j) = L(t_i,t_j) - sum_{u ~ t_i, u in U} w(t_i,u) F~(u, j).
    DenseMatrix schur(nt, nt);
    for (int i = 0; i < nt; ++i) {
      const NodeId ti = t_nodes[i];
      const auto adj = graph.neighbors(ti);
      const auto wts = graph.weights(ti);
      schur(i, i) = graph.weighted_degree(ti);
      for (std::size_t k = 0; k < adj.size(); ++k) {
        const int j = t_index[adj[k]];
        if (j >= 0) schur(i, j) = wts.empty() ? -1.0 : -wts[k];
      }
      for (std::size_t k = 0; k < adj.size(); ++k) {
        const NodeId u = adj[k];
        if (scaffold.is_root[u]) continue;  // only u in U contribute
        const double w_tu = wts.empty() ? 1.0 : wts[k];
        const uint32_t* row = counts.data() + static_cast<std::size_t>(u) * nt;
        for (int j = 0; j < nt; ++j) {
          schur(i, j) -= w_tu * (static_cast<double>(row[j]) * inv_r);
        }
      }
    }
    const DenseMatrix g = InvertWithRidge(std::move(schur), &result.ridge);

    // M = (W F~ + Q) G  in R^{w x |T|}.
    DenseMatrix wfq(w, nt);
    for (int j = 0; j < w; ++j) {
      for (int t = 0; t < nt; ++t) {
        wfq(j, t) = sum_wf[static_cast<std::size_t>(j) * nt + t] * inv_r +
                    q[static_cast<std::size_t>(j) * nt + t];
      }
    }
    const DenseMatrix m = wfq.Multiply(g);

    bool all_converged = options.adaptive;
    const double rel_cap = options.eps / (1.0 + options.eps);
    std::vector<int> nz;
    nz.reserve(static_cast<std::size_t>(nt));
    std::vector<double> ycorr(static_cast<std::size_t>(w));
    for (NodeId u = 0; u < n; ++u) {
      if (in_s[u]) {
        result.delta[u] = result.z[u] = result.numerator[u] = 0.0;
        continue;
      }
      if (subset != nullptr && !(*subset)[u]) continue;  // stays 0
      const int tu = t_index[u];
      double zu = 0, num = 0;
      if (tu >= 0) {
        // u in T: column t of L^{-1}_{-S} is [F G e_t ; G e_t] (Eq. 11).
        zu = g(tu, tu);
        for (int j = 0; j < w; ++j) num += m(j, tu) * m(j, tu);
        result.z[u] = zu;
        result.numerator[u] = num;
        result.delta[u] = num / std::max(zu, 1e-12);
        continue;
      }
      // u in U: z_u = (L^{-1}_UU)_uu + f_u^T G f_u,
      //         Y_j(u) = Phi_{W_j}(u) + (M f_u)_j, with f_u = counts/r.
      const uint32_t* row = counts.data() + static_cast<std::size_t>(u) * nt;
      nz.clear();
      for (int t = 0; t < nt; ++t) {
        if (row[t] != 0) nz.push_back(t);
      }
      double corr_z = 0;
      for (int a : nz) {
        const double fa = static_cast<double>(row[a]) * inv_r;
        for (int b : nz) {
          corr_z += fa * static_cast<double>(row[b]) * inv_r * g(a, b);
        }
      }
      zu = sum_x[u] * inv_r + corr_z;
      std::fill(ycorr.begin(), ycorr.end(), 0.0);
      for (int a : nz) {
        const double fa = static_cast<double>(row[a]) * inv_r;
        for (int j = 0; j < w; ++j) ycorr[j] += m(j, a) * fa;
      }
      const double* yu = sum_y.data() + static_cast<std::size_t>(u) * w;
      double mean_sq = 0;
      for (int j = 0; j < w; ++j) {
        const double mj = yu[j] * inv_r;
        mean_sq += mj * mj;
        const double v = mj + ycorr[j];
        num += v * v;
      }
      // Debias the sampled part of the squared norm (see ForestDelta):
      // E[sum_j Ybar_j^2] exceeds ||E Y||^2 by sum_j Var(Y_j)/r.
      const double v_tot = std::max(0.0, sum_y_sq[u] * inv_r - mean_sq);
      if (r > 1) {
        num = std::max(num - v_tot / static_cast<double>(r - 1), 0.0);
      }
      result.z[u] = zu;
      result.numerator[u] = num;
      const double z_floor = 1.0 / (graph.weighted_degree(u) + 1.0);
      result.delta[u] = num / std::max(zu, z_floor);

      {
        const double sup_x = 2.0 * scaffold.resistance_depth[u];
        const double hz = EmpiricalBernsteinHalfWidth(r, sum_x[u], sum_sq_x[u],
                                                      sup_x, delta_fail);
        const double log_term = std::log(3.0 / delta_fail);
        const double h_base = 2.0 * log_term * v_tot * inv_r;
        const double h_num = 2.0 * std::sqrt(num * h_base) + h_base;
        const double rel =
            h_num / std::max(num, 1e-300) + hz / std::max(zu, z_floor);
        result.rel[u] = rel;
        if (rel > rel_cap) all_converged = false;
      }
    }
    // T nodes carry no Bernstein stream of their own (their values come
    // out of the Schur algebra); give them the widest U width so the
    // lazy layer never under-inflates a T candidate's stale key.
    double max_rel = 0.0;
    for (NodeId u = 0; u < n; ++u) max_rel = std::max(max_rel, result.rel[u]);
    for (NodeId t : t_nodes) {
      if (subset != nullptr && !(*subset)[t]) continue;
      result.rel[t] = max_rel;
    }
    return all_converged;
  };

  int total = 0;
  int batch = std::max(1, options.min_batch);
  while (total < target) {
    const int current = std::min(batch, target - total);
    const McRunStats stats = RunForestBatch(
        pool, run, static_cast<uint64_t>(total), current, kernel);
    result.walk_steps += stats.walk_steps;
    kernel.MergeBatch(&sum_x, &sum_sq_x, &sum_y, &sum_y_sq);
    kernel.MergeSchurBatch(&counts, &sum_wf);
    total += current;
    batch = NextBatchSize(batch, target);

    if (total >= target) break;
    // Subset-restricted calls run the full fixed-target schedule so the
    // estimates stay bitwise exchangeable with a full call's (see
    // ForestDelta; DESIGN.md §13).
    if (options.adaptive && subset == nullptr && cheap_converged(total)) {
      result.converged = true;
      break;
    }
  }
  assemble_and_check(total);
  result.forests = total;
  result.reused_forests = kernel.reused_forests();
  if (scope.arena != nullptr) scope.arena->Commit(total);
  return result;
}

}  // namespace cfcm
