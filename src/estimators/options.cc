#include "estimators/options.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cfcm {

namespace {

double Log2N(NodeId n) { return std::log2(static_cast<double>(std::max<NodeId>(2, n))); }

}  // namespace

int ResolveJlRows(const EstimatorOptions& options, NodeId n) {
  if (options.jl_rows > 0) return options.jl_rows;
  const int derived = static_cast<int>(std::ceil(2.0 * Log2N(n)));
  return std::clamp(derived, 8, options.max_jl_rows);
}

int ResolveTargetForests(const EstimatorOptions& options, NodeId n) {
  if (options.target_forests > 0) {
    return std::min(options.target_forests, options.max_forests);
  }
  const double derived =
      options.forest_factor / (options.eps * options.eps) * Log2N(n);
  return std::clamp(static_cast<int>(std::ceil(derived)), options.min_batch,
                    options.max_forests);
}

double ResolveBernsteinDelta(const EstimatorOptions& options, NodeId n) {
  if (options.bernstein_delta > 0) return options.bernstein_delta;
  return 1.0 / static_cast<double>(std::max<NodeId>(2, n));
}

int NextBatchSize(int batch, int target) {
  if (batch >= target || batch > std::numeric_limits<int>::max() / 2) {
    return target;
  }
  return std::min(batch * 2, target);
}

}  // namespace cfcm
