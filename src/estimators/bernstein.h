// Empirical Bernstein confidence half-widths (paper Lemma 3.6).
#ifndef CFCM_ESTIMATORS_BERNSTEIN_H_
#define CFCM_ESTIMATORS_BERNSTEIN_H_

#include <cstdint>

namespace cfcm {

/// \brief Half-width f(r, Xvar, Xsup, delta) of Lemma 3.6:
/// sqrt(2 Xvar log(3/delta) / r) + 3 Xsup log(3/delta) / r.
///
/// `sum` / `sum_sq` are running first/second moments of the r samples;
/// `sup` bounds |X_i - E X_i| (we pass the sample range).
double EmpiricalBernsteinHalfWidth(std::int64_t count, double sum,
                                   double sum_sq, double sup, double delta);

/// Variance-only half-width sqrt(2 Xvar log(3/delta) / r): used where the
/// theoretical sup (d^{tau+1}-type bounds) is astronomically loose and
/// would disable the adaptive exit entirely; see DESIGN.md.
double VarianceHalfWidth(std::int64_t count, double sum, double sum_sq,
                         double delta);

/// Hoeffding sample bound r >= range^2 log(2/delta) / (2 eps_abs^2) for an
/// additive eps_abs guarantee (Lemma 3.8; documentation/tests).
double HoeffdingSampleBound(double range, double eps_abs, double delta);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_BERNSTEIN_H_
