#include "estimators/phi_estimators.h"

#include <cassert>
#include <cstring>

namespace cfcm {

void DiagPrefixPass(const TreeScaffold& scaffold, const RootedForest& forest,
                    std::vector<double>* xbuf) {
  const auto& bfs = scaffold.bfs;
  assert(xbuf->size() == bfs.parent.size());
  for (NodeId u : bfs.order) {
    if (scaffold.is_root[u]) {
      (*xbuf)[u] = 0.0;
      continue;
    }
    const NodeId p = bfs.parent[u];
    const double iw = scaffold.up_inv_weight[u];
    double x = (*xbuf)[p];
    if (forest.parent[u] == p) x += iw;  // BFS edge traversed u -> p
    if (forest.parent[p] == u) x -= iw;  // ... or p -> u
    (*xbuf)[u] = x;
  }
}

void OnesPrefixPass(const TreeScaffold& scaffold, const RootedForest& forest,
                    const std::vector<int32_t>& sizes,
                    std::vector<double>* obuf) {
  const auto& bfs = scaffold.bfs;
  assert(obuf->size() == bfs.parent.size());
  for (NodeId u : bfs.order) {
    if (scaffold.is_root[u]) {
      (*obuf)[u] = 0.0;
      continue;
    }
    const NodeId p = bfs.parent[u];
    const double iw = scaffold.up_inv_weight[u];
    double o = (*obuf)[p];
    if (forest.parent[u] == p) o += sizes[u] * iw;
    if (forest.parent[p] == u) o -= sizes[p] * iw;
    (*obuf)[u] = o;
  }
}

void JlPrefixPass(const TreeScaffold& scaffold, const RootedForest& forest,
                  const double* sub, int w, double* ybuf) {
  const auto& bfs = scaffold.bfs;
  for (NodeId u : bfs.order) {
    double* yu = ybuf + static_cast<std::size_t>(u) * w;
    if (scaffold.is_root[u]) {
      std::memset(yu, 0, sizeof(double) * static_cast<std::size_t>(w));
      continue;
    }
    const NodeId p = bfs.parent[u];
    const double* yp = ybuf + static_cast<std::size_t>(p) * w;
    const double iw = scaffold.up_inv_weight[u];
    const bool fwd = forest.parent[u] == p;
    const bool bwd = forest.parent[p] == u;
    if (fwd && !bwd) {
      const double* su = sub + static_cast<std::size_t>(u) * w;
      for (int j = 0; j < w; ++j) yu[j] = yp[j] + su[j] * iw;
    } else if (bwd && !fwd) {
      const double* sp = sub + static_cast<std::size_t>(p) * w;
      for (int j = 0; j < w; ++j) yu[j] = yp[j] - sp[j] * iw;
    } else {
      // Neither direction (or both, impossible in a forest): copy.
      std::memcpy(yu, yp, sizeof(double) * static_cast<std::size_t>(w));
    }
  }
}

}  // namespace cfcm
