// Per-forest prefix passes implementing the paper's Phi estimators.
//
// All estimators telescope per-edge flow statistics along the fixed BFS
// tree from the root set. The key identity (proved from Lemma 3.2 by
// subtracting the flows sourced at the two endpoints of an edge; see
// DESIGN.md §3) is, for every graph edge (a, b) with conductance w_ab:
//
//   Pr[pi_a = b] - Pr[pi_b = a] = w_ab ((L_{-S}^{-1})_aa - (L_{-S}^{-1})_bb),
//
// the forest-measure form of Ohm's law: the net traversal probability of
// an oriented edge equals conductance times potential difference. The
// per-forest statistic (chi[pi_a = b] - chi[pi_b = a]) / w_ab summed
// along the BFS path of u is therefore an unbiased estimator of
// (L_{-S}^{-1})_uu; and for weighted sources, E[(Wsub_f(a) chi[pi_a=b] -
// Wsub_f(b) chi[pi_b=a]) / w_ab] = sum_v w_v ((L^{-1})_va - (L^{-1})_vb)
// because v's root path traverses a->b iff pi_a = b and v lies in
// subtree(a) (Lemma 3.3). On unit-weighted graphs every 1/w factor is
// exactly 1.0, so the passes reproduce the original integer statistics
// bit-for-bit (integer-valued doubles, exact IEEE arithmetic).
#ifndef CFCM_ESTIMATORS_PHI_ESTIMATORS_H_
#define CFCM_ESTIMATORS_PHI_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "forest/bfs_tree.h"
#include "forest/wilson.h"

namespace cfcm {

/// \brief Per-forest diagonal statistics X_f(u) with E[X_f(u)] =
/// (L_{-S}^{-1})_uu. Writes into xbuf (n entries; roots get 0). O(n).
void DiagPrefixPass(const TreeScaffold& scaffold, const RootedForest& forest,
                    std::vector<double>* xbuf);

/// \brief Per-forest all-ones-weighted statistics O_f(u) with E[O_f(u)] =
/// 1^T L_{-S}^{-1} e_u. `sizes` are the forest subtree sizes
/// (SubtreeSizes). Writes into obuf (n entries; roots get 0). O(n).
void OnesPrefixPass(const TreeScaffold& scaffold, const RootedForest& forest,
                    const std::vector<int32_t>& sizes,
                    std::vector<double>* obuf);

/// \brief Per-forest JL-weighted statistics Y_f(u) in R^w with
/// E[Y_{j,f}(u)] = (W L_{-S}^{-1})_{ju}. `sub` are the JL subtree sums
/// (SubtreeJlSums, node-major n*w). Writes node-major into ybuf (n*w;
/// roots get 0). O(n*w).
void JlPrefixPass(const TreeScaffold& scaffold, const RootedForest& forest,
                  const double* sub, int w, double* ybuf);

}  // namespace cfcm

#endif  // CFCM_ESTIMATORS_PHI_ESTIMATORS_H_
