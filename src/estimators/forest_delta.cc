#include "estimators/forest_delta.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "estimators/bernstein.h"
#include "estimators/jl_kernel.h"
#include "forest/bfs_tree.h"
#include "linalg/jl.h"

namespace cfcm {

DeltaEstimate ForestDelta(const Graph& graph,
                          const std::vector<NodeId>& s_nodes,
                          const EstimatorOptions& options, ThreadPool& pool) {
  return ForestDelta(graph, s_nodes, options, pool, DeltaScope{});
}

DeltaEstimate ForestDelta(const Graph& graph,
                          const std::vector<NodeId>& s_nodes,
                          const EstimatorOptions& options, ThreadPool& pool,
                          const DeltaScope& scope) {
  const NodeId n = graph.num_nodes();
  assert(!s_nodes.empty());
  const TreeScaffold scaffold = MakeTreeScaffold(graph, s_nodes);
  const int w = ResolveJlRows(options, n);
  int target = ResolveTargetForests(options, n);
  if (scope.forest_scale < 1.0) {
    target = std::max(std::max(1, options.min_batch),
                      static_cast<int>(target * scope.forest_scale));
  }
  const double delta_fail = ResolveBernsteinDelta(options, n);
  const JlSketch sketch(w, n, options.seed ^ 0x9d2c5680a76b3f01ULL);
  const std::vector<char>* subset = scope.subset;

  JlForestKernel kernel(graph, scaffold, sketch, options.seed, w,
                        McScratchSlots(pool));
  kernel.set_subset(subset);
  if (scope.arena != nullptr) {
    scope.arena->BeginRound(n, s_nodes, options.seed, target);
    kernel.set_arena(scope.arena);
    if (scope.replay_clean != nullptr) {
      kernel.set_replay_plan(scope.replay_clean, scope.resample_seed);
    }
  }
  McRunOptions run;
  run.num_nodes = n;

  const std::size_t nw = static_cast<std::size_t>(n) * w;
  std::vector<double> sum_x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_sq_x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> sum_y(nw, 0.0);
  std::vector<double> sum_y_sq(static_cast<std::size_t>(n), 0.0);

  DeltaEstimate result;
  result.jl_rows = w;
  result.delta.assign(static_cast<std::size_t>(n), 0.0);
  result.z.assign(static_cast<std::size_t>(n), 0.0);
  result.numerator.assign(static_cast<std::size_t>(n), 0.0);
  result.rel.assign(static_cast<std::size_t>(n), 0.0);

  // Evaluates point estimates and (optionally) the Bernstein stop rule.
  // `fill_rel` additionally stores each node's relative half-width (the
  // final assembly does; the per-batch stop checks skip the extra work
  // once a node has failed the cap).
  auto assemble_and_check = [&](int r, bool fill_rel) {
    const double inv_r = 1.0 / static_cast<double>(r);
    bool all_converged = options.adaptive;
    const double rel_cap = options.eps / (1.0 + options.eps);
    for (NodeId u = 0; u < n; ++u) {
      if (scaffold.is_root[u]) {
        result.delta[u] = result.z[u] = result.numerator[u] = 0.0;
        continue;
      }
      if (subset != nullptr && !(*subset)[u]) continue;  // stays 0
      const double zu = sum_x[u] * inv_r;
      double raw_num = 0;
      const double* yu = sum_y.data() + static_cast<std::size_t>(u) * w;
      for (int j = 0; j < w; ++j) {
        const double m = yu[j] * inv_r;
        raw_num += m * m;
      }
      // Aggregate variance across sketch rows: sum_j Var(Y_j) = mean
      // ||Y_f||^2 - ||mean Y||^2. Used both to debias the numerator and
      // as the Bernstein variance proxy.
      const double v_tot = std::max(0.0, sum_y_sq[u] * inv_r - raw_num);
      // E[sum_j Ybar_j^2] = ||E Y||^2 + sum_j Var(Y_j)/r: subtract the
      // plug-in bias (it scales with depth^2 and would systematically
      // favor deep nodes on high-diameter graphs).
      const double num =
          r > 1 ? std::max(raw_num - v_tot / static_cast<double>(r - 1), 0.0)
                : raw_num;
      result.z[u] = zu;
      result.numerator[u] = num;
      // (L^{-1}_{-S})_uu >= 1/d_w(u) by the Neumann-series bound (paper
      // Lemma 3.9; weighted degree = Laplacian diagonal); clamp the
      // denominator so sampling noise cannot blow up the ratio.
      const double z_floor = 1.0 / (graph.weighted_degree(u) + 1.0);
      result.delta[u] = num / std::max(zu, z_floor);

      if (all_converged || fill_rel) {
        const double sup_x = 2.0 * scaffold.resistance_depth[u];
        const double hz = EmpiricalBernsteinHalfWidth(r, sum_x[u], sum_sq_x[u],
                                                      sup_x, delta_fail);
        const double log_term = std::log(3.0 / delta_fail);
        const double h_base = 2.0 * log_term * v_tot * inv_r;
        const double h_num = 2.0 * std::sqrt(num * h_base) + h_base;
        const double rel =
            h_num / std::max(num, 1e-300) + hz / std::max(zu, z_floor);
        if (fill_rel) result.rel[u] = rel;
        if (rel > rel_cap) all_converged = false;
      }
    }
    return all_converged;
  };

  int total = 0;
  int batch = std::max(1, options.min_batch);
  while (total < target) {
    const int current = std::min(batch, target - total);
    const McRunStats stats = RunForestBatch(
        pool, run, static_cast<uint64_t>(total), current, kernel);
    result.walk_steps += stats.walk_steps;
    kernel.MergeBatch(&sum_x, &sum_sq_x, &sum_y, &sum_y_sq);
    total += current;
    batch = NextBatchSize(batch, target);

    if (total >= target) break;
    // Subset-restricted calls run the FULL fixed-target schedule: letting
    // the stop rule fire on subset convergence alone would exit earlier
    // than the equivalent full call, and the lazy selection layer needs
    // subset estimates bitwise exchangeable with full-batch ones
    // (DESIGN.md §13). The subset still skips the O(w) moment folds and
    // assembly for excluded nodes.
    if (options.adaptive && (subset == nullptr || scope.allow_adaptive_exit) &&
        assemble_and_check(total, /*fill_rel=*/false)) {
      result.converged = true;
      break;
    }
  }
  assemble_and_check(total, /*fill_rel=*/true);
  result.forests = total;
  result.reused_forests = kernel.reused_forests();
  if (scope.arena != nullptr) scope.arena->Commit(total);
  return result;
}

}  // namespace cfcm
