#include "estimators/reuse_delta.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "estimators/phi_estimators.h"
#include "forest/bfs_tree.h"
#include "forest/subtree.h"
#include "linalg/jl.h"
#include "runtime/mc_runtime.h"

namespace cfcm {

namespace {

// Replays arena forests with v's up-edge cut and folds importance-
// weighted X/Y moments for the candidate set. Same ordered-commit
// determinism contract as the sampling kernels, but no sampler: the
// "forest" comes from the arena and the walk-step count is always 0.
class ReuseKernel final : public ForestKernel {
 public:
  ReuseKernel(const Graph& graph, const TreeScaffold& scaffold,
              const JlSketch& sketch, NodeId v,
              const std::vector<char>& candidates, const ForestArena& arena,
              int jl_rows, std::size_t slots)
      : graph_(graph),
        scaffold_(scaffold),
        sketch_(sketch),
        v_(v),
        candidates_(candidates),
        arena_(arena),
        jl_rows_(jl_rows),
        wsum_x_(static_cast<std::size_t>(graph.num_nodes()), 0.0),
        wsum_sq_x_(static_cast<std::size_t>(graph.num_nodes()), 0.0),
        wsum_y_(static_cast<std::size_t>(graph.num_nodes()) * jl_rows, 0.0),
        wsum_y_sq_(static_cast<std::size_t>(graph.num_nodes()), 0.0) {
    scratch_.reserve(slots);
    const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
    for (std::size_t t = 0; t < slots; ++t) {
      auto ws = std::make_unique<Scratch>();
      ws->member.assign(n, 0);
      ws->xbuf.assign(n, 0.0);
      ws->sub.assign(n * jl_rows, 0.0);
      ws->ybuf.assign(n * jl_rows, 0.0);
      scratch_.push_back(std::move(ws));
    }
  }

  std::int64_t ProcessForest(std::size_t slot,
                             std::uint64_t forest_index) override {
    Scratch& ws = *scratch_[slot];
    arena_.LoadInto(static_cast<int>(forest_index), &ws.forest);
    RootedForest& f = ws.forest;

    // Membership of v's subtree under the stored forest: reversed
    // leaves-first order visits parents before children.
    std::fill(ws.member.begin(), ws.member.end(), 0);
    ws.member[v_] = 1;
    for (auto it = f.leaves_first.rbegin(); it != f.leaves_first.rend();
         ++it) {
      const NodeId u = *it;
      if (u != v_ && ws.member[f.parent[u]]) ws.member[u] = 1;
    }

    // W_out(v): conductance from v to outside its (cut) tree. Each such
    // edge is one way to reconnect, so it is the importance tilt.
    const auto adj = graph_.neighbors(v_);
    const auto wts = graph_.weights(v_);
    double w_out = 0.0;
    for (std::size_t k = 0; k < adj.size(); ++k) {
      if (!ws.member[adj[k]]) w_out += wts.empty() ? 1.0 : wts[k];
    }
    ws.weight = w_out > 0.0 ? 1.0 / w_out : 0.0;
    if (ws.weight == 0.0) return 0;  // unreachable under the cut map

    // Cut: v becomes a root of the replayed forest. leaves_first must
    // drop v (SubtreeJlSums dereferences parent unconditionally).
    f.parent[v_] = -1;
    f.leaves_first.erase(
        std::find(f.leaves_first.begin(), f.leaves_first.end(), v_));

    SubtreeJlSums(f, scaffold_.is_root, sketch_, ws.sub.data());
    DiagPrefixPass(scaffold_, f, &ws.xbuf);
    JlPrefixPass(scaffold_, f, ws.sub.data(), jl_rows_, ws.ybuf.data());
    return 0;
  }

  void Accumulate(std::size_t slot, NodeId begin, NodeId end) override {
    const Scratch& ws = *scratch_[slot];
    const double wgt = ws.weight;
    if (wgt == 0.0) return;
    const int w = jl_rows_;
    for (NodeId u = begin; u < end; ++u) {
      if (!candidates_[u] || scaffold_.is_root[u]) continue;
      const double x = ws.xbuf[u];
      wsum_x_[u] += wgt * x;
      wsum_sq_x_[u] += wgt * x * x;
      const double* yr = ws.ybuf.data() + static_cast<std::size_t>(u) * w;
      double* acc = wsum_y_.data() + static_cast<std::size_t>(u) * w;
      double sq = 0;
      for (int j = 0; j < w; ++j) {
        acc[j] += wgt * yr[j];
        sq += yr[j] * yr[j];
      }
      wsum_y_sq_[u] += wgt * sq;
    }
  }

  void AccumulateTail(std::size_t slot) override {
    const double wgt = scratch_[slot]->weight;
    wsum_ += wgt;
    wsum_sq_ += wgt * wgt;
    if (wgt == 0.0) ++zero_weight_;
  }

  double wsum() const { return wsum_; }
  double wsum_sq() const { return wsum_sq_; }
  int zero_weight() const { return zero_weight_; }
  double wx(NodeId u) const { return wsum_x_[u]; }
  double wxx(NodeId u) const { return wsum_sq_x_[u]; }
  const double* wy(NodeId u) const {
    return wsum_y_.data() + static_cast<std::size_t>(u) * jl_rows_;
  }
  double wysq(NodeId u) const { return wsum_y_sq_[u]; }

 private:
  struct Scratch {
    RootedForest forest;
    std::vector<char> member;
    std::vector<double> xbuf;
    std::vector<double> sub;
    std::vector<double> ybuf;
    double weight = 0.0;
  };

  const Graph& graph_;
  const TreeScaffold& scaffold_;
  const JlSketch& sketch_;
  const NodeId v_;
  const std::vector<char>& candidates_;
  const ForestArena& arena_;
  const int jl_rows_;
  std::vector<std::unique_ptr<Scratch>> scratch_;
  std::vector<double> wsum_x_;
  std::vector<double> wsum_sq_x_;
  std::vector<double> wsum_y_;  // node-major n x w
  std::vector<double> wsum_y_sq_;
  double wsum_ = 0.0;
  double wsum_sq_ = 0.0;
  int zero_weight_ = 0;
};

}  // namespace

ReuseEstimate ReuseDelta(const Graph& graph,
                         const std::vector<NodeId>& s_new, NodeId v_new,
                         const std::vector<char>& candidates,
                         const ForestArena& arena,
                         const EstimatorOptions& options, ThreadPool& pool) {
  const NodeId n = graph.num_nodes();
  ReuseEstimate result;
  result.gain.assign(static_cast<std::size_t>(n), 0.0);
  result.rel.assign(static_cast<std::size_t>(n),
                    std::numeric_limits<double>::infinity());
  result.forests = arena.committed();
  if (result.forests <= 1) return result;

  const TreeScaffold scaffold = MakeTreeScaffold(graph, s_new);
  const int w = ResolveJlRows(options, n);
  const double delta_fail = ResolveBernsteinDelta(options, n);
  // Same sketch-seed convention as ForestDelta's fresh call this round,
  // so an accepted pre-screen and a fallback refresh are exchangeable.
  const JlSketch sketch(w, n, options.seed ^ 0x9d2c5680a76b3f01ULL);

  ReuseKernel kernel(graph, scaffold, sketch, v_new, candidates, arena, w,
                     McScratchSlots(pool));
  McRunOptions run;
  run.num_nodes = n;
  RunForestBatch(pool, run, 0, result.forests, kernel);

  result.zero_weight = kernel.zero_weight();
  const double wsum = kernel.wsum();
  const double wsum_sq = kernel.wsum_sq();
  if (wsum <= 0.0 || wsum_sq <= 0.0) return result;
  result.ess = wsum * wsum / wsum_sq;
  if (result.ess < 2.0) return result;
  result.usable = true;

  const double log_term = std::log(3.0 / delta_fail);
  const double inv_w = 1.0 / wsum;
  for (NodeId u = 0; u < n; ++u) {
    if (!candidates[u] || scaffold.is_root[u]) continue;
    const double zbar = kernel.wx(u) * inv_w;
    const double var_x =
        std::max(0.0, kernel.wxx(u) * inv_w - zbar * zbar);
    const double* yu = kernel.wy(u);
    double raw_num = 0;
    for (int j = 0; j < w; ++j) {
      const double m = yu[j] * inv_w;
      raw_num += m * m;
    }
    const double v_tot = std::max(0.0, kernel.wysq(u) * inv_w - raw_num);
    const double num =
        std::max(raw_num - v_tot / (result.ess - 1.0), 0.0);
    const double z_floor = 1.0 / (graph.weighted_degree(u) + 1.0);
    result.gain[u] = num / std::max(zbar, z_floor);
    // Bernstein-style widths at the effective sample size: heuristic
    // (IS weights are not i.i.d. bounded samples) but conservative in
    // r_eff, which collapses when the weights are skewed.
    const double sup_x = 2.0 * scaffold.resistance_depth[u];
    const double hz = std::sqrt(2.0 * var_x * log_term / result.ess) +
                      3.0 * sup_x * log_term / result.ess;
    const double h_base = 2.0 * log_term * v_tot / result.ess;
    const double h_num = 2.0 * std::sqrt(num * h_base) + h_base;
    result.rel[u] =
        h_num / std::max(num, 1e-300) + hz / std::max(zbar, z_floor);
  }
  return result;
}

}  // namespace cfcm
