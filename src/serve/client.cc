#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cfcm::serve {

StatusOr<ServeClient> ServeClient::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = Status::IoError("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  return ServeClient(fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status ServeClient::SendLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t wrote = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) {
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return Status::Ok();
}

StatusOr<std::string> ServeClient::ReadLine() {
  char chunk[4096];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got < 0) {
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (got == 0) {
      return Status::IoError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

StatusOr<JsonValue> ServeClient::Call(const JsonValue& request) {
  CFCM_RETURN_IF_ERROR(SendLine(request.Serialize()));
  StatusOr<std::string> line = ReadLine();
  if (!line.ok()) return line.status();
  return JsonValue::Parse(*line);
}

}  // namespace cfcm::serve
