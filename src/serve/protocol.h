// Request/response protocol of the serving layer (DESIGN.md §10).
//
// One request or response per line, each a single JSON object. Ops:
//   load     {"op":"load","graph":<name>,"source":<spec>}
//   unload   {"op":"unload","graph":<name>}
//   solve    {"op":"solve","graph":<name>,"algorithm":<reg name>,
//             "k":<int>,"eps":<double>,"seed":<int>}
//   evaluate {"op":"evaluate","graph":<name>,"group":[ids],
//             "probes":<int>,"seed":<int>}
//   mutate   {"op":"mutate","graph":<name>,"add_nodes":<int>,
//             "add":[[u,v],[u,v,w],...],"remove":[[u,v],...],
//             "reweight":[[u,v,w],...]} — applies a GraphDelta
//             (removals, then reweights, then additions); the response
//             carries the new fingerprint/epoch/bytes. Result-cache
//             entries stay sound for free: the cache key is the content
//             fingerprint, which the mutation changes.
//   augment  {"op":"augment","graph":<name>,"group":[ids],"k":<int>,
//             "candidates":"group"|"any","apply":<bool>} — greedy edge
//             addition maximizing C(S) (paper §VI); with "apply":true
//             the chosen edges are applied as a mutation afterwards.
//             Dense algorithm: rejected when n - |group| or k exceeds
//             EngineOptions::augment_max_n.
//   stats    {"op":"stats"}
//   shutdown {"op":"shutdown"}
// Every request may carry an "id" member, echoed verbatim in the
// response so pipelined clients can match replies. Responses carry
// "status":"ok" or "status":"error" with {"error":{"code","message"}} —
// the same error object shape cfcm_cli emits under --json.
#ifndef CFCM_SERVE_PROTOCOL_H_
#define CFCM_SERVE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "engine/engine.h"
#include "serve/catalog.h"
#include "serve/json.h"
#include "serve/result_cache.h"

namespace cfcm::serve {

/// Admission-control counters owned by the transport (Server) and
/// surfaced through the handler's `stats` op.
struct AdmissionStats {
  std::atomic<uint64_t> connections{0};  ///< connections accepted
  std::atomic<uint64_t> accepted{0};     ///< requests admitted to the queue
  std::atomic<uint64_t> rejected{0};     ///< requests refused 429-style
  std::atomic<uint64_t> served{0};       ///< responses written by workers
};

struct HandlerOptions {
  CatalogOptions catalog;
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  engine::EngineOptions engine;
};

/// The wire name of a Status code, e.g. "not_found" — shared by server
/// responses and cfcm_cli --json errors.
std::string StatusCodeName(StatusCode code);

/// `{"code":<name>,"message":<msg>}` for embedding under "error".
JsonValue StatusToJsonError(const Status& status);

/// A full error response line: status, error object, echoed id (may be
/// null).
JsonValue MakeErrorResponse(const Status& status, const JsonValue* id);

/// The transport's 429-style backpressure rejection:
/// {"status":"error","error":{"code":"over_capacity",...}}. Clients
/// match error.code == "over_capacity" to decide to retry later.
JsonValue MakeOverCapacityResponse();

/// \brief Executes protocol requests against a SessionCatalog, a
/// ResultCache and the Engine. Transport-agnostic: the TCP server, the
/// selftest harness and unit tests all drive this one class.
///
/// Thread-safe — concurrent Handle calls are the normal serving mode
/// (catalog and cache synchronize internally; engine jobs share only
/// immutable session state).
class ServeHandler {
 public:
  explicit ServeHandler(HandlerOptions options = {});

  /// Executes one parsed request; never fails (errors become error
  /// responses).
  JsonValue Handle(const JsonValue& request);

  /// Parses one protocol line and executes it; malformed JSON yields an
  /// invalid_argument error response.
  JsonValue HandleLine(std::string_view line);

  /// True once a shutdown request was handled; the transport drains and
  /// stops when it sees this.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Lets the transport surface its admission counters via `stats`.
  /// `stats` must outlive the handler.
  void set_admission_stats(const AdmissionStats* stats) {
    admission_ = stats;
  }

  SessionCatalog& catalog() { return catalog_; }
  ResultCache& cache() { return cache_; }

 private:
  JsonValue HandleLoad(const JsonValue& request);
  JsonValue HandleUnload(const JsonValue& request);
  JsonValue HandleSolve(const JsonValue& request);
  JsonValue HandleEvaluate(const JsonValue& request);
  JsonValue HandleMutate(const JsonValue& request);
  JsonValue HandleAugment(const JsonValue& request);
  JsonValue HandleStats();

  HandlerOptions options_;
  SessionCatalog catalog_;
  ResultCache cache_;
  const AdmissionStats* admission_ = nullptr;
  std::atomic<bool> shutdown_{false};
};

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_PROTOCOL_H_
