// Request/response protocol of the serving layer (DESIGN.md §10).
//
// One request or response per line, each a single JSON object. Ops:
//   load     {"op":"load","graph":<name>,"source":<spec>}
//   unload   {"op":"unload","graph":<name>}
//   solve    {"op":"solve","graph":<name>,"algorithm":<reg name>,
//             "k":<int>,"eps":<double>,"seed":<int>} — optional
//             "warm":true|false|"auto"|"on"|"off" runs the forest
//             solver's incremental warm-start pipeline (DESIGN.md §16;
//             warm results are never cached), and optional
//             "staleness":{"max_epochs":E} lets a cache miss answer
//             from a ≤E-epoch-old entry ("cache":"stale") with the
//             composed reweight bound C' ∈ [lo·C, hi·C] attached
//             under "staleness".
//   evaluate {"op":"evaluate","graph":<name>,"group":[ids],
//             "probes":<int>,"seed":<int>}
//   mutate   {"op":"mutate","graph":<name>,"add_nodes":<int>,
//             "add":[[u,v],[u,v,w],...],"remove":[[u,v],...],
//             "reweight":[[u,v,w],...]} — applies a GraphDelta
//             (removals, then reweights, then additions); the response
//             carries the new fingerprint/epoch/bytes. Result-cache
//             entries stay sound for free: the cache key is the content
//             fingerprint, which the mutation changes.
//   augment  {"op":"augment","graph":<name>,"group":[ids],"k":<int>,
//             "candidates":"group"|"any","apply":<bool>} — greedy edge
//             addition maximizing C(S) (paper §VI); with "apply":true
//             the chosen edges are applied as a mutation afterwards.
//             Dense algorithm: rejected when n - |group| or k exceeds
//             EngineOptions::augment_max_n.
//   stats    {"op":"stats"} — cache/catalog/server counters plus, from
//             one coherent metrics snapshot, per-op request totals,
//             latency percentiles and engine linear-algebra counters,
//             with uptime and build identification (DESIGN.md §12).
//   metrics  {"op":"metrics"} — full registry snapshot as JSON;
//             {"format":"prometheus"} returns a text-exposition
//             rendering in a "text" member instead.
//   flightz  {"op":"flightz","n":<int>} — the newest n (default 64)
//             flight-recorder entries plus the pinned slow/error ring
//             (DESIGN.md §15); same records as the admin plane's
//             /flightz endpoint.
//   shutdown {"op":"shutdown"}
// Every request may carry an "id" member, echoed verbatim in the
// response so pipelined clients can match replies; a string "trace_id"
// member is echoed the same way. Any solve/evaluate/mutate/augment/load
// request may carry "trace":true, which adds a "trace_id" (generated
// when the request did not supply one) and a "trace" object with the
// per-phase span breakdown to the response. Responses carry
// "status":"ok" or "status":"error" with {"error":{"code","message"}} —
// the same error object shape cfcm_cli emits under --json.
#ifndef CFCM_SERVE_PROTOCOL_H_
#define CFCM_SERVE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "serve/catalog.h"
#include "serve/json.h"
#include "serve/result_cache.h"

namespace cfcm::serve {

/// Admission-control counters owned by the transport (Server) and
/// surfaced through the handler's `stats` op.
struct AdmissionStats {
  std::atomic<uint64_t> connections{0};  ///< connections accepted
  std::atomic<uint64_t> accepted{0};     ///< requests admitted to the queue
  std::atomic<uint64_t> rejected{0};     ///< requests refused 429-style
  std::atomic<uint64_t> served{0};       ///< responses written by workers
};

struct HandlerOptions {
  CatalogOptions catalog;
  std::size_t cache_capacity = 1024;
  int cache_shards = 8;
  engine::EngineOptions engine;

  /// Flight-recorder rings (DESIGN.md §15). capacity 0 disables the
  /// recorder entirely (no per-request commit, flightz answers an
  /// error).
  std::size_t flight_capacity = 1024;
  std::size_t flight_pinned_capacity = 128;
  /// Requests at least this slow are pinned; <= 0 pins errors only.
  int64_t flight_slow_us = 100'000;

  /// Per-op latency objectives (--slo); empty disables SLO tracking.
  std::vector<obs::SloObjective> slo;
};

/// The wire name of a Status code, e.g. "not_found" — shared by server
/// responses and cfcm_cli --json errors.
std::string StatusCodeName(StatusCode code);

/// `{"code":<name>,"message":<msg>}` for embedding under "error".
JsonValue StatusToJsonError(const Status& status);

/// A full error response line: status, error object, echoed id (may be
/// null).
JsonValue MakeErrorResponse(const Status& status, const JsonValue* id);

/// The transport's 429-style backpressure rejection:
/// {"status":"error","error":{"code":"over_capacity",...}}. Clients
/// match error.code == "over_capacity" to decide to retry later.
JsonValue MakeOverCapacityResponse();

/// Transport-measured phases of a request, handed to the handler so the
/// per-op latency histograms and traces cover the whole request, not
/// just the handler's slice. All nanoseconds; zero when unknown.
struct RequestInfo {
  int64_t read_ns = 0;        ///< socket read of the request line
  int64_t queue_wait_ns = 0;  ///< admission-queue wait before a worker
  int64_t parse_ns = 0;       ///< JSON parse (filled by HandleLine)
};

/// What the handler observed about a request, reported back so the
/// transport can log it without re-parsing the response.
struct RequestOutcome {
  std::string op;          ///< dispatched op; empty if unparseable
  bool ok = true;          ///< response carried status "ok"
  std::string error_code;  ///< error.code when !ok
  std::string trace_id;    ///< set when the request was traced
};

/// \brief Executes protocol requests against a SessionCatalog, a
/// ResultCache and the Engine. Transport-agnostic: the TCP server, the
/// selftest harness and unit tests all drive this one class.
///
/// Thread-safe — concurrent Handle calls are the normal serving mode
/// (catalog and cache synchronize internally; engine jobs share only
/// immutable session state).
class ServeHandler {
 public:
  explicit ServeHandler(HandlerOptions options = {});

  /// Executes one parsed request; never fails (errors become error
  /// responses).
  JsonValue Handle(const JsonValue& request);

  /// Same, with transport timing folded into the request's latency
  /// histogram/trace and the outcome reported back (both optional — the
  /// plain overload is Handle(request, {}, nullptr)).
  JsonValue Handle(const JsonValue& request, const RequestInfo& info,
                   RequestOutcome* outcome);

  /// Parses one protocol line and executes it; malformed JSON yields an
  /// invalid_argument error response.
  JsonValue HandleLine(std::string_view line);

  /// Line-level variant of the instrumented Handle; measures the JSON
  /// parse into info.parse_ns itself.
  JsonValue HandleLine(std::string_view line, const RequestInfo& info,
                       RequestOutcome* outcome);

  /// True once a shutdown request was handled; the transport drains and
  /// stops when it sees this.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Lets the transport surface its admission counters via `stats`.
  /// `stats` must outlive the handler.
  void set_admission_stats(const AdmissionStats* stats) {
    admission_ = stats;
  }

  SessionCatalog& catalog() { return catalog_; }
  ResultCache& cache() { return cache_; }

  /// Null when flight_capacity was 0.
  obs::FlightRecorder* flight_recorder() { return flight_.get(); }
  /// Null when no SLO objectives were configured.
  obs::SloTracker* slo_tracker() { return slo_.get(); }

 private:
  JsonValue HandleLoad(const JsonValue& request, obs::TraceContext* trace,
                       obs::FlightRecord* record);
  JsonValue HandleUnload(const JsonValue& request);
  JsonValue HandleSolve(const JsonValue& request, obs::TraceContext* trace,
                        obs::FlightRecord* record);
  JsonValue HandleEvaluate(const JsonValue& request, obs::TraceContext* trace,
                           obs::FlightRecord* record);
  JsonValue HandleMutate(const JsonValue& request, obs::TraceContext* trace,
                         obs::FlightRecord* record);
  JsonValue HandleAugment(const JsonValue& request, obs::TraceContext* trace,
                          obs::FlightRecord* record);
  JsonValue HandleStats();
  JsonValue HandleMetrics(const JsonValue& request);
  JsonValue HandleFlightz(const JsonValue& request);

  HandlerOptions options_;
  SessionCatalog catalog_;
  ResultCache cache_;
  const AdmissionStats* admission_ = nullptr;
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::SloTracker> slo_;
};

/// JSON rendering of one flight record ({"id","ts_ms","mono_ns","op",
/// "graph","epoch","ok","error_code","trace_id","latency_us",
/// "queue_wait_us","spans":[{"name","us"}]}) — shared by the flightz op,
/// the admin plane's /flightz endpoint, and the daemon's SIGTERM dump.
JsonValue FlightRecordJson(const obs::FlightRecord& record);

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_PROTOCOL_H_
