#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace cfcm::serve {

namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;
constexpr std::size_t kDefaultFlightN = 64;
constexpr std::size_t kMaxFlightN = 4096;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "OK";
  }
}

// Parses "?n=..." out of a request target; returns the path part.
std::string SplitQuery(const std::string& target, std::size_t* n_out) {
  const std::size_t question = target.find('?');
  if (question == std::string::npos) return target;
  const std::string query = target.substr(question + 1);
  std::size_t begin = 0;
  while (begin <= query.size()) {
    std::size_t end = query.find('&', begin);
    if (end == std::string::npos) end = query.size();
    const std::string param = query.substr(begin, end - begin);
    begin = end + 1;
    if (param.rfind("n=", 0) == 0) {
      std::size_t n = 0;
      bool digits = param.size() > 2;
      for (std::size_t i = 2; i < param.size(); ++i) {
        if (param[i] < '0' || param[i] > '9' || n > kMaxFlightN) {
          digits = false;
          break;
        }
        n = n * 10 + static_cast<std::size_t>(param[i] - '0');
      }
      if (digits && n > 0) *n_out = std::min(n, kMaxFlightN);
    }
    if (end == query.size()) break;
  }
  return target.substr(0, question);
}

}  // namespace

AdminPlane::AdminPlane(AdminHooks hooks, AdminPlaneOptions options)
    : hooks_(std::move(hooks)), options_(std::move(options)) {}

AdminPlane::~AdminPlane() { Shutdown(); }

bool AdminPlane::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("admin socket: ") + std::strerror(errno);
    }
    return false;
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "bad admin bind address '" + options_.host + "'";
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error != nullptr) {
      *error = "admin bind " + options_.host + ":" +
               std::to_string(options_.port) + ": " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) {
      *error = std::string("admin listen: ") + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  obs::LogEvent(obs::LogLevel::kInfo, "admin_listening")
      .Str("host", options_.host)
      .Int("port", port_);
  return true;
}

void AdminPlane::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed during shutdown
    }
    if (options_.io_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.io_timeout_seconds;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        ::close(fd);
        return;
      }
      open_fds_.insert(fd);
      ++active_;
    }
    std::thread([this, fd] {
      HandleConnection(fd);
      std::lock_guard<std::mutex> lock(mu_);
      open_fds_.erase(fd);
      ::close(fd);
      --active_;
      cv_.notify_all();
    }).detach();
  }
}

void AdminPlane::HandleConnection(int fd) {
  std::string request;
  char chunk[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return;  // timeout, EOF, or shutdown
    request.append(chunk, static_cast<std::size_t>(got));
    if (request.size() > kMaxRequestBytes) return;  // not a sane GET
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  int http_status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  const std::string body = HandleRequest(method, target, &http_status,
                                         &content_type);

  std::string response = "HTTP/1.1 " + std::to_string(http_status) + " " +
                         StatusText(http_status) +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t wrote = ::send(fd, response.data() + sent,
                                 response.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) return;
    sent += static_cast<std::size_t>(wrote);
  }
}

std::string AdminPlane::HandleRequest(const std::string& method,
                                      const std::string& target,
                                      int* http_status,
                                      std::string* content_type) {
  std::size_t flight_n = kDefaultFlightN;
  const std::string path = SplitQuery(target, &flight_n);
  if (method != "GET") {
    *http_status = 405;
    return "method not allowed\n";
  }
  if (path == "/metrics") {
    if (hooks_.refresh) hooks_.refresh();
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return obs::RenderPrometheus(obs::MetricsRegistry::Global().snapshot());
  }
  if (path == "/healthz") {
    return "ok\n";
  }
  if (path == "/readyz") {
    std::string reason;
    if (!hooks_.ready || hooks_.ready(&reason)) return "ready\n";
    *http_status = 503;
    return "not ready: " + reason + "\n";
  }
  if (path == "/statusz") {
    JsonValue::Object status;
    if (hooks_.statusz) hooks_.statusz(&status);
    *content_type = "application/json";
    return JsonValue(std::move(status)).Serialize() + "\n";
  }
  if (path == "/flightz") {
    if (hooks_.flight == nullptr) {
      *http_status = 503;
      return "flight recorder disabled\n";
    }
    JsonValue::Object dump;
    dump["committed"] = JsonValue(hooks_.flight->committed());
    dump["capacity"] =
        JsonValue(static_cast<int64_t>(hooks_.flight->options().capacity));
    dump["pinned_capacity"] = JsonValue(
        static_cast<int64_t>(hooks_.flight->options().pinned_capacity));
    JsonValue::Array records;
    for (const obs::FlightRecord& record : hooks_.flight->Recent(flight_n)) {
      records.push_back(FlightRecordJson(record));
    }
    dump["records"] = JsonValue(std::move(records));
    JsonValue::Array pinned;
    for (const obs::FlightRecord& record : hooks_.flight->Pinned(flight_n)) {
      pinned.push_back(FlightRecordJson(record));
    }
    dump["pinned"] = JsonValue(std::move(pinned));
    *content_type = "application/json";
    return JsonValue(std::move(dump)).Serialize() + "\n";
  }
  *http_status = 404;
  return "not found\n";
}

void AdminPlane::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  acceptor_.join();
  {
    // Unblock connection handlers stuck in recv/send, then wait for the
    // detached threads to drain (they erase + close their own fds).
    std::unique_lock<std::mutex> lock(mu_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    cv_.wait(lock, [this] { return active_ == 0; });
    started_ = false;
  }
}

}  // namespace cfcm::serve
