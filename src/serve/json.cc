#include "serve/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cfcm::serve {
namespace {

constexpr int kMaxDepth = 64;

// Recursive-descent parser over a string_view with explicit cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    StatusOr<JsonValue> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting deeper than 64 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      StatusOr<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue(std::move(*s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
    return Fail(std::string("unexpected character '") + c + "'");
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) return JsonValue(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      object[std::move(*key)] = std::move(*value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue(std::move(object));
      return Fail("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) return JsonValue(std::move(array));
    while (true) {
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      array.push_back(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue(std::move(array));
      return Fail("expected ',' or ']' in array");
    }
  }

  // Appends the UTF-8 encoding of `codepoint` to `out`.
  static void AppendUtf8(uint32_t codepoint, std::string* out) {
    if (codepoint < 0x80) {
      out->push_back(static_cast<char>(codepoint));
    } else if (codepoint < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else if (codepoint < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    }
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return Fail("bad hex digit in \\u escape");
    }
    pos_ += 4;
    return value;
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          StatusOr<uint32_t> unit = ParseHex4();
          if (!unit.ok()) return unit.status();
          uint32_t codepoint = *unit;
          if (codepoint >= 0xD800 && codepoint <= 0xDBFF) {
            // High surrogate: require a following \uXXXX low surrogate.
            if (!ConsumeLiteral("\\u")) return Fail("lone high surrogate");
            StatusOr<uint32_t> low = ParseHex4();
            if (!low.ok()) return low.status();
            if (*low < 0xDC00 || *low > 0xDFFF) {
              return Fail("bad low surrogate");
            }
            codepoint =
                0x10000 + ((codepoint - 0xD800) << 10) + (*low - 0xDC00);
          } else if (codepoint >= 0xDC00 && codepoint <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(codepoint, &out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (integral) {
      errno = 0;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno == 0) {
        return JsonValue(static_cast<int64_t>(value));
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() ||
        !std::isfinite(value)) {
      return Fail("bad number literal '" + token + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void SerializeTo(const JsonValue& value, std::string* out);

void SerializeNumber(double d, std::string* out) {
  // %.17g round-trips every double; trim to the shortest form that does.
  char buf[32];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out->append(buf);
}

void SerializeTo(const JsonValue& value, std::string* out) {
  if (value.is_null()) {
    out->append("null");
  } else if (value.is_bool()) {
    out->append(value.as_bool() ? "true" : "false");
  } else if (value.is_string()) {
    out->push_back('"');
    out->append(JsonEscapeString(value.as_string()));
    out->push_back('"');
  } else if (value.is_array()) {
    out->push_back('[');
    const auto& array = value.array();
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i > 0) out->push_back(',');
      SerializeTo(array[i], out);
    }
    out->push_back(']');
  } else if (value.is_object()) {
    out->push_back('{');
    bool first = true;
    for (const auto& [key, member] : value.object()) {
      if (!first) out->push_back(',');
      first = false;
      out->push_back('"');
      out->append(JsonEscapeString(key));
      out->append("\":");
      SerializeTo(member, out);
    }
    out->push_back('}');
  } else if (value.is_int()) {
    out->append(std::to_string(value.as_int()));
  } else {
    SerializeNumber(value.as_double(), out);
  }
}

}  // namespace

std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace cfcm::serve
