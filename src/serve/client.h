// Minimal blocking client for the serving protocol: one TCP connection,
// line-delimited JSON request/response. Used by the cfcm_serve client
// subcommand, the loopback bench and the end-to-end tests.
#ifndef CFCM_SERVE_CLIENT_H_
#define CFCM_SERVE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "serve/json.h"

namespace cfcm::serve {

class ServeClient {
 public:
  /// Connects to host:port (IPv4 dotted quad, e.g. "127.0.0.1").
  static StatusOr<ServeClient> Connect(const std::string& host, int port);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Sends one request and blocks for the next response line. Only valid
  /// for non-pipelined use (one Call at a time per client).
  StatusOr<JsonValue> Call(const JsonValue& request);

  /// Raw framing access, for pipelining tests.
  Status SendLine(const std::string& line);
  StatusOr<std::string> ReadLine();

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned line
};

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_CLIENT_H_
