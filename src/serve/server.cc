#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/build_info.h"
#include "common/timer.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace cfcm::serve {

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServeHandler* handler, ServerOptions options)
    : handler_(handler), options_(std::move(options)) {
  handler_->set_admission_stats(&stats_);
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::IoError(std::string("bind ") + options_.host + ":" +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  // Bring the admin plane up BEFORE workers/acceptor so a failed admin
  // bind aborts cleanly (nothing else to unwind yet) and /healthz can
  // answer from the first instant the data port accepts.
  if (options_.admin_port >= 0) {
    watchdog_ = std::make_unique<obs::Watchdog>(
        obs::Watchdog::Options{options_.watchdog_interval_ms});
    watchdog_->AddSampler("server", [this] { SampleGauges(); });
    if (obs::SloTracker* slo = handler_->slo_tracker()) {
      watchdog_->AddSampler("slo", [slo] { slo->Tick(MonotonicNanos()); });
    }
    AdminHooks hooks;
    hooks.refresh = [this] { watchdog_->TickOnce(); };
    hooks.ready = [this](std::string* reason) { return Ready(reason); };
    hooks.statusz = [this](JsonValue::Object* status) { FillStatusz(status); };
    hooks.flight = handler_->flight_recorder();
    admin_ = std::make_unique<AdminPlane>(
        std::move(hooks),
        AdminPlaneOptions{options_.host, options_.admin_port, 5});
    std::string admin_error;
    if (!admin_->Start(&admin_error)) {
      admin_.reset();
      watchdog_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IoError(admin_error);
    }
    watchdog_->Start();
  }

  {
    // Under mu_: admin connection threads may already be calling Ready().
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  obs::LogEvent(obs::LogLevel::kInfo, "listening")
      .Str("host", options_.host)
      .Int("port", port_)
      .Int("admin_port", admin_port())
      .Int("workers", options_.num_workers);
  return Status::Ok();
}

std::size_t Server::queue_high_watermark() const {
  if (options_.queue_high_watermark > 0) {
    return std::min(options_.queue_high_watermark, options_.max_queue);
  }
  return std::max<std::size_t>(1, 3 * options_.max_queue / 4);
}

bool Server::Ready(std::string* reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      if (reason != nullptr) *reason = "not_accepting";
      return false;
    }
    if (queue_.size() >= queue_high_watermark()) {
      if (reason != nullptr) *reason = "queue_high_watermark";
      return false;
    }
  }
  // Outside mu_: the catalog has its own lock.
  if (handler_->catalog().over_budget()) {
    if (reason != nullptr) *reason = "catalog_over_budget";
    return false;
  }
  return true;
}

void Server::FillStatusz(JsonValue::Object* status) {
  const BuildInfo& build = GetBuildInfo();
  (*status)["build"] = JsonValue(JsonValue::Object{
      {"version", build.version},
      {"compiler", build.compiler},
      {"build_type", build.build_type},
      {"cxx_standard", build.cxx_standard},
  });
  (*status)["uptime_s"] = obs::ProcessUptimeSeconds();

  std::string reason;
  const bool ready = Ready(&reason);
  (*status)["ready"] = ready;
  if (!ready) (*status)["not_ready_reason"] = reason;

  std::size_t queue_depth;
  std::size_t in_flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
    in_flight = in_flight_;
  }
  (*status)["config"] = JsonValue(JsonValue::Object{
      {"host", options_.host},
      {"port", port_},
      {"admin_port", admin_port()},
      {"workers", options_.num_workers},
      {"max_queue", static_cast<int64_t>(options_.max_queue)},
      {"queue_high_watermark", static_cast<int64_t>(queue_high_watermark())},
      {"max_line_bytes", static_cast<int64_t>(options_.max_line_bytes)},
      {"slow_request_ms", options_.slow_request_ms},
      {"watchdog_interval_ms", options_.watchdog_interval_ms},
      {"pool_threads",
       static_cast<int64_t>(handler_->catalog().pool().num_threads())},
  });
  (*status)["queue"] = JsonValue(JsonValue::Object{
      {"depth", static_cast<int64_t>(queue_depth)},
      {"in_flight", static_cast<int64_t>(in_flight)},
  });
  (*status)["admission"] = JsonValue(JsonValue::Object{
      {"connections", stats_.connections.load(std::memory_order_relaxed)},
      {"accepted", stats_.accepted.load(std::memory_order_relaxed)},
      {"rejected", stats_.rejected.load(std::memory_order_relaxed)},
      {"served", stats_.served.load(std::memory_order_relaxed)},
  });

  const CatalogStats catalog = handler_->catalog().stats();
  JsonValue::Array sessions;
  for (const CatalogSessionInfo& info : catalog.sessions) {
    sessions.push_back(JsonValue(JsonValue::Object{
        {"name", info.name},
        {"resident", info.resident},
        {"mutated", info.mutated},
        {"bytes", static_cast<int64_t>(info.bytes)},
        {"epoch", static_cast<int64_t>(info.epoch)},
    }));
  }
  (*status)["catalog"] = JsonValue(JsonValue::Object{
      {"resident_bytes", static_cast<int64_t>(catalog.resident_bytes)},
      {"budget_bytes",
       static_cast<int64_t>(handler_->catalog().memory_budget_bytes())},
      {"sessions", JsonValue(std::move(sessions))},
  });

  const ResultCacheStats cache = handler_->cache().stats();
  (*status)["cache"] = JsonValue(JsonValue::Object{
      {"entries", cache.entries},
      {"capacity", cache.capacity},
      {"hits", cache.hits},
      {"misses", cache.misses},
  });

  if (obs::FlightRecorder* flight = handler_->flight_recorder()) {
    (*status)["flight"] = JsonValue(JsonValue::Object{
        {"capacity", static_cast<int64_t>(flight->options().capacity)},
        {"pinned_capacity",
         static_cast<int64_t>(flight->options().pinned_capacity)},
        {"slow_us", flight->options().slow_us},
        {"committed", flight->committed()},
    });
  }
  if (obs::SloTracker* slo = handler_->slo_tracker()) {
    JsonValue::Array objectives;
    for (const obs::SloObjective& objective : slo->objectives()) {
      objectives.push_back(JsonValue(JsonValue::Object{
          {"op", objective.op},
          {"threshold_us", objective.threshold_us},
      }));
    }
    (*status)["slo"] = JsonValue(std::move(objectives));
  }
}

void Server::SampleGauges() {
  auto& registry = obs::MetricsRegistry::Global();
  std::size_t queue_depth;
  std::size_t in_flight;
  bool accepting;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
    in_flight = in_flight_;
    accepting = started_ && !stopping_;
  }
  registry.gauge("serve.queue.depth")
      .Set(static_cast<int64_t>(queue_depth));
  registry.gauge("serve.queue.high_watermark")
      .Set(static_cast<int64_t>(queue_high_watermark()));
  registry.gauge("serve.workers.in_flight")
      .Set(static_cast<int64_t>(in_flight));
  registry.gauge("serve.workers.total").Set(options_.num_workers);
  registry.gauge("serve.accepting").Set(accepting ? 1 : 0);
  registry.gauge("serve.pool.threads")
      .Set(static_cast<int64_t>(handler_->catalog().pool().num_threads()));

  const CatalogStats catalog = handler_->catalog().stats();
  registry.gauge("catalog.bytes")
      .Set(static_cast<int64_t>(catalog.resident_bytes));
  registry.gauge("catalog.budget_bytes")
      .Set(static_cast<int64_t>(handler_->catalog().memory_budget_bytes()));
  registry.gauge("catalog.sessions")
      .Set(static_cast<int64_t>(catalog.sessions.size()));
  for (const CatalogSessionInfo& info : catalog.sessions) {
    registry.gauge("serve.session." + info.name + ".epoch")
        .Set(static_cast<int64_t>(info.epoch));
  }

  registry.gauge("serve.cache.entries")
      .Set(static_cast<int64_t>(handler_->cache().stats().entries));
}

void Server::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed during shutdown (or fatal error)
    }
    if (options_.write_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.write_timeout_seconds;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
    auto connection = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // raced with shutdown: Connection dtor closes fd
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    // Closed connections drop their weak_ptr entries here, so the vector
    // tracks live connections, not all-time accepts.
    std::erase_if(connections_,
                  [](const std::weak_ptr<Connection>& w) { return w.expired(); });
    connections_.push_back(connection);
    {
      std::lock_guard<std::mutex> reader_lock(reader_sync_->mu);
      ++reader_sync_->active;
    }
    std::thread([this, sync = reader_sync_,
                 connection = std::move(connection)]() mutable {
      ReadConnection(std::move(connection));
      std::lock_guard<std::mutex> reader_lock(sync->mu);
      --sync->active;
      sync->cv.notify_all();
    }).detach();
  }
}

void Server::ReadConnection(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    Timer recv_timer;
    const ssize_t got = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return;  // EOF, peer reset, or fd shut down by Shutdown()
    // Attributed to every line this chunk completes; includes the wait
    // for the client to send, so it is the client-visible read phase.
    const int64_t read_ns = recv_timer.Nanos();
    buffer.append(chunk, static_cast<std::size_t>(got));
    if (buffer.size() > options_.max_line_bytes) {
      WriteResponse(*connection,
                    MakeErrorResponse(
                        Status::InvalidArgument("request line too long"),
                        nullptr));
      return;
    }
    std::size_t start = 0;
    std::size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!stopping_ && queue_.size() < options_.max_queue) {
          queue_.push_back(
              Task{connection, std::move(line), read_ns, MonotonicNanos()});
          admitted = true;
        }
      }
      if (admitted) {
        stats_.accepted.fetch_add(1, std::memory_order_relaxed);
        queue_cv_.notify_one();
      } else {
        // Explicit backpressure: reject now, never block the reader.
        stats_.rejected.fetch_add(1, std::memory_order_relaxed);
        obs::LogEvent(obs::LogLevel::kWarn, "over_capacity")
            .Int("queue", static_cast<int64_t>(options_.max_queue));
        WriteResponse(*connection, MakeOverCapacityResponse());
      }
    }
    buffer.erase(0, start);
  }
}

void Server::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || workers_stop_; });
      if (queue_.empty()) return;  // workers_stop_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    static obs::LatencyHistogram* const queue_wait_us =
        &obs::MetricsRegistry::Global().histogram("serve.queue_wait_us");
    RequestInfo info;
    info.read_ns = task.read_ns;
    info.queue_wait_ns = MonotonicNanos() - task.enqueued_ns;
    queue_wait_us->Record(info.queue_wait_ns / 1000);

    RequestOutcome outcome;
    Timer handle_timer;
    const JsonValue response = handler_->HandleLine(task.line, info, &outcome);
    const int64_t total_us =
        (info.read_ns + info.queue_wait_ns) / 1000 + handle_timer.Micros();
    WriteResponse(*task.connection, response);
    stats_.served.fetch_add(1, std::memory_order_relaxed);

    const bool slow = options_.slow_request_ms > 0 &&
                      total_us >= options_.slow_request_ms * 1000;
    if (slow || obs::MinLogLevel() <= obs::LogLevel::kDebug) {
      obs::LogEvent event(slow ? obs::LogLevel::kWarn : obs::LogLevel::kDebug,
                          slow ? "slow_request" : "request");
      event.Str("op", outcome.op)
          .Bool("ok", outcome.ok)
          .Int("total_us", total_us)
          .Int("queue_us", info.queue_wait_ns / 1000);
      if (!outcome.ok) event.Str("error", outcome.error_code);
      if (!outcome.trace_id.empty()) event.Str("trace_id", outcome.trace_id);
    }
    const bool shutdown_op = handler_->shutdown_requested();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) drained_cv_.notify_all();
      if (shutdown_op && !shutdown_signal_) {
        shutdown_signal_ = true;
        shutdown_cv_.notify_all();
      }
    }
  }
}

void Server::WriteResponse(Connection& connection, const JsonValue& response) {
  std::string line = response.Serialize();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(connection.write_mu);
  std::size_t sent = 0;
  while (sent < line.size()) {
    // MSG_NOSIGNAL: a peer that hung up must not SIGPIPE the server.
    const ssize_t wrote = ::send(connection.fd, line.data() + sent,
                                 line.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) return;  // peer gone; response is moot
    sent += static_cast<std::size_t>(wrote);
  }
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_signal_ || stopping_; });
  }
  Shutdown();
}

void Server::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) {
      finished_ = true;
      return;
    }
    if (stopping_) {
      // Another thread is already shutting down; wait for it to finish.
      shutdown_cv_.wait(lock, [this] { return finished_; });
      return;
    }
    stopping_ = true;  // readers stop admitting from here on
    shutdown_signal_ = true;
    shutdown_cv_.notify_all();
  }

  // 1. Stop accepting: close the listener to unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  acceptor_.join();

  // 2. Drain: every admitted request still gets executed and answered.
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (workers_.empty()) {
      queue_.clear();  // admit-only test mode: nothing will drain it
    }
    drained_cv_.wait(lock,
                     [this] { return queue_.empty() && in_flight_ == 0; });
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();

  // 3. Unblock readers (they sit in recv) and wait for every detached
  // reader to finish — after this no thread touches the server again.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& weak : connections_) {
      if (auto connection = weak.lock()) {
        ::shutdown(connection->fd, SHUT_RDWR);
      }
    }
  }
  {
    std::unique_lock<std::mutex> reader_lock(reader_sync_->mu);
    reader_sync_->cv.wait(reader_lock,
                          [this] { return reader_sync_->active == 0; });
  }

  // 4. Take down the admin plane LAST among the listeners: /healthz and
  // /readyz keep answering through the drain (readiness already flipped
  // to 503 when stopping_ was set), so a router sees the replica leave
  // rotation before the health endpoint disappears.
  if (admin_ != nullptr) admin_->Shutdown();
  if (watchdog_ != nullptr) watchdog_->Stop();

  std::lock_guard<std::mutex> lock(mu_);
  connections_.clear();
  finished_ = true;
  shutdown_cv_.notify_all();
}

}  // namespace cfcm::serve
