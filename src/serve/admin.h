// Admin diagnostics plane (DESIGN.md §15).
//
// A minimal, dependency-free HTTP/1.1 responder on a second listen port
// so standard tooling — Prometheus, load balancers, a human with curl —
// can see inside a running daemon without speaking the line-JSON wire
// protocol. GET-only, one response per connection (Connection: close),
// no keep-alive, no TLS: this is a loopback/cluster-internal diagnostics
// port, not a web server.
//
// Endpoints:
//   /metrics   Prometheus text exposition of the global registry
//   /healthz   liveness — the process is up and responding
//   /readyz    readiness — 200 only while the daemon should get traffic
//   /statusz   JSON build/uptime/config/session summary
//   /flightz   JSON dump of the request flight recorder (?n=...)
//
// The plane is wired to the Server through AdminHooks rather than
// touching Server internals, so it stays independently testable and the
// serving layer decides what "ready" means.
#ifndef CFCM_SERVE_ADMIN_H_
#define CFCM_SERVE_ADMIN_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "obs/flight_recorder.h"
#include "serve/json.h"

namespace cfcm::serve {

/// Callbacks the admin plane pulls its answers through. All must be
/// thread-safe; they run on admin connection threads.
struct AdminHooks {
  /// Run before rendering /metrics so gauges are scrape-fresh
  /// (typically Watchdog::TickOnce). May be null.
  std::function<void()> refresh;
  /// Readiness verdict; on false, fills *reason with a short token.
  /// Null means always ready.
  std::function<bool(std::string*)> ready;
  /// Fills the /statusz JSON object. May be null.
  std::function<void(JsonValue::Object*)> statusz;
  /// Flight recorder dumped by /flightz; null renders 503 there.
  obs::FlightRecorder* flight = nullptr;
};

struct AdminPlaneOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral (bound port via port())
  int io_timeout_seconds = 5;
};

/// \brief The admin HTTP listener: one acceptor thread plus one short-
/// lived detached thread per connection.
///
/// Connections are bounded by SO_RCVTIMEO/SO_SNDTIMEO so a stuck peer
/// cannot pin a thread past the timeout; Shutdown closes the listener
/// and every open connection, then waits for the handlers to drain.
class AdminPlane {
 public:
  AdminPlane(AdminHooks hooks, AdminPlaneOptions options);
  ~AdminPlane();

  AdminPlane(const AdminPlane&) = delete;
  AdminPlane& operator=(const AdminPlane&) = delete;

  /// Binds, listens and spawns the acceptor. Fails on bind errors.
  bool Start(std::string* error);
  /// The bound port (after Start), for ephemeral binds.
  int port() const { return port_; }

  /// Stops accepting, closes open connections, joins the acceptor and
  /// waits for in-flight handlers. Idempotent.
  void Shutdown();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  std::string HandleRequest(const std::string& method,
                            const std::string& target, int* http_status,
                            std::string* content_type);

  const AdminHooks hooks_;
  const AdminPlaneOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread acceptor_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::set<int> open_fds_;  // accepted connections still being served
  int active_ = 0;          // detached handler threads still running
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_ADMIN_H_
