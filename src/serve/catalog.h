// Named, ref-counted registry of GraphSessions with lazy loading and
// LRU eviction under a byte budget (DESIGN.md §10).
#ifndef CFCM_SERVE_CATALOG_H_
#define CFCM_SERVE_CATALOG_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/session.h"
#include "graph/delta.h"

namespace cfcm::serve {

struct CatalogOptions {
  /// Soft ceiling on the summed memory_bytes() of resident sessions;
  /// 0 = unlimited. Loading past the budget evicts least-recently-used
  /// sessions (never the one being acquired), but a single graph larger
  /// than the whole budget still loads — the budget bounds hoarding, not
  /// the workload.
  std::size_t memory_budget_bytes = 0;

  /// Size of the one worker pool shared by every session in the catalog
  /// (0 = hardware concurrency). Results never depend on it.
  int num_threads = 0;
};

/// Per-name view for `stats`.
struct CatalogSessionInfo {
  std::string name;
  std::string source;
  bool resident = false;
  bool mutated = false;   ///< diverged from its source spec via Mutate
  std::size_t bytes = 0;  ///< memory_bytes() of the loaded session
  uint64_t loads = 0;     ///< times this name was (re)loaded
  uint64_t epoch = 0;     ///< session mutation epoch (0 = as loaded)
};

struct CatalogStats {
  uint64_t loads = 0;      ///< graph loads, including eviction reloads
  uint64_t evictions = 0;  ///< sessions dropped by the byte budget
  uint64_t mutations = 0;  ///< deltas applied through Mutate
  std::size_t resident_bytes = 0;
  std::vector<CatalogSessionInfo> sessions;  ///< sorted by name
};

/// \brief Multi-graph session registry for one serving process.
///
/// Names map to source specs (LoadGraphFromSpec vocabulary); the graph
/// itself loads lazily on first Acquire and transparently reloads after
/// an eviction — callers never observe whether a session was resident.
/// Acquire hands out shared_ptr leases, so eviction only drops the
/// catalog's reference: jobs running on an evicted session finish
/// safely, and the memory is reclaimed when the last lease ends.
///
/// Sessions are mutable through Mutate (DESIGN.md §11): the delta
/// rebuilds the graph as a new immutable snapshot inside the session,
/// the byte budget is re-charged, and the entry is pinned from eviction
/// because its source spec no longer describes its contents.
///
/// All sessions run on one shared worker pool (CatalogOptions::
/// num_threads); loading happens outside the catalog lock, and two
/// concurrent Acquires of the same name coordinate so the graph is
/// loaded exactly once. Thread-safe.
class SessionCatalog {
 public:
  explicit SessionCatalog(CatalogOptions options = {});

  SessionCatalog(const SessionCatalog&) = delete;
  SessionCatalog& operator=(const SessionCatalog&) = delete;

  /// Registers `name` -> `source` without loading. Redefining an
  /// existing name with a *different* source is rejected (unload it
  /// first); redefining with the same source is a no-op.
  Status Define(const std::string& name, const std::string& source);

  /// Returns a lease on the named session, loading (or reloading) the
  /// graph from its source spec if it is not resident. Bumps the name's
  /// recency and then evicts least-recently-used *other* sessions while
  /// the budget is exceeded.
  StatusOr<std::shared_ptr<engine::GraphSession>> Acquire(
      const std::string& name);

  /// A successful mutation: the session lease plus the exact
  /// (snapshot, epoch) this delta installed — response builders report
  /// it instead of re-reading the session, which a concurrent mutation
  /// may already have moved past.
  struct MutateResult {
    std::shared_ptr<engine::GraphSession> session;
    engine::GraphSession::VersionedSnapshot installed;
    /// The snapshot this delta retired. The catalog also keeps it alive
    /// one mutation deep (Entry::predecessor), so warm solves admitted
    /// against the pre-mutation snapshot can still resolve their warm
    /// state — WarmStateFor matches by snapshot identity through a
    /// weak_ptr, which must not expire the instant the last in-flight
    /// job finishes.
    std::shared_ptr<const engine::GraphSnapshot> predecessor;
  };

  /// \brief Applies `delta` to the named session (loading it first if
  /// needed).
  ///
  /// The byte budget is re-charged with the post-mutation
  /// memory_bytes() — growth can trigger eviction of *other* sessions.
  /// A mutated session is pinned resident: its source spec no longer
  /// describes its contents, so an eviction-reload would silently undo
  /// the mutation. Because the pin makes it unevictable, a mutation is
  /// REJECTED up front when its projected post-delta footprint plus
  /// every other pinned session's charge exceeds the byte budget
  /// (unlike loads, whose overage is evictable and therefore
  /// transient); mutations of one graph serialize, so the projection
  /// always measures the latest snapshot. Unload/Forget still drop it
  /// (explicitly
  /// discarding the mutations; a later Acquire reloads the pristine
  /// source). In-flight jobs pinned to the pre-mutation snapshot are
  /// unaffected.
  StatusOr<MutateResult> Mutate(const std::string& name,
                                const GraphDelta& delta);

  /// Drops the resident session (if any) but keeps the definition; a
  /// later Acquire reloads from the source spec. NotFound for unknown
  /// names.
  Status Unload(const std::string& name);

  /// Removes the definition entirely (dropping any resident session).
  Status Forget(const std::string& name);

  /// Registered names, ascending.
  std::vector<std::string> Names() const;

  CatalogStats stats() const;

  /// True when resident bytes exceed a non-zero budget — the admin
  /// plane's readiness check; transient by design (eviction runs on the
  /// next Acquire).
  bool over_budget() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_.memory_budget_bytes > 0 &&
           resident_bytes_ > options_.memory_budget_bytes;
  }

  std::size_t memory_budget_bytes() const {
    return options_.memory_budget_bytes;
  }

  /// The pool shared by all catalog sessions.
  ThreadPool& pool() const { return *pool_; }

 private:
  struct Entry {
    std::string source;
    std::shared_ptr<engine::GraphSession> session;  // null = not resident
    // One-deep lease on the snapshot the latest Mutate retired; keeps
    // the session's predecessor warm slot resolvable (its weak target
    // stays lockable) until the next mutation or unload.
    std::shared_ptr<const engine::GraphSnapshot> predecessor;
    std::size_t bytes = 0;
    uint64_t last_use = 0;    // catalog tick of the latest Acquire
    uint64_t loads = 0;
    uint64_t generation = 0;  // unique per Define: a loader must not
                              // install into a Forget+re-Define'd entry
                              // that merely reuses the name
    bool loading = false;  // one Acquire is loading; others wait on cv_
    bool mutated = false;  // diverged from source; pinned from eviction
    bool mutating = false;  // one Mutate is rebuilding; others wait on
                            // cv_, and the entry is pinned from
                            // eviction meanwhile
    std::size_t projected_bytes = 0;  // in-flight mutation's projected
                                      // post-delta footprint (budget
                                      // admission for OTHER mutators)
  };

  /// Evicts LRU resident entries (skipping `keep`) until the budget
  /// holds or nothing is evictable. Requires mu_ held.
  void EvictOverBudgetLocked(const std::string& keep);

  const CatalogOptions options_;
  ThreadPool* const pool_;  // process-shared, never owned

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signals loading transitions
  std::map<std::string, Entry> entries_;
  std::size_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
  uint64_t loads_ = 0;
  uint64_t evictions_ = 0;
  uint64_t mutations_ = 0;
  uint64_t next_generation_ = 1;
};

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_CATALOG_H_
