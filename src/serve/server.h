// Line-delimited JSON request/response daemon over loopback TCP
// (DESIGN.md §10).
//
// Transport architecture:
//   - an accept loop takes connections and starts one reader per
//     connection;
//   - readers frame newline-delimited requests and TryPush them onto a
//     bounded admission queue — when the queue is full the reader
//     immediately writes a 429-style {"error":{"code":"over_capacity"}}
//     rejection instead of blocking (explicit backpressure, the client
//     decides whether to retry);
//   - a fixed worker pool pops requests and dispatches them concurrently
//     onto the shared ServeHandler (catalog + cache + engine);
//   - shutdown (Shutdown() or the protocol's "shutdown" op) is graceful:
//     stop accepting, reject new requests, drain the admitted queue,
//     then close connections and join every thread;
//   - with admin_port >= 0 a second HTTP listener (serve/admin.h)
//     exposes /metrics, /healthz, /readyz, /statusz and /flightz, fed by
//     a watchdog thread that samples queue/catalog/cache/session gauges
//     — the admin plane stays up through the drain so health checks see
//     the daemon leave rotation before it disappears.
//
// Responses echo the request's "id" member; pipelined requests on one
// connection may complete out of order (workers run concurrently), so
// clients that pipeline must match on "id".
#ifndef CFCM_SERVE_SERVER_H_
#define CFCM_SERVE_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/watchdog.h"
#include "serve/admin.h"
#include "serve/protocol.h"

namespace cfcm::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";  ///< bind address
  int port = 0;                    ///< 0 = OS-assigned ephemeral port
  int num_workers = 2;             ///< dispatch concurrency (0 = admit-only,
                                   ///< for backpressure tests)
  std::size_t max_queue = 64;      ///< admission queue bound
  std::size_t max_line_bytes = 1 << 20;  ///< request framing limit

  /// SO_SNDTIMEO on every accepted socket: a client that stops reading
  /// its responses cannot wedge a worker (and with it the graceful
  /// drain) forever — the send times out, the response is dropped, the
  /// worker moves on. 0 disables the guard.
  int write_timeout_seconds = 30;

  /// Requests whose total latency (read + queue wait + handling) meets
  /// this threshold are logged at warn level with their op and timing.
  /// 0 disables slow-request logging.
  int64_t slow_request_ms = 0;

  /// Admin diagnostics plane (DESIGN.md §15): second HTTP listen port
  /// for /metrics, /healthz, /readyz, /statusz, /flightz. -1 disables
  /// the plane entirely; 0 binds an ephemeral port (see admin_port()).
  int admin_port = -1;

  /// Queue depth at which /readyz starts answering 503 (the router's
  /// back-off signal, softer than the hard max_queue rejection).
  /// 0 = 3/4 of max_queue.
  std::size_t queue_high_watermark = 0;

  /// Watchdog gauge-sampling period. <= 0 keeps the watchdog passive:
  /// gauges refresh only on /metrics scrapes (deterministic for tests).
  int watchdog_interval_ms = 1000;
};

/// \brief TCP front end over one ServeHandler.
class Server {
 public:
  /// `handler` must outlive the server.
  Server(ServeHandler* handler, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop and workers.
  Status Start();

  /// The bound port (the resolved one when options.port was 0).
  int port() const { return port_; }

  /// The admin plane's bound port; -1 when the plane is disabled.
  int admin_port() const { return admin_ != nullptr ? admin_->port() : -1; }

  /// The effective /readyz queue threshold.
  std::size_t queue_high_watermark() const;

  /// Readiness verdict (the /readyz rule): accepting connections AND
  /// admission queue below the high watermark AND catalog within its
  /// byte budget. Fills *reason with a short token on false.
  bool Ready(std::string* reason);

  /// Fills the /statusz JSON object: build, uptime, config, admission
  /// counters, queue/session/cache state, flight-recorder and SLO
  /// configuration.
  void FillStatusz(JsonValue::Object* status);

  /// Blocks until Shutdown() is called or a worker executes the
  /// protocol's "shutdown" op, then performs the graceful shutdown.
  void Wait();

  /// Graceful stop: stops accepting, drains admitted requests, joins
  /// all threads. Idempotent.
  void Shutdown();

  const AdmissionStats& stats() const { return stats_; }

 private:
  // One client connection: the socket plus a write lock so concurrent
  // workers never interleave response bytes.
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mu;
  };
  struct Task {
    std::shared_ptr<Connection> connection;
    std::string line;
    int64_t read_ns = 0;      ///< duration of the recv that completed it
    int64_t enqueued_ns = 0;  ///< MonotonicNanos() at admission
  };

  void AcceptLoop();
  void ReadConnection(std::shared_ptr<Connection> connection);
  void WorkerLoop();
  /// Watchdog sampler: queue/worker/catalog/cache/session gauges.
  void SampleGauges();
  /// Serializes `response` and writes it plus '\n' (SIGPIPE-safe).
  static void WriteResponse(Connection& connection, const JsonValue& response);

  ServeHandler* const handler_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<AdminPlane> admin_;

  std::mutex mu_;
  std::condition_variable queue_cv_;     // workers wait for tasks
  std::condition_variable drained_cv_;   // shutdown waits for drain
  std::condition_variable shutdown_cv_;  // Wait() waits for the signal
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;
  // Reader threads are detached (a long-lived daemon must not accumulate
  // one joinable thread handle per connection ever accepted); this
  // shared block counts the live ones. It is captured by shared_ptr in
  // every reader, so the final decrement can never touch a destroyed
  // Server.
  struct ReaderSync {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t active = 0;
  };
  const std::shared_ptr<ReaderSync> reader_sync_ =
      std::make_shared<ReaderSync>();
  std::vector<std::weak_ptr<Connection>> connections_;
  bool stopping_ = false;       // no new connections / admissions
  bool workers_stop_ = false;   // workers exit once the queue is empty
  bool shutdown_signal_ = false;
  bool started_ = false;
  bool finished_ = false;

  AdmissionStats stats_;
};

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_SERVER_H_
