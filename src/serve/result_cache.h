// Deterministic solve-result cache for the serving layer (DESIGN.md §10).
//
// Exact-hit caching is sound because every registered solver is bitwise
// deterministic per seed (DESIGN.md §9): the tuple
// (graph fingerprint, algorithm, k, eps, seed) fully determines the
// selected group and its score, so a cached entry can be replayed
// without re-running the solver and without any staleness protocol —
// graphs are immutable and content-addressed by fingerprint.
#ifndef CFCM_SERVE_RESULT_CACHE_H_
#define CFCM_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"

namespace cfcm::serve {

/// Identity of one solve: the graph content plus every input that can
/// change the (deterministic) output. Selection mode is part of the
/// identity even though lazy and exhaustive are pinned to the same
/// groups on the regression suite: their work counters (and, off the
/// pinned graphs, conceivably the groups) differ, and a cache must
/// never conflate two request shapes that the engine treats as inputs.
struct ResultCacheKey {
  uint64_t fingerprint = 0;  ///< GraphSession::fingerprint()
  std::string algorithm;
  int k = 0;
  double eps = 0.0;  ///< compared exactly (requests carry literal eps)
  uint64_t seed = 0;
  SelectionMode selection = SelectionMode::kLazy;
  /// Requested kernel (DESIGN.md §14): backends agree only to tolerance,
  /// so results computed under different backends never alias.
  SolverBackend solver_backend = SolverBackend::kAuto;

  bool operator==(const ResultCacheKey&) const = default;
};

/// Monotonic counters surfaced in server responses and `stats`.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;  ///< currently resident
  uint64_t capacity = 0;
  int shards = 0;
};

/// \brief Sharded, bounded LRU over SolveJobResult.
///
/// Keys hash to one of `num_shards` independent LRU lists, each with its
/// own mutex, so concurrent request workers rarely contend. Capacity is
/// divided evenly across shards (rounded up); each shard evicts its own
/// least-recently-used entry when full. Thread-safe.
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity = 1024, int num_shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result and refreshes its recency, or nullopt.
  /// Counts one hit or one miss.
  std::optional<engine::SolveJobResult> Lookup(const ResultCacheKey& key);

  /// Inserts (or refreshes) `result` under `key`, evicting the shard's
  /// LRU entry if the shard is full.
  void Insert(const ResultCacheKey& key, const engine::SolveJobResult& result);

  /// Drops every entry (counters are preserved).
  void Clear();

  ResultCacheStats stats() const;

 private:
  struct Entry {
    ResultCacheKey key;
    engine::SolveJobResult result;
  };
  struct KeyHash {
    std::size_t operator()(const ResultCacheKey& key) const;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<ResultCacheKey, std::list<Entry>::iterator, KeyHash>
        index;
  };

  Shard& ShardFor(const ResultCacheKey& key);

  const std::size_t shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_RESULT_CACHE_H_
