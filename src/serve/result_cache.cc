#include "serve/result_cache.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"

namespace cfcm::serve {
namespace {

// Process-wide mirrors of the per-instance counters. The instance
// atomics keep each cache's own story (unit tests, multiple caches);
// the registry copies are what `stats`/`metrics` snapshot coherently.
obs::Counter& CacheHits() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("serve.cache.hits");
  return *c;
}
obs::Counter& CacheMisses() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("serve.cache.misses");
  return *c;
}
obs::Counter& CacheEvictions() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("serve.cache.evictions");
  return *c;
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::size_t ResultCache::KeyHash::operator()(const ResultCacheKey& key) const {
  uint64_t hash = kFnvOffset;
  hash = FnvMix(hash, &key.fingerprint, sizeof(key.fingerprint));
  hash = FnvMix(hash, key.algorithm.data(), key.algorithm.size());
  hash = FnvMix(hash, &key.k, sizeof(key.k));
  const uint64_t eps_bits = std::bit_cast<uint64_t>(key.eps);
  hash = FnvMix(hash, &eps_bits, sizeof(eps_bits));
  hash = FnvMix(hash, &key.seed, sizeof(key.seed));
  const int selection = static_cast<int>(key.selection);
  hash = FnvMix(hash, &selection, sizeof(selection));
  const int backend = static_cast<int>(key.solver_backend);
  hash = FnvMix(hash, &backend, sizeof(backend));
  return static_cast<std::size_t>(hash);
}

ResultCache::ResultCache(std::size_t capacity, int num_shards)
    : shard_capacity_(std::max<std::size_t>(
          1, (std::max<std::size_t>(1, capacity) +
              static_cast<std::size_t>(std::max(1, num_shards)) - 1) /
                 static_cast<std::size_t>(std::max(1, num_shards)))),
      shards_(static_cast<std::size_t>(std::max(1, num_shards))) {}

ResultCache::Shard& ResultCache::ShardFor(const ResultCacheKey& key) {
  return shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<engine::SolveJobResult> ResultCache::Lookup(
    const ResultCacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheMisses().Add(1);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  CacheHits().Add(1);
  return it->second->result;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         const engine::SolveJobResult& result) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->result = result;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheEvictions().Add(1);
  }
  shard.lru.push_front(Entry{key, result});
  shard.index.emplace(key, shard.lru.begin());
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.lru.size();
  }
  stats.capacity = shard_capacity_ * shards_.size();
  stats.shards = static_cast<int>(shards_.size());
  return stats;
}

}  // namespace cfcm::serve
