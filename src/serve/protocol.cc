#include "serve/protocol.h"

#include <cstdio>
#include <limits>
#include <optional>
#include <utility>
#include <variant>

#include "common/build_info.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace cfcm::serve {
namespace {

// Pulls an integer field with bounds [lo, hi]; `fallback` when absent.
// Requires an exact JSON integer: a double-stored number would reach
// as_int() through a float->int cast that is UB outside int64 range
// (1e300) and silently truncating inside it (3.7 -> 3).
StatusOr<int64_t> GetInt(const JsonValue& request, const std::string& key,
                         int64_t fallback, int64_t lo, int64_t hi) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_int()) {
    return Status::InvalidArgument("'" + key + "' must be an integer");
  }
  const int64_t value = field->as_int();
  if (value < lo || value > hi) {
    return Status::InvalidArgument("'" + key + "' out of range");
  }
  return value;
}

StatusOr<std::string> GetString(const JsonValue& request,
                                const std::string& key) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr || !field->is_string() || field->as_string().empty()) {
    return Status::InvalidArgument("request needs a non-empty string '" + key +
                                   "'");
  }
  return field->as_string();
}

JsonValue::Array GroupToJson(const std::vector<NodeId>& group) {
  JsonValue::Array array;
  array.reserve(group.size());
  for (NodeId u : group) array.emplace_back(static_cast<int64_t>(u));
  return array;
}

// A wire node id must fit NodeId exactly — a silent int64 -> int32 (or
// 0.9 -> 0) truncation would address a DIFFERENT, valid node or edge.
// Requiring the codec's exact-int64 storage also keeps huge doubles
// (1e300) away from any UB float->int cast.
StatusOr<NodeId> GetNodeId(const JsonValue& value, const std::string& field) {
  if (!value.is_int() || value.as_int() < 0 ||
      value.as_int() > std::numeric_limits<NodeId>::max()) {
    return Status::InvalidArgument(
        "'" + field + "' node ids must be integers in [0, " +
        std::to_string(std::numeric_limits<NodeId>::max()) + "]");
  }
  return static_cast<NodeId>(value.as_int());
}

// Optional "solver_backend" field (DESIGN.md §14); absent = auto.
StatusOr<SolverBackend> GetSolverBackend(const JsonValue& request) {
  const JsonValue* field = request.Find("solver_backend");
  if (field == nullptr) return SolverBackend::kAuto;
  if (field->is_string()) {
    if (const std::optional<SolverBackend> parsed =
            ParseSolverBackend(field->as_string())) {
      return *parsed;
    }
  }
  return Status::InvalidArgument(
      "'solver_backend' must be one of \"auto\", \"dense\" (alias "
      "\"full\"), \"sparse_ldlt\", \"cg\"");
}

StatusOr<std::vector<NodeId>> GetGroup(const JsonValue& request) {
  const JsonValue* field = request.Find("group");
  if (field == nullptr || !field->is_array()) {
    return Status::InvalidArgument("'group' must be an array of node ids");
  }
  std::vector<NodeId> group;
  group.reserve(field->array().size());
  for (const JsonValue& member : field->array()) {
    StatusOr<NodeId> id = GetNodeId(member, "group");
    if (!id.ok()) return id.status();
    group.push_back(*id);
  }
  return group;
}

// Edge-tuple lists for the mutate op: each element is [u, v] or
// [u, v, w]. `arity` fixes the accepted lengths — removals take no
// weight, reweights require one, additions accept either (default 1).
enum class EdgeArity { kPair, kPairOrWeighted, kWeighted };

StatusOr<std::vector<GraphDelta::Edge>> GetEdgeList(const JsonValue& request,
                                                    const std::string& key,
                                                    EdgeArity arity) {
  std::vector<GraphDelta::Edge> edges;
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return edges;
  if (!field->is_array()) {
    return Status::InvalidArgument("'" + key +
                                   "' must be an array of [u,v] / [u,v,w]");
  }
  for (const JsonValue& member : field->array()) {
    if (!member.is_array()) {
      return Status::InvalidArgument("'" + key +
                                     "' entries must be arrays");
    }
    const JsonValue::Array& tuple = member.array();
    const bool pair_ok = arity != EdgeArity::kWeighted && tuple.size() == 2;
    const bool weighted_ok =
        arity != EdgeArity::kPair && tuple.size() == 3;
    if (!pair_ok && !weighted_ok) {
      return Status::InvalidArgument(
          "'" + key + "' entries must have " +
          (arity == EdgeArity::kPair
               ? std::string("2")
               : arity == EdgeArity::kWeighted ? std::string("3")
                                               : std::string("2 or 3")) +
          " elements");
    }
    GraphDelta::Edge edge;
    StatusOr<NodeId> u = GetNodeId(tuple[0], key);
    if (!u.ok()) return u.status();
    StatusOr<NodeId> v = GetNodeId(tuple[1], key);
    if (!v.ok()) return v.status();
    edge.u = *u;
    edge.v = *v;
    if (tuple.size() == 3) {
      if (!tuple[2].is_number()) {
        return Status::InvalidArgument("'" + key +
                                       "' weights must be numbers");
      }
      edge.weight = tuple[2].as_double();
    }
    edges.push_back(edge);
  }
  return edges;
}

// Graph identity block shared by load / mutate / augment responses,
// built from ONE (snapshot, epoch) pair so the fields are mutually
// consistent even while mutations land concurrently.
void AppendSessionSummary(const engine::GraphSession::VersionedSnapshot& pinned,
                          JsonValue::Object* response) {
  const engine::GraphSnapshot& snapshot = *pinned.snapshot;
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                static_cast<unsigned long long>(snapshot.fingerprint()));
  (*response)["nodes"] = static_cast<int64_t>(snapshot.num_nodes());
  (*response)["edges"] = static_cast<int64_t>(snapshot.num_edges());
  (*response)["weighted"] = !snapshot.graph().is_unit_weighted();
  (*response)["connected"] = snapshot.is_connected();
  (*response)["bytes"] = static_cast<int64_t>(snapshot.memory_bytes());
  (*response)["fingerprint"] = std::string(fingerprint);
  (*response)["epoch"] = static_cast<int64_t>(pinned.epoch);
}

void EchoId(const JsonValue& request, JsonValue::Object* response) {
  if (const JsonValue* id = request.Find("id")) (*response)["id"] = *id;
  // A request-supplied trace id is echoed like "id" (a traced request
  // already wrote its own — possibly generated — trace_id; don't clobber
  // it).
  if (response->find("trace_id") == response->end()) {
    const JsonValue* trace_id = request.Find("trace_id");
    if (trace_id != nullptr && trace_id->is_string()) {
      (*response)["trace_id"] = *trace_id;
    }
  }
}

JsonValue OkResponse(JsonValue::Object fields) {
  fields["status"] = "ok";
  return JsonValue(std::move(fields));
}

JsonValue ErrorResponseFor(const JsonValue& request, const Status& status) {
  JsonValue::Object response;
  response["status"] = "error";
  response["error"] = StatusToJsonError(status);
  EchoId(request, &response);
  return JsonValue(std::move(response));
}

// Always-on per-op instrumentation, resolved once per op per process so
// the request hot path never takes the registry mutex.
struct OpMetrics {
  obs::Counter* requests;
  obs::Counter* errors;
  obs::LatencyHistogram* latency_us;
};

OpMetrics ResolveOpMetrics(const char* op) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix = std::string("serve.") + op;
  return OpMetrics{&registry.counter(prefix + ".requests"),
                   &registry.counter(prefix + ".errors"),
                   &registry.histogram(prefix + ".latency_us")};
}

const OpMetrics& MetricsFor(const std::string& op) {
  if (op == "solve") {
    static const OpMetrics m = ResolveOpMetrics("solve");
    return m;
  }
  if (op == "evaluate") {
    static const OpMetrics m = ResolveOpMetrics("evaluate");
    return m;
  }
  if (op == "mutate") {
    static const OpMetrics m = ResolveOpMetrics("mutate");
    return m;
  }
  if (op == "augment") {
    static const OpMetrics m = ResolveOpMetrics("augment");
    return m;
  }
  if (op == "load") {
    static const OpMetrics m = ResolveOpMetrics("load");
    return m;
  }
  if (op == "unload") {
    static const OpMetrics m = ResolveOpMetrics("unload");
    return m;
  }
  if (op == "stats") {
    static const OpMetrics m = ResolveOpMetrics("stats");
    return m;
  }
  if (op == "metrics") {
    static const OpMetrics m = ResolveOpMetrics("metrics");
    return m;
  }
  if (op == "shutdown") {
    static const OpMetrics m = ResolveOpMetrics("shutdown");
    return m;
  }
  static const OpMetrics m = ResolveOpMetrics("other");
  return m;
}

// {"count","mean_us","p50_us","p95_us","p99_us","max_us"} for the stats
// latency block; pure function of one histogram snapshot.
JsonValue PercentilesJson(const obs::LatencyHistogram::Snapshot& h) {
  return JsonValue(JsonValue::Object{
      {"count", static_cast<int64_t>(h.count)},
      {"mean_us", h.Mean()},
      {"p50_us", h.Percentile(0.50)},
      {"p95_us", h.Percentile(0.95)},
      {"p99_us", h.Percentile(0.99)},
      {"max_us", h.max},
  });
}

// Full histogram rendering for the metrics op: percentiles plus the
// occupied [upper_edge, count] buckets.
JsonValue HistogramJson(const obs::LatencyHistogram::Snapshot& h) {
  JsonValue::Array buckets;
  for (int b = 0; b < obs::LatencyHistogram::kBuckets; ++b) {
    const uint64_t in_bucket = h.buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    const int64_t edge =
        b == 0 ? 0 : static_cast<int64_t>((uint64_t{1} << b) - 1);
    buckets.push_back(JsonValue(JsonValue::Array{
        JsonValue(edge), JsonValue(static_cast<int64_t>(in_bucket))}));
  }
  return JsonValue(JsonValue::Object{
      {"count", static_cast<int64_t>(h.count)},
      {"sum", h.sum},
      {"max", h.max},
      {"mean", h.Mean()},
      {"p50", h.Percentile(0.50)},
      {"p95", h.Percentile(0.95)},
      {"p99", h.Percentile(0.99)},
      {"buckets", JsonValue(std::move(buckets))},
  });
}

uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      std::string_view name) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return v;
  }
  return 0;
}

// Renders the collected spans into the response. `pre_ns` is the time
// spent before the context existed (socket read + queue wait + parse),
// already present as AddSpan entries — it extends total_us, which spans
// are compared against, so "span sum ≈ total" holds across the whole
// request.
void AttachTrace(const obs::TraceContext& trace, int64_t pre_ns,
                 JsonValue::Object* response) {
  (*response)["trace_id"] = trace.trace_id();
  JsonValue::Array spans;
  for (const obs::TraceSpan& span : trace.spans()) {
    JsonValue::Object entry{
        {"name", span.name},
        {"start_us", span.start_ns / 1000},
        {"duration_us",
         (span.duration_ns < 0 ? int64_t{0} : span.duration_ns) / 1000},
    };
    for (const auto& [key, value] : span.annotations) entry[key] = value;
    spans.push_back(JsonValue(std::move(entry)));
  }
  (*response)["trace"] = JsonValue(JsonValue::Object{
      {"total_us", (pre_ns + trace.ElapsedNs()) / 1000},
      {"span_total_us", trace.SpanTotalNs() / 1000},
      {"spans", JsonValue(std::move(spans))},
  });
}

}  // namespace

std::string StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

JsonValue StatusToJsonError(const Status& status) {
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  return JsonValue(std::move(error));
}

JsonValue MakeErrorResponse(const Status& status, const JsonValue* id) {
  JsonValue::Object response;
  response["status"] = "error";
  response["error"] = StatusToJsonError(status);
  if (id != nullptr) response["id"] = *id;
  return JsonValue(std::move(response));
}

JsonValue MakeOverCapacityResponse() {
  return JsonValue(JsonValue::Object{
      {"status", "error"},
      {"error",
       JsonValue(JsonValue::Object{
           {"code", "over_capacity"},
           {"message", "admission queue full; retry later (429)"},
       })},
  });
}

ServeHandler::ServeHandler(HandlerOptions options)
    : options_(std::move(options)),
      catalog_(options_.catalog),
      cache_(options_.cache_capacity, options_.cache_shards) {
  if (options_.flight_capacity > 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(obs::FlightRecorder::
        Options{options_.flight_capacity, options_.flight_pinned_capacity,
                options_.flight_slow_us});
  }
  if (!options_.slo.empty()) {
    slo_ = std::make_unique<obs::SloTracker>(options_.slo);
  }
  // Anchor process uptime at handler construction so the stats op and
  // /statusz report sensible uptime even before the first watchdog tick.
  obs::ProcessStartMonoNs();
}

JsonValue ServeHandler::HandleLine(std::string_view line) {
  return HandleLine(line, RequestInfo{}, nullptr);
}

JsonValue ServeHandler::HandleLine(std::string_view line,
                                   const RequestInfo& info,
                                   RequestOutcome* outcome) {
  Timer parse_timer;
  StatusOr<JsonValue> request = JsonValue::Parse(line);
  RequestInfo timed = info;
  timed.parse_ns += parse_timer.Nanos();
  if (!request.ok()) {
    if (outcome != nullptr) {
      outcome->ok = false;
      outcome->error_code = StatusCodeName(request.status().code());
    }
    return MakeErrorResponse(request.status(), nullptr);
  }
  return Handle(*request, timed, outcome);
}

JsonValue ServeHandler::Handle(const JsonValue& request) {
  return Handle(request, RequestInfo{}, nullptr);
}

JsonValue ServeHandler::Handle(const JsonValue& request,
                               const RequestInfo& info,
                               RequestOutcome* outcome) {
  if (!request.is_object()) {
    if (outcome != nullptr) {
      outcome->ok = false;
      outcome->error_code = "invalid_argument";
    }
    return MakeErrorResponse(
        Status::InvalidArgument("request must be a JSON object"), nullptr);
  }
  StatusOr<std::string> op = GetString(request, "op");
  if (!op.ok()) {
    if (outcome != nullptr) {
      outcome->ok = false;
      outcome->error_code = StatusCodeName(op.status().code());
    }
    return ErrorResponseFor(request, op.status());
  }

  // Opt-in tracing: spans only materialize in the RESPONSE when the
  // request asks. The flight recorder keeps an internal trace for every
  // request (it wants span timings) without ever attaching it — the
  // response bytes are identical whether the recorder is on or off,
  // which preserves the §11 byte-identical cache-hit contract. The
  // always-on path below (histogram + counters + flight commit) is the
  // one priced by the ≤2% overhead budget; the metrics kill switch
  // disables the flight trace too.
  const int64_t pre_ns = info.read_ns + info.queue_wait_ns + info.parse_ns;
  const JsonValue* trace_field = request.Find("trace");
  const bool want_trace = trace_field != nullptr && trace_field->is_bool() &&
                          trace_field->as_bool();
  const bool flight_on = flight_ != nullptr && obs::MetricsEnabled();
  std::optional<obs::TraceContext> trace;
  if (want_trace || flight_on) {
    trace.emplace();
    if (const JsonValue* id = request.Find("trace_id");
        id != nullptr && id->is_string()) {
      trace->set_trace_id(id->as_string());
    }
    // Transport phases finished before this context existed; place them
    // before its epoch so span offsets reflect the real timeline.
    if (info.read_ns > 0) trace->AddSpan("read", -pre_ns, info.read_ns);
    if (info.queue_wait_ns > 0) {
      trace->AddSpan("queue_wait", -(info.queue_wait_ns + info.parse_ns),
                     info.queue_wait_ns);
    }
    if (info.parse_ns > 0) trace->AddSpan("parse", -info.parse_ns,
                                          info.parse_ns);
  }
  obs::TraceContext* trace_ptr = trace.has_value() ? &*trace : nullptr;
  obs::FlightRecord record{};
  obs::FlightRecord* record_ptr = flight_on ? &record : nullptr;

  Timer timer;
  JsonValue response = [&]() -> JsonValue {
    if (*op == "load") return HandleLoad(request, trace_ptr, record_ptr);
    if (*op == "unload") return HandleUnload(request);
    if (*op == "solve") return HandleSolve(request, trace_ptr, record_ptr);
    if (*op == "evaluate") {
      return HandleEvaluate(request, trace_ptr, record_ptr);
    }
    if (*op == "mutate") return HandleMutate(request, trace_ptr, record_ptr);
    if (*op == "augment") return HandleAugment(request, trace_ptr, record_ptr);
    if (*op == "stats") return HandleStats();
    if (*op == "metrics") return HandleMetrics(request);
    if (*op == "flightz") return HandleFlightz(request);
    if (*op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      return OkResponse({{"op", "shutdown"}});
    }
    return ErrorResponseFor(
        request,
        Status::InvalidArgument(
            "unknown op '" + *op +
            "' (expected load/unload/solve/evaluate/mutate/augment/stats/"
            "metrics/flightz/shutdown)"));
  }();

  // Whole-request latency: transport phases plus the handler itself.
  const int64_t total_us = pre_ns / 1000 + timer.Micros();
  const OpMetrics& metrics = MetricsFor(*op);
  metrics.requests->Add(1);
  metrics.latency_us->Record(total_us);

  const JsonValue* status = response.is_object() ? response.Find("status")
                                                 : nullptr;
  const bool ok = status != nullptr && status->is_string() &&
                  status->as_string() == "ok";
  if (!ok) metrics.errors->Add(1);
  std::string error_code;
  if (!ok) {
    const JsonValue* error = response.is_object() ? response.Find("error")
                                                  : nullptr;
    const JsonValue* code =
        error != nullptr && error->is_object() ? error->Find("code")
                                               : nullptr;
    if (code != nullptr && code->is_string()) error_code = code->as_string();
  }
  if (slo_ != nullptr) slo_->Record(*op, total_us, ok);

  if (record_ptr != nullptr) {
    record.set_op(*op);
    if (const JsonValue* graph = request.Find("graph");
        graph != nullptr && graph->is_string()) {
      record.set_graph(graph->as_string());
    }
    record.ok = ok ? 1 : 0;
    if (!ok) record.set_error_code(error_code);
    record.latency_us = total_us;
    record.queue_wait_us = info.queue_wait_ns / 1000;
    if (trace_ptr != nullptr) {
      record.set_trace_id(trace_ptr->trace_id());
      for (const obs::TraceSpan& span : trace_ptr->spans()) {
        if (span.nested) continue;
        record.AddSpan(span.name,
                       (span.duration_ns < 0 ? 0 : span.duration_ns) / 1000);
      }
    }
    flight_->Commit(record);
  }

  // Only a request that asked for tracing gets the trace (and its id)
  // echoed — the flight recorder's internal trace must not change a
  // single response byte.
  if (want_trace && trace_ptr != nullptr && response.is_object()) {
    AttachTrace(*trace_ptr, pre_ns, &response.object());
  }
  if (response.is_object()) EchoId(request, &response.object());

  if (outcome != nullptr) {
    outcome->op = *op;
    outcome->ok = ok;
    if (!ok) outcome->error_code = error_code;
    if (trace_ptr != nullptr) outcome->trace_id = trace_ptr->trace_id();
  }
  return response;
}

JsonValue ServeHandler::HandleLoad(const JsonValue& request,
                                   obs::TraceContext* trace,
                                   obs::FlightRecord* record) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<std::string> source = GetString(request, "source");
  if (!source.ok()) return ErrorResponseFor(request, source.status());

  Status defined = catalog_.Define(*name, *source);
  if (!defined.ok()) return ErrorResponseFor(request, defined);
  // Acquire eagerly so load errors surface on the load response, not on
  // the first solve.
  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("load_graph");
  auto session = catalog_.Acquire(*name);
  if (trace != nullptr) trace->EndSpan(span);
  if (!session.ok()) {
    // A bad source would poison every future Acquire; drop it again.
    (void)catalog_.Forget(*name);
    return ErrorResponseFor(request, session.status());
  }
  JsonValue::Object response{{"op", "load"}, {"graph", *name}};
  const engine::GraphSession::VersionedSnapshot pinned =
      (*session)->versioned_snapshot();
  if (record != nullptr) record->epoch = pinned.epoch;
  AppendSessionSummary(pinned, &response);
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleUnload(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  Status forgotten = catalog_.Forget(*name);
  if (!forgotten.ok()) return ErrorResponseFor(request, forgotten);
  return OkResponse({{"op", "unload"}, {"graph", *name}});
}

JsonValue ServeHandler::HandleSolve(const JsonValue& request,
                                    obs::TraceContext* trace,
                                    obs::FlightRecord* record) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<int64_t> k = GetInt(request, "k", 1, 1, 1'000'000'000);
  if (!k.ok()) return ErrorResponseFor(request, k.status());
  StatusOr<int64_t> seed = GetInt(request, "seed", 1, 0, INT64_MAX);
  if (!seed.ok()) return ErrorResponseFor(request, seed.status());

  std::string algorithm = "forest";
  if (const JsonValue* field = request.Find("algorithm")) {
    if (!field->is_string()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'algorithm' must be a string"));
    }
    algorithm = field->as_string();
  }
  double eps = 0.2;
  if (const JsonValue* field = request.Find("eps")) {
    if (!field->is_number()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'eps' must be a number"));
    }
    eps = field->as_double();
    if (!(eps > 0.0) || eps > 1.0) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'eps' must be in (0, 1]"));
    }
  }
  SelectionMode selection = SelectionMode::kLazy;
  if (const JsonValue* field = request.Find("selection")) {
    const std::optional<SelectionMode> parsed =
        field->is_string() ? ParseSelectionMode(field->as_string())
                           : std::nullopt;
    if (!parsed.has_value()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument(
                       "'selection' must be \"lazy\" or \"exhaustive\""));
    }
    selection = *parsed;
  }
  StatusOr<SolverBackend> backend = GetSolverBackend(request);
  if (!backend.ok()) return ErrorResponseFor(request, backend.status());

  // Warm-start policy (DESIGN.md §16): "warm" is a bool (true = on,
  // false = off) or one of "auto"/"on"/"off". Default off — warm
  // results depend on the session's mutation history.
  cfcm::WarmMode warm_mode = cfcm::WarmMode::kOff;
  if (const JsonValue* field = request.Find("warm")) {
    if (field->is_bool()) {
      warm_mode = field->as_bool() ? cfcm::WarmMode::kOn : cfcm::WarmMode::kOff;
    } else if (field->is_string()) {
      const std::optional<cfcm::WarmMode> parsed =
          cfcm::ParseWarmMode(field->as_string());
      if (!parsed.has_value()) {
        return ErrorResponseFor(
            request, Status::InvalidArgument(
                         "'warm' must be a boolean or \"auto\"/\"on\"/"
                         "\"off\""));
      }
      warm_mode = *parsed;
    } else {
      return ErrorResponseFor(
          request, Status::InvalidArgument(
                       "'warm' must be a boolean or \"auto\"/\"on\"/\"off\""));
    }
  }
  // Staleness-tolerant cache mode: {"staleness":{"max_epochs":E}} lets
  // a miss answer from a ≤E-epoch-old cached entry, with the composed
  // Loewner bound of the intervening (reweight-only) deltas attached.
  int64_t max_stale_epochs = 0;
  if (const JsonValue* field = request.Find("staleness")) {
    if (!field->is_object()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument(
                       "'staleness' must be an object {\"max_epochs\":E}"));
    }
    StatusOr<int64_t> max_epochs = GetInt(*field, "max_epochs", 0, 0, 64);
    if (!max_epochs.ok()) return ErrorResponseFor(request, max_epochs.status());
    max_stale_epochs = *max_epochs;
  }

  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("acquire");
  auto session = catalog_.Acquire(*name);
  if (trace != nullptr) trace->EndSpan(span);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  // Pin ONE snapshot for the whole request: the cache key's fingerprint
  // and the solve computation are guaranteed to describe the same graph
  // version even if a mutate lands mid-request — the cache-soundness
  // invariant under mutation (DESIGN.md §11). The "cache_lookup" span
  // covers the pin, the (lazily computed) fingerprint, and the probe.
  if (trace != nullptr) span = trace->BeginSpan("cache_lookup");
  const engine::GraphSession::VersionedSnapshot pinned =
      (*session)->versioned_snapshot();
  const std::shared_ptr<const engine::GraphSnapshot>& snapshot =
      pinned.snapshot;
  if (record != nullptr) record->epoch = pinned.epoch;
  const ResultCacheKey key{snapshot->fingerprint(), algorithm,
                           static_cast<int>(*k), eps,
                           static_cast<uint64_t>(*seed), selection,
                           *backend};
  std::string cache_state = "hit";
  std::optional<engine::SolveJobResult> solve = cache_.Lookup(key);
  if (trace != nullptr) {
    trace->Annotate("hit", solve.has_value() ? 1 : 0);
    trace->EndSpan(span);
  }

  // Stale-tolerant answer: on a miss, walk the session's epoch history
  // for a ≤max_epochs-old cached entry reachable through boundable
  // (reweight-only) transitions, composing the Loewner factors
  // C' ∈ [a·C, b·C] along the way (DESIGN.md §16).
  int64_t stale_depth = 0;
  double stale_lo = 1.0;
  double stale_hi = 1.0;
  if (!solve.has_value() && max_stale_epochs > 0) {
    const std::vector<engine::GraphSession::EpochRecord> history =
        (*session)->EpochHistory();
    double lo = 1.0;
    double hi = 1.0;
    uint64_t epoch_cursor = pinned.epoch;
    for (int64_t depth = 1; depth <= max_stale_epochs && epoch_cursor > 0;
         ++depth, --epoch_cursor) {
      const engine::GraphSession::EpochRecord* rec = nullptr;
      for (const auto& r : history) {
        if (r.epoch == epoch_cursor) {
          rec = &r;
          break;
        }
      }
      if (rec == nullptr || !rec->boundable) break;
      lo *= rec->cfcc_lo;
      hi *= rec->cfcc_hi;
      ResultCacheKey ancestor_key{rec->parent_fingerprint, algorithm,
                                  static_cast<int>(*k), eps,
                                  static_cast<uint64_t>(*seed), selection,
                                  *backend};
      std::optional<engine::SolveJobResult> stale =
          cache_.Lookup(ancestor_key);
      if (stale.has_value()) {
        solve = std::move(stale);
        cache_state = "stale";
        stale_depth = depth;
        stale_lo = lo;
        stale_hi = hi;
        break;
      }
    }
  }

  if (!solve.has_value()) {
    cache_state = "miss";
    engine::Engine engine{*session, options_.engine};
    engine::SolveJob job;
    job.algorithm = algorithm;
    job.k = static_cast<int>(*k);
    job.eps = eps;
    job.seed = static_cast<uint64_t>(*seed);
    job.selection = selection;
    job.solver_backend = *backend;
    job.warm = warm_mode;
    StatusOr<engine::JobResult> result = engine.Run(job, snapshot, trace);
    if (!result.ok()) return ErrorResponseFor(request, result.status());
    solve = std::get<engine::SolveJobResult>(std::move(*result));
    // A warm result depends on the session's mutation history, not just
    // the cache key — caching it would let it answer cold requests for
    // the same (fingerprint, params). Only cold results are cacheable.
    if (!solve->output.warm_started) {
      if (trace != nullptr) span = trace->BeginSpan("commit");
      cache_.Insert(key, *solve);
      if (trace != nullptr) trace->EndSpan(span);
    }
  }

  JsonValue::Object response{
      {"op", "solve"},
      {"graph", *name},
      {"algorithm", algorithm},
      {"k", *k},
      {"eps", eps},
      {"seed", *seed},
      {"cache", cache_state},
      // "selection" (the chosen group) predates the mode field; the
      // strategy rides alongside as "selection_mode".
      {"selection", JsonValue(GroupToJson(solve->output.selected))},
      {"selection_mode", SelectionModeName(selection)},
      // Resolved exact kernel; empty when the algorithm never ran exact
      // algebra (pure samplers / heuristics).
      {"solver_backend", solve->output.solver_backend},
      {"cfcc", solve->cfcc},
      {"forests", solve->output.total_forests},
      {"walk_steps", solve->output.total_walk_steps},
      {"rescored_candidates", solve->output.rescored_candidates},
      {"forests_reused", solve->output.forests_reused},
      // Incremental warm-start diagnostics (DESIGN.md §16).
      {"warm", cfcm::WarmModeName(warm_mode)},
      {"warm_started", solve->output.warm_started},
      {"cold_fallback", solve->output.cold_fallback},
      {"forests_resampled", solve->output.forests_resampled},
      {"swap_moves", solve->output.swap_moves},
      // Solver cost of the result; on a hit this is the original solve's
      // time, not this request's latency.
      {"seconds", solve->output.seconds},
  };
  if (cache_state == "stale") {
    // The answer describes an ancestor graph; the composed factors
    // bound the current C(S) of ITS group: C' ∈ [lo·C, hi·C].
    response["staleness"] = JsonValue(JsonValue::Object{
        {"epochs", stale_depth},
        {"cfcc_lo_factor", stale_lo},
        {"cfcc_hi_factor", stale_hi},
        {"cfcc_lo", stale_lo * solve->cfcc},
        {"cfcc_hi", stale_hi * solve->cfcc},
    });
  }
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleEvaluate(const JsonValue& request,
                                       obs::TraceContext* trace,
                                       obs::FlightRecord* record) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<int64_t> probes = GetInt(request, "probes", 0, 0, 1'000'000);
  if (!probes.ok()) return ErrorResponseFor(request, probes.status());
  StatusOr<int64_t> seed = GetInt(request, "seed", 1, 0, INT64_MAX);
  if (!seed.ok()) return ErrorResponseFor(request, seed.status());

  StatusOr<std::vector<NodeId>> group = GetGroup(request);
  if (!group.ok()) return ErrorResponseFor(request, group.status());
  StatusOr<SolverBackend> backend = GetSolverBackend(request);
  if (!backend.ok()) return ErrorResponseFor(request, backend.status());

  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("acquire");
  auto session = catalog_.Acquire(*name);
  if (trace != nullptr) trace->EndSpan(span);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  engine::Engine engine{*session, options_.engine};
  engine::EvaluateJob job;
  job.group = std::move(*group);
  job.probes = static_cast<int>(*probes);
  job.seed = static_cast<uint64_t>(*seed);
  job.solver_backend = *backend;
  const engine::GraphSession::VersionedSnapshot pinned =
      (*session)->versioned_snapshot();
  if (record != nullptr) record->epoch = pinned.epoch;
  StatusOr<engine::JobResult> result = engine.Run(job, pinned.snapshot, trace);
  if (!result.ok()) return ErrorResponseFor(request, result.status());
  const auto& eval = std::get<engine::EvaluateJobResult>(*result);

  return OkResponse({
      {"op", "evaluate"},
      {"graph", *name},
      {"cfcc", eval.cfcc},
      {"trace", eval.trace},
      {"trace_std_error", eval.trace_std_error},
      {"solver_backend", eval.solver_backend},
  });
}

JsonValue ServeHandler::HandleMutate(const JsonValue& request,
                                     obs::TraceContext* trace,
                                     obs::FlightRecord* record) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  // Bounded per request: node additions allocate CSR arrays up front,
  // before the catalog's post-mutation byte re-charge can evict.
  StatusOr<int64_t> add_nodes =
      GetInt(request, "add_nodes", 0, 0, 1'000'000);
  if (!add_nodes.ok()) return ErrorResponseFor(request, add_nodes.status());
  StatusOr<std::vector<GraphDelta::Edge>> removes =
      GetEdgeList(request, "remove", EdgeArity::kPair);
  if (!removes.ok()) return ErrorResponseFor(request, removes.status());
  StatusOr<std::vector<GraphDelta::Edge>> reweights =
      GetEdgeList(request, "reweight", EdgeArity::kWeighted);
  if (!reweights.ok()) return ErrorResponseFor(request, reweights.status());
  StatusOr<std::vector<GraphDelta::Edge>> adds =
      GetEdgeList(request, "add", EdgeArity::kPairOrWeighted);
  if (!adds.ok()) return ErrorResponseFor(request, adds.status());

  GraphDelta delta;
  delta.AddNodes(static_cast<NodeId>(*add_nodes));
  for (const GraphDelta::Edge& e : *removes) delta.RemoveEdge(e.u, e.v);
  for (const GraphDelta::Edge& e : *reweights) {
    delta.ReweightEdge(e.u, e.v, e.weight);
  }
  for (const GraphDelta::Edge& e : *adds) delta.AddEdge(e.u, e.v, e.weight);
  if (delta.empty()) {
    return ErrorResponseFor(
        request, Status::InvalidArgument(
                     "mutate needs at least one of add_nodes/add/remove/"
                     "reweight"));
  }

  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("commit");
  auto mutated = catalog_.Mutate(*name, delta);
  if (trace != nullptr) trace->EndSpan(span);
  if (!mutated.ok()) return ErrorResponseFor(request, mutated.status());
  if (record != nullptr) record->epoch = mutated->installed.epoch;

  JsonValue::Object response{
      {"op", "mutate"},
      {"graph", *name},
      {"applied",
       JsonValue(JsonValue::Object{
           {"add_nodes", *add_nodes},
           {"add", static_cast<int64_t>(adds->size())},
           {"remove", static_cast<int64_t>(removes->size())},
           {"reweight", static_cast<int64_t>(reweights->size())},
       })},
  };
  // Summarize the exact snapshot THIS delta installed — not the
  // session's current one, which a concurrent mutation may have
  // already replaced.
  AppendSessionSummary(mutated->installed, &response);
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleAugment(const JsonValue& request,
                                      obs::TraceContext* trace,
                                      obs::FlightRecord* record) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<std::vector<NodeId>> group = GetGroup(request);
  if (!group.ok()) return ErrorResponseFor(request, group.status());
  StatusOr<int64_t> k = GetInt(request, "k", 1, 1, 1'000'000);
  if (!k.ok()) return ErrorResponseFor(request, k.status());

  EdgeCandidates candidates = EdgeCandidates::kToGroup;
  if (const JsonValue* field = request.Find("candidates")) {
    if (!field->is_string() ||
        (field->as_string() != "group" && field->as_string() != "any")) {
      return ErrorResponseFor(
          request,
          Status::InvalidArgument("'candidates' must be \"group\" or "
                                  "\"any\""));
    }
    if (field->as_string() == "any") candidates = EdgeCandidates::kAny;
  }
  bool apply = false;
  if (const JsonValue* field = request.Find("apply")) {
    if (!field->is_bool()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'apply' must be a boolean"));
    }
    apply = field->as_bool();
  }
  StatusOr<SolverBackend> backend = GetSolverBackend(request);
  if (!backend.ok()) return ErrorResponseFor(request, backend.status());

  std::size_t span = 0;
  if (trace != nullptr) span = trace->BeginSpan("acquire");
  auto session = catalog_.Acquire(*name);
  if (trace != nullptr) trace->EndSpan(span);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  engine::Engine engine{*session, options_.engine};
  engine::AugmentJob job;
  job.group = std::move(*group);
  job.k = static_cast<int>(*k);
  job.candidates = candidates;
  job.solver_backend = *backend;
  const engine::GraphSession::VersionedSnapshot pinned =
      (*session)->versioned_snapshot();
  const std::shared_ptr<const engine::GraphSnapshot>& snapshot =
      pinned.snapshot;
  if (record != nullptr) record->epoch = pinned.epoch;
  // Re-derive the admission budget the engine will apply, so a refusal
  // can carry machine-readable details alongside the human message.
  const engine::AugmentBudget budget = engine::CheckAugmentBudget(
      options_.engine, snapshot->num_nodes(), job.group.size(), job.k,
      job.solver_backend, job.candidates);
  StatusOr<engine::JobResult> result = engine.Run(job, snapshot, trace);
  if (!result.ok()) {
    if (!budget.admitted) {
      JsonValue::Object error;
      error["code"] = StatusCodeName(result.status().code());
      error["message"] = result.status().message();
      error["details"] = JsonValue(JsonValue::Object{
          {"reason", "augment_work_budget"},
          {"backend", SolverBackendName(budget.backend)},
          {"n", static_cast<int64_t>(snapshot->num_nodes())},
          {"remaining", static_cast<int64_t>(budget.remaining)},
          {"limit", static_cast<int64_t>(budget.limit)},
          {"k", *k},
          {"k_limit", static_cast<int64_t>(budget.k_limit)},
      });
      JsonValue::Object response;
      response["status"] = "error";
      response["error"] = JsonValue(std::move(error));
      EchoId(request, &response);
      return JsonValue(std::move(response));
    }
    return ErrorResponseFor(request, result.status());
  }
  const auto& augment = std::get<engine::AugmentJobResult>(*result);

  JsonValue::Array added;
  added.reserve(augment.added.size());
  for (const auto& [u, v] : augment.added) {
    added.push_back(JsonValue(JsonValue::Array{
        JsonValue(static_cast<int64_t>(u)),
        JsonValue(static_cast<int64_t>(v)),
    }));
  }
  JsonValue::Array trace_after;
  trace_after.reserve(augment.trace_after.size());
  for (double trace : augment.trace_after) trace_after.emplace_back(trace);

  JsonValue::Object response{
      {"op", "augment"},
      {"graph", *name},
      {"k", *k},
      {"candidates", candidates == EdgeCandidates::kAny ? "any" : "group"},
      {"added", JsonValue(std::move(added))},
      {"initial_trace", augment.initial_trace},
      {"trace_after", JsonValue(std::move(trace_after))},
      {"cfcc_before", augment.cfcc_before},
      {"cfcc_after", augment.cfcc_after},
      {"seconds", augment.seconds},
      {"solver_backend", augment.solver_backend},
      // Mirrors the guard below: "applied" is true only when a
      // mutation actually lands (and the summary fields appear).
      {"applied", apply && !augment.added.empty()},
  };
  if (apply && !augment.added.empty()) {
    // Feed the chosen edges back through the mutation pipeline. A delta
    // racing in between merges by the parallel-conductor rule; the
    // summary below reflects the snapshot this apply installed.
    GraphDelta delta;
    for (const auto& [u, v] : augment.added) delta.AddEdge(u, v);
    if (trace != nullptr) span = trace->BeginSpan("commit");
    auto mutated = catalog_.Mutate(*name, delta);
    if (trace != nullptr) trace->EndSpan(span);
    if (!mutated.ok()) return ErrorResponseFor(request, mutated.status());
    if (record != nullptr) record->epoch = mutated->installed.epoch;
    AppendSessionSummary(mutated->installed, &response);
  }
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleStats() {
  const ResultCacheStats cache = cache_.stats();
  JsonValue::Object cache_json{
      {"hits", cache.hits},
      {"misses", cache.misses},
      {"evictions", cache.evictions},
      {"entries", cache.entries},
      {"capacity", cache.capacity},
      {"shards", static_cast<int64_t>(cache.shards)},
  };

  const CatalogStats catalog = catalog_.stats();
  JsonValue::Array sessions;
  for (const CatalogSessionInfo& info : catalog.sessions) {
    sessions.push_back(JsonValue(JsonValue::Object{
        {"name", info.name},
        {"source", info.source},
        {"resident", info.resident},
        {"mutated", info.mutated},
        {"bytes", static_cast<int64_t>(info.bytes)},
        {"loads", info.loads},
        {"epoch", static_cast<int64_t>(info.epoch)},
    }));
  }
  JsonValue::Object catalog_json{
      {"loads", catalog.loads},
      {"evictions", catalog.evictions},
      {"mutations", catalog.mutations},
      {"resident_bytes", static_cast<int64_t>(catalog.resident_bytes)},
      {"sessions", JsonValue(std::move(sessions))},
  };

  // The coherence fix (ISSUE 6 bugfix): everything below comes from ONE
  // metrics-registry snapshot, and every total is derived from the parts
  // of that snapshot ("lookups" := hits + misses, never a third counter)
  // — so this block can't report hits+misses inconsistent with request
  // totals the way the independently locked per-instance reads above
  // can. Registry counters are process-wide; in the daemon (one handler
  // per process) the two views describe the same traffic.
  const obs::MetricsSnapshot observed = obs::MetricsRegistry::Global()
                                            .snapshot();
  const uint64_t cache_hits = CounterValue(observed, "serve.cache.hits");
  const uint64_t cache_misses = CounterValue(observed, "serve.cache.misses");
  JsonValue::Object requests_json;
  JsonValue::Object latency_json;
  for (const char* op : {"solve", "evaluate", "mutate", "augment"}) {
    const std::string prefix = std::string("serve.") + op;
    requests_json[op] = JsonValue(JsonValue::Object{
        {"total",
         static_cast<int64_t>(CounterValue(observed, prefix + ".requests"))},
        {"errors",
         static_cast<int64_t>(CounterValue(observed, prefix + ".errors"))},
    });
    for (const auto& [name, histogram] : observed.histograms) {
      if (name == prefix + ".latency_us") {
        latency_json[op] = PercentilesJson(histogram);
      }
    }
  }
  JsonValue::Object observed_json{
      {"cache",
       JsonValue(JsonValue::Object{
           {"hits", static_cast<int64_t>(cache_hits)},
           {"misses", static_cast<int64_t>(cache_misses)},
           {"lookups", static_cast<int64_t>(cache_hits + cache_misses)},
           {"evictions",
            static_cast<int64_t>(
                CounterValue(observed, "serve.cache.evictions"))},
       })},
      {"catalog",
       JsonValue(JsonValue::Object{
           {"loads",
            static_cast<int64_t>(
                CounterValue(observed, "serve.catalog.loads"))},
           {"evictions",
            static_cast<int64_t>(
                CounterValue(observed, "serve.catalog.evictions"))},
           {"mutations",
            static_cast<int64_t>(
                CounterValue(observed, "serve.catalog.mutations"))},
       })},
      {"requests", JsonValue(std::move(requests_json))},
      {"latency", JsonValue(std::move(latency_json))},
      // The PR 8 sparse-solver counters, from the same coherent snapshot
      // as everything else in this block.
      {"engine",
       JsonValue(JsonValue::Object{
           {"linalg",
            JsonValue(JsonValue::Object{
                {"factorizations",
                 static_cast<int64_t>(CounterValue(
                     observed, "engine.linalg.factorizations"))},
                {"solves",
                 static_cast<int64_t>(
                     CounterValue(observed, "engine.linalg.solves"))},
                {"cg_iterations",
                 static_cast<int64_t>(CounterValue(
                     observed, "engine.linalg.cg_iterations"))},
            })},
           // The incremental warm-start counters (DESIGN.md §16), same
           // coherent snapshot.
           {"incremental",
            JsonValue(JsonValue::Object{
                {"forests_reused",
                 static_cast<int64_t>(CounterValue(
                     observed, "engine.incremental.forests_reused"))},
                {"forests_resampled",
                 static_cast<int64_t>(CounterValue(
                     observed, "engine.incremental.forests_resampled"))},
                {"warm_starts",
                 static_cast<int64_t>(CounterValue(
                     observed, "engine.incremental.warm_starts"))},
                {"cold_fallbacks",
                 static_cast<int64_t>(CounterValue(
                     observed, "engine.incremental.cold_fallbacks"))},
                {"swap_moves",
                 static_cast<int64_t>(CounterValue(
                     observed, "engine.incremental.swap_moves"))},
            })},
       })},
  };

  const BuildInfo& build = GetBuildInfo();
  JsonValue::Object response{
      {"op", "stats"},
      {"uptime_s", obs::ProcessUptimeSeconds()},
      {"build",
       JsonValue(JsonValue::Object{
           {"version", build.version},
           {"compiler", build.compiler},
           {"build_type", build.build_type},
           {"cxx_standard", build.cxx_standard},
       })},
      {"cache", JsonValue(std::move(cache_json))},
      {"catalog", JsonValue(std::move(catalog_json))},
      {"observed", JsonValue(std::move(observed_json))},
  };
  if (admission_ != nullptr) {
    response["server"] = JsonValue(JsonValue::Object{
        {"connections", admission_->connections.load()},
        {"accepted", admission_->accepted.load()},
        {"rejected", admission_->rejected.load()},
        {"served", admission_->served.load()},
    });
  }
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleMetrics(const JsonValue& request) {
  std::string format = "json";
  if (const JsonValue* field = request.Find("format")) {
    if (!field->is_string() || (field->as_string() != "json" &&
                                field->as_string() != "prometheus")) {
      return ErrorResponseFor(
          request, Status::InvalidArgument(
                       "'format' must be \"json\" or \"prometheus\""));
    }
    format = field->as_string();
  }

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().snapshot();
  if (format == "prometheus") {
    return OkResponse({
        {"op", "metrics"},
        {"format", "prometheus"},
        {"text", RenderPrometheus(snapshot)},
    });
  }

  JsonValue::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters[name] = static_cast<int64_t>(value);
  }
  JsonValue::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  JsonValue::Object histograms;
  for (const auto& [name, histogram] : snapshot.histograms) {
    histograms[name] = HistogramJson(histogram);
  }
  return OkResponse({
      {"op", "metrics"},
      {"format", "json"},
      {"counters", JsonValue(std::move(counters))},
      {"gauges", JsonValue(std::move(gauges))},
      {"histograms", JsonValue(std::move(histograms))},
  });
}

JsonValue ServeHandler::HandleFlightz(const JsonValue& request) {
  if (flight_ == nullptr) {
    return ErrorResponseFor(
        request, Status::FailedPrecondition(
                     "flight recorder disabled (flight capacity 0)"));
  }
  StatusOr<int64_t> n = GetInt(request, "n", 64, 1, 4096);
  if (!n.ok()) return ErrorResponseFor(request, n.status());

  JsonValue::Array records;
  for (const obs::FlightRecord& record :
       flight_->Recent(static_cast<std::size_t>(*n))) {
    records.push_back(FlightRecordJson(record));
  }
  JsonValue::Array pinned;
  for (const obs::FlightRecord& record :
       flight_->Pinned(static_cast<std::size_t>(*n))) {
    pinned.push_back(FlightRecordJson(record));
  }
  return OkResponse({
      {"op", "flightz"},
      {"committed", flight_->committed()},
      {"capacity", static_cast<int64_t>(flight_->options().capacity)},
      {"pinned_capacity",
       static_cast<int64_t>(flight_->options().pinned_capacity)},
      {"records", JsonValue(std::move(records))},
      {"pinned", JsonValue(std::move(pinned))},
  });
}

JsonValue FlightRecordJson(const obs::FlightRecord& record) {
  JsonValue::Array spans;
  for (int i = 0; i < record.num_spans; ++i) {
    spans.push_back(JsonValue(JsonValue::Object{
        {"name", std::string(record.spans[i].name)},
        {"us", record.spans[i].duration_us},
    }));
  }
  JsonValue::Object json{
      {"id", record.id},
      {"ts_ms", record.wall_ms},
      {"mono_ns", record.mono_ns},
      {"op", std::string(record.op)},
      {"graph", std::string(record.graph)},
      {"epoch", static_cast<int64_t>(record.epoch)},
      {"ok", record.ok != 0},
      {"trace_id", std::string(record.trace_id)},
      {"latency_us", record.latency_us},
      {"queue_wait_us", record.queue_wait_us},
      {"spans", JsonValue(std::move(spans))},
  };
  if (record.ok == 0) {
    json["error_code"] = std::string(record.error_code);
  }
  return JsonValue(std::move(json));
}

}  // namespace cfcm::serve
