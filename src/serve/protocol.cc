#include "serve/protocol.h"

#include <cstdio>
#include <utility>
#include <variant>

namespace cfcm::serve {
namespace {

// Pulls an integer field with bounds [lo, hi]; `fallback` when absent.
StatusOr<int64_t> GetInt(const JsonValue& request, const std::string& key,
                         int64_t fallback, int64_t lo, int64_t hi) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_number()) {
    return Status::InvalidArgument("'" + key + "' must be a number");
  }
  const int64_t value = field->as_int();
  if (value < lo || value > hi) {
    return Status::InvalidArgument("'" + key + "' out of range");
  }
  return value;
}

StatusOr<std::string> GetString(const JsonValue& request,
                                const std::string& key) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr || !field->is_string() || field->as_string().empty()) {
    return Status::InvalidArgument("request needs a non-empty string '" + key +
                                   "'");
  }
  return field->as_string();
}

JsonValue::Array GroupToJson(const std::vector<NodeId>& group) {
  JsonValue::Array array;
  array.reserve(group.size());
  for (NodeId u : group) array.emplace_back(static_cast<int64_t>(u));
  return array;
}

void EchoId(const JsonValue& request, JsonValue::Object* response) {
  if (const JsonValue* id = request.Find("id")) (*response)["id"] = *id;
}

JsonValue OkResponse(JsonValue::Object fields) {
  fields["status"] = "ok";
  return JsonValue(std::move(fields));
}

JsonValue ErrorResponseFor(const JsonValue& request, const Status& status) {
  JsonValue::Object response;
  response["status"] = "error";
  response["error"] = StatusToJsonError(status);
  EchoId(request, &response);
  return JsonValue(std::move(response));
}

}  // namespace

std::string StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

JsonValue StatusToJsonError(const Status& status) {
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  return JsonValue(std::move(error));
}

JsonValue MakeErrorResponse(const Status& status, const JsonValue* id) {
  JsonValue::Object response;
  response["status"] = "error";
  response["error"] = StatusToJsonError(status);
  if (id != nullptr) response["id"] = *id;
  return JsonValue(std::move(response));
}

JsonValue MakeOverCapacityResponse() {
  return JsonValue(JsonValue::Object{
      {"status", "error"},
      {"error",
       JsonValue(JsonValue::Object{
           {"code", "over_capacity"},
           {"message", "admission queue full; retry later (429)"},
       })},
  });
}

ServeHandler::ServeHandler(HandlerOptions options)
    : options_(std::move(options)),
      catalog_(options_.catalog),
      cache_(options_.cache_capacity, options_.cache_shards) {}

JsonValue ServeHandler::HandleLine(std::string_view line) {
  StatusOr<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) return MakeErrorResponse(request.status(), nullptr);
  return Handle(*request);
}

JsonValue ServeHandler::Handle(const JsonValue& request) {
  if (!request.is_object()) {
    return MakeErrorResponse(
        Status::InvalidArgument("request must be a JSON object"), nullptr);
  }
  StatusOr<std::string> op = GetString(request, "op");
  if (!op.ok()) return ErrorResponseFor(request, op.status());

  JsonValue response = [&]() -> JsonValue {
    if (*op == "load") return HandleLoad(request);
    if (*op == "unload") return HandleUnload(request);
    if (*op == "solve") return HandleSolve(request);
    if (*op == "evaluate") return HandleEvaluate(request);
    if (*op == "stats") return HandleStats();
    if (*op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      return OkResponse({{"op", "shutdown"}});
    }
    return ErrorResponseFor(
        request,
        Status::InvalidArgument(
            "unknown op '" + *op +
            "' (expected load/unload/solve/evaluate/stats/shutdown)"));
  }();
  if (response.is_object()) EchoId(request, &response.object());
  return response;
}

JsonValue ServeHandler::HandleLoad(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<std::string> source = GetString(request, "source");
  if (!source.ok()) return ErrorResponseFor(request, source.status());

  Status defined = catalog_.Define(*name, *source);
  if (!defined.ok()) return ErrorResponseFor(request, defined);
  // Acquire eagerly so load errors surface on the load response, not on
  // the first solve.
  auto session = catalog_.Acquire(*name);
  if (!session.ok()) {
    // A bad source would poison every future Acquire; drop it again.
    (void)catalog_.Forget(*name);
    return ErrorResponseFor(request, session.status());
  }
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                static_cast<unsigned long long>((*session)->fingerprint()));
  return OkResponse({
      {"op", "load"},
      {"graph", *name},
      {"nodes", static_cast<int64_t>((*session)->num_nodes())},
      {"edges", static_cast<int64_t>((*session)->num_edges())},
      {"weighted", (*session)->is_weighted()},
      {"connected", (*session)->is_connected()},
      {"bytes", static_cast<int64_t>((*session)->memory_bytes())},
      {"fingerprint", std::string(fingerprint)},
  });
}

JsonValue ServeHandler::HandleUnload(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  Status forgotten = catalog_.Forget(*name);
  if (!forgotten.ok()) return ErrorResponseFor(request, forgotten);
  return OkResponse({{"op", "unload"}, {"graph", *name}});
}

JsonValue ServeHandler::HandleSolve(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<int64_t> k = GetInt(request, "k", 1, 1, 1'000'000'000);
  if (!k.ok()) return ErrorResponseFor(request, k.status());
  StatusOr<int64_t> seed = GetInt(request, "seed", 1, 0, INT64_MAX);
  if (!seed.ok()) return ErrorResponseFor(request, seed.status());

  std::string algorithm = "forest";
  if (const JsonValue* field = request.Find("algorithm")) {
    if (!field->is_string()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'algorithm' must be a string"));
    }
    algorithm = field->as_string();
  }
  double eps = 0.2;
  if (const JsonValue* field = request.Find("eps")) {
    if (!field->is_number()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'eps' must be a number"));
    }
    eps = field->as_double();
    if (!(eps > 0.0) || eps > 1.0) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'eps' must be in (0, 1]"));
    }
  }

  auto session = catalog_.Acquire(*name);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  const ResultCacheKey key{(*session)->fingerprint(), algorithm,
                           static_cast<int>(*k), eps,
                           static_cast<uint64_t>(*seed)};
  bool cache_hit = true;
  std::optional<engine::SolveJobResult> solve = cache_.Lookup(key);
  if (!solve.has_value()) {
    cache_hit = false;
    engine::Engine engine{*session, options_.engine};
    engine::SolveJob job;
    job.algorithm = algorithm;
    job.k = static_cast<int>(*k);
    job.eps = eps;
    job.seed = static_cast<uint64_t>(*seed);
    StatusOr<engine::JobResult> result = engine.Run(job);
    if (!result.ok()) return ErrorResponseFor(request, result.status());
    solve = std::get<engine::SolveJobResult>(std::move(*result));
    cache_.Insert(key, *solve);
  }

  return OkResponse({
      {"op", "solve"},
      {"graph", *name},
      {"algorithm", algorithm},
      {"k", *k},
      {"eps", eps},
      {"seed", *seed},
      {"cache", cache_hit ? "hit" : "miss"},
      {"selection", JsonValue(GroupToJson(solve->output.selected))},
      {"cfcc", solve->cfcc},
      {"forests", solve->output.total_forests},
      {"walk_steps", solve->output.total_walk_steps},
      // Solver cost of the result; on a hit this is the original solve's
      // time, not this request's latency.
      {"seconds", solve->output.seconds},
  });
}

JsonValue ServeHandler::HandleEvaluate(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<int64_t> probes = GetInt(request, "probes", 0, 0, 1'000'000);
  if (!probes.ok()) return ErrorResponseFor(request, probes.status());
  StatusOr<int64_t> seed = GetInt(request, "seed", 1, 0, INT64_MAX);
  if (!seed.ok()) return ErrorResponseFor(request, seed.status());

  const JsonValue* group_field = request.Find("group");
  if (group_field == nullptr || !group_field->is_array()) {
    return ErrorResponseFor(
        request, Status::InvalidArgument("'group' must be an array of node ids"));
  }
  std::vector<NodeId> group;
  group.reserve(group_field->array().size());
  for (const JsonValue& member : group_field->array()) {
    if (!member.is_number()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'group' members must be numbers"));
    }
    group.push_back(static_cast<NodeId>(member.as_int()));
  }

  auto session = catalog_.Acquire(*name);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  engine::Engine engine{*session, options_.engine};
  engine::EvaluateJob job;
  job.group = std::move(group);
  job.probes = static_cast<int>(*probes);
  job.seed = static_cast<uint64_t>(*seed);
  StatusOr<engine::JobResult> result = engine.Run(job);
  if (!result.ok()) return ErrorResponseFor(request, result.status());
  const auto& eval = std::get<engine::EvaluateJobResult>(*result);

  return OkResponse({
      {"op", "evaluate"},
      {"graph", *name},
      {"cfcc", eval.cfcc},
      {"trace", eval.trace},
      {"trace_std_error", eval.trace_std_error},
  });
}

JsonValue ServeHandler::HandleStats() {
  const ResultCacheStats cache = cache_.stats();
  JsonValue::Object cache_json{
      {"hits", cache.hits},
      {"misses", cache.misses},
      {"evictions", cache.evictions},
      {"entries", cache.entries},
      {"capacity", cache.capacity},
      {"shards", static_cast<int64_t>(cache.shards)},
  };

  const CatalogStats catalog = catalog_.stats();
  JsonValue::Array sessions;
  for (const CatalogSessionInfo& info : catalog.sessions) {
    sessions.push_back(JsonValue(JsonValue::Object{
        {"name", info.name},
        {"source", info.source},
        {"resident", info.resident},
        {"bytes", static_cast<int64_t>(info.bytes)},
        {"loads", info.loads},
    }));
  }
  JsonValue::Object catalog_json{
      {"loads", catalog.loads},
      {"evictions", catalog.evictions},
      {"resident_bytes", static_cast<int64_t>(catalog.resident_bytes)},
      {"sessions", JsonValue(std::move(sessions))},
  };

  JsonValue::Object response{
      {"op", "stats"},
      {"cache", JsonValue(std::move(cache_json))},
      {"catalog", JsonValue(std::move(catalog_json))},
  };
  if (admission_ != nullptr) {
    response["server"] = JsonValue(JsonValue::Object{
        {"connections", admission_->connections.load()},
        {"accepted", admission_->accepted.load()},
        {"rejected", admission_->rejected.load()},
        {"served", admission_->served.load()},
    });
  }
  return OkResponse(std::move(response));
}

}  // namespace cfcm::serve
