#include "serve/protocol.h"

#include <cstdio>
#include <limits>
#include <utility>
#include <variant>

namespace cfcm::serve {
namespace {

// Pulls an integer field with bounds [lo, hi]; `fallback` when absent.
// Requires an exact JSON integer: a double-stored number would reach
// as_int() through a float->int cast that is UB outside int64 range
// (1e300) and silently truncating inside it (3.7 -> 3).
StatusOr<int64_t> GetInt(const JsonValue& request, const std::string& key,
                         int64_t fallback, int64_t lo, int64_t hi) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return fallback;
  if (!field->is_int()) {
    return Status::InvalidArgument("'" + key + "' must be an integer");
  }
  const int64_t value = field->as_int();
  if (value < lo || value > hi) {
    return Status::InvalidArgument("'" + key + "' out of range");
  }
  return value;
}

StatusOr<std::string> GetString(const JsonValue& request,
                                const std::string& key) {
  const JsonValue* field = request.Find(key);
  if (field == nullptr || !field->is_string() || field->as_string().empty()) {
    return Status::InvalidArgument("request needs a non-empty string '" + key +
                                   "'");
  }
  return field->as_string();
}

JsonValue::Array GroupToJson(const std::vector<NodeId>& group) {
  JsonValue::Array array;
  array.reserve(group.size());
  for (NodeId u : group) array.emplace_back(static_cast<int64_t>(u));
  return array;
}

// A wire node id must fit NodeId exactly — a silent int64 -> int32 (or
// 0.9 -> 0) truncation would address a DIFFERENT, valid node or edge.
// Requiring the codec's exact-int64 storage also keeps huge doubles
// (1e300) away from any UB float->int cast.
StatusOr<NodeId> GetNodeId(const JsonValue& value, const std::string& field) {
  if (!value.is_int() || value.as_int() < 0 ||
      value.as_int() > std::numeric_limits<NodeId>::max()) {
    return Status::InvalidArgument(
        "'" + field + "' node ids must be integers in [0, " +
        std::to_string(std::numeric_limits<NodeId>::max()) + "]");
  }
  return static_cast<NodeId>(value.as_int());
}

StatusOr<std::vector<NodeId>> GetGroup(const JsonValue& request) {
  const JsonValue* field = request.Find("group");
  if (field == nullptr || !field->is_array()) {
    return Status::InvalidArgument("'group' must be an array of node ids");
  }
  std::vector<NodeId> group;
  group.reserve(field->array().size());
  for (const JsonValue& member : field->array()) {
    StatusOr<NodeId> id = GetNodeId(member, "group");
    if (!id.ok()) return id.status();
    group.push_back(*id);
  }
  return group;
}

// Edge-tuple lists for the mutate op: each element is [u, v] or
// [u, v, w]. `arity` fixes the accepted lengths — removals take no
// weight, reweights require one, additions accept either (default 1).
enum class EdgeArity { kPair, kPairOrWeighted, kWeighted };

StatusOr<std::vector<GraphDelta::Edge>> GetEdgeList(const JsonValue& request,
                                                    const std::string& key,
                                                    EdgeArity arity) {
  std::vector<GraphDelta::Edge> edges;
  const JsonValue* field = request.Find(key);
  if (field == nullptr) return edges;
  if (!field->is_array()) {
    return Status::InvalidArgument("'" + key +
                                   "' must be an array of [u,v] / [u,v,w]");
  }
  for (const JsonValue& member : field->array()) {
    if (!member.is_array()) {
      return Status::InvalidArgument("'" + key +
                                     "' entries must be arrays");
    }
    const JsonValue::Array& tuple = member.array();
    const bool pair_ok = arity != EdgeArity::kWeighted && tuple.size() == 2;
    const bool weighted_ok =
        arity != EdgeArity::kPair && tuple.size() == 3;
    if (!pair_ok && !weighted_ok) {
      return Status::InvalidArgument(
          "'" + key + "' entries must have " +
          (arity == EdgeArity::kPair
               ? std::string("2")
               : arity == EdgeArity::kWeighted ? std::string("3")
                                               : std::string("2 or 3")) +
          " elements");
    }
    GraphDelta::Edge edge;
    StatusOr<NodeId> u = GetNodeId(tuple[0], key);
    if (!u.ok()) return u.status();
    StatusOr<NodeId> v = GetNodeId(tuple[1], key);
    if (!v.ok()) return v.status();
    edge.u = *u;
    edge.v = *v;
    if (tuple.size() == 3) {
      if (!tuple[2].is_number()) {
        return Status::InvalidArgument("'" + key +
                                       "' weights must be numbers");
      }
      edge.weight = tuple[2].as_double();
    }
    edges.push_back(edge);
  }
  return edges;
}

// Graph identity block shared by load / mutate / augment responses,
// built from ONE (snapshot, epoch) pair so the fields are mutually
// consistent even while mutations land concurrently.
void AppendSessionSummary(const engine::GraphSession::VersionedSnapshot& pinned,
                          JsonValue::Object* response) {
  const engine::GraphSnapshot& snapshot = *pinned.snapshot;
  char fingerprint[32];
  std::snprintf(fingerprint, sizeof(fingerprint), "%016llx",
                static_cast<unsigned long long>(snapshot.fingerprint()));
  (*response)["nodes"] = static_cast<int64_t>(snapshot.num_nodes());
  (*response)["edges"] = static_cast<int64_t>(snapshot.num_edges());
  (*response)["weighted"] = !snapshot.graph().is_unit_weighted();
  (*response)["connected"] = snapshot.is_connected();
  (*response)["bytes"] = static_cast<int64_t>(snapshot.memory_bytes());
  (*response)["fingerprint"] = std::string(fingerprint);
  (*response)["epoch"] = static_cast<int64_t>(pinned.epoch);
}

void EchoId(const JsonValue& request, JsonValue::Object* response) {
  if (const JsonValue* id = request.Find("id")) (*response)["id"] = *id;
}

JsonValue OkResponse(JsonValue::Object fields) {
  fields["status"] = "ok";
  return JsonValue(std::move(fields));
}

JsonValue ErrorResponseFor(const JsonValue& request, const Status& status) {
  JsonValue::Object response;
  response["status"] = "error";
  response["error"] = StatusToJsonError(status);
  EchoId(request, &response);
  return JsonValue(std::move(response));
}

}  // namespace

std::string StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kNumericalError: return "numerical_error";
  }
  return "unknown";
}

JsonValue StatusToJsonError(const Status& status) {
  JsonValue::Object error;
  error["code"] = StatusCodeName(status.code());
  error["message"] = status.message();
  return JsonValue(std::move(error));
}

JsonValue MakeErrorResponse(const Status& status, const JsonValue* id) {
  JsonValue::Object response;
  response["status"] = "error";
  response["error"] = StatusToJsonError(status);
  if (id != nullptr) response["id"] = *id;
  return JsonValue(std::move(response));
}

JsonValue MakeOverCapacityResponse() {
  return JsonValue(JsonValue::Object{
      {"status", "error"},
      {"error",
       JsonValue(JsonValue::Object{
           {"code", "over_capacity"},
           {"message", "admission queue full; retry later (429)"},
       })},
  });
}

ServeHandler::ServeHandler(HandlerOptions options)
    : options_(std::move(options)),
      catalog_(options_.catalog),
      cache_(options_.cache_capacity, options_.cache_shards) {}

JsonValue ServeHandler::HandleLine(std::string_view line) {
  StatusOr<JsonValue> request = JsonValue::Parse(line);
  if (!request.ok()) return MakeErrorResponse(request.status(), nullptr);
  return Handle(*request);
}

JsonValue ServeHandler::Handle(const JsonValue& request) {
  if (!request.is_object()) {
    return MakeErrorResponse(
        Status::InvalidArgument("request must be a JSON object"), nullptr);
  }
  StatusOr<std::string> op = GetString(request, "op");
  if (!op.ok()) return ErrorResponseFor(request, op.status());

  JsonValue response = [&]() -> JsonValue {
    if (*op == "load") return HandleLoad(request);
    if (*op == "unload") return HandleUnload(request);
    if (*op == "solve") return HandleSolve(request);
    if (*op == "evaluate") return HandleEvaluate(request);
    if (*op == "mutate") return HandleMutate(request);
    if (*op == "augment") return HandleAugment(request);
    if (*op == "stats") return HandleStats();
    if (*op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      return OkResponse({{"op", "shutdown"}});
    }
    return ErrorResponseFor(
        request,
        Status::InvalidArgument(
            "unknown op '" + *op +
            "' (expected load/unload/solve/evaluate/mutate/augment/stats/"
            "shutdown)"));
  }();
  if (response.is_object()) EchoId(request, &response.object());
  return response;
}

JsonValue ServeHandler::HandleLoad(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<std::string> source = GetString(request, "source");
  if (!source.ok()) return ErrorResponseFor(request, source.status());

  Status defined = catalog_.Define(*name, *source);
  if (!defined.ok()) return ErrorResponseFor(request, defined);
  // Acquire eagerly so load errors surface on the load response, not on
  // the first solve.
  auto session = catalog_.Acquire(*name);
  if (!session.ok()) {
    // A bad source would poison every future Acquire; drop it again.
    (void)catalog_.Forget(*name);
    return ErrorResponseFor(request, session.status());
  }
  JsonValue::Object response{{"op", "load"}, {"graph", *name}};
  AppendSessionSummary((*session)->versioned_snapshot(), &response);
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleUnload(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  Status forgotten = catalog_.Forget(*name);
  if (!forgotten.ok()) return ErrorResponseFor(request, forgotten);
  return OkResponse({{"op", "unload"}, {"graph", *name}});
}

JsonValue ServeHandler::HandleSolve(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<int64_t> k = GetInt(request, "k", 1, 1, 1'000'000'000);
  if (!k.ok()) return ErrorResponseFor(request, k.status());
  StatusOr<int64_t> seed = GetInt(request, "seed", 1, 0, INT64_MAX);
  if (!seed.ok()) return ErrorResponseFor(request, seed.status());

  std::string algorithm = "forest";
  if (const JsonValue* field = request.Find("algorithm")) {
    if (!field->is_string()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'algorithm' must be a string"));
    }
    algorithm = field->as_string();
  }
  double eps = 0.2;
  if (const JsonValue* field = request.Find("eps")) {
    if (!field->is_number()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'eps' must be a number"));
    }
    eps = field->as_double();
    if (!(eps > 0.0) || eps > 1.0) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'eps' must be in (0, 1]"));
    }
  }

  auto session = catalog_.Acquire(*name);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  // Pin ONE snapshot for the whole request: the cache key's fingerprint
  // and the solve computation are guaranteed to describe the same graph
  // version even if a mutate lands mid-request — the cache-soundness
  // invariant under mutation (DESIGN.md §11).
  const std::shared_ptr<const engine::GraphSnapshot> snapshot =
      (*session)->snapshot();
  const ResultCacheKey key{snapshot->fingerprint(), algorithm,
                           static_cast<int>(*k), eps,
                           static_cast<uint64_t>(*seed)};
  bool cache_hit = true;
  std::optional<engine::SolveJobResult> solve = cache_.Lookup(key);
  if (!solve.has_value()) {
    cache_hit = false;
    engine::Engine engine{*session, options_.engine};
    engine::SolveJob job;
    job.algorithm = algorithm;
    job.k = static_cast<int>(*k);
    job.eps = eps;
    job.seed = static_cast<uint64_t>(*seed);
    StatusOr<engine::JobResult> result = engine.Run(job, snapshot);
    if (!result.ok()) return ErrorResponseFor(request, result.status());
    solve = std::get<engine::SolveJobResult>(std::move(*result));
    cache_.Insert(key, *solve);
  }

  return OkResponse({
      {"op", "solve"},
      {"graph", *name},
      {"algorithm", algorithm},
      {"k", *k},
      {"eps", eps},
      {"seed", *seed},
      {"cache", cache_hit ? "hit" : "miss"},
      {"selection", JsonValue(GroupToJson(solve->output.selected))},
      {"cfcc", solve->cfcc},
      {"forests", solve->output.total_forests},
      {"walk_steps", solve->output.total_walk_steps},
      // Solver cost of the result; on a hit this is the original solve's
      // time, not this request's latency.
      {"seconds", solve->output.seconds},
  });
}

JsonValue ServeHandler::HandleEvaluate(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<int64_t> probes = GetInt(request, "probes", 0, 0, 1'000'000);
  if (!probes.ok()) return ErrorResponseFor(request, probes.status());
  StatusOr<int64_t> seed = GetInt(request, "seed", 1, 0, INT64_MAX);
  if (!seed.ok()) return ErrorResponseFor(request, seed.status());

  StatusOr<std::vector<NodeId>> group = GetGroup(request);
  if (!group.ok()) return ErrorResponseFor(request, group.status());

  auto session = catalog_.Acquire(*name);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  engine::Engine engine{*session, options_.engine};
  engine::EvaluateJob job;
  job.group = std::move(*group);
  job.probes = static_cast<int>(*probes);
  job.seed = static_cast<uint64_t>(*seed);
  StatusOr<engine::JobResult> result = engine.Run(job);
  if (!result.ok()) return ErrorResponseFor(request, result.status());
  const auto& eval = std::get<engine::EvaluateJobResult>(*result);

  return OkResponse({
      {"op", "evaluate"},
      {"graph", *name},
      {"cfcc", eval.cfcc},
      {"trace", eval.trace},
      {"trace_std_error", eval.trace_std_error},
  });
}

JsonValue ServeHandler::HandleMutate(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  // Bounded per request: node additions allocate CSR arrays up front,
  // before the catalog's post-mutation byte re-charge can evict.
  StatusOr<int64_t> add_nodes =
      GetInt(request, "add_nodes", 0, 0, 1'000'000);
  if (!add_nodes.ok()) return ErrorResponseFor(request, add_nodes.status());
  StatusOr<std::vector<GraphDelta::Edge>> removes =
      GetEdgeList(request, "remove", EdgeArity::kPair);
  if (!removes.ok()) return ErrorResponseFor(request, removes.status());
  StatusOr<std::vector<GraphDelta::Edge>> reweights =
      GetEdgeList(request, "reweight", EdgeArity::kWeighted);
  if (!reweights.ok()) return ErrorResponseFor(request, reweights.status());
  StatusOr<std::vector<GraphDelta::Edge>> adds =
      GetEdgeList(request, "add", EdgeArity::kPairOrWeighted);
  if (!adds.ok()) return ErrorResponseFor(request, adds.status());

  GraphDelta delta;
  delta.AddNodes(static_cast<NodeId>(*add_nodes));
  for (const GraphDelta::Edge& e : *removes) delta.RemoveEdge(e.u, e.v);
  for (const GraphDelta::Edge& e : *reweights) {
    delta.ReweightEdge(e.u, e.v, e.weight);
  }
  for (const GraphDelta::Edge& e : *adds) delta.AddEdge(e.u, e.v, e.weight);
  if (delta.empty()) {
    return ErrorResponseFor(
        request, Status::InvalidArgument(
                     "mutate needs at least one of add_nodes/add/remove/"
                     "reweight"));
  }

  auto mutated = catalog_.Mutate(*name, delta);
  if (!mutated.ok()) return ErrorResponseFor(request, mutated.status());

  JsonValue::Object response{
      {"op", "mutate"},
      {"graph", *name},
      {"applied",
       JsonValue(JsonValue::Object{
           {"add_nodes", *add_nodes},
           {"add", static_cast<int64_t>(adds->size())},
           {"remove", static_cast<int64_t>(removes->size())},
           {"reweight", static_cast<int64_t>(reweights->size())},
       })},
  };
  // Summarize the exact snapshot THIS delta installed — not the
  // session's current one, which a concurrent mutation may have
  // already replaced.
  AppendSessionSummary(mutated->installed, &response);
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleAugment(const JsonValue& request) {
  StatusOr<std::string> name = GetString(request, "graph");
  if (!name.ok()) return ErrorResponseFor(request, name.status());
  StatusOr<std::vector<NodeId>> group = GetGroup(request);
  if (!group.ok()) return ErrorResponseFor(request, group.status());
  StatusOr<int64_t> k = GetInt(request, "k", 1, 1, 1'000'000);
  if (!k.ok()) return ErrorResponseFor(request, k.status());

  EdgeCandidates candidates = EdgeCandidates::kToGroup;
  if (const JsonValue* field = request.Find("candidates")) {
    if (!field->is_string() ||
        (field->as_string() != "group" && field->as_string() != "any")) {
      return ErrorResponseFor(
          request,
          Status::InvalidArgument("'candidates' must be \"group\" or "
                                  "\"any\""));
    }
    if (field->as_string() == "any") candidates = EdgeCandidates::kAny;
  }
  bool apply = false;
  if (const JsonValue* field = request.Find("apply")) {
    if (!field->is_bool()) {
      return ErrorResponseFor(
          request, Status::InvalidArgument("'apply' must be a boolean"));
    }
    apply = field->as_bool();
  }

  auto session = catalog_.Acquire(*name);
  if (!session.ok()) return ErrorResponseFor(request, session.status());

  engine::Engine engine{*session, options_.engine};
  engine::AugmentJob job;
  job.group = std::move(*group);
  job.k = static_cast<int>(*k);
  job.candidates = candidates;
  StatusOr<engine::JobResult> result = engine.Run(job);
  if (!result.ok()) return ErrorResponseFor(request, result.status());
  const auto& augment = std::get<engine::AugmentJobResult>(*result);

  JsonValue::Array added;
  added.reserve(augment.added.size());
  for (const auto& [u, v] : augment.added) {
    added.push_back(JsonValue(JsonValue::Array{
        JsonValue(static_cast<int64_t>(u)),
        JsonValue(static_cast<int64_t>(v)),
    }));
  }
  JsonValue::Array trace_after;
  trace_after.reserve(augment.trace_after.size());
  for (double trace : augment.trace_after) trace_after.emplace_back(trace);

  JsonValue::Object response{
      {"op", "augment"},
      {"graph", *name},
      {"k", *k},
      {"candidates", candidates == EdgeCandidates::kAny ? "any" : "group"},
      {"added", JsonValue(std::move(added))},
      {"initial_trace", augment.initial_trace},
      {"trace_after", JsonValue(std::move(trace_after))},
      {"cfcc_before", augment.cfcc_before},
      {"cfcc_after", augment.cfcc_after},
      {"seconds", augment.seconds},
      // Mirrors the guard below: "applied" is true only when a
      // mutation actually lands (and the summary fields appear).
      {"applied", apply && !augment.added.empty()},
  };
  if (apply && !augment.added.empty()) {
    // Feed the chosen edges back through the mutation pipeline. A delta
    // racing in between merges by the parallel-conductor rule; the
    // summary below reflects the snapshot this apply installed.
    GraphDelta delta;
    for (const auto& [u, v] : augment.added) delta.AddEdge(u, v);
    auto mutated = catalog_.Mutate(*name, delta);
    if (!mutated.ok()) return ErrorResponseFor(request, mutated.status());
    AppendSessionSummary(mutated->installed, &response);
  }
  return OkResponse(std::move(response));
}

JsonValue ServeHandler::HandleStats() {
  const ResultCacheStats cache = cache_.stats();
  JsonValue::Object cache_json{
      {"hits", cache.hits},
      {"misses", cache.misses},
      {"evictions", cache.evictions},
      {"entries", cache.entries},
      {"capacity", cache.capacity},
      {"shards", static_cast<int64_t>(cache.shards)},
  };

  const CatalogStats catalog = catalog_.stats();
  JsonValue::Array sessions;
  for (const CatalogSessionInfo& info : catalog.sessions) {
    sessions.push_back(JsonValue(JsonValue::Object{
        {"name", info.name},
        {"source", info.source},
        {"resident", info.resident},
        {"mutated", info.mutated},
        {"bytes", static_cast<int64_t>(info.bytes)},
        {"loads", info.loads},
        {"epoch", static_cast<int64_t>(info.epoch)},
    }));
  }
  JsonValue::Object catalog_json{
      {"loads", catalog.loads},
      {"evictions", catalog.evictions},
      {"mutations", catalog.mutations},
      {"resident_bytes", static_cast<int64_t>(catalog.resident_bytes)},
      {"sessions", JsonValue(std::move(sessions))},
  };

  JsonValue::Object response{
      {"op", "stats"},
      {"cache", JsonValue(std::move(cache_json))},
      {"catalog", JsonValue(std::move(catalog_json))},
  };
  if (admission_ != nullptr) {
    response["server"] = JsonValue(JsonValue::Object{
        {"connections", admission_->connections.load()},
        {"accepted", admission_->accepted.load()},
        {"rejected", admission_->rejected.load()},
        {"served", admission_->served.load()},
    });
  }
  return OkResponse(std::move(response));
}

}  // namespace cfcm::serve
