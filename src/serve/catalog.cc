#include "serve/catalog.h"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <utility>

#include "graph/spec.h"
#include "obs/metrics.h"
#include "runtime/shared_pool.h"

namespace cfcm::serve {

namespace {

// Process-wide mirrors of the per-instance counters (see result_cache.cc
// for the split's rationale).
obs::Counter& CatalogLoads() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("serve.catalog.loads");
  return *c;
}
obs::Counter& CatalogEvictions() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("serve.catalog.evictions");
  return *c;
}
obs::Counter& CatalogMutations() {
  static obs::Counter* const c =
      &obs::MetricsRegistry::Global().counter("serve.catalog.mutations");
  return *c;
}

// Whether the post-delta graph can carry explicit conductances. True
// when the base is already weighted, the delta reweights anything or
// adds a non-unit edge — and also when a UNIT add merges with an
// existing or duplicate edge: the parallel-conductor rule sums the
// conductances to 2.0, de-degrading the graph to weighted, so its real
// footprint includes the weight arrays. Over-projects (never under-)
// for deltas that happen to degrade back to unit.
bool ProjectsWeighted(const Graph& graph, const GraphDelta& delta) {
  if (!graph.is_unit_weighted() || !delta.reweight_edges().empty()) {
    return true;
  }
  std::unordered_set<uint64_t> seen;
  const NodeId n = graph.num_nodes();
  for (const GraphDelta::Edge& e : delta.add_edges()) {
    if (e.weight != 1.0) return true;
    if (e.u >= 0 && e.u < n && e.v >= 0 && e.v < n &&
        graph.HasEdge(e.u, e.v)) {
      return true;
    }
    if (!seen.insert(UndirectedEdgeKey(e.u, e.v)).second) return true;
  }
  return false;
}

}  // namespace

SessionCatalog::SessionCatalog(CatalogOptions options)
    : options_(options), pool_(&SharedThreadPool(options.num_threads)) {}

Status SessionCatalog::Define(const std::string& name,
                              const std::string& source) {
  if (name.empty()) return Status::InvalidArgument("graph name must be non-empty");
  if (source.empty()) {
    return Status::InvalidArgument("graph source must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.source != source) {
      return Status::FailedPrecondition(
          "graph '" + name + "' is already defined with source '" +
          it->second.source + "'; unload it before redefining");
    }
    return Status::Ok();
  }
  Entry entry;
  entry.source = source;
  entry.generation = next_generation_++;
  entries_.emplace(name, std::move(entry));
  return Status::Ok();
}

StatusOr<std::shared_ptr<engine::GraphSession>> SessionCatalog::Acquire(
    const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name +
                            "' is not in the catalog; load it first");
  }
  // Wait out a concurrent load of the same name. The entry may be
  // forgotten while we wait, so re-find each round.
  while (it != entries_.end() && it->second.loading) {
    cv_.wait(lock);
    it = entries_.find(name);
  }
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name +
                            "' was removed while waiting for its load");
  }
  Entry& entry = it->second;
  entry.last_use = ++tick_;
  if (entry.session != nullptr) {
    return entry.session;
  }

  // Load outside the lock: graph construction can be seconds for large
  // specs and must not serialize the whole catalog.
  entry.loading = true;
  const std::string source = entry.source;
  const uint64_t generation = entry.generation;
  lock.unlock();
  StatusOr<Graph> graph = LoadGraphFromSpec(source);
  std::shared_ptr<engine::GraphSession> session;
  if (graph.ok()) {
    session =
        std::make_shared<engine::GraphSession>(std::move(*graph), pool_);
  }
  lock.lock();
  // The entry may have been forgotten — or forgotten and re-Defined
  // under the same name — mid-load. The generation check makes sure we
  // never install this load (or clear the loading flag) on an entry that
  // is not the one we started from; Forget already woke our waiters.
  it = entries_.find(name);
  if (it == entries_.end() || it->second.generation != generation) {
    cv_.notify_all();
    return Status::NotFound("graph '" + name + "' was removed during load");
  }
  it->second.loading = false;
  cv_.notify_all();
  if (!graph.ok()) {
    return Status(graph.status().code(), "loading graph '" + name +
                                             "' from '" + source +
                                             "': " + graph.status().message());
  }
  it->second.session = session;
  it->second.bytes = session->memory_bytes();
  it->second.last_use = ++tick_;
  it->second.loads += 1;
  loads_ += 1;
  CatalogLoads().Add(1);
  resident_bytes_ += it->second.bytes;
  EvictOverBudgetLocked(name);
  return session;
}

StatusOr<SessionCatalog::MutateResult> SessionCatalog::Mutate(
    const std::string& name, const GraphDelta& delta) {
  // The (rare) retry covers one narrow race: another Acquire evicting
  // this session between our Acquire and the pin below.
  for (int attempt = 0; attempt < 3; ++attempt) {
    StatusOr<std::shared_ptr<engine::GraphSession>> lease = Acquire(name);
    if (!lease.ok()) return lease.status();

    uint64_t generation = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = entries_.find(name);
      // Mutations of one graph serialize here (they would serialize on
      // the session's rebuild mutex anyway): the budget projection
      // below therefore always measures the LATEST snapshot — two
      // concurrent deltas cannot both be admitted against the same
      // pre-mutation size.
      while (it != entries_.end() &&
             (it->second.loading || it->second.mutating)) {
        cv_.wait(lock);
        it = entries_.find(name);
      }
      if (it == entries_.end()) {
        return Status::NotFound("graph '" + name +
                                "' was removed before the mutation applied");
      }
      if (it->second.session != *lease) continue;  // evicted meanwhile; retry
      generation = it->second.generation;

      // Project the post-mutation footprint against the byte budget and
      // reject BEFORE rebuilding. Loads may exceed the budget (an
      // oversized session is still evictable, so the overage is
      // transient) — a mutated session is pinned and cannot be evicted,
      // so the projection must fit alongside every OTHER pinned
      // session's charge or the budget becomes unenforceable.
      std::size_t projected = 0;
      if (options_.memory_budget_bytes > 0) {
        const std::shared_ptr<const engine::GraphSnapshot> current =
            (*lease)->snapshot();
        const int64_t nodes =
            std::min<int64_t>(static_cast<int64_t>(current->num_nodes()) +
                                  delta.add_nodes(),
                              std::numeric_limits<NodeId>::max());
        // Removals shrink the projection: a successful Apply removes
        // exactly remove_edges() (a missing edge fails the whole
        // delta), so an over-budget session CAN be mutated smaller.
        const int64_t edges = std::max<int64_t>(
            0, current->num_edges() +
                   static_cast<int64_t>(delta.add_edges().size()) -
                   static_cast<int64_t>(delta.remove_edges().size()));
        projected = engine::EstimateSessionBytes(
            static_cast<NodeId>(nodes), edges,
            ProjectsWeighted(current->graph(), delta));
        std::size_t pinned_other = 0;
        for (const auto& [other_name, other] : entries_) {
          if (other_name == name || other.session == nullptr) continue;
          if (!other.mutated && !other.mutating) continue;  // evictable
          pinned_other += std::max(other.bytes, other.projected_bytes);
        }
        if (projected + pinned_other > options_.memory_budget_bytes) {
          return Status::FailedPrecondition(
              "mutation of graph '" + name + "' would need ~" +
              std::to_string(projected) + " resident bytes (plus " +
              std::to_string(pinned_other) +
              " in other pinned sessions), over the catalog budget of " +
              std::to_string(options_.memory_budget_bytes) +
              " (mutated sessions are pinned from eviction, so they "
              "must fit the budget)");
        }
      }
      // Pin the entry from eviction while the rebuild runs, so the
      // catalog can never drop-and-reload the session — silently
      // undoing a delta — between the rebuild and the byte re-charge.
      it->second.mutating = true;
      it->second.projected_bytes = projected;
    }

    // The CSR rebuild runs outside the catalog lock. Pin the snapshot
    // being retired first: in-flight warm solves admitted against it
    // resolve their warm state by snapshot identity, so it must stay
    // alive one mutation deep (see MutateResult::predecessor).
    const std::shared_ptr<const engine::GraphSnapshot> retired =
        (*lease)->snapshot();
    StatusOr<engine::GraphSession::VersionedSnapshot> applied =
        (*lease)->Mutate(delta);

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    // Release the mutation slot whenever the entry we pinned still
    // exists (the session pointer may have been cleared by an explicit
    // Unload; the pin must not outlive our call either way).
    const bool entry_alive =
        it != entries_.end() && it->second.generation == generation;
    if (entry_alive) {
      it->second.mutating = false;
      it->second.projected_bytes = 0;
      cv_.notify_all();
    }
    const bool tracked = entry_alive && it->second.session == *lease;
    if (!applied.ok()) {
      // The permanent pin reflects whether the session truly holds
      // mutations; the ground truth is the session epoch (a concurrent
      // Mutate may have succeeded while we were rebuilding).
      if (tracked) it->second.mutated = (*lease)->epoch() > 0;
      return applied.status();
    }
    if (tracked) {
      it->second.mutated = true;
      it->second.predecessor = retired;
      // Re-charge the byte budget with the post-mutation footprint so
      // the catalog and budget never see pre-mutation values; growth
      // may evict *other* sessions.
      const std::size_t bytes = (*lease)->memory_bytes();
      resident_bytes_ += bytes;
      resident_bytes_ -= it->second.bytes;
      it->second.bytes = bytes;
      it->second.last_use = ++tick_;
      mutations_ += 1;
      CatalogMutations().Add(1);
      EvictOverBudgetLocked(name);
    }
    // If the entry was Forgotten mid-mutation the delta still applied to
    // the leased session (the caller observes it); the catalog simply no
    // longer tracks that session.
    return MutateResult{std::move(*lease), std::move(*applied), retired};
  }
  return Status::FailedPrecondition(
      "graph '" + name +
      "' kept being evicted concurrently; retry the mutation");
}

void SessionCatalog::EvictOverBudgetLocked(const std::string& keep) {
  if (options_.memory_budget_bytes == 0) return;
  while (resident_bytes_ > options_.memory_budget_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      // Mutated sessions are pinned: their source spec no longer
      // describes their contents, so an eviction-reload would silently
      // undo the mutations. In-flight mutations (mutating) pin too — a
      // rebuild may be about to land on that session.
      if (it->first == keep || it->second.session == nullptr ||
          it->second.loading || it->second.mutated ||
          it->second.mutating) {
        continue;
      }
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing evictable left
    resident_bytes_ -= victim->second.bytes;
    victim->second.session.reset();  // leases keep the graph alive
    victim->second.predecessor.reset();
    victim->second.bytes = 0;
    evictions_ += 1;
    CatalogEvictions().Add(1);
  }
}

Status SessionCatalog::Unload(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  // An in-flight Acquire would install its session right after we
  // return; wait it out so "unloaded" really means not resident.
  // (The acquirer's lease stays valid — leases always outlive catalog
  // residency.)
  while (it != entries_.end() && it->second.loading) {
    cv_.wait(lock);
    it = entries_.find(name);
  }
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  if (it->second.session != nullptr) {
    resident_bytes_ -= it->second.bytes;
    it->second.session.reset();
    it->second.bytes = 0;
  }
  it->second.predecessor.reset();
  // Unloading a mutated session explicitly discards its mutations; the
  // next Acquire reloads the pristine source spec.
  it->second.mutated = false;
  return Status::Ok();
}

Status SessionCatalog::Forget(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  if (it->second.session != nullptr) {
    resident_bytes_ -= it->second.bytes;
  }
  entries_.erase(it);
  cv_.notify_all();  // waiters on a concurrent load must re-check
  return Status::Ok();
}

std::vector<std::string> SessionCatalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

CatalogStats SessionCatalog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CatalogStats stats;
  stats.loads = loads_;
  stats.evictions = evictions_;
  stats.mutations = mutations_;
  stats.resident_bytes = resident_bytes_;
  for (const auto& [name, entry] : entries_) {
    CatalogSessionInfo info;
    info.name = name;
    info.source = entry.source;
    info.resident = entry.session != nullptr;
    info.mutated = entry.mutated;
    info.bytes = entry.bytes;
    info.loads = entry.loads;
    info.epoch = entry.session != nullptr ? entry.session->epoch() : 0;
    stats.sessions.push_back(std::move(info));
  }
  return stats;
}

}  // namespace cfcm::serve
