#include "serve/catalog.h"

#include <utility>

#include "graph/spec.h"
#include "runtime/shared_pool.h"

namespace cfcm::serve {

SessionCatalog::SessionCatalog(CatalogOptions options)
    : options_(options), pool_(&SharedThreadPool(options.num_threads)) {}

Status SessionCatalog::Define(const std::string& name,
                              const std::string& source) {
  if (name.empty()) return Status::InvalidArgument("graph name must be non-empty");
  if (source.empty()) {
    return Status::InvalidArgument("graph source must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.source != source) {
      return Status::FailedPrecondition(
          "graph '" + name + "' is already defined with source '" +
          it->second.source + "'; unload it before redefining");
    }
    return Status::Ok();
  }
  Entry entry;
  entry.source = source;
  entry.generation = next_generation_++;
  entries_.emplace(name, std::move(entry));
  return Status::Ok();
}

StatusOr<std::shared_ptr<engine::GraphSession>> SessionCatalog::Acquire(
    const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name +
                            "' is not in the catalog; load it first");
  }
  // Wait out a concurrent load of the same name. The entry may be
  // forgotten while we wait, so re-find each round.
  while (it != entries_.end() && it->second.loading) {
    cv_.wait(lock);
    it = entries_.find(name);
  }
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name +
                            "' was removed while waiting for its load");
  }
  Entry& entry = it->second;
  entry.last_use = ++tick_;
  if (entry.session != nullptr) {
    return entry.session;
  }

  // Load outside the lock: graph construction can be seconds for large
  // specs and must not serialize the whole catalog.
  entry.loading = true;
  const std::string source = entry.source;
  const uint64_t generation = entry.generation;
  lock.unlock();
  StatusOr<Graph> graph = LoadGraphFromSpec(source);
  std::shared_ptr<engine::GraphSession> session;
  if (graph.ok()) {
    session =
        std::make_shared<engine::GraphSession>(std::move(*graph), pool_);
  }
  lock.lock();
  // The entry may have been forgotten — or forgotten and re-Defined
  // under the same name — mid-load. The generation check makes sure we
  // never install this load (or clear the loading flag) on an entry that
  // is not the one we started from; Forget already woke our waiters.
  it = entries_.find(name);
  if (it == entries_.end() || it->second.generation != generation) {
    cv_.notify_all();
    return Status::NotFound("graph '" + name + "' was removed during load");
  }
  it->second.loading = false;
  cv_.notify_all();
  if (!graph.ok()) {
    return Status(graph.status().code(), "loading graph '" + name +
                                             "' from '" + source +
                                             "': " + graph.status().message());
  }
  it->second.session = session;
  it->second.bytes = session->memory_bytes();
  it->second.last_use = ++tick_;
  it->second.loads += 1;
  loads_ += 1;
  resident_bytes_ += it->second.bytes;
  EvictOverBudgetLocked(name);
  return session;
}

void SessionCatalog::EvictOverBudgetLocked(const std::string& keep) {
  if (options_.memory_budget_bytes == 0) return;
  while (resident_bytes_ > options_.memory_budget_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep || it->second.session == nullptr ||
          it->second.loading) {
        continue;
      }
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing evictable left
    resident_bytes_ -= victim->second.bytes;
    victim->second.session.reset();  // leases keep the graph alive
    victim->second.bytes = 0;
    evictions_ += 1;
  }
}

Status SessionCatalog::Unload(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  // An in-flight Acquire would install its session right after we
  // return; wait it out so "unloaded" really means not resident.
  // (The acquirer's lease stays valid — leases always outlive catalog
  // residency.)
  while (it != entries_.end() && it->second.loading) {
    cv_.wait(lock);
    it = entries_.find(name);
  }
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  if (it->second.session != nullptr) {
    resident_bytes_ -= it->second.bytes;
    it->second.session.reset();
    it->second.bytes = 0;
  }
  return Status::Ok();
}

Status SessionCatalog::Forget(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("graph '" + name + "' is not in the catalog");
  }
  if (it->second.session != nullptr) {
    resident_bytes_ -= it->second.bytes;
  }
  entries_.erase(it);
  cv_.notify_all();  // waiters on a concurrent load must re-check
  return Status::Ok();
}

std::vector<std::string> SessionCatalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

CatalogStats SessionCatalog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CatalogStats stats;
  stats.loads = loads_;
  stats.evictions = evictions_;
  stats.resident_bytes = resident_bytes_;
  for (const auto& [name, entry] : entries_) {
    CatalogSessionInfo info;
    info.name = name;
    info.source = entry.source;
    info.resident = entry.session != nullptr;
    info.bytes = entry.bytes;
    info.loads = entry.loads;
    stats.sessions.push_back(std::move(info));
  }
  return stats;
}

}  // namespace cfcm::serve
