// Minimal JSON value, parser and writer for the serving layer's
// line-delimited wire protocol (DESIGN.md §10). No external
// dependencies; hardened for untrusted network input (depth limit,
// strict trailing-garbage check, full escape handling).
#ifndef CFCM_SERVE_JSON_H_
#define CFCM_SERVE_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace cfcm::serve {

/// \brief One JSON value: null, bool, number, string, array or object.
///
/// Numbers keep int64 exactness when the literal is integral (seeds are
/// 64-bit), falling back to double otherwise. Objects use std::map so
/// serialization is deterministic (sorted keys) — responses for
/// identical requests are byte-identical, which the serving tests rely
/// on.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}        // NOLINT
  JsonValue(bool b) : value_(b) {}                      // NOLINT
  JsonValue(int64_t i) : value_(i) {}                   // NOLINT
  JsonValue(int i) : value_(static_cast<int64_t>(i)) {}  // NOLINT
  JsonValue(uint64_t u) : value_(static_cast<int64_t>(u)) {}  // NOLINT
  JsonValue(double d) : value_(d) {}                    // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}    // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}  // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}          // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}         // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const {
    return std::holds_alternative<int64_t>(value_) ||
           std::holds_alternative<double>(value_);
  }
  /// True when the number is stored as an exact int64.
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  /// Integral value; a double is truncated toward zero.
  int64_t as_int() const {
    if (const auto* i = std::get_if<int64_t>(&value_)) return *i;
    return static_cast<int64_t>(std::get<double>(value_));
  }
  double as_double() const {
    if (const auto* i = std::get_if<int64_t>(&value_)) {
      return static_cast<double>(*i);
    }
    return std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& array() const { return std::get<Array>(value_); }
  Array& array() { return std::get<Array>(value_); }
  const Object& object() const { return std::get<Object>(value_); }
  Object& object() { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when not an object or key absent.
  const JsonValue* Find(const std::string& key) const {
    const auto* obj = std::get_if<Object>(&value_);
    if (obj == nullptr) return nullptr;
    auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }

  /// Compact single-line serialization (no spaces, sorted object keys,
  /// "\n"-free — safe to frame as one protocol line).
  std::string Serialize() const;

  /// Strict parse of a complete JSON document. Rejects trailing
  /// non-whitespace, nesting beyond 64 levels, bad escapes and bad
  /// numbers with InvalidArgument.
  static StatusOr<JsonValue> Parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Escapes `s` for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscapeString(const std::string& s);

}  // namespace cfcm::serve

#endif  // CFCM_SERVE_JSON_H_
