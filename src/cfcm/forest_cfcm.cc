#include "cfcm/forest_cfcm.h"

#include <algorithm>

#include "cfcm/cfcc.h"
#include "cfcm/lazy_greedy.h"
#include "common/timer.h"
#include "estimators/first_pick.h"
#include "estimators/forest_delta.h"

namespace cfcm {

namespace {

// The paper's literal Alg. 3 loop: every remaining candidate re-scored
// every round. Kept verbatim as the reference the lazy path is pinned
// against (tests/cfcm/lazy_greedy_test.cc).
StatusOr<CfcmResult> ForestCfcmExhaustive(const Graph& graph, int k,
                                          const CfcmOptions& options,
                                          ThreadPool& pool) {
  EstimatorOptions est = ToEstimatorOptions(options);

  CfcmResult result;
  std::vector<char> in_s(static_cast<std::size_t>(graph.num_nodes()), 0);
  // Iteration 1: argmin of the pseudoinverse diagonal (Alg. 3 lines 1-14).
  {
    const FirstPickResult first = EstimateFirstPick(graph, est, pool);
    result.selected.push_back(first.best);
    in_s[first.best] = 1;
    result.forests_per_iteration.push_back(first.forests);
    result.total_forests += first.forests;
    result.total_walk_steps += first.walk_steps;
  }
  // Iterations 2..k: argmax of Delta'(u, S) (Alg. 3 lines 15-18).
  for (int i = 1; i < k; ++i) {
    est.seed = options.seed + static_cast<uint64_t>(i) * 0x9e3779b9ULL;
    const DeltaEstimate delta = ForestDelta(graph, result.selected, est, pool);
    result.jl_rows = delta.jl_rows;
    result.forests_per_iteration.push_back(delta.forests);
    result.total_forests += delta.forests;
    result.total_walk_steps += delta.walk_steps;
    result.rescored_candidates += graph.num_nodes() - i;

    NodeId best = -1;
    double best_delta = -1;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      if (in_s[u]) continue;
      if (delta.delta[u] > best_delta) {
        best_delta = delta.delta[u];
        best = u;
      }
    }
    result.selected.push_back(best);
    in_s[best] = 1;
  }
  RecordSelectionCounters(result.rescored_candidates, result.heap_pops,
                          result.forests_reused);
  return result;
}

}  // namespace

StatusOr<CfcmResult> ForestCfcmMaximize(const Graph& graph, int k,
                                        const CfcmOptions& options) {
  return ForestCfcmMaximizeCaptured(graph, k, options, nullptr);
}

StatusOr<CfcmResult> ForestCfcmMaximizeCaptured(const Graph& graph, int k,
                                                const CfcmOptions& options,
                                                WarmCapture* capture) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
  Timer timer;
  ThreadPool& pool = ResolveSamplingPool(options);

  StatusOr<CfcmResult> result =
      options.selection == SelectionMode::kExhaustive
          ? ForestCfcmExhaustive(graph, k, options, pool)
          : LazyGreedySelect(
                graph, k, options, pool,
                [&graph, &options, &pool](const std::vector<NodeId>& s_nodes,
                                          uint64_t seed,
                                          const DeltaScope& scope) {
                  EstimatorOptions est = ToEstimatorOptions(options);
                  est.seed = seed;
                  return ForestDelta(graph, s_nodes, est, pool, scope);
                },
                /*allow_forest_reuse=*/true, capture);
  if (result.ok()) result->seconds = timer.Seconds();
  return result;
}

}  // namespace cfcm
