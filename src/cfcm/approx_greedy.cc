#include "cfcm/approx_greedy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cfcm/cfcc.h"
#include "common/rng.h"
#include "common/timer.h"

namespace cfcm {

StatusOr<ApproxGreedyResult> ApproxGreedyMaximize(const Graph& graph, int k,
                                                  const CfcmOptions& options,
                                                  const CgOptions& cg) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
  Timer timer;
  const NodeId n = graph.num_nodes();
  const std::size_t nn = static_cast<std::size_t>(n);
  const EstimatorOptions est = ToEstimatorOptions(options);
  const int w = ResolveJlRows(est, n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(w));
  // Weighted incidence: L = B^T W_e B, so sketch rows are scaled by
  // sqrt(w_e) per edge (1.0 on unit-weighted graphs, bit-identical to
  // the unweighted sketch).
  const auto edges = graph.WeightedEdges();
  std::vector<double> sqrt_w(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    sqrt_w[e] = std::sqrt(edges[e].weight);
  }

  ApproxGreedyResult result;
  std::vector<double> score(nn, 0.0);
  Vector rhs(nn, 0.0), sol(nn, 0.0);

  // ---- Pick 1: L†_uu ≈ sum_i (L† B^T W_e^{1/2} q_i)_u^2.
  for (int i = 0; i < w; ++i) {
    Rng rng(options.seed ^ 0x1f123bb5ULL, static_cast<uint64_t>(i));
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const double q = rng.NextBool() ? scale : -scale;
      rhs[edges[e].u] += sqrt_w[e] * q;
      rhs[edges[e].v] -= sqrt_w[e] * q;
    }
    sol.assign(nn, 0.0);
    const CgSummary summary = SolveLaplacianPseudoinverse(graph, rhs, &sol, cg);
    ++result.solver_calls;
    result.cg_iterations += summary.iterations;
    for (NodeId u = 0; u < n; ++u) score[u] += sol[u] * sol[u];
  }
  std::vector<char> in_s(nn, 0);
  const NodeId first = static_cast<NodeId>(
      std::min_element(score.begin(), score.end()) - score.begin());
  result.selected.push_back(first);
  in_s[first] = 1;

  // ---- Picks 2..k.
  std::vector<double> numerator(nn), denominator(nn);
  for (int pick = 1; pick < k; ++pick) {
    LaplacianSubmatrixOp op(graph, in_s);
    std::fill(numerator.begin(), numerator.end(), 0.0);
    std::fill(denominator.begin(), denominator.end(), 0.0);

    // Numerator: ||W L_{-S}^{-1} e_u||^2, rows of W are Rademacher/sqrt(w)
    // over V \ S.
    for (int i = 0; i < w; ++i) {
      Rng rng(options.seed ^ 0x53a5ca9dULL,
              (static_cast<uint64_t>(pick) << 32) | static_cast<uint64_t>(i));
      for (NodeId u = 0; u < n; ++u) {
        rhs[u] = in_s[u] ? 0.0 : (rng.NextBool() ? scale : -scale);
      }
      sol.assign(nn, 0.0);
      const CgSummary summary = SolveGroundedLaplacian(op, rhs, &sol, cg);
      ++result.solver_calls;
      result.cg_iterations += summary.iterations;
      for (NodeId u = 0; u < n; ++u) numerator[u] += sol[u] * sol[u];
    }
    // Denominator: (L_{-S}^{-1})_uu = ||B~ L_{-S}^{-1} e_u||^2 with
    // B~^T B~ = L_{-S}: interior incidence rows + sqrt(b_u) boundary rows.
    for (int i = 0; i < w; ++i) {
      Rng rng(options.seed ^ 0x7ee39a1bULL,
              (static_cast<uint64_t>(pick) << 32) | static_cast<uint64_t>(i));
      std::fill(rhs.begin(), rhs.end(), 0.0);
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (in_s[edges[e].u] || in_s[edges[e].v]) continue;
        const double q = rng.NextBool() ? scale : -scale;
        rhs[edges[e].u] += sqrt_w[e] * q;
        rhs[edges[e].v] -= sqrt_w[e] * q;
      }
      for (NodeId u = 0; u < n; ++u) {
        if (in_s[u]) continue;
        // b_u = total conductance from u into S (the grounding term of
        // L_{-S}); integer edge count when unit-weighted.
        double boundary = 0;
        const auto adj = graph.neighbors(u);
        const auto wts = graph.weights(u);
        for (std::size_t k = 0; k < adj.size(); ++k) {
          if (in_s[adj[k]]) boundary += wts.empty() ? 1.0 : wts[k];
        }
        if (boundary > 0) {
          const double q = rng.NextBool() ? scale : -scale;
          rhs[u] += std::sqrt(boundary) * q;
        }
      }
      sol.assign(nn, 0.0);
      const CgSummary summary = SolveGroundedLaplacian(op, rhs, &sol, cg);
      ++result.solver_calls;
      result.cg_iterations += summary.iterations;
      for (NodeId u = 0; u < n; ++u) denominator[u] += sol[u] * sol[u];
    }

    NodeId best = -1;
    double best_delta = -1;
    for (NodeId u = 0; u < n; ++u) {
      if (in_s[u]) continue;
      const double floor = 1.0 / (graph.weighted_degree(u) + 1.0);
      const double delta = numerator[u] / std::max(denominator[u], floor);
      if (delta > best_delta) {
        best_delta = delta;
        best = u;
      }
    }
    result.selected.push_back(best);
    in_s[best] = 1;
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace cfcm
