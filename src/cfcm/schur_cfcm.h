// SchurCFCM (paper Algorithm 5): Schur-complement-accelerated greedy
// CFCC maximization.
#ifndef CFCM_CFCM_SCHUR_CFCM_H_
#define CFCM_CFCM_SCHUR_CFCM_H_

#include <vector>

#include "cfcm/options.h"
#include "common/status.h"

namespace cfcm {

/// \brief Greedy hub-removal order: repeatedly the max-degree node of
/// the remaining graph, `count` entries (paper Section V-A's selection
/// strategy, before the size rule is applied).
std::vector<NodeId> HubRemovalOrder(const Graph& graph, int count);

/// \brief Selects the auxiliary root set T of high-degree hubs.
///
/// Takes the HubRemovalOrder prefix of size |T*| = argmin_{|T|}
/// { |T| - dmax(T) } (paper Section V-A), capped by `cap`, where dmax(T)
/// is the maximum degree after removing T and its incident edges.
std::vector<NodeId> SelectAuxiliaryRoots(const Graph& graph, int cap);

/// \brief SchurCFCM: like ForestCFCM but every marginal-gain round roots
/// the forests at S ∪ T and reconstructs L_{-S}^{-1} through the Schur
/// complement (Alg. 4). Same approximation factor (Theorem 4.7); faster
/// sampling and better accuracy on scale-free graphs.
StatusOr<CfcmResult> SchurCfcmMaximize(const Graph& graph, int k,
                                       const CfcmOptions& options = {});

}  // namespace cfcm

#endif  // CFCM_CFCM_SCHUR_CFCM_H_
