#include "cfcm/options.h"

#include "runtime/shared_pool.h"

namespace cfcm {

const char* SelectionModeName(SelectionMode mode) {
  return mode == SelectionMode::kLazy ? "lazy" : "exhaustive";
}

std::optional<SelectionMode> ParseSelectionMode(std::string_view name) {
  if (name == "lazy") return SelectionMode::kLazy;
  if (name == "exhaustive") return SelectionMode::kExhaustive;
  return std::nullopt;
}

EstimatorOptions ToEstimatorOptions(const CfcmOptions& options) {
  EstimatorOptions est;
  est.eps = options.eps;
  est.seed = options.seed;
  est.min_batch = options.min_batch;
  est.max_forests = options.max_forests;
  est.forest_factor = options.forest_factor;
  est.jl_rows = options.jl_rows;
  est.max_jl_rows = options.max_jl_rows;
  est.adaptive = options.adaptive;
  return est;
}

ThreadPool& ResolveSamplingPool(const CfcmOptions& options) {
  if (options.pool != nullptr) return *options.pool;
  return SharedThreadPool(options.num_threads);
}

}  // namespace cfcm
