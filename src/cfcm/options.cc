#include "cfcm/options.h"

#include "runtime/shared_pool.h"

namespace cfcm {

EstimatorOptions ToEstimatorOptions(const CfcmOptions& options) {
  EstimatorOptions est;
  est.eps = options.eps;
  est.seed = options.seed;
  est.min_batch = options.min_batch;
  est.max_forests = options.max_forests;
  est.forest_factor = options.forest_factor;
  est.jl_rows = options.jl_rows;
  est.max_jl_rows = options.max_jl_rows;
  est.adaptive = options.adaptive;
  return est;
}

ThreadPool& ResolveSamplingPool(const CfcmOptions& options) {
  if (options.pool != nullptr) return *options.pool;
  return SharedThreadPool(options.num_threads);
}

}  // namespace cfcm
