// Public configuration and result types for CFCM solvers.
#ifndef CFCM_CFCM_OPTIONS_H_
#define CFCM_CFCM_OPTIONS_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "estimators/options.h"
#include "graph/graph.h"

namespace cfcm {

/// \brief Options shared by ForestCFCM / SchurCFCM (and, where relevant,
/// the baselines).
///
/// Thread-count knobs are pure performance knobs: the sampling runtime's
/// ordered reduction (DESIGN.md §9) makes every selection and estimate
/// bitwise identical for any pool size.
struct CfcmOptions {
  double eps = 0.2;      ///< paper's error parameter epsilon
  uint64_t seed = 1;     ///< base RNG seed (full determinism per seed)
  int num_threads = 0;   ///< sampling workers; 0 = hardware concurrency
                         ///< (ignored when `pool` is set)

  /// Borrowed worker pool to run sampling on; nullptr = the shared
  /// process pool sized by num_threads. The engine injects its cached
  /// GraphSession pool here — solvers never construct pools themselves.
  ThreadPool* pool = nullptr;

  // -- sampling engineering knobs (see DESIGN.md "Engineering constants").
  int min_batch = 32;
  int max_forests = 1024;
  double forest_factor = 1.0;
  int jl_rows = 0;       ///< 0 = auto
  int max_jl_rows = 64;
  bool adaptive = true;

  // -- SchurCFCM only.
  int t_size = 0;   ///< |T|; 0 = the |T*| = argmin {|T| - dmax(T)} rule
  int t_cap = 256;  ///< upper bound on |T|
};

/// Per-iteration and total diagnostics of a solver run.
struct CfcmResult {
  std::vector<NodeId> selected;          ///< greedy order, size k
  std::vector<int> forests_per_iteration;
  std::int64_t total_forests = 0;
  std::int64_t total_walk_steps = 0;  ///< loop-erased walk steps sampled
  double seconds = 0.0;
  int jl_rows = 0;
  int auxiliary_roots = 0;  ///< |T| (SchurCFCM only)
};

/// Lowers CfcmOptions to the estimator-level sampling options.
EstimatorOptions ToEstimatorOptions(const CfcmOptions& options);

/// The pool a solver call runs its sampling on: the injected
/// options.pool if set, else the shared process pool for
/// options.num_threads.
ThreadPool& ResolveSamplingPool(const CfcmOptions& options);

}  // namespace cfcm

#endif  // CFCM_CFCM_OPTIONS_H_
