// Public configuration and result types for CFCM solvers.
#ifndef CFCM_CFCM_OPTIONS_H_
#define CFCM_CFCM_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "estimators/options.h"
#include "graph/graph.h"
#include "linalg/solver.h"

namespace cfcm {

/// How the sampled solvers run the greedy argmax of rounds 2..k.
///
/// kLazy is the CELF-style lazy evaluation of DESIGN.md §13: stale
/// gains upper-bound current gains (submodularity), so candidates are
/// re-scored in small batches until the refreshed top provably beats
/// every stale key. kExhaustive re-scores every candidate every round
/// (the paper's literal Alg. 3/5 loop); it remains the reference the
/// lazy path is pinned against.
enum class SelectionMode { kLazy, kExhaustive };

/// "lazy" / "exhaustive".
const char* SelectionModeName(SelectionMode mode);

/// Inverse of SelectionModeName; nullopt for unknown strings.
std::optional<SelectionMode> ParseSelectionMode(std::string_view name);

/// \brief Options shared by ForestCFCM / SchurCFCM (and, where relevant,
/// the baselines).
///
/// Thread-count knobs are pure performance knobs: the sampling runtime's
/// ordered reduction (DESIGN.md §9) makes every selection and estimate
/// bitwise identical for any pool size.
struct CfcmOptions {
  double eps = 0.2;      ///< paper's error parameter epsilon
  uint64_t seed = 1;     ///< base RNG seed (full determinism per seed)
  int num_threads = 0;   ///< sampling workers; 0 = hardware concurrency
                         ///< (ignored when `pool` is set)

  /// Borrowed worker pool to run sampling on; nullptr = the shared
  /// process pool sized by num_threads. The engine injects its cached
  /// GraphSession pool here — solvers never construct pools themselves.
  ThreadPool* pool = nullptr;

  // -- sampling engineering knobs (see DESIGN.md "Engineering constants").
  int min_batch = 32;
  int max_forests = 1024;
  double forest_factor = 1.0;
  int jl_rows = 0;       ///< 0 = auto
  int max_jl_rows = 64;
  bool adaptive = true;

  // -- SchurCFCM only.
  int t_size = 0;   ///< |T|; 0 = the |T*| = argmin {|T| - dmax(T)} rule
  int t_cap = 256;  ///< upper bound on |T|

  // -- greedy selection (sampled solvers; DESIGN.md §13).
  SelectionMode selection = SelectionMode::kLazy;
  /// Stale candidates re-scored per refresh batch in lazy mode.
  int lazy_batch = 8;
  /// Safety margin on stale keys: a refreshed top must exceed
  /// (1 + lazy_inflation) x the best stale key before it is selected.
  /// Stale keys already carry the estimator's own per-node Bernstein
  /// width factor (1 + rel) — each round re-scores on an independent
  /// forest/sketch draw, so a stale gain is a noisy sample of the
  /// current gain, not an upper bound (§13). This margin covers the
  /// residual cross-round drift of the true gain on top of that width;
  /// the default is validated by the pinned lazy-equals-exhaustive
  /// regression suite, and raising it only moves lazy monotonically
  /// toward the exhaustive scan.
  double lazy_inflation = 0.5;
  /// Cap on the per-node width factor folded into stale keys:
  /// key = gain * (1 + min(rel, lazy_width_cap)). The raw Bernstein
  /// width is union-bounded over nodes and forests, so for weak
  /// candidates rel is dominated by its log constants (it can reach
  /// 1e2..1e300 as the numerator estimate approaches 0) and would pin
  /// the whole tail to the refresh frontier forever. The cap is the
  /// faithfulness dial: higher values refresh more of the tail (at the
  /// limit every round degenerates to the full refresh, i.e. the
  /// exhaustive argmax), lower values prune harder. The pinned
  /// regression graphs stay bitwise equal across a wide cap range
  /// because their rounds fail the survival test outright and take the
  /// full-refresh path; the default is tuned so the decayed bench
  /// graphs (ba/ws) re-score well under half the candidates.
  double lazy_width_cap = 2.0;
  /// Cross-round forest reuse pre-screen (ForestCFCM only): re-score
  /// the top stale candidates on the previous round's forests with the
  /// new node cut out, and skip fresh sampling when the width check
  /// certifies the winner. Falls back to fresh sampling otherwise.
  bool lazy_reuse = true;
  /// Extra relative margin the reuse pre-screen's certified winner must
  /// clear (guards the importance-sampling support bias).
  double reuse_margin = 0.25;

  // -- incremental warm start (DESIGN.md §16; src/cfcm/incremental.h).
  /// Cold-fallback trigger: warm repair is refused when the accumulated
  /// delta touched more than this fraction of the current edge set.
  double warm_max_delta_fraction = 0.25;
  /// Per-member swap-sweep gate: an earlier selection member is
  /// re-contested (drop-one/add-best) only when the delta weight
  /// incident to it exceeds this fraction of its weighted degree.
  double warm_swap_impact = 0.05;
  /// Candidate pool size for the warm repair phases; 0 = auto
  /// (max(2 * lazy_batch, 16)).
  int warm_contenders = 0;

  // -- exact linear algebra (DESIGN.md §14).
  /// Which kernel backs the exact Laplacian paths (EXACT/OPTIMUM
  /// selection, exact scoring, Schur assembly, augment). kAuto resolves
  /// by kept dimension: dense up to kDenseBackendMaxN, sparse_ldlt
  /// above. Every backend computes the same numbers; this is a
  /// time/memory knob, not an accuracy knob.
  SolverBackend solver_backend = SolverBackend::kAuto;
};

/// Per-iteration and total diagnostics of a solver run.
struct CfcmResult {
  std::vector<NodeId> selected;          ///< greedy order, size k
  std::vector<int> forests_per_iteration;
  std::int64_t total_forests = 0;
  std::int64_t total_walk_steps = 0;  ///< loop-erased walk steps sampled
  double seconds = 0.0;
  int jl_rows = 0;
  int auxiliary_roots = 0;  ///< |T| (SchurCFCM only)

  // -- selection-layer work counters (DESIGN.md §13). In exhaustive
  // mode rescored_candidates counts the full per-round scans and the
  // other two stay 0.
  std::int64_t rescored_candidates = 0;  ///< candidate gain evaluations
  std::int64_t heap_pops = 0;            ///< lazy-heap pops
  std::int64_t forests_reused = 0;       ///< arena replays (no walks)

  // -- incremental warm-start diagnostics (DESIGN.md §16). All zero on
  // cold solves.
  std::int64_t forests_resampled = 0;  ///< dirty/extension forests drawn
  std::int64_t swap_moves = 0;         ///< repair swaps applied
  bool warm_started = false;           ///< solved via warm repair
  bool cold_fallback = false;          ///< warm requested but refused

  /// Resolved Laplacian solver backend ("dense" / "sparse_ldlt" / "cg"),
  /// empty for solvers that never touch the exact kernels.
  std::string solver_backend;
};

/// Lowers CfcmOptions to the estimator-level sampling options.
EstimatorOptions ToEstimatorOptions(const CfcmOptions& options);

/// The pool a solver call runs its sampling on: the injected
/// options.pool if set, else the shared process pool for
/// options.num_threads.
ThreadPool& ResolveSamplingPool(const CfcmOptions& options);

}  // namespace cfcm

#endif  // CFCM_CFCM_OPTIONS_H_
