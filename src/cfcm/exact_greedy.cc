#include "cfcm/exact_greedy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "cfcm/cfcc.h"
#include "common/timer.h"
#include "linalg/laplacian.h"
#include "linalg/solver.h"

namespace cfcm {
namespace {

// The pinned dense reference: materializes M = L_{-S}^{-1} and applies
// the Sherman-Morrison downdate in place. O(n^3 + k n^2) time, O(n^2)
// memory. Kept byte-identical to the pre-backend implementation.
StatusOr<ExactGreedyResult> DenseGreedy(const Graph& graph, int k) {
  Timer timer;
  const NodeId n = graph.num_nodes();
  ExactGreedyResult result;
  result.backend = SolverBackend::kDense;

  // Pick 1: argmin_u L†_uu  (Eq. 4: sum_v R(u,v) = Tr(L†) + n L†_uu).
  NodeId first = 0;
  {
    const DenseMatrix pinv = LaplacianPseudoinverse(graph);
    double best = pinv(0, 0);
    for (NodeId u = 1; u < n; ++u) {
      if (pinv(u, u) < best) {
        best = pinv(u, u);
        first = u;
      }
    }
  }
  result.selected.push_back(first);

  // M = L_{-S}^{-1} over the kept index (S = {first}).
  const SubmatrixIndex index = MakeSubmatrixIndex(n, {first});
  DenseMatrix m = ExactLaplacianSubmatrixInverse(graph, {first});
  const int dim = m.rows();
  std::vector<char> alive(static_cast<std::size_t>(dim), 1);
  double trace = m.Trace();
  result.trace_after.push_back(trace);

  std::vector<double> col_norm(static_cast<std::size_t>(dim));
  for (int pick = 1; pick < k; ++pick) {
    // Delta(u,S) = ||M e_u||^2 / M_uu (Eq. 5, M symmetric).
    int best = -1;
    double best_gain = -1;
    for (int u = 0; u < dim; ++u) {
      if (!alive[u]) continue;
      double nrm = 0;
      const auto mu = m.Row(u);  // M symmetric: row access = column norm
      for (int j = 0; j < dim; ++j) {
        if (alive[j]) nrm += mu[j] * mu[j];
      }
      col_norm[u] = nrm;
      const double gain = nrm / m(u, u);
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    assert(best >= 0);
    // Downdate: removing row/col `best` from L_{-S} maps the inverse to
    // M' = M - M e_b e_b^T M / M_bb on the remaining indices.
    const double inv_pivot = 1.0 / m(best, best);
    for (int i = 0; i < dim; ++i) {
      if (!alive[i] || i == best) continue;
      const double f = m(i, best) * inv_pivot;
      if (f == 0.0) continue;
      auto mi = m.MutableRow(i);
      const auto mb = m.Row(best);
      for (int j = 0; j < dim; ++j) mi[j] -= f * mb[j];
    }
    alive[best] = 0;
    trace -= best_gain;
    result.trace_after.push_back(trace);
    result.selected.push_back(index.kept[best]);
  }
  result.seconds = timer.Seconds();
  return result;
}

// Factor-based greedy: same argmins/argmaxes and (up to roundoff) the
// same scalars as DenseGreedy without ever materializing an inverse.
//
// Invariant: after t picks beyond the first, the current inverse is
//   M_t = M_0 - sum_t f^(t) f^(t)^T / a_t,   M_0 = L_{-first}^{-1},
// where f^(t) = M_{t-1} e_{b_t} and a_t = f^(t)[b_t]. Dead rows/columns
// of M_t are exactly zero in exact arithmetic, so storing f^(t) with
// dead entries zeroed and summing full inner products reproduces the
// alive-restricted sums of the dense scan. Per round this needs two
// solves against the fixed base factor (f and g = M_t f) plus O(t n)
// correction work.
StatusOr<ExactGreedyResult> FactoredGreedy(const Graph& graph, int k,
                                           const CfcmOptions& options,
                                           SolverBackend backend) {
  Timer timer;
  const NodeId n = graph.num_nodes();
  ExactGreedyResult result;
  result.backend = backend;

  // Pick 1: argmin_u L†_uu without the dense pseudoinverse. Ground an
  // arbitrary node g (0) and let H = L_{-g}^{-1} zero-padded at g; then
  // L† = P H P with P = I - 11^T/n, so
  //   L†_uu = H_uu - (2/n)(H1)_u + (1^T H 1)/n^2.
  // One factorization, one selected-inverse diagonal, one solve.
  NodeId first = 0;
  {
    const NodeId ground = 0;
    auto solver = MakeGroundedSolver(graph, {ground}, backend);
    CFCM_RETURN_IF_ERROR(solver.status());
    const SubmatrixIndex gidx = MakeSubmatrixIndex(n, {ground});
    const Vector h_diag = (*solver)->InverseDiagonal();
    Vector ones(static_cast<std::size_t>((*solver)->dim()), 1.0);
    const Vector h_row_sum = (*solver)->Solve(ones);
    double total = 0;
    for (double v : h_row_sum) total += v;

    const double inv_n = 1.0 / static_cast<double>(n);
    double best = 0;
    for (NodeId u = 0; u < n; ++u) {
      const int pos = gidx.pos[u];
      const double huu = pos >= 0 ? h_diag[pos] : 0.0;
      const double h1u = pos >= 0 ? h_row_sum[pos] : 0.0;
      const double diag_u = huu - 2.0 * inv_n * h1u + total * inv_n * inv_n;
      if (u == 0 || diag_u < best) {
        best = diag_u;
        first = u;
      }
    }
  }
  result.selected.push_back(first);

  const SubmatrixIndex index = MakeSubmatrixIndex(n, {first});
  auto solver_or = MakeGroundedSolver(graph, {first}, backend);
  CFCM_RETURN_IF_ERROR(solver_or.status());
  const LaplacianSolver& solver = **solver_or;
  const int dim = solver.dim();

  if (k == 1) {
    result.trace_after.push_back(solver.TraceInverse());
    result.seconds = timer.Seconds();
    return result;
  }

  // Initialize diag(M_0) and col_norm_u = ||M_0 e_u||^2 with dim
  // independent solves (the dominant cost; deterministic under any pool
  // size since every column is its own solve).
  std::vector<double> col_norm(static_cast<std::size_t>(dim));
  std::vector<double> diag(static_cast<std::size_t>(dim));
  ResolveSamplingPool(options).ParallelFor(
      static_cast<std::size_t>(dim), [&](std::size_t u) {
        Vector e(static_cast<std::size_t>(dim), 0.0);
        e[u] = 1.0;
        const Vector col = solver.Solve(e);
        double nrm = 0;
        for (double v : col) nrm += v * v;
        col_norm[u] = nrm;
        diag[u] = col[u];
      });
  double trace = 0;
  for (double d : diag) trace += d;
  result.trace_after.push_back(trace);

  std::vector<char> alive(static_cast<std::size_t>(dim), 1);
  std::vector<Vector> history;       // f^(t), dead entries zeroed
  std::vector<double> history_beta;  // a_t = f^(t)[b_t]

  // Applies the stored rank-1 corrections: y <- y - sum_t f^(t) *
  // (f^(t) . x) / a_t, where x is the vector the base solve was run on.
  const auto apply_corrections = [&](const Vector& x, Vector& y) {
    for (std::size_t t = 0; t < history.size(); ++t) {
      const Vector& f = history[t];
      double dot = 0;
      for (int i = 0; i < dim; ++i) dot += f[i] * x[i];
      const double scale = dot / history_beta[t];
      if (scale == 0.0) continue;
      for (int i = 0; i < dim; ++i) y[i] -= scale * f[i];
    }
  };

  Vector e(static_cast<std::size_t>(dim), 0.0);
  for (int pick = 1; pick < k; ++pick) {
    int best = -1;
    double best_gain = -1;
    for (int u = 0; u < dim; ++u) {
      if (!alive[u]) continue;
      const double gain = col_norm[u] / diag[u];
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    assert(best >= 0);

    // f = M_t e_best: one base solve plus the correction history.
    e[best] = 1.0;
    Vector f = solver.Solve(e);
    apply_corrections(e, f);
    e[best] = 0.0;
    for (int i = 0; i < dim; ++i) {
      if (!alive[i]) f[i] = 0.0;  // exact zeros of M_t (fp hygiene)
    }
    const double alpha = f[best];

    // g = M_t f, needed for the col_norm recurrence.
    Vector g = solver.Solve(f);
    apply_corrections(f, g);
    double f_norm2 = 0;
    for (int i = 0; i < dim; ++i) f_norm2 += f[i] * f[i];

    // Downdate the tracked scalars:
    //   col_norm'_u = col_norm_u - 2 r g_u + r^2 ||f||^2, r = f_u/alpha
    //   diag'_u = diag_u - f_u^2/alpha
    //   trace'  = trace - ||f||^2/alpha
    for (int i = 0; i < dim; ++i) {
      if (!alive[i] || i == best) continue;
      const double r = f[i] / alpha;
      col_norm[i] += r * (r * f_norm2 - 2.0 * g[i]);
      diag[i] -= f[i] * r;
    }
    alive[best] = 0;
    trace -= f_norm2 / alpha;
    result.trace_after.push_back(trace);
    result.selected.push_back(index.kept[best]);
    history.push_back(std::move(f));
    history_beta.push_back(alpha);
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace

StatusOr<ExactGreedyResult> ExactGreedyMaximize(const Graph& graph, int k,
                                                const CfcmOptions& options) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
  // Backend choice is driven by the kept dimension the run factors.
  const SolverBackend backend =
      ResolveSolverBackend(options.solver_backend, graph.num_nodes() - 1);
  if (backend == SolverBackend::kDense) return DenseGreedy(graph, k);
  return FactoredGreedy(graph, k, options, backend);
}

StatusOr<ExactGreedyResult> ExactGreedyMaximize(const Graph& graph, int k) {
  return ExactGreedyMaximize(graph, k, CfcmOptions{});
}

}  // namespace cfcm
