#include "cfcm/exact_greedy.h"

#include <algorithm>
#include <cassert>

#include "cfcm/cfcc.h"
#include "common/timer.h"
#include "linalg/laplacian.h"

namespace cfcm {

StatusOr<ExactGreedyResult> ExactGreedyMaximize(const Graph& graph, int k) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
  Timer timer;
  const NodeId n = graph.num_nodes();
  ExactGreedyResult result;

  // Pick 1: argmin_u L†_uu  (Eq. 4: sum_v R(u,v) = Tr(L†) + n L†_uu).
  NodeId first = 0;
  {
    const DenseMatrix pinv = LaplacianPseudoinverse(graph);
    double best = pinv(0, 0);
    for (NodeId u = 1; u < n; ++u) {
      if (pinv(u, u) < best) {
        best = pinv(u, u);
        first = u;
      }
    }
  }
  result.selected.push_back(first);

  // M = L_{-S}^{-1} over the kept index (S = {first}).
  const SubmatrixIndex index = MakeSubmatrixIndex(n, {first});
  DenseMatrix m = ExactLaplacianSubmatrixInverse(graph, {first});
  const int dim = m.rows();
  std::vector<char> alive(static_cast<std::size_t>(dim), 1);
  double trace = m.Trace();
  result.trace_after.push_back(trace);

  std::vector<double> col_norm(static_cast<std::size_t>(dim));
  for (int pick = 1; pick < k; ++pick) {
    // Delta(u,S) = ||M e_u||^2 / M_uu (Eq. 5, M symmetric).
    int best = -1;
    double best_gain = -1;
    for (int u = 0; u < dim; ++u) {
      if (!alive[u]) continue;
      double nrm = 0;
      const auto mu = m.Row(u);  // M symmetric: row access = column norm
      for (int j = 0; j < dim; ++j) {
        if (alive[j]) nrm += mu[j] * mu[j];
      }
      col_norm[u] = nrm;
      const double gain = nrm / m(u, u);
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    assert(best >= 0);
    // Downdate: removing row/col `best` from L_{-S} maps the inverse to
    // M' = M - M e_b e_b^T M / M_bb on the remaining indices.
    const double inv_pivot = 1.0 / m(best, best);
    for (int i = 0; i < dim; ++i) {
      if (!alive[i] || i == best) continue;
      const double f = m(i, best) * inv_pivot;
      if (f == 0.0) continue;
      auto mi = m.MutableRow(i);
      const auto mb = m.Row(best);
      for (int j = 0; j < dim; ++j) mi[j] -= f * mb[j];
    }
    alive[best] = 0;
    trace -= best_gain;
    result.trace_after.push_back(trace);
    result.selected.push_back(index.kept[best]);
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace cfcm
