#include "cfcm/edge_addition.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_set>

#include "cfcm/cfcc.h"
#include "common/timer.h"
#include "graph/components.h"
#include "linalg/laplacian.h"

namespace cfcm {

namespace {

// Trace drop of adding x x^T to L_{-S}: ||M x||^2 / (1 + x^T M x), and
// the corresponding update M -= (M x)(M x)^T / (1 + x^T M x).
struct Candidate {
  NodeId u = -1;  // kept-index endpoint
  NodeId v = -1;  // kept-index endpoint or -1 when the edge goes into S
  NodeId orig_u = -1;
  NodeId orig_v = -1;
  double gain = -1;
};

}  // namespace

StatusOr<EdgeAdditionResult> GreedyEdgeAddition(
    const Graph& graph, const std::vector<NodeId>& group, int k,
    EdgeCandidates candidates) {
  if (group.empty()) {
    return Status::InvalidArgument("group must be non-empty");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (!IsConnected(graph)) {
    return Status::FailedPrecondition("graph must be connected");
  }
  const NodeId n = graph.num_nodes();
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  for (NodeId s : group) {
    if (s < 0 || s >= n) {
      return Status::InvalidArgument("group node out of range");
    }
    in_s[s] = 1;
  }

  Timer timer;
  const SubmatrixIndex index = MakeSubmatrixIndex(n, group);
  DenseMatrix m = ExactLaplacianSubmatrixInverse(graph, group);
  const int dim = m.rows();
  double trace = m.Trace();

  // Track the evolving edge set for candidate enumeration.
  std::unordered_set<uint64_t> adjacent;
  adjacent.reserve(static_cast<std::size_t>(graph.num_edges()) +
                   static_cast<std::size_t>(k));
  for (const auto& [a, b] : graph.Edges()) {
    adjacent.insert(UndirectedEdgeKey(a, b));
  }

  EdgeAdditionResult result;
  result.initial_trace = trace;
  Vector mx(static_cast<std::size_t>(dim));
  for (int round = 0; round < k; ++round) {
    Candidate best;
    // Row norms ||M e_u||^2 serve the into-group candidates directly.
    for (int u = 0; u < dim; ++u) {
      const NodeId orig_u = index.kept[u];
      const auto mu = m.Row(u);
      // (u, s) candidates: x = e_u.
      for (NodeId s : group) {
        if (adjacent.count(UndirectedEdgeKey(orig_u, s)) != 0) continue;
        double nrm = 0;
        for (int j = 0; j < dim; ++j) nrm += mu[j] * mu[j];
        const double gain = nrm / (1.0 + m(u, u));
        if (gain > best.gain) {
          best = {static_cast<NodeId>(u), -1, orig_u, s, gain};
        }
        break;  // gain is identical for every s in S; pick the first
      }
      if (candidates == EdgeCandidates::kAny) {
        // (u, v) candidates inside V\S: x = e_u - e_v.
        const auto mu_row = m.Row(u);
        for (int v = u + 1; v < dim; ++v) {
          const NodeId orig_v = index.kept[v];
          if (adjacent.count(UndirectedEdgeKey(orig_u, orig_v)) != 0) continue;
          const auto mv = m.Row(v);
          double nrm = 0, xmx = 0;
          for (int j = 0; j < dim; ++j) {
            const double d = mu_row[j] - mv[j];
            nrm += d * d;
          }
          xmx = m(u, u) + m(v, v) - 2 * m(u, v);
          const double gain = nrm / (1.0 + xmx);
          if (gain > best.gain) {
            best = {static_cast<NodeId>(u), static_cast<NodeId>(v), orig_u,
                    orig_v, gain};
          }
        }
      }
    }
    if (best.gain < 0) {
      return Status::FailedPrecondition(
          "no candidate non-edges left to add");
    }
    // Apply the rank-1 Sherman–Morrison update.
    double denom;
    if (best.v < 0) {
      for (int j = 0; j < dim; ++j) mx[j] = m(best.u, j);
      denom = 1.0 + m(best.u, best.u);
    } else {
      for (int j = 0; j < dim; ++j) mx[j] = m(best.u, j) - m(best.v, j);
      denom = 1.0 + m(best.u, best.u) + m(best.v, best.v) -
              2 * m(best.u, best.v);
    }
    const double inv_denom = 1.0 / denom;
    for (int i = 0; i < dim; ++i) {
      const double f = mx[i] * inv_denom;
      if (f == 0.0) continue;
      auto mi = m.MutableRow(i);
      for (int j = 0; j < dim; ++j) mi[j] -= f * mx[j];
    }
    trace -= best.gain;
    adjacent.insert(UndirectedEdgeKey(best.orig_u, best.orig_v));
    result.added.emplace_back(std::min(best.orig_u, best.orig_v),
                              std::max(best.orig_u, best.orig_v));
    result.trace_after.push_back(trace);
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace cfcm
