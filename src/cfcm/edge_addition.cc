#include "cfcm/edge_addition.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cfcm/cfcc.h"
#include "common/timer.h"
#include "graph/components.h"
#include "linalg/laplacian.h"
#include "linalg/solver.h"

namespace cfcm {

namespace {

// Trace drop of adding x x^T to L_{-S}: ||M x||^2 / (1 + x^T M x), and
// the corresponding update M -= (M x)(M x)^T / (1 + x^T M x).
struct Candidate {
  NodeId u = -1;  // kept-index endpoint
  NodeId v = -1;  // kept-index endpoint or -1 when the edge goes into S
  NodeId orig_u = -1;
  NodeId orig_v = -1;
  double gain = -1;
};

Status ValidateEdgeAdditionArguments(const Graph& graph,
                                     const std::vector<NodeId>& group, int k,
                                     std::vector<char>* in_s) {
  if (group.empty()) {
    return Status::InvalidArgument("group must be non-empty");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (!IsConnected(graph)) {
    return Status::FailedPrecondition("graph must be connected");
  }
  const NodeId n = graph.num_nodes();
  in_s->assign(static_cast<std::size_t>(n), 0);
  for (NodeId s : group) {
    if (s < 0 || s >= n) {
      return Status::InvalidArgument("group node out of range");
    }
    (*in_s)[s] = 1;
  }
  return Status::Ok();
}

std::unordered_set<uint64_t> EdgeSet(const Graph& graph, int k) {
  std::unordered_set<uint64_t> adjacent;
  adjacent.reserve(static_cast<std::size_t>(graph.num_edges()) +
                   static_cast<std::size_t>(k));
  for (const auto& [a, b] : graph.Edges()) {
    adjacent.insert(UndirectedEdgeKey(a, b));
  }
  return adjacent;
}

// The pinned dense reference (pre-backend implementation, unchanged):
// materializes M and updates it in place. Handles both candidate sets.
StatusOr<EdgeAdditionResult> DenseEdgeAddition(
    const Graph& graph, const std::vector<NodeId>& group, int k,
    EdgeCandidates candidates) {
  Timer timer;
  const SubmatrixIndex index = MakeSubmatrixIndex(graph.num_nodes(), group);
  DenseMatrix m = ExactLaplacianSubmatrixInverse(graph, group);
  const int dim = m.rows();
  double trace = m.Trace();

  // Track the evolving edge set for candidate enumeration.
  std::unordered_set<uint64_t> adjacent = EdgeSet(graph, k);

  EdgeAdditionResult result;
  result.backend = SolverBackend::kDense;
  result.initial_trace = trace;
  Vector mx(static_cast<std::size_t>(dim));
  for (int round = 0; round < k; ++round) {
    Candidate best;
    // Row norms ||M e_u||^2 serve the into-group candidates directly.
    for (int u = 0; u < dim; ++u) {
      const NodeId orig_u = index.kept[u];
      const auto mu = m.Row(u);
      // (u, s) candidates: x = e_u.
      for (NodeId s : group) {
        if (adjacent.count(UndirectedEdgeKey(orig_u, s)) != 0) continue;
        double nrm = 0;
        for (int j = 0; j < dim; ++j) nrm += mu[j] * mu[j];
        const double gain = nrm / (1.0 + m(u, u));
        if (gain > best.gain) {
          best = {static_cast<NodeId>(u), -1, orig_u, s, gain};
        }
        break;  // gain is identical for every s in S; pick the first
      }
      if (candidates == EdgeCandidates::kAny) {
        // (u, v) candidates inside V\S: x = e_u - e_v.
        const auto mu_row = m.Row(u);
        for (int v = u + 1; v < dim; ++v) {
          const NodeId orig_v = index.kept[v];
          if (adjacent.count(UndirectedEdgeKey(orig_u, orig_v)) != 0) continue;
          const auto mv = m.Row(v);
          double nrm = 0, xmx = 0;
          for (int j = 0; j < dim; ++j) {
            const double d = mu_row[j] - mv[j];
            nrm += d * d;
          }
          xmx = m(u, u) + m(v, v) - 2 * m(u, v);
          const double gain = nrm / (1.0 + xmx);
          if (gain > best.gain) {
            best = {static_cast<NodeId>(u), static_cast<NodeId>(v), orig_u,
                    orig_v, gain};
          }
        }
      }
    }
    if (best.gain < 0) {
      return Status::FailedPrecondition(
          "no candidate non-edges left to add");
    }
    // Apply the rank-1 Sherman–Morrison update.
    double denom;
    if (best.v < 0) {
      for (int j = 0; j < dim; ++j) mx[j] = m(best.u, j);
      denom = 1.0 + m(best.u, best.u);
    } else {
      for (int j = 0; j < dim; ++j) mx[j] = m(best.u, j) - m(best.v, j);
      denom = 1.0 + m(best.u, best.u) + m(best.v, best.v) -
              2 * m(best.u, best.v);
    }
    const double inv_denom = 1.0 / denom;
    for (int i = 0; i < dim; ++i) {
      const double f = mx[i] * inv_denom;
      if (f == 0.0) continue;
      auto mi = m.MutableRow(i);
      for (int j = 0; j < dim; ++j) mi[j] -= f * mx[j];
    }
    trace -= best.gain;
    adjacent.insert(UndirectedEdgeKey(best.orig_u, best.orig_v));
    result.added.emplace_back(std::min(best.orig_u, best.orig_v),
                              std::max(best.orig_u, best.orig_v));
    result.trace_after.push_back(trace);
  }
  result.seconds = timer.Seconds();
  return result;
}

// Factor-based kToGroup path: never materializes M. The inverse after t
// added edges is M_t = M_0 - sum_t f^(t) f^(t)^T / b_t with
// f^(t) = M_{t-1} e_{u_t} and b_t = 1 + f^(t)[u_t], so each round needs
// two solves against the fixed base factor of L_{-S} plus the stored
// correction history; the candidate scan runs on maintained col_norm
// and diag scalars exactly as in the dense reference.
StatusOr<EdgeAdditionResult> FactoredEdgeAddition(
    const Graph& graph, const std::vector<NodeId>& group, int k,
    const CfcmOptions& options, SolverBackend backend) {
  Timer timer;
  const NodeId n = graph.num_nodes();
  const SubmatrixIndex index = MakeSubmatrixIndex(n, group);
  auto solver_or = MakeGroundedSolver(graph, group, backend);
  CFCM_RETURN_IF_ERROR(solver_or.status());
  const LaplacianSolver& solver = **solver_or;
  const int dim = solver.dim();

  // col_norm_u = ||M e_u||^2 and diag_u = M_uu via dim independent
  // solves (deterministic under any pool size).
  std::vector<double> col_norm(static_cast<std::size_t>(dim));
  std::vector<double> diag(static_cast<std::size_t>(dim));
  ResolveSamplingPool(options).ParallelFor(
      static_cast<std::size_t>(dim), [&](std::size_t u) {
        Vector e(static_cast<std::size_t>(dim), 0.0);
        e[u] = 1.0;
        const Vector col = solver.Solve(e);
        double nrm = 0;
        for (double v : col) nrm += v * v;
        col_norm[u] = nrm;
        diag[u] = col[u];
      });
  double trace = 0;
  for (double d : diag) trace += d;

  std::unordered_set<uint64_t> adjacent = EdgeSet(graph, k);

  EdgeAdditionResult result;
  result.backend = backend;
  result.initial_trace = trace;

  std::vector<Vector> history;       // f^(t)
  std::vector<double> history_beta;  // b_t = 1 + f^(t)[u_t]
  const auto apply_corrections = [&](const Vector& x, Vector& y) {
    for (std::size_t t = 0; t < history.size(); ++t) {
      const Vector& f = history[t];
      double dot = 0;
      for (int i = 0; i < dim; ++i) dot += f[i] * x[i];
      const double scale = dot / history_beta[t];
      if (scale == 0.0) continue;
      for (int i = 0; i < dim; ++i) y[i] -= scale * f[i];
    }
  };

  Vector e(static_cast<std::size_t>(dim), 0.0);
  for (int round = 0; round < k; ++round) {
    Candidate best;
    for (int u = 0; u < dim; ++u) {
      const NodeId orig_u = index.kept[u];
      for (NodeId s : group) {
        if (adjacent.count(UndirectedEdgeKey(orig_u, s)) != 0) continue;
        const double gain = col_norm[u] / (1.0 + diag[u]);
        if (gain > best.gain) {
          best = {static_cast<NodeId>(u), -1, orig_u, s, gain};
        }
        break;  // gain is identical for every s in S; pick the first
      }
    }
    if (best.gain < 0) {
      return Status::FailedPrecondition(
          "no candidate non-edges left to add");
    }
    // f = M_t e_best; apply the rank-1 correction to the tracked scalars.
    e[best.u] = 1.0;
    Vector f = solver.Solve(e);
    apply_corrections(e, f);
    e[best.u] = 0.0;
    const double beta = 1.0 + f[best.u];

    Vector g = solver.Solve(f);
    apply_corrections(f, g);
    double f_norm2 = 0;
    for (int i = 0; i < dim; ++i) f_norm2 += f[i] * f[i];

    for (int i = 0; i < dim; ++i) {
      const double r = f[i] / beta;
      col_norm[i] += r * (r * f_norm2 - 2.0 * g[i]);
      diag[i] -= f[i] * r;
    }
    trace -= f_norm2 / beta;
    adjacent.insert(UndirectedEdgeKey(best.orig_u, best.orig_v));
    result.added.emplace_back(std::min(best.orig_u, best.orig_v),
                              std::max(best.orig_u, best.orig_v));
    result.trace_after.push_back(trace);
    history.push_back(std::move(f));
    history_beta.push_back(beta);
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace

StatusOr<EdgeAdditionResult> GreedyEdgeAddition(
    const Graph& graph, const std::vector<NodeId>& group, int k,
    EdgeCandidates candidates, const CfcmOptions& options) {
  std::vector<char> in_s;
  CFCM_RETURN_IF_ERROR(
      ValidateEdgeAdditionArguments(graph, group, k, &in_s));
  const NodeId kept_dim = static_cast<NodeId>(
      MakeSubmatrixIndex(graph.num_nodes(), group).kept.size());
  SolverBackend backend =
      ResolveSolverBackend(options.solver_backend, kept_dim);
  // kAny needs arbitrary off-diagonal M_uv entries: dense only.
  if (candidates == EdgeCandidates::kAny) backend = SolverBackend::kDense;
  if (backend == SolverBackend::kDense) {
    return DenseEdgeAddition(graph, group, k, candidates);
  }
  return FactoredEdgeAddition(graph, group, k, options, backend);
}

StatusOr<EdgeAdditionResult> GreedyEdgeAddition(
    const Graph& graph, const std::vector<NodeId>& group, int k,
    EdgeCandidates candidates) {
  return GreedyEdgeAddition(graph, group, k, candidates, CfcmOptions{});
}

}  // namespace cfcm
