#include "cfcm/optimum.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>
#include <utility>

#include "cfcm/cfcc.h"
#include "common/timer.h"
#include "linalg/laplacian.h"

namespace cfcm {

namespace {

// Depth-first enumeration state over groups {u_1 < u_2 < ... < u_k}.
struct SearchState {
  int k;
  int dim;  // n - 1 (index space after removing the level-1 node)
  const SubmatrixIndex* index;
  std::vector<NodeId> current;  // original node ids chosen so far
  OptimumResult* result;

  // Recurses with M = L_{-S}^{-1} over the level-1 kept index; `alive`
  // marks indices not yet moved into S; `trace` = Tr(M) over alive.
  void Recurse(const DenseMatrix& m, std::vector<char>& alive, double trace,
               int last_index) {
    const int chosen = static_cast<int>(current.size());
    if (chosen == k) {
      ++result->subsets_evaluated;
      if (trace < result->trace) {
        result->trace = trace;
        result->best = current;
      }
      return;
    }
    if (chosen == k - 1) {
      // Leaf layer: evaluate every candidate without materializing M'.
      for (int u = last_index + 1; u < dim; ++u) {
        if (!alive[u]) continue;
        double nrm = 0;
        const auto mu = m.Row(u);  // M symmetric: row = column
        for (int j = 0; j < dim; ++j) {
          if (alive[j]) nrm += mu[j] * mu[j];
        }
        const double leaf_trace = trace - nrm / m(u, u);
        ++result->subsets_evaluated;
        if (leaf_trace < result->trace) {
          result->trace = leaf_trace;
          result->best = current;
          result->best.push_back(index->kept[u]);
        }
      }
      return;
    }
    for (int u = last_index + 1; u < dim; ++u) {
      if (!alive[u]) continue;
      // Need at least k - chosen - 1 more candidates above u.
      if (dim - u - 1 < k - chosen - 1) break;
      DenseMatrix next = m;
      const double inv_pivot = 1.0 / m(u, u);
      double gain = 0;
      const auto mu = m.Row(u);
      for (int j = 0; j < dim; ++j) {
        if (alive[j]) gain += mu[j] * mu[j];
      }
      gain *= inv_pivot;
      for (int i = 0; i < dim; ++i) {
        if (!alive[i] || i == u) continue;
        const double f = m(i, u) * inv_pivot;
        if (f == 0.0) continue;
        for (int j = 0; j < dim; ++j) {
          if (alive[j] && j != u) next(i, j) -= f * m(u, j);
        }
      }
      alive[u] = 0;
      current.push_back(index->kept[u]);
      Recurse(next, alive, trace - gain, u);
      current.pop_back();
      alive[u] = 1;
    }
  }
};

// Materializes L_{-removed}^{-1} through the chosen backend: the dense
// kernel inverts directly (byte-identical to the pre-backend code),
// the factor backends solve against the identity.
StatusOr<DenseMatrix> InverseViaBackend(const Graph& graph,
                                        const std::vector<NodeId>& removed,
                                        SolverBackend backend) {
  if (backend == SolverBackend::kDense) {
    return ExactLaplacianSubmatrixInverse(graph, removed);
  }
  auto solver = MakeGroundedSolver(graph, removed, backend);
  CFCM_RETURN_IF_ERROR(solver.status());
  const int dim = (*solver)->dim();
  DenseMatrix identity(dim, dim);
  for (int i = 0; i < dim; ++i) identity(i, i) = 1.0;
  return (*solver)->SolveMatrix(identity);
}

}  // namespace

StatusOr<OptimumResult> OptimumSearch(const Graph& graph, int k,
                                      const CfcmOptions& options) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
  const NodeId n = graph.num_nodes();
  if (n > 128) {
    return Status::InvalidArgument(
        "OptimumSearch is exhaustive; refusing n=" + std::to_string(n) +
        " > 128");
  }
  Timer timer;
  OptimumResult result;
  result.trace = std::numeric_limits<double>::infinity();
  // Resolved on the branch dimension n - 1; at optimum's scale kAuto is
  // always dense.
  result.backend = ResolveSolverBackend(options.solver_backend, n - 1);

  if (k == 1) {
    for (NodeId u = 0; u < n; ++u) {
      auto trace_or = TraceInverseSubmatrix(graph, {u}, result.backend);
      CFCM_RETURN_IF_ERROR(trace_or.status());
      const double trace = *trace_or;
      ++result.subsets_evaluated;
      if (trace < result.trace) {
        result.trace = trace;
        result.best = {u};
      }
    }
  } else {
    // Enumerate the smallest group element at the top level; each branch
    // pays one inversion, everything below is O(n^2) downdates.
    for (NodeId u1 = 0; u1 + k <= n; ++u1) {
      const SubmatrixIndex index = MakeSubmatrixIndex(n, {u1});
      auto m_or = InverseViaBackend(graph, {u1}, result.backend);
      CFCM_RETURN_IF_ERROR(m_or.status());
      const DenseMatrix m = std::move(*m_or);
      const int dim = m.rows();
      std::vector<char> alive(static_cast<std::size_t>(dim), 1);
      SearchState state{k, dim, &index, {u1}, &result};
      // Only indices whose original id exceeds u1 may be chosen next; the
      // kept index is ascending with u1 removed, so original id > u1
      // corresponds to kept position >= u1.
      state.Recurse(m, alive, m.Trace(), static_cast<int>(u1) - 1);
    }
  }
  result.cfcc = static_cast<double>(n) / result.trace;
  std::sort(result.best.begin(), result.best.end());
  result.seconds = timer.Seconds();
  return result;
}

StatusOr<OptimumResult> OptimumSearch(const Graph& graph, int k) {
  return OptimumSearch(graph, k, CfcmOptions{});
}

}  // namespace cfcm
