// Greedy edge addition for group CFCC — the open problem the paper
// poses in §VI ("Previous works have not solved the edge selection
// problem for maximizing CFCC, which presents an opportunity for future
// research"). This module implements the exact small-scale variant:
// given a fixed group S, repeatedly add the non-edge that maximizes the
// resulting C(S).
#ifndef CFCM_CFCM_EDGE_ADDITION_H_
#define CFCM_CFCM_EDGE_ADDITION_H_

#include <utility>
#include <vector>

#include "cfcm/options.h"
#include "common/status.h"
#include "graph/graph.h"
#include "linalg/solver.h"

namespace cfcm {

/// Which candidate edges the optimizer may add.
enum class EdgeCandidates {
  kToGroup,  ///< non-edges (u, s) with u in V\S, s in S (paper §VI framing)
  kAny,      ///< any non-edge of the graph
};

/// Result of greedy edge addition.
struct EdgeAdditionResult {
  std::vector<std::pair<NodeId, NodeId>> added;  ///< greedy order
  std::vector<double> trace_after;  ///< Tr(L'_{-S}^{-1}) after each edge
  double initial_trace = 0.0;      ///< before any addition
  double seconds = 0.0;
  /// Backend that ran the exact algebra (resolved, never kAuto).
  SolverBackend backend = SolverBackend::kDense;
};

/// \brief Adds `k` edges maximizing C(S) greedily, exactly.
///
/// Adding edge (u, v) inside V\S is the rank-1 update L += x x^T with
/// x = e_u - e_v, so by Sherman–Morrison the trace drops by
/// ||M x||^2 / (1 + x^T M x) with M = L_{-S}^{-1}; adding (u, s) with
/// s in S grounded is x = e_u.
///
/// The dense backend maintains M explicitly (O(n^3 + k n^2) time,
/// O(n^2) memory — the pinned reference). For kToGroup candidates the
/// sparse_ldlt/cg backends never form M: column norms are initialized
/// with n solves against the factored L_{-S} and every added edge is a
/// stored rank-1 correction, so each round costs two solves. kAny needs
/// arbitrary off-diagonal entries M_uv and always runs dense.
///
/// options.solver_backend picks the kernel (kAuto: by kept dimension).
/// Requires connected graph, non-empty S, k >= 1, and enough non-edges.
StatusOr<EdgeAdditionResult> GreedyEdgeAddition(
    const Graph& graph, const std::vector<NodeId>& group, int k,
    EdgeCandidates candidates, const CfcmOptions& options);

/// Backward-compatible overload: default options (auto backend).
StatusOr<EdgeAdditionResult> GreedyEdgeAddition(
    const Graph& graph, const std::vector<NodeId>& group, int k,
    EdgeCandidates candidates = EdgeCandidates::kToGroup);

}  // namespace cfcm

#endif  // CFCM_CFCM_EDGE_ADDITION_H_
