#include "cfcm/heuristics.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "cfcm/forest_cfcm.h"
#include "estimators/first_pick.h"
#include "linalg/laplacian.h"

namespace cfcm {

namespace {

// First k node ids when ordered by `better` (stable on ties by id).
std::vector<NodeId> TopK(NodeId n, int k,
                         const std::function<bool(NodeId, NodeId)>& better) {
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](NodeId a, NodeId b) {
                      if (better(a, b)) return true;
                      if (better(b, a)) return false;
                      return a < b;
                    });
  order.resize(static_cast<std::size_t>(k));
  return order;
}

}  // namespace

std::vector<NodeId> DegreeSelect(const Graph& graph, int k) {
  // Weighted degree = Laplacian diagonal; coincides with the
  // combinatorial degree (and its tie-breaks) on unit-weighted graphs.
  return TopK(graph.num_nodes(), k, [&](NodeId a, NodeId b) {
    return graph.weighted_degree(a) > graph.weighted_degree(b);
  });
}

std::vector<NodeId> TopCfccSelectExact(const Graph& graph, int k) {
  const DenseMatrix pinv = LaplacianPseudoinverse(graph);
  return TopK(graph.num_nodes(), k, [&](NodeId a, NodeId b) {
    return pinv(a, a) < pinv(b, b);
  });
}

std::vector<NodeId> TopCfccSelectEstimated(const Graph& graph, int k,
                                           const CfcmOptions& options) {
  ThreadPool& pool = ResolveSamplingPool(options);
  const FirstPickResult first =
      EstimateFirstPick(graph, ToEstimatorOptions(options), pool);
  return TopK(graph.num_nodes(), k, [&](NodeId a, NodeId b) {
    return first.scores[a] < first.scores[b];
  });
}

}  // namespace cfcm
