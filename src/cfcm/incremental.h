// Incremental re-solve for dynamic graphs (DESIGN.md §16).
//
// A solve on epoch e leaves behind a WarmState: the selected group, the
// final greedy round's per-candidate gains/keys, and that round's
// forest arena. GraphSession::Mutate folds each applied delta into the
// state (AdvanceWarmState): every retained forest is classified as
// *clean* — none of its loop-erased walks crossed a changed edge, so it
// remains a valid sample of the post-delta forest measure conditioned
// on avoiding the delta edges — or *dirty* (resampled from an
// independent stream on the new graph). Edge additions break the
// proposal support entirely (no retained forest can contain the new
// edge), so they additionally force an importance-correction resample
// share sized by the same degree-ratio bound the Bernstein machinery
// uses for z floors. A warm solve (ForestSolveWithWarm) then re-scores
// only the incumbent group plus a small contender pool on the
// partially-replayed forest stream and repairs the selection by
// swap-based local search, instead of rebuilding greedy rounds 1..k.
// Cold fallback triggers (delta too large, disconnection, parameter
// drift, k change) keep correctness independent of locality.
#ifndef CFCM_CFCM_INCREMENTAL_H_
#define CFCM_CFCM_INCREMENTAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cfcm/lazy_greedy.h"
#include "cfcm/options.h"
#include "common/status.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "runtime/forest_arena.h"

namespace cfcm {

/// Warm-start policy of one solve job. kAuto uses a warm state when one
/// is available and usable; kOn additionally counts a cold fallback
/// when it is not; kOff never warm-starts (but still deposits a state
/// for successors).
enum class WarmMode { kOff, kAuto, kOn };

/// "off" / "auto" / "on".
const char* WarmModeName(WarmMode mode);

/// Inverse of WarmModeName; nullopt for unknown strings.
std::optional<WarmMode> ParseWarmMode(std::string_view name);

/// \brief One-shot exclusive lease on a retained forest arena.
///
/// The arena's slabs are mutated in place by whichever consumer wins
/// the claim (a warm solve overwriting dirty slots, or Mutate moving
/// the arena into the successor state), while WarmState objects are
/// immutable and shared across epochs/threads. Every transfer creates a
/// fresh lease; a lease that was claimed but never transferred simply
/// retires with its owner.
struct ArenaLease {
  ForestArena arena;
  std::atomic<bool> claimed{false};

  /// True exactly once; the caller then owns `arena` exclusively.
  bool TryClaim() {
    return !claimed.exchange(true, std::memory_order_acq_rel);
  }
};

/// \brief Everything a successor epoch needs to warm-start: the
/// previous selection and final-round candidate scores, the retained
/// forest arena with its per-forest clean/dirty classification, and a
/// running summary of the deltas applied since the state was built.
/// Immutable once published (the arena hides behind ArenaLease).
struct WarmState {
  // Solve parameters the state was produced under. A warm start is only
  // attempted for an identically-parameterized job (DecideWarm).
  double eps = 0.2;
  uint64_t seed = 1;

  std::vector<NodeId> selection;  ///< greedy order, size k
  std::vector<double> gains;      ///< final-round gain per node (size
                                  ///< source_n; 0 at selected nodes)
  std::vector<double> keys;       ///< width-inflated heap keys, ditto
  double last_gain = 0.0;         ///< the final pick's winning gain
  uint64_t final_seed = 0;        ///< stream seed of greedy round k
  CfcmResult base_result;         ///< the producing solve's result
                                  ///< (identity-delta fast path)

  /// Final-round arena (roots = selection[0..k-2]); null when the
  /// producing round kept none or a later epoch dropped it.
  std::shared_ptr<ArenaLease> lease;
  /// Per-forest flags aligned with the arena's committed prefix:
  /// nonzero = clean (replayable verbatim on the current graph).
  std::vector<char> clean;

  /// One accumulated delta edge: endpoints in the source graph's id
  /// space and the absolute conductance change (removal: the removed
  /// weight; addition: the added weight).
  struct TouchedEdge {
    NodeId u = -1;
    NodeId v = -1;
    double abs_dw = 0.0;
  };
  std::vector<TouchedEdge> touched;  ///< changed edges since the solve
  bool structural = false;   ///< any removal/addition since the solve
  bool overflow = false;     ///< touched-list cap hit; summary unusable
  /// Importance-correction resample share for edge additions: the
  /// probability bound that a post-delta forest uses any added edge,
  /// sum over additions of w'/(d_w(u)+w') + w'/(d_w(v)+w'). The warm
  /// solve force-resamples ceil(share * committed) clean slots.
  double addition_share = 0.0;
  NodeId source_n = 0;       ///< node count of the solved graph
  uint64_t epoch_salt = 0;   ///< advances since capture; salts the
                             ///< resample RNG stream
};

/// Touched edges retained before AdvanceWarmState declares overflow
/// (beyond this the delta is far past every warm threshold anyway).
inline constexpr std::size_t kWarmMaxTouchedEdges = 4096;

/// New nodes a warm repair will absorb before falling back cold (each
/// one joins the contender pool unconditionally).
inline constexpr NodeId kWarmMaxNewNodes = 64;

/// \brief Packages a finished cold solve into a WarmState.
///
/// `graph` is the solved graph, `result` the solve's output and
/// `capture` the lazy loop's warm material (moved from). The arena is
/// adopted only when it actually holds the final refresh round
/// (an accepted reuse pre-screen final round leaves an older one).
std::shared_ptr<const WarmState> BuildWarmState(const Graph& graph,
                                                const CfcmOptions& options,
                                                const CfcmResult& result,
                                                WarmCapture&& capture);

/// \brief Folds one applied delta into `state`, yielding the successor
/// epoch's state.
///
/// `pre_graph` is the graph the delta applies to (BEFORE application,
/// for old conductance lookups). No-op reweights are skipped entirely,
/// so an identity delta advances to an identical state and the warm
/// fast path returns the stored result verbatim. Classification runs
/// only if the arena lease can be claimed here; otherwise (an in-flight
/// warm solve holds it) the successor simply carries no arena.
/// Thread-safe against concurrent readers of `state`.
std::shared_ptr<const WarmState> AdvanceWarmState(const WarmState& state,
                                                  const Graph& pre_graph,
                                                  const GraphDelta& delta);

/// Why a warm start was or was not attempted.
struct WarmDecision {
  bool use_warm = false;
  const char* reason = "";  ///< static string, e.g. "delta_too_large"
};

/// The fallback policy of DESIGN.md §16, exported for tests. `state`
/// may be null. Checks parameter/k drift, disconnection, the touched
/// fraction against options.warm_max_delta_fraction, the addition
/// share, node growth and summary overflow.
WarmDecision DecideWarm(const Graph& graph, const WarmState* state, int k,
                        const CfcmOptions& options);

/// \brief Forest solve with the warm-start pipeline.
///
/// mode kOff (or exhaustive selection) runs the plain cold solve;
/// kAuto/kOn run the warm repair when DecideWarm accepts and fall back
/// cold otherwise (result.cold_fallback reports it). Every lazy solve,
/// warm or cold, fills `deposit` (may be null) with the successor
/// WarmState for GraphSession to retain. Warm results depend on the
/// session's mutation history and must never enter the result cache;
/// result.warm_started marks them.
StatusOr<CfcmResult> ForestSolveWithWarm(
    const Graph& graph, int k, const CfcmOptions& options, WarmMode mode,
    const std::shared_ptr<const WarmState>& warm,
    std::shared_ptr<const WarmState>* deposit);

/// Records the engine.incremental.{forests_reused,forests_resampled,
/// warm_starts,cold_fallbacks,swap_moves} process counters.
void RecordIncrementalCounters(std::int64_t forests_reused,
                               std::int64_t forests_resampled,
                               std::int64_t warm_starts,
                               std::int64_t cold_fallbacks,
                               std::int64_t swap_moves);

}  // namespace cfcm

#endif  // CFCM_CFCM_INCREMENTAL_H_
