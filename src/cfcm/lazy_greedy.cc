#include "cfcm/lazy_greedy.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "cfcm/cfcc.h"
#include "estimators/first_pick.h"
#include "estimators/reuse_delta.h"
#include "obs/metrics.h"

namespace cfcm {

// ---------------------------------------------------------------- LazyHeap

void LazyHeap::Reset(NodeId n) {
  heap_.clear();
  pos_.assign(static_cast<std::size_t>(n), -1);
}

bool LazyHeap::Contains(NodeId id) const {
  return pos_[static_cast<std::size_t>(id)] >= 0;
}

void LazyHeap::Place(std::size_t i, LazyHeapEntry entry) {
  heap_[i] = entry;
  pos_[static_cast<std::size_t>(entry.id)] = static_cast<int>(i);
}

void LazyHeap::SiftUp(std::size_t i) {
  LazyHeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Precedes(entry, heap_[parent])) break;
    Place(i, heap_[parent]);
    i = parent;
  }
  Place(i, entry);
}

void LazyHeap::SiftDown(std::size_t i) {
  LazyHeapEntry entry = heap_[i];
  const std::size_t size = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= size) break;
    if (child + 1 < size && Precedes(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!Precedes(heap_[child], entry)) break;
    Place(i, heap_[child]);
    i = child;
  }
  Place(i, entry);
}

void LazyHeap::Push(NodeId id, double key, double gain, int round) {
  assert(!Contains(id));
  heap_.push_back(LazyHeapEntry{id, key, gain, round});
  pos_[static_cast<std::size_t>(id)] = static_cast<int>(heap_.size() - 1);
  SiftUp(heap_.size() - 1);
}

void LazyHeap::Update(NodeId id, double key, double gain, int round) {
  assert(Contains(id));
  const std::size_t i =
      static_cast<std::size_t>(pos_[static_cast<std::size_t>(id)]);
  const bool raised = key > heap_[i].key ||
                      (key == heap_[i].key && false);  // same id: order keyed
  heap_[i].key = key;
  heap_[i].gain = gain;
  heap_[i].round = round;
  if (raised) {
    SiftUp(i);
  } else {
    SiftDown(i);
  }
}

LazyHeapEntry LazyHeap::Pop() {
  assert(!heap_.empty());
  LazyHeapEntry top = heap_.front();
  pos_[static_cast<std::size_t>(top.id)] = -1;
  LazyHeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    Place(0, last);
    SiftDown(0);
  }
  return top;
}

// ------------------------------------------------------------------ driver

void RecordSelectionCounters(std::int64_t rescored, std::int64_t pops,
                             std::int64_t reused) {
  static obs::Counter* const rescored_total =
      &obs::MetricsRegistry::Global().counter(
          "engine.selection.rescored_candidates");
  static obs::Counter* const pops_total =
      &obs::MetricsRegistry::Global().counter("engine.selection.heap_pops");
  static obs::Counter* const reused_total =
      &obs::MetricsRegistry::Global().counter(
          "engine.selection.forests_reused");
  rescored_total->Add(static_cast<uint64_t>(rescored));
  pops_total->Add(static_cast<uint64_t>(pops));
  reused_total->Add(static_cast<uint64_t>(reused));
}

namespace {

// True when a refreshed gain out-ranks a stale heap entry under the §13
// margin: fresh > (1 + inflation) * decay^age * stale key, ties going
// to the lower node id (the exhaustive scan's tie-break). Stale keys
// already carry the estimator's own width factor (1 + rel); the
// inflation term covers the residual cross-round drift of the true
// gain, and `decay` is the calibrated per-round gain-scale ratio (1
// when no consistent decay has been observed), raised to the number of
// rounds the entry has sat unrefreshed — a key scored several rounds
// ago is at that round's gain scale, not the current one.
bool BeatsStale(double fresh_gain, NodeId fresh_id, const LazyHeapEntry& top,
                double inflation, double decay, int round) {
  const double age = static_cast<double>(std::max(1, round - top.round));
  const double bar = top.key * std::pow(decay, age) * (1.0 + inflation);
  if (fresh_gain != bar) return fresh_gain > bar;
  return fresh_id < top.id;
}

// Calibrates the round's gain-decay factor from refresh probes: each
// refreshed candidate whose previous-round gain was positive yields a
// ratio fresh/stale. Selecting a node collapses every remaining gain by
// a roughly uniform factor (often 5-20x after a hub), which makes raw
// stale keys vacuously large; the survival bar is rescaled by the 75th
// percentile of the observed ratios — a conservative quantile of the
// uniform decay, never above 1. On graphs where ratios straddle 1
// (pure sampling noise, no real decay) the factor stays ~1 and the bar
// remains the plain width-inflated key.
// The p75 of a handful of samples sits near their max and would
// whipsaw the bar; below this floor the carried-over estimate from the
// previous round is the better predictor. Graphs too small to ever
// reach it (all pinned regression graphs) never calibrate and keep the
// conservative no-decay bar throughout.
constexpr std::size_t kMinProbes = 32;

double CalibrateDecay(std::vector<double>& ratios, double fallback) {
  if (ratios.size() < kMinProbes) return fallback;
  std::sort(ratios.begin(), ratios.end());
  const double p75 = ratios[(3 * ratios.size()) / 4];
  return std::min(1.0, std::max(p75, 1e-3));
}

// A candidate refreshed this round: the point gain drives the argmax,
// the width-inflated key re-enters the heap, and the stale key it was
// popped with feeds the next round's batch predictor.
struct RoundEntry {
  NodeId id = -1;
  double gain = 0.0;
  double key = 0.0;
  int round = 0;
};

// The reuse pre-screen only runs when the stale top dominates the
// runner-up by this factor — otherwise the replay almost never
// certifies a winner (the importance-weighted widths are 2-3x at the
// default sampling budget) and its per-forest passes are pure overhead.
constexpr double kReuseGateRatio = 4.0;

// Each round starts from the previous round's decay calibration relaxed
// toward 1 by this factor (the no-decay assumption is the conservative
// side: an under-estimated decay discounts stale keys too far and can
// accept a fresh winner before the true best was ever refreshed).
constexpr double kDecayRelax = 2.0;

// The decayed regime latches only when a calibration observes gains
// collapsing past this ratio — real hub-collapse trajectories measure
// p75 of 0.1-0.5, while pure sampling noise keeps the p75 near or
// above 1. Together with the node floor below, this keeps every small
// regression graph on the unbounded fail-safe path deterministically.
constexpr double kDecayedThreshold = 0.8;

// The budgeted regime saves O(n) work per round; on small graphs the
// saving is noise while the heuristic costs exhaustive-equality, so
// the latch additionally requires at least this many nodes.
constexpr NodeId kDecayedMinNodes = 256;

// Forest-target multiplier for re-score calls in the decayed regime.
// Once a real gain decay has been calibrated the survival certificate
// is already heuristic (noise dwarfs it), and halving the sampling
// budget for the budgeted re-scores costs ~sqrt(2) extra noise on a
// ranking the full budget could not certify either. rel[] is computed
// from the actual sample size, so the wider keys stay honest.
constexpr double kDecayedForestScale = 0.5;

}  // namespace

StatusOr<CfcmResult> LazyGreedySelect(const Graph& graph, int k,
                                      const CfcmOptions& options,
                                      ThreadPool& pool,
                                      const LazyDeltaFn& delta_fn,
                                      bool allow_forest_reuse,
                                      WarmCapture* capture) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
  const NodeId n = graph.num_nodes();
  EstimatorOptions est = ToEstimatorOptions(options);

  CfcmResult result;
  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  LazyHeap heap;
  heap.Reset(n);

  // The final pick's winning gain, carried out of the round loop for the
  // warm capture.
  double last_pick_gain = 0.0;

  // Iteration 1: argmin of the pseudoinverse diagonal, identical to the
  // exhaustive path. The full score vector seeds the heap (satellite of
  // §13): -x_u orders candidates by first-round promise, and round 2
  // refreshes them all in one call, so no extra estimator pass runs.
  {
    const FirstPickResult first = EstimateFirstPick(graph, est, pool);
    last_pick_gain = -first.scores[first.best];
    result.selected.push_back(first.best);
    in_s[first.best] = 1;
    result.forests_per_iteration.push_back(first.forests);
    result.total_forests += first.forests;
    result.total_walk_steps += first.walk_steps;
    for (NodeId u = 0; u < n; ++u) {
      if (u != first.best) heap.Push(u, -first.scores[u], -first.scores[u], 0);
    }
  }

  // Double-buffered arenas: refresh calls of round i fill arena[i & 1];
  // the reuse pre-screen of round i replays arena[(i + 1) & 1], which
  // still holds round i-1's forests.
  ForestArena arenas[2];
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  std::vector<RoundEntry> fresh;  // refreshed this round
  std::vector<LazyHeapEntry> batch;
  // First-batch size for the next round: last round's surviving-frontier
  // count plus slack. Sizing the first refresh call right is what keeps
  // a round at ~one estimator schedule; overshoot costs only O(w) folds
  // per extra candidate while undershoot re-runs the per-forest passes.
  std::size_t predicted = static_cast<std::size_t>(
      std::max(1, options.lazy_batch));
  // Gain-decay factor carried across rounds: the decay regime is a
  // slowly-varying property of the trajectory, so each round starts
  // from the previous round's calibration relaxed toward 1 (the
  // conservative no-decay assumption) and re-calibrates once enough
  // probes accumulate. `decayed` latches once any calibration observes
  // a real decay; it switches the pop loop from the unbounded
  // fail-safe mode to the budgeted mode.
  double decay = 1.0;
  bool decayed = false;

  for (int i = 1; i < k; ++i) {
    const uint64_t seed_i =
        options.seed + static_cast<uint64_t>(i) * 0x9e3779b9ULL;
    ForestArena& cur = arenas[i & 1];
    ForestArena& prev = arenas[(i + 1) & 1];

    // ---- cross-round reuse pre-screen (DESIGN.md §13). Replays the
    // previous round's forests with the new node cut out; selects
    // without sampling only when the importance-weighted widths certify
    // the winner against both the runner-up and every stale key.
    if (allow_forest_reuse && options.lazy_reuse && i >= 2) {
      std::vector<NodeId> s_prev(result.selected.begin(),
                                 result.selected.end() - 1);
      const uint64_t seed_prev =
          options.seed + static_cast<uint64_t>(i - 1) * 0x9e3779b9ULL;
      // Domination gate: replaying the previous round's forests costs
      // the full per-forest passes, so only attempt it when the stale
      // top already dwarfs the runner-up and the certificate has a
      // realistic chance of holding.
      const LazyHeapEntry* second = heap.Second();
      const bool dominated = second != nullptr && second->key >= 0.0 &&
                             heap.Top().key > kReuseGateRatio * second->key;
      if (dominated && prev.committed() > 1 &&
          prev.MatchesRound(n, s_prev, seed_prev)) {
        const std::size_t contenders = std::min<std::size_t>(
            heap.size(),
            static_cast<std::size_t>(std::max(2 * options.lazy_batch, 8)));
        batch.clear();
        std::fill(mask.begin(), mask.end(), 0);
        for (std::size_t c = 0; c < contenders; ++c) {
          batch.push_back(heap.Pop());
          ++result.heap_pops;
          mask[batch.back().id] = 1;
        }
        EstimatorOptions est_r = est;
        est_r.seed = seed_i;
        const ReuseEstimate ru =
            ReuseDelta(graph, result.selected, result.selected.back(), mask,
                       prev, est_r, pool);
        bool accepted = false;
        if (ru.usable && batch.size() >= 2) {
          // Rank replayed contenders by (gain desc, id asc).
          std::size_t b1 = 0, b2 = 1;
          auto better = [&](std::size_t a, std::size_t b) {
            const double ga = ru.gain[batch[a].id];
            const double gb = ru.gain[batch[b].id];
            if (ga != gb) return ga > gb;
            return batch[a].id < batch[b].id;
          };
          if (better(1, 0)) std::swap(b1, b2);
          for (std::size_t c = 2; c < batch.size(); ++c) {
            if (better(c, b1)) {
              b2 = b1;
              b1 = c;
            } else if (better(c, b2)) {
              b2 = c;
            }
          }
          const NodeId u1 = batch[b1].id;
          const NodeId u2 = batch[b2].id;
          const double low1 =
              ru.gain[u1] * (1.0 - ru.rel[u1] - options.reuse_margin);
          const double high2 =
              ru.gain[u2] * (1.0 + ru.rel[u2] + options.reuse_margin);
          const double outside =
              heap.empty() ? -std::numeric_limits<double>::infinity()
                           : heap.Top().key * (1.0 + options.lazy_inflation);
          if (ru.rel[u1] < 1.0 && low1 > high2 && low1 > outside) {
            accepted = true;
            result.selected.push_back(u1);
            in_s[u1] = 1;
            result.forests_per_iteration.push_back(0);
            result.forests_reused += ru.forests;
            // Contenders keep their old (still valid) stale keys; the
            // replayed gains are biased by the support gap and must not
            // become CELF upper bounds.
            for (const LazyHeapEntry& e : batch) {
              if (e.id != u1) heap.Push(e.id, e.key, e.gain, e.round);
            }
          }
        }
        if (accepted) continue;
        for (const LazyHeapEntry& e : batch) {
          heap.Push(e.id, e.key, e.gain, e.round);
        }
      }
    }

    // ---- CELF refresh loop. Fresh gains leave the heap for the round
    // (tracked in `fresh`), so the heap top is always the best *stale*
    // key and the §13 survival test is a single comparison.
    fresh.clear();
    double best_gain = -std::numeric_limits<double>::infinity();
    NodeId best_id = -1;
    const bool force_all = (i == 1);  // round 2: heap keys are only
                                      // first-pick scores, refresh all
    int round_fresh_forests = 0;
    decay = std::min(1.0, kDecayRelax * decay);
    std::vector<double> ratios;  // fresh/stale probes for CalibrateDecay
    // Batch floor: lazy_batch or n/32, whichever is larger. A
    // micro-batch that fails survival costs a whole extra estimator
    // call (passes re-paid), so tiny predictions are rounded up — the
    // marginal folds are cheap insurance.
    const std::size_t floor_batch = std::max<std::size_t>(
        static_cast<std::size_t>(std::max(1, options.lazy_batch)),
        static_cast<std::size_t>(n) / 32);
    const std::size_t first_want = std::max(floor_batch, predicted);
    // Pop budget for the decayed regime. Once a consistent gain decay
    // has been calibrated (sticky: the regime is a property of the
    // trajectory, not of one round's draw), the survival certificate is
    // known to be vacuous against a low noise draw of the round winner
    // — one unlucky fresh sample makes every stale bar unbeatable and
    // would drag the round to a full refresh that exhaustive-level
    // noise cannot justify. The budget stops the pop loop at ~2x the
    // predicted frontier, clamped to [n/8, n/4]; the winner is then the
    // best of the refreshed frontier (a heuristic, documented in §13).
    // Trajectories that never calibrate a decay (too few probes, or
    // ratios straddling 1 — all pinned regression graphs) keep the
    // unbounded fail-safe loop and stay bitwise equal to the exhaustive
    // scan.
    const std::size_t pop_cap = std::max<std::size_t>(
        std::max<std::size_t>(static_cast<std::size_t>(n) / 8, floor_batch),
        std::min<std::size_t>(2 * first_want,
                              static_cast<std::size_t>(n) / 4));
    while (!heap.empty()) {
      if (!force_all && best_id >= 0 &&
          BeatsStale(best_gain, best_id, heap.Top(), options.lazy_inflation,
                     decay, i)) {
        break;
      }
      const bool capped = !force_all && decayed;
      if (capped && !fresh.empty() && fresh.size() >= pop_cap) break;
      batch.clear();
      std::fill(mask.begin(), mask.end(), 0);
      // Batch ladder: the predictor's frontier estimate first, then a
      // 4x escalation if survival fails, then everything left. Each
      // extra call re-pays only the per-forest passes (the round's
      // arena replays the walks), so the ladder bounds a mispredicted
      // round at three calls while keeping the re-score count near the
      // true frontier size. In the decayed regime the round ends at the
      // pop budget anyway, so the whole budget is popped up front and
      // the round is a single call.
      std::size_t want;
      if (capped && fresh.empty()) {
        want = std::min<std::size_t>(heap.size(), pop_cap);
      } else if (force_all || fresh.size() > first_want ||
                 (!capped && 4 * first_want >= 3 * heap.size())) {
        // force_all, a second escalation, or a predicted batch covering
        // most of the heap: refresh everything left. When that is the
        // whole candidate set the mask is dropped below and the call is
        // the exhaustive path (adaptive exit included).
        want = heap.size();
      } else if (!fresh.empty()) {
        // First escalation after a failed survival test.
        want = std::min<std::size_t>(heap.size(),
                                     std::max<std::size_t>(4 * fresh.size(),
                                                           256));
      } else {
        want = std::min<std::size_t>(heap.size(), first_want);
      }
      if (capped && !fresh.empty()) {
        want = std::min(want, pop_cap > fresh.size() ? pop_cap - fresh.size()
                                                     : floor_batch);
      }
      for (std::size_t c = 0; c < want; ++c) {
        batch.push_back(heap.Pop());
        ++result.heap_pops;
        mask[batch.back().id] = 1;
      }
      // A batch covering every remaining candidate is the exhaustive
      // call itself; dropping the mask keeps it bitwise identical to
      // the exhaustive path (including its all-node adaptive exit).
      const bool full_cover =
          fresh.empty() && heap.empty() &&
          batch.size() ==
              static_cast<std::size_t>(n) - result.selected.size();
      DeltaScope scope;
      scope.subset = full_cover ? nullptr : &mask;
      scope.arena = &cur;
      // Budgeted decayed-regime re-scores also run at a reduced forest
      // target; full-cover calls keep the full budget so the "refresh
      // everything" path stays the exhaustive call.
      if (capped && !full_cover) scope.forest_scale = kDecayedForestScale;
      const DeltaEstimate d = delta_fn(result.selected, seed_i, scope);
      result.rescored_candidates += static_cast<std::int64_t>(batch.size());
      result.jl_rows = d.jl_rows;
      result.total_walk_steps += d.walk_steps;
      result.forests_reused += d.reused_forests;
      round_fresh_forests += d.forests - d.reused_forests;
      for (const LazyHeapEntry& e : batch) {
        const double g = d.delta[e.id];
        const double rel = e.id < static_cast<NodeId>(d.rel.size())
                               ? std::min(d.rel[e.id], options.lazy_width_cap)
                               : 0.0;
        fresh.push_back(RoundEntry{e.id, g, g * (1.0 + rel), i});
        // Decay probe: only last-round gains sample the single-round
        // decay; older entries have decayed over several rounds and
        // applying one round's ratio to them is the conservative side.
        if (e.round == i - 1 && e.gain > 0.0) ratios.push_back(g / e.gain);
        if (g > best_gain || (g == best_gain && e.id < best_id)) {
          best_gain = g;
          best_id = e.id;
        }
      }
      if (!force_all && ratios.size() >= kMinProbes) {
        decay = CalibrateDecay(ratios, decay);
        if (decay < kDecayedThreshold && n >= kDecayedMinNodes) {
          decayed = true;
        }
      }
    }
    assert(best_id >= 0);
    last_pick_gain = best_gain;
    result.selected.push_back(best_id);
    in_s[best_id] = 1;
    result.forests_per_iteration.push_back(round_fresh_forests);
    result.total_forests += round_fresh_forests;
    for (const RoundEntry& e : fresh) {
      if (e.id == best_id) continue;
      heap.Push(e.id, e.key, e.gain, e.round);
    }
    // Next round's frontier estimate: entries whose key could still
    // clear the survival bar are the ones the next round is likely to
    // pop before its own test fires. The count runs over the WHOLE heap
    // (stale entries skipped this round re-enter the frontier once the
    // bar decays to their level) and mirrors the next round's bar
    // exactly: keys discounted by the RELAXED decay raised to the
    // entry's age there. The bar's reference — next round's best — is
    // the larger of this round's best after one (unrelaxed) decay step
    // and the best discounted stale key deflated by the width margin:
    // when the round winner was a low noise draw, comparing the whole
    // heap against it alone would promote the next round to a full
    // refresh. The 1.5x overshoot is deliberate: an undershoot costs a
    // second estimator schedule, an overshoot only extra folds.
    const double next_decay = std::min(1.0, kDecayRelax * decay);
    double exp_next = best_gain * decay;
    for (const LazyHeapEntry& e : heap.entries()) {
      const double age = static_cast<double>(std::max(1, i + 1 - e.round));
      const double disc = e.key * std::pow(next_decay, age);
      exp_next = std::max(
          exp_next, disc * decay / (1.0 + options.lazy_inflation));
    }
    std::size_t frontier = 0;
    for (const LazyHeapEntry& e : heap.entries()) {
      const double age = static_cast<double>(std::max(1, i + 1 - e.round));
      if (e.key * std::pow(next_decay, age) * (1.0 + options.lazy_inflation) >=
          exp_next) {
        ++frontier;
      }
    }
    predicted = frontier + frontier / 2 +
                static_cast<std::size_t>(std::max(1, options.lazy_batch));
  }

  if (capture != nullptr) {
    capture->gains.assign(static_cast<std::size_t>(n), 0.0);
    capture->keys.assign(static_cast<std::size_t>(n), 0.0);
    for (const LazyHeapEntry& e : heap.entries()) {
      capture->gains[static_cast<std::size_t>(e.id)] = e.gain;
      capture->keys[static_cast<std::size_t>(e.id)] = e.key;
    }
    capture->last_gain = last_pick_gain;
    capture->final_seed =
        options.seed + static_cast<uint64_t>(k - 1) * 0x9e3779b9ULL;
    capture->has_arena = k >= 2;
    // When the final round was an accepted reuse pre-screen this arena
    // still holds an older round's forests; consumers gate every replay
    // on MatchesRound, so handing it over is safe either way.
    if (k >= 2) capture->arena = std::move(arenas[(k - 1) & 1]);
  }
  RecordSelectionCounters(result.rescored_candidates, result.heap_pops,
                          result.forests_reused);
  return result;
}

}  // namespace cfcm
