// ForestCFCM (paper Algorithm 3): greedy CFCC maximization by spanning
// forest sampling.
#ifndef CFCM_CFCM_FOREST_CFCM_H_
#define CFCM_CFCM_FOREST_CFCM_H_

#include "cfcm/options.h"
#include "common/status.h"

namespace cfcm {

/// \brief Selects a k-node group approximately maximizing C(S).
///
/// Greedy: the first node is argmin_u L†_uu estimated by forest sampling
/// rooted at the maximum-degree node (Lemma 3.5); each subsequent node is
/// argmax_u Delta'(u, S) from ForestDelta (Alg. 2). Achieves the paper's
/// (1 - k/(k-1)/e - eps) factor w.h.p. (Theorem 3.11). Nearly linear
/// time in n per iteration on real-world graphs.
StatusOr<CfcmResult> ForestCfcmMaximize(const Graph& graph, int k,
                                        const CfcmOptions& options = {});

struct WarmCapture;  // cfcm/lazy_greedy.h

/// ForestCfcmMaximize that additionally fills `capture` (may be null)
/// with the warm-start material of DESIGN.md §16 when the lazy
/// selection path ran. Exhaustive selection leaves it untouched.
StatusOr<CfcmResult> ForestCfcmMaximizeCaptured(const Graph& graph, int k,
                                                const CfcmOptions& options,
                                                WarmCapture* capture);

}  // namespace cfcm

#endif  // CFCM_CFCM_FOREST_CFCM_H_
