#include "cfcm/schur_cfcm.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "cfcm/cfcc.h"
#include "cfcm/lazy_greedy.h"
#include "common/timer.h"
#include "estimators/first_pick.h"
#include "estimators/forest_delta.h"
#include "estimators/schur_delta.h"

namespace cfcm {

namespace {

// Shared implementation: removal order plus the remaining-graph dmax
// after each removal. Hubs rank by *weighted* degree — on a weighted
// graph the escape probability of a walk is governed by conductance,
// not edge count — with ties going to the higher node id (the pair
// comparison), so unit graphs keep their historical order exactly:
// weighted_degree() is the integer degree there and the decrements
// below are exact in floating point.
void HubOrderWithDmax(const Graph& graph, int cap, std::vector<NodeId>* order,
                      std::vector<double>* dmax_after) {
  const NodeId n = graph.num_nodes();
  cap = std::min<int>(cap, n - 2);  // leave at least 2 non-root nodes
  std::vector<double> degree(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) degree[u] = graph.weighted_degree(u);
  std::vector<char> removed(static_cast<std::size_t>(n), 0);

  // Lazy max-heap of (degree, node); stale entries are skipped.
  std::priority_queue<std::pair<double, NodeId>> heap;
  for (NodeId u = 0; u < n; ++u) heap.emplace(degree[u], u);

  while (static_cast<int>(order->size()) < cap && !heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (removed[u] || d != degree[u]) continue;  // stale
    removed[u] = 1;
    order->push_back(u);
    const auto adj = graph.neighbors(u);
    const auto wts = graph.weights(u);
    for (std::size_t e = 0; e < adj.size(); ++e) {
      const NodeId v = adj[e];
      if (!removed[v]) {
        degree[v] -= wts.empty() ? 1.0 : wts[e];
        heap.emplace(degree[v], v);
      }
    }
    // Current dmax(T): top of heap after skipping stale entries.
    while (!heap.empty()) {
      auto [dt, ut] = heap.top();
      if (removed[ut] || dt != degree[ut]) {
        heap.pop();
        continue;
      }
      break;
    }
    dmax_after->push_back(heap.empty() ? 0.0 : heap.top().first);
  }
}

}  // namespace

std::vector<NodeId> HubRemovalOrder(const Graph& graph, int count) {
  std::vector<NodeId> order;
  std::vector<double> dmax_after;
  HubOrderWithDmax(graph, count, &order, &dmax_after);
  return order;
}

std::vector<NodeId> SelectAuxiliaryRoots(const Graph& graph, int cap) {
  std::vector<NodeId> order;
  std::vector<double> dmax_after;
  HubOrderWithDmax(graph, cap, &order, &dmax_after);

  // |T*| = argmin_{|T|>=1} |{|T| - dmax(T)}|: the balance point where the
  // auxiliary set size meets the remaining maximum degree (paper §V-A
  // "we attempt to reach a balance between these two factors"; the
  // signed difference is monotone increasing on scale-free graphs, so
  // the balance is its zero crossing — an h-index of the degree
  // sequence, matching the |T*| magnitudes of the paper's Table II).
  int best_size = 1;
  double best_value = std::abs(1.0 - (dmax_after.empty() ? 0.0 : dmax_after[0]));
  for (int size = 2; size <= static_cast<int>(order.size()); ++size) {
    const double value = std::abs(size - dmax_after[size - 1]);
    if (value < best_value) {
      best_value = value;
      best_size = size;
    }
  }
  order.resize(static_cast<std::size_t>(best_size));
  return order;
}

namespace {

// The paper's literal Alg. 5 loop, kept as the lazy path's pinned
// reference (see ForestCfcmExhaustive).
StatusOr<CfcmResult> SchurCfcmExhaustive(const Graph& graph, int k,
                                         const CfcmOptions& options,
                                         ThreadPool& pool,
                                         const std::vector<NodeId>& t_all) {
  EstimatorOptions est = ToEstimatorOptions(options);

  CfcmResult result;
  result.auxiliary_roots = static_cast<int>(t_all.size());
  std::vector<char> in_s(static_cast<std::size_t>(graph.num_nodes()), 0);

  // Iteration 1 is identical to ForestCFCM (Alg. 5 lines 2-15).
  {
    const FirstPickResult first = EstimateFirstPick(graph, est, pool);
    result.selected.push_back(first.best);
    in_s[first.best] = 1;
    result.forests_per_iteration.push_back(first.forests);
    result.total_forests += first.forests;
    result.total_walk_steps += first.walk_steps;
  }
  // Iterations 2..k: SchurDelta with root set S ∪ (T \ S).
  for (int i = 1; i < k; ++i) {
    est.seed = options.seed + static_cast<uint64_t>(i) * 0x9e3779b9ULL;
    std::vector<NodeId> t_nodes;
    t_nodes.reserve(t_all.size());
    for (NodeId t : t_all) {
      if (!in_s[t]) t_nodes.push_back(t);
    }

    DeltaEstimate delta;
    if (t_nodes.empty()) {
      delta = ForestDelta(graph, result.selected, est, pool);
    } else {
      delta = SchurDelta(graph, result.selected, t_nodes, est, pool);
    }
    result.jl_rows = delta.jl_rows;
    result.forests_per_iteration.push_back(delta.forests);
    result.total_forests += delta.forests;
    result.total_walk_steps += delta.walk_steps;
    result.rescored_candidates += graph.num_nodes() - i;

    NodeId best = -1;
    double best_delta = -1;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      if (in_s[u]) continue;
      if (delta.delta[u] > best_delta) {
        best_delta = delta.delta[u];
        best = u;
      }
    }
    result.selected.push_back(best);
    in_s[best] = 1;
  }
  RecordSelectionCounters(result.rescored_candidates, result.heap_pops,
                          result.forests_reused);
  return result;
}

}  // namespace

StatusOr<CfcmResult> SchurCfcmMaximize(const Graph& graph, int k,
                                       const CfcmOptions& options) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));
  Timer timer;
  ThreadPool& pool = ResolveSamplingPool(options);

  // Auxiliary root set T of hubs (Alg. 5 line 1).
  const std::vector<NodeId> t_all =
      options.t_size > 0 ? HubRemovalOrder(graph, options.t_size)
                         : SelectAuxiliaryRoots(graph, options.t_cap);

  StatusOr<CfcmResult> result = [&]() -> StatusOr<CfcmResult> {
    if (options.selection == SelectionMode::kExhaustive) {
      return SchurCfcmExhaustive(graph, k, options, pool, t_all);
    }
    // Lazy mode: the delta binding recomputes T \ S per call (S grows
    // between rounds). Cross-round forest reuse stays off — the arena
    // holds (S ∪ T)-rooted forests, and the reuse replay is only sound
    // for plain S-rooted ones.
    StatusOr<CfcmResult> r = LazyGreedySelect(
        graph, k, options, pool,
        [&graph, &options, &pool, &t_all](
            const std::vector<NodeId>& s_nodes, uint64_t seed,
            const DeltaScope& scope) -> DeltaEstimate {
          EstimatorOptions est = ToEstimatorOptions(options);
          est.seed = seed;
          std::vector<char> in_s(static_cast<std::size_t>(graph.num_nodes()),
                                 0);
          for (NodeId s : s_nodes) in_s[s] = 1;
          std::vector<NodeId> t_nodes;
          t_nodes.reserve(t_all.size());
          for (NodeId t : t_all) {
            if (!in_s[t]) t_nodes.push_back(t);
          }
          if (t_nodes.empty()) {
            return ForestDelta(graph, s_nodes, est, pool, scope);
          }
          return SchurDelta(graph, s_nodes, t_nodes, est, pool, scope);
        },
        /*allow_forest_reuse=*/false);
    if (r.ok()) r->auxiliary_roots = static_cast<int>(t_all.size());
    return r;
  }();
  if (result.ok()) result->seconds = timer.Seconds();
  return result;
}

}  // namespace cfcm
