// DEGREE and TOP-CFCC heuristic baselines (paper §V-A).
#ifndef CFCM_CFCM_HEURISTICS_H_
#define CFCM_CFCM_HEURISTICS_H_

#include <vector>

#include "cfcm/options.h"
#include "graph/graph.h"

namespace cfcm {

/// k nodes of largest weighted degree (ties broken by smaller id);
/// plain degree on unit-weighted graphs.
std::vector<NodeId> DegreeSelect(const Graph& graph, int k);

/// \brief TOP-CFCC: k nodes with largest single-node CFCC, i.e. smallest
/// L†_uu, from the dense pseudoinverse. O(n^3); small graphs.
std::vector<NodeId> TopCfccSelectExact(const Graph& graph, int k);

/// TOP-CFCC for large graphs: ranks the forest-sampled estimates of
/// L†_uu (shifted by the constant L†_ss, which does not affect order).
std::vector<NodeId> TopCfccSelectEstimated(const Graph& graph, int k,
                                           const CfcmOptions& options = {});

}  // namespace cfcm

#endif  // CFCM_CFCM_HEURISTICS_H_
