// Lazy-greedy (CELF) selection for the sampled solvers (DESIGN.md §13).
//
// The exact marginal gains are monotone non-increasing as S grows, so
// in exact arithmetic a gain scored in an earlier round upper-bounds
// the current gain of the same node. The *sampled* gains are not upper
// bounds: each round draws an independent forest set and JL sketch, so
// a stale key is a noisy sample of the current gain (measured
// multiplicative spread 2-3x on small graphs that never hit the
// Bernstein stop). The heap therefore keys candidates on
// gain * (1 + rel), where rel is the estimator's own per-node
// empirical-Bernstein relative half-width, and the survival test adds
// a further (1 + lazy_inflation) drift margin on top. The loop
// re-scores the top candidates per round through subset-restricted
// ForestDelta/SchurDelta calls (one predictive batch plus geometric
// escalation, so a round costs ~one estimator schedule) until the
// refreshed top beats every remaining stale key. Selections are
// bitwise identical for every thread count (the heap order is a pure
// function of (key, node id), and every estimate goes through the
// ordered MC runtime) and are pinned equal to the exhaustive path on
// the regression suite.
#ifndef CFCM_CFCM_LAZY_GREEDY_H_
#define CFCM_CFCM_LAZY_GREEDY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cfcm/options.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "estimators/forest_delta.h"
#include "graph/graph.h"

namespace cfcm {

/// One heap slot: a candidate with its most recent gain estimate and
/// the greedy round (1-based; round 0 = first-pick seed) it was scored.
/// `key` orders the heap (the width-inflated gain); `gain` keeps the
/// raw point estimate so a refresh can measure the round's decay ratio.
struct LazyHeapEntry {
  NodeId id = -1;
  double key = 0.0;
  double gain = 0.0;
  int round = 0;
};

/// \brief Address-free indexed binary max-heap over candidate node ids.
///
/// Array-backed sift-up/sift-down with a position index per node id, so
/// keys can be updated in place (decrease- or increase-key) in
/// O(log n). Ordering is deterministic: larger key first, ties broken
/// by the LOWER node id — exactly the argmax rule of the exhaustive
/// scan (first strict improvement wins), so a heap-driven selection can
/// never disagree with the scan on tie-breaks.
class LazyHeap {
 public:
  /// Empties the heap and sizes the position index for ids [0, n).
  void Reset(NodeId n);

  /// Inserts `id` (must not be present). O(log size).
  void Push(NodeId id, double key, double gain, int round);

  /// Re-keys `id` (must be present), restoring heap order. O(log size).
  void Update(NodeId id, double key, double gain, int round);

  bool Contains(NodeId id) const;
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Largest entry by (key desc, id asc). Heap must be non-empty.
  const LazyHeapEntry& Top() const { return heap_.front(); }

  /// Second-largest entry (the better of the root's children); nullptr
  /// when fewer than two entries are present. Used by the reuse
  /// pre-screen's domination gate.
  const LazyHeapEntry* Second() const {
    if (heap_.size() < 2) return nullptr;
    if (heap_.size() == 2) return &heap_[1];
    if (heap_[1].key != heap_[2].key) {
      return heap_[1].key > heap_[2].key ? &heap_[1] : &heap_[2];
    }
    return heap_[1].id < heap_[2].id ? &heap_[1] : &heap_[2];
  }

  /// Removes and returns the top entry.
  LazyHeapEntry Pop();

  /// Unordered view of the live entries (for O(size) scans such as the
  /// batch predictor's frontier count).
  const std::vector<LazyHeapEntry>& entries() const { return heap_; }

 private:
  // True when `a` must sit above `b`.
  static bool Precedes(const LazyHeapEntry& a, const LazyHeapEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id < b.id;
  }
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  void Place(std::size_t i, LazyHeapEntry entry);

  std::vector<LazyHeapEntry> heap_;
  std::vector<int> pos_;  // node id -> heap index; -1 = absent
};

/// Scores rounds 2..k: Delta estimates for the current root set
/// `s_nodes` under `seed`, restricted by `scope`. ForestCFCM binds this
/// to ForestDelta; SchurCFCM adds the T-root bookkeeping and dispatches
/// to SchurDelta.
using LazyDeltaFn = std::function<DeltaEstimate(
    const std::vector<NodeId>& s_nodes, uint64_t seed,
    const DeltaScope& scope)>;

/// \brief Raw material for an incremental WarmState (DESIGN.md §16),
/// captured as the greedy loop exits: the final per-candidate heap keys
/// and gains, the final round's stream seed, and — when the final
/// refresh round filled one — that round's forest arena, moved out so
/// the successor epoch can replay its clean forests.
struct WarmCapture {
  std::vector<double> gains;  ///< last-scored gain per node; 0 at selected
  std::vector<double> keys;   ///< width-inflated heap keys; 0 at selected
  double last_gain = 0.0;     ///< the final pick's winning gain estimate
  uint64_t final_seed = 0;    ///< stream seed of greedy round k
                              ///< (options.seed when k == 1)
  ForestArena arena;          ///< final round's forests (k >= 2 only)
  bool has_arena = false;
};

/// \brief Runs the full greedy selection (first pick + lazy rounds
/// 2..k) and returns the same CfcmResult shape as the exhaustive loop.
///
/// `allow_forest_reuse` enables the cross-round reuse pre-screen
/// (ForestCFCM only: it replays plain S-rooted forests). Timing
/// (result.seconds) is left at 0 for the caller to stamp. A non-null
/// `capture` is filled on success (pure out-param; it never changes the
/// selection).
StatusOr<CfcmResult> LazyGreedySelect(const Graph& graph, int k,
                                      const CfcmOptions& options,
                                      ThreadPool& pool,
                                      const LazyDeltaFn& delta_fn,
                                      bool allow_forest_reuse,
                                      WarmCapture* capture = nullptr);

/// Records the engine.selection.{rescored_candidates,heap_pops,
/// forests_reused} process counters; called by both selection modes so
/// --trace and the metrics endpoint can compare their work directly.
void RecordSelectionCounters(std::int64_t rescored, std::int64_t pops,
                             std::int64_t reused);

}  // namespace cfcm

#endif  // CFCM_CFCM_LAZY_GREEDY_H_
