#include "cfcm/cfcc.h"

#include <cassert>
#include <string>

#include "graph/components.h"
#include "linalg/laplacian.h"

namespace cfcm {

double ExactGroupCfcc(const Graph& graph, const std::vector<NodeId>& group) {
  assert(!group.empty());
  const double trace = ExactTraceInverseSubmatrix(graph, group);
  return static_cast<double>(graph.num_nodes()) / trace;
}

double ExactNodeCfcc(const Graph& graph, NodeId u) {
  return ExactGroupCfcc(graph, {u});
}

std::vector<double> ExactPrefixTraces(const Graph& graph,
                                      const std::vector<NodeId>& order) {
  assert(!order.empty());
  const SubmatrixIndex index =
      MakeSubmatrixIndex(graph.num_nodes(), {order[0]});
  DenseMatrix m = ExactLaplacianSubmatrixInverse(graph, {order[0]});
  const int dim = m.rows();
  std::vector<char> alive(static_cast<std::size_t>(dim), 1);
  double trace = m.Trace();

  std::vector<double> traces;
  traces.reserve(order.size());
  traces.push_back(trace);
  for (std::size_t pick = 1; pick < order.size(); ++pick) {
    const NodeId best = index.pos[order[pick]];
    assert(best >= 0 && alive[best] && "order must list distinct nodes");
    double nrm = 0;
    for (int j = 0; j < dim; ++j) {
      if (alive[j]) nrm += m(best, j) * m(best, j);  // M symmetric
    }
    const double inv_pivot = 1.0 / m(best, best);
    for (int i = 0; i < dim; ++i) {
      if (!alive[i] || i == best) continue;
      const double f = m(i, best) * inv_pivot;
      if (f == 0.0) continue;
      auto mi = m.MutableRow(i);
      const auto mb = m.Row(best);
      for (int j = 0; j < dim; ++j) mi[j] -= f * mb[j];
    }
    alive[best] = 0;
    trace -= nrm * inv_pivot;
    traces.push_back(trace);
  }
  return traces;
}

ApproxCfcc ApproximateGroupCfcc(const Graph& graph,
                                const std::vector<NodeId>& group, int probes,
                                uint64_t seed, const CgOptions& cg) {
  return ApproximateGroupCfcc(graph, group, probes, seed, SolverBackend::kCg,
                              cg);
}

ApproxCfcc ApproximateGroupCfcc(const Graph& graph,
                                const std::vector<NodeId>& group, int probes,
                                uint64_t seed, SolverBackend backend,
                                const CgOptions& cg) {
  assert(!group.empty());
  const TraceEstimate est =
      HutchinsonTraceInverse(graph, group, probes, seed, backend, cg);
  ApproxCfcc out;
  out.trace = est.trace;
  out.trace_std_error = est.std_error;
  out.cfcc = static_cast<double>(graph.num_nodes()) / est.trace;
  return out;
}

Status ValidateCfcmArguments(const Graph& graph, int k) {
  if (graph.num_nodes() < 2) {
    return Status::InvalidArgument("graph must have at least 2 nodes");
  }
  if (k < 1 || k >= graph.num_nodes()) {
    return Status::InvalidArgument(
        "k must satisfy 1 <= k < n, got k=" + std::to_string(k) +
        " with n=" + std::to_string(graph.num_nodes()));
  }
  if (!IsConnected(graph)) {
    return Status::FailedPrecondition(
        "CFCM requires a connected graph; extract the LCC first "
        "(LargestConnectedComponent)");
  }
  return Status::Ok();
}

}  // namespace cfcm
