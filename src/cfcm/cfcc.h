// Current flow closeness centrality values (Eq. 3) and validation.
#ifndef CFCM_CFCM_CFCC_H_
#define CFCM_CFCM_CFCC_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/hutchinson.h"

namespace cfcm {

/// \brief Exact group CFCC C(S) = n / Tr(L_{-S}^{-1}) via dense LDL^T.
/// O((n-|S|)^3); small graphs only. Requires non-empty S.
double ExactGroupCfcc(const Graph& graph, const std::vector<NodeId>& group);

/// Exact single-node CFCC C({u}).
double ExactNodeCfcc(const Graph& graph, NodeId u);

/// \brief Exact Tr(L_{-S_i}^{-1}) for every prefix S_i of `order`.
///
/// One dense inversion plus one Sherman–Morrison submatrix-inverse
/// downdate per node: O(n^3 + |order| n^2) for the whole curve, versus
/// O(|order| n^3) for independent evaluations. This is how the benches
/// evaluate C(S) along a greedy selection (C(S_i) = n / trace[i]).
std::vector<double> ExactPrefixTraces(const Graph& graph,
                                      const std::vector<NodeId>& order);

/// \brief Approximate group CFCC for large graphs: Hutchinson probing of
/// Tr(L_{-S}^{-1}) with CG solves (the paper's Section V-B.2 evaluation
/// protocol). Returns C(S) and the probe standard error of the trace.
struct ApproxCfcc {
  double cfcc = 0.0;
  double trace = 0.0;
  double trace_std_error = 0.0;
};
ApproxCfcc ApproximateGroupCfcc(const Graph& graph,
                                const std::vector<NodeId>& group, int probes,
                                uint64_t seed, const CgOptions& cg = {});

/// Backend-aware overload: kAuto/kCg keep the pinned per-probe CG path;
/// kSparseLdlt/kDense factor L_{-S} once and run the probes as direct
/// solves (same probe vectors — see linalg/hutchinson.h).
ApproxCfcc ApproximateGroupCfcc(const Graph& graph,
                                const std::vector<NodeId>& group, int probes,
                                uint64_t seed, SolverBackend backend,
                                const CgOptions& cg = {});

/// Validates common CFCM preconditions: connected graph, 1 <= k < n.
Status ValidateCfcmArguments(const Graph& graph, int k);

}  // namespace cfcm

#endif  // CFCM_CFCM_CFCC_H_
