// APPROXGREEDY: the state-of-the-art baseline of Li et al. [29].
//
// JL-sketched greedy where every diagonal estimate is produced by solving
// Laplacian linear systems. The authors use the Kyng–Sachdeva approximate
// Cholesky solver (research software, unavailable offline); per the
// substitution rules we plug in Jacobi-preconditioned CG (linalg/cg.h).
// This preserves the algorithm's structure and its defining performance
// characteristic — per-iteration cost proportional to solving
// O(eps^{-2} log n) systems on a matrix with m nonzeros — which is what
// Table II's dense-graph slowdown measures.
#ifndef CFCM_CFCM_APPROX_GREEDY_H_
#define CFCM_CFCM_APPROX_GREEDY_H_

#include <vector>

#include "cfcm/options.h"
#include "common/status.h"
#include "linalg/cg.h"

namespace cfcm {

/// Result of the APPROXGREEDY baseline.
struct ApproxGreedyResult {
  std::vector<NodeId> selected;
  double seconds = 0.0;
  int solver_calls = 0;        ///< number of Laplacian systems solved
  std::int64_t cg_iterations = 0;  ///< total CG iterations across solves
};

/// \brief Runs APPROXGREEDY with error parameter options.eps.
///
/// Pick 1: L†_uu ≈ ||Q B L† e_u||^2 via w pseudoinverse solves (B is the
/// edge incidence matrix). Picks 2..k: Delta(u,S) with numerator
/// ||W L_{-S}^{-1} e_u||^2 (w grounded solves) and denominator
/// (L_{-S}^{-1})_uu = ||B~ L_{-S}^{-1} e_u||^2 (w more solves), where
/// B~^T B~ = L_{-S} augments the interior incidence rows with sqrt(b_u)
/// boundary rows.
StatusOr<ApproxGreedyResult> ApproxGreedyMaximize(const Graph& graph, int k,
                                                  const CfcmOptions& options,
                                                  const CgOptions& cg = {});

}  // namespace cfcm

#endif  // CFCM_CFCM_APPROX_GREEDY_H_
