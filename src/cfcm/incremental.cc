#include "cfcm/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "cfcm/cfcc.h"
#include "cfcm/forest_cfcm.h"
#include "common/timer.h"
#include "estimators/forest_delta.h"
#include "graph/components.h"
#include "obs/metrics.h"

namespace cfcm {

namespace {

// Salt multiplier for the per-epoch resample streams: stream seeds
// final_seed ^ (kSaltStep * salt) are pairwise distinct across epochs
// and never collide with final_seed itself (salt >= 1).
constexpr uint64_t kSaltStep = 0x9e3779b97f4a7c15ULL;

// Per-selection-member seed perturbation for the Phase B re-contests.
constexpr uint64_t kSwapSeedStep = 0x6a09e667f3bcc909ULL;

int ResolveContenders(const CfcmOptions& options) {
  if (options.warm_contenders > 0) return options.warm_contenders;
  return std::max(2 * options.lazy_batch, 16);
}

// Top-`want` non-selected candidates by (stale key desc, id asc) —
// the warm repair's contender pool.
std::vector<NodeId> TopContenders(const WarmState& state,
                                  const std::vector<char>& in_s,
                                  std::size_t want) {
  std::vector<NodeId> ids;
  ids.reserve(state.keys.size());
  for (NodeId u = 0; u < static_cast<NodeId>(state.keys.size()); ++u) {
    if (!in_s[static_cast<std::size_t>(u)]) ids.push_back(u);
  }
  if (ids.size() > want) {
    std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(want),
                      ids.end(), [&state](NodeId a, NodeId b) {
                        const double ka = state.keys[a];
                        const double kb = state.keys[b];
                        if (ka != kb) return ka > kb;
                        return a < b;
                      });
    ids.resize(want);
  }
  return ids;
}

// Deterministic argmax over the subset of one DeltaEstimate: (gain
// desc, id asc), the exhaustive scan's tie-break.
NodeId BestInSubset(const DeltaEstimate& d, const std::vector<char>& mask,
                    double* best_gain) {
  NodeId best = -1;
  double gain = -std::numeric_limits<double>::infinity();
  for (NodeId u = 0; u < static_cast<NodeId>(mask.size()); ++u) {
    if (!mask[static_cast<std::size_t>(u)]) continue;
    const double g = d.delta[static_cast<std::size_t>(u)];
    if (g > gain) {
      gain = g;
      best = u;
    }
  }
  *best_gain = gain;
  return best;
}

std::shared_ptr<const WarmState> DepositFromCapture(
    const Graph& graph, const CfcmOptions& options, const CfcmResult& result,
    WarmCapture&& capture) {
  return BuildWarmState(graph, options, result, std::move(capture));
}

}  // namespace

const char* WarmModeName(WarmMode mode) {
  switch (mode) {
    case WarmMode::kOff:
      return "off";
    case WarmMode::kAuto:
      return "auto";
    case WarmMode::kOn:
      return "on";
  }
  return "off";
}

std::optional<WarmMode> ParseWarmMode(std::string_view name) {
  if (name == "off") return WarmMode::kOff;
  if (name == "auto") return WarmMode::kAuto;
  if (name == "on") return WarmMode::kOn;
  return std::nullopt;
}

void RecordIncrementalCounters(std::int64_t forests_reused,
                               std::int64_t forests_resampled,
                               std::int64_t warm_starts,
                               std::int64_t cold_fallbacks,
                               std::int64_t swap_moves) {
  static obs::Counter* const reused =
      &obs::MetricsRegistry::Global().counter(
          "engine.incremental.forests_reused");
  static obs::Counter* const resampled =
      &obs::MetricsRegistry::Global().counter(
          "engine.incremental.forests_resampled");
  static obs::Counter* const warm =
      &obs::MetricsRegistry::Global().counter("engine.incremental.warm_starts");
  static obs::Counter* const fallbacks =
      &obs::MetricsRegistry::Global().counter(
          "engine.incremental.cold_fallbacks");
  static obs::Counter* const swaps =
      &obs::MetricsRegistry::Global().counter("engine.incremental.swap_moves");
  reused->Add(static_cast<uint64_t>(forests_reused));
  resampled->Add(static_cast<uint64_t>(forests_resampled));
  warm->Add(static_cast<uint64_t>(warm_starts));
  fallbacks->Add(static_cast<uint64_t>(cold_fallbacks));
  swaps->Add(static_cast<uint64_t>(swap_moves));
}

std::shared_ptr<const WarmState> BuildWarmState(const Graph& graph,
                                                const CfcmOptions& options,
                                                const CfcmResult& result,
                                                WarmCapture&& capture) {
  auto state = std::make_shared<WarmState>();
  state->eps = options.eps;
  state->seed = options.seed;
  state->selection = result.selected;
  state->gains = std::move(capture.gains);
  state->keys = std::move(capture.keys);
  state->last_gain = capture.last_gain;
  state->final_seed = capture.final_seed;
  state->base_result = result;
  state->source_n = graph.num_nodes();
  if (capture.has_arena && result.selected.size() >= 2) {
    // Adopt the arena only when it really holds the final refresh
    // round; an accepted reuse pre-screen final round leaves an older
    // round's forests behind (wrong seed — MatchesRound rejects them).
    const std::vector<NodeId> s_prev(result.selected.begin(),
                                     result.selected.end() - 1);
    if (capture.arena.MatchesRound(graph.num_nodes(), s_prev,
                                   capture.final_seed) &&
        capture.arena.committed() > 0) {
      auto lease = std::make_shared<ArenaLease>();
      lease->arena = std::move(capture.arena);
      state->clean.assign(static_cast<std::size_t>(lease->arena.committed()),
                          1);
      state->lease = std::move(lease);
    }
  }
  return state;
}

std::shared_ptr<const WarmState> AdvanceWarmState(const WarmState& state,
                                                  const Graph& pre_graph,
                                                  const GraphDelta& delta) {
  auto next = std::make_shared<WarmState>();
  next->eps = state.eps;
  next->seed = state.seed;
  next->selection = state.selection;
  next->gains = state.gains;
  next->keys = state.keys;
  next->last_gain = state.last_gain;
  next->final_seed = state.final_seed;
  next->base_result = state.base_result;
  next->touched = state.touched;
  next->structural = state.structural;
  next->overflow = state.overflow;
  next->addition_share = state.addition_share;
  next->source_n = state.source_n;
  next->epoch_salt = state.epoch_salt + 1;
  next->clean = state.clean;

  // The edges this delta changes, endpoint-classifiable against the
  // retained forests (both endpoints in the source graph's id space).
  std::vector<WarmState::TouchedEdge> fresh;
  auto record = [&](NodeId u, NodeId v, double abs_dw) {
    if (next->touched.size() + fresh.size() >= kWarmMaxTouchedEdges) {
      next->overflow = true;
      return;
    }
    fresh.push_back({u, v, abs_dw});
  };

  for (const auto& e : delta.reweight_edges()) {
    const double old_w = pre_graph.EdgeWeight(e.u, e.v);
    const double dw = std::abs(e.weight - old_w);
    if (dw == 0.0) continue;  // no-op reweight: the graph is unchanged
    record(e.u, e.v, dw);
  }
  for (const auto& [u, v] : delta.remove_edges()) {
    next->structural = true;
    record(u, v, pre_graph.EdgeWeight(u, v));
  }
  const NodeId pre_n = pre_graph.num_nodes();
  for (const auto& e : delta.add_edges()) {
    next->structural = true;
    if (e.u < pre_n && e.v < pre_n) {
      record(e.u, e.v, e.weight);
      // Support break: no retained forest can contain the new edge.
      // Bound the probability a post-delta forest uses it by the
      // step-probability sum from either endpoint and resample that
      // share of the retained forests (DESIGN.md §16).
      next->addition_share +=
          e.weight / (pre_graph.weighted_degree(e.u) + e.weight) +
          e.weight / (pre_graph.weighted_degree(e.v) + e.weight);
    } else {
      // Edge onto a just-added node: retained forests (old id space)
      // cannot contain it, and the new node joins the contender pool
      // unconditionally, so no touched record is needed — but the
      // support-break share still applies through the old endpoint.
      const NodeId old_end = e.u < pre_n ? e.u : (e.v < pre_n ? e.v : -1);
      if (old_end >= 0) {
        next->addition_share +=
            e.weight / (pre_graph.weighted_degree(old_end) + e.weight);
      }
    }
  }

  // Classify retained forests against the fresh touched edges. Needs
  // exclusive arena access; when an in-flight warm solve holds the
  // lease the successor simply carries no arena (still warm-startable
  // from the gains/keys alone).
  const bool arena_usable = state.lease != nullptr && !next->overflow &&
                            delta.add_nodes() == 0;
  if (arena_usable && state.lease->TryClaim()) {
    ForestArena& arena = state.lease->arena;
    const int committed = arena.committed();
    next->clean.resize(static_cast<std::size_t>(committed), 0);
    for (const auto& e : fresh) {
      if (e.u >= state.source_n || e.v >= state.source_n) continue;
      const uint64_t key = UndirectedEdgeKey(e.u, e.v);
      for (int f = 0; f < committed; ++f) {
        if (!next->clean[static_cast<std::size_t>(f)]) continue;
        if (arena.MaybeContainsEdge(f, key) && arena.ContainsUpEdge(f, e.u, e.v)) {
          next->clean[static_cast<std::size_t>(f)] = 0;
        }
      }
    }
    auto lease = std::make_shared<ArenaLease>();
    lease->arena = std::move(arena);
    next->lease = std::move(lease);
  } else {
    next->lease = nullptr;
    next->clean.clear();
  }

  next->touched.insert(next->touched.end(), fresh.begin(), fresh.end());
  return next;
}

WarmDecision DecideWarm(const Graph& graph, const WarmState* state, int k,
                        const CfcmOptions& options) {
  if (state == nullptr) return {false, "no_warm_state"};
  if (k < 2) return {false, "k_too_small"};
  if (static_cast<std::size_t>(k) != state->selection.size()) {
    return {false, "k_mismatch"};
  }
  if (state->seed != options.seed || state->eps != options.eps) {
    return {false, "params_changed"};
  }
  if (state->overflow) return {false, "delta_overflow"};
  const NodeId n = graph.num_nodes();
  if (n < state->source_n) return {false, "node_count_shrank"};
  if (n - state->source_n > kWarmMaxNewNodes) {
    return {false, "too_many_new_nodes"};
  }
  const double m = static_cast<double>(std::max<EdgeId>(graph.num_edges(), 1));
  if (static_cast<double>(state->touched.size()) >
      options.warm_max_delta_fraction * m) {
    return {false, "delta_too_large"};
  }
  if (state->addition_share >= 0.5) return {false, "addition_share"};
  if (!IsConnected(graph)) return {false, "disconnected"};
  return {true, "ok"};
}

StatusOr<CfcmResult> ForestSolveWithWarm(
    const Graph& graph, int k, const CfcmOptions& options, WarmMode mode,
    const std::shared_ptr<const WarmState>& warm,
    std::shared_ptr<const WarmState>* deposit) {
  CFCM_RETURN_IF_ERROR(ValidateCfcmArguments(graph, k));

  const bool lazy = options.selection == SelectionMode::kLazy;
  WarmDecision decision{false, "warm_off"};
  if (mode != WarmMode::kOff && lazy) {
    decision = DecideWarm(graph, warm.get(), k, options);
  }

  if (!decision.use_warm) {
    WarmCapture capture;
    StatusOr<CfcmResult> cold = ForestCfcmMaximizeCaptured(
        graph, k, options, (deposit != nullptr && lazy) ? &capture : nullptr);
    if (!cold.ok()) return cold;
    // A fallback is counted when warm solving was in play at all: mode
    // kOn always, mode kAuto only once a state existed to fall back
    // from (a first solve is simply cold, not a failed warm start).
    cold->cold_fallback =
        lazy && (mode == WarmMode::kOn ||
                 (mode == WarmMode::kAuto && warm != nullptr));
    if (cold->cold_fallback) {
      RecordIncrementalCounters(0, 0, 0, 1, 0);
    }
    if (deposit != nullptr && lazy) {
      *deposit =
          DepositFromCapture(graph, options, *cold, std::move(capture));
    }
    return cold;
  }

  Timer timer;
  const WarmState& state = *warm;
  const NodeId n = graph.num_nodes();

  // Identity fast path: nothing touched since the state was built, so
  // the stored selection IS the cold selection for this graph — return
  // it verbatim (bitwise parity with the cold solve it came from).
  if (state.touched.empty() && !state.structural && n == state.source_n) {
    CfcmResult result = state.base_result;
    result.forests_per_iteration.clear();
    result.total_forests = 0;
    result.total_walk_steps = 0;
    result.rescored_candidates = 0;
    result.heap_pops = 0;
    result.forests_reused = 0;
    result.forests_resampled = 0;
    result.swap_moves = 0;
    result.warm_started = true;
    result.cold_fallback = false;
    result.seconds = timer.Seconds();
    if (deposit != nullptr) *deposit = warm;
    RecordIncrementalCounters(0, 0, 1, 0, 0);
    return result;
  }

  ThreadPool& pool = ResolveSamplingPool(options);
  CfcmResult result;
  result.warm_started = true;
  std::vector<NodeId> selection = state.selection;

  std::vector<char> in_s(static_cast<std::size_t>(n), 0);
  for (NodeId s : selection) in_s[static_cast<std::size_t>(s)] = 1;
  const std::vector<NodeId> contenders = TopContenders(
      state, in_s, static_cast<std::size_t>(ResolveContenders(options)));

  // Exclusive arena access for the whole repair; AdvanceWarmState and
  // concurrent warm solves on the same state race for the same claim,
  // losers just sample fresh.
  std::shared_ptr<ArenaLease> lease;
  if (state.lease != nullptr && n == state.source_n &&
      state.lease->TryClaim()) {
    lease = state.lease;
  }

  // ---- Phase A: re-certify the incumbent's final pick. One
  // subset-restricted estimate rooted at selection[0..k-2] on the
  // final-round stream — clean forests replay verbatim, dirty ones and
  // the addition-correction share resample from the salted stream.
  std::vector<NodeId> s_prev(selection.begin(), selection.end() - 1);
  const NodeId incumbent = selection.back();
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  mask[static_cast<std::size_t>(incumbent)] = 1;
  for (NodeId c : contenders) mask[static_cast<std::size_t>(c)] = 1;
  for (NodeId u = state.source_n; u < n; ++u) {
    mask[static_cast<std::size_t>(u)] = 1;  // new nodes always contend
  }

  EstimatorOptions est = ToEstimatorOptions(options);
  est.seed = state.final_seed;
  DeltaScope scope;
  scope.subset = &mask;
  scope.allow_adaptive_exit = true;
  std::vector<char> replay;
  int committed_before = 0;
  const uint64_t salt = std::max<uint64_t>(state.epoch_salt, 1);
  if (lease != nullptr &&
      lease->arena.MatchesRound(n, s_prev, state.final_seed)) {
    committed_before = lease->arena.committed();
    replay = state.clean;
    replay.resize(static_cast<std::size_t>(committed_before), 0);
    // Importance correction for edge additions: force-resample the
    // highest-indexed clean slots until the share is covered.
    int forced = static_cast<int>(
        std::ceil(state.addition_share * committed_before));
    for (int f = committed_before - 1; f >= 0 && forced > 0; --f) {
      if (replay[static_cast<std::size_t>(f)]) {
        replay[static_cast<std::size_t>(f)] = 0;
        --forced;
      }
    }
    scope.arena = &lease->arena;
    scope.replay_clean = &replay;
    scope.resample_seed = state.final_seed ^ (kSaltStep * salt);
  }

  const DeltaEstimate a = ForestDelta(graph, s_prev, est, pool, scope);
  result.jl_rows = a.jl_rows;
  result.total_walk_steps += a.walk_steps;
  result.forests_reused += a.reused_forests;
  result.forests_resampled +=
      std::min(a.forests, committed_before) - a.reused_forests;
  result.forests_per_iteration.push_back(a.forests - a.reused_forests);
  result.total_forests += a.forests - a.reused_forests;
  for (std::size_t u = 0; u < mask.size(); ++u) {
    if (mask[u]) ++result.rescored_candidates;
  }

  double phase_a_best_gain = 0.0;
  const NodeId phase_a_best = BestInSubset(a, mask, &phase_a_best_gain);
  if (phase_a_best >= 0 && phase_a_best != incumbent) {
    in_s[static_cast<std::size_t>(incumbent)] = 0;
    in_s[static_cast<std::size_t>(phase_a_best)] = 1;
    selection.back() = phase_a_best;
    ++result.swap_moves;
  }
  double last_gain = phase_a_best_gain;

  // ---- Phase B: re-contest earlier members whose incident delta
  // weight is material relative to their weighted degree (drop-one /
  // add-best, one sweep, fresh per-member streams).
  for (int i = 0; i + 1 < k; ++i) {
    const NodeId s_i = selection[static_cast<std::size_t>(i)];
    double incident = 0.0;
    for (const auto& e : state.touched) {
      if (e.u == s_i || e.v == s_i) incident += e.abs_dw;
    }
    const double degree_w =
        std::max(graph.weighted_degree(s_i), std::numeric_limits<double>::min());
    if (incident / degree_w <= options.warm_swap_impact) continue;

    std::vector<NodeId> roots;
    roots.reserve(static_cast<std::size_t>(k) - 1);
    for (int j = 0; j < k; ++j) {
      if (j != i) roots.push_back(selection[static_cast<std::size_t>(j)]);
    }
    std::fill(mask.begin(), mask.end(), 0);
    mask[static_cast<std::size_t>(s_i)] = 1;
    for (NodeId c : contenders) {
      if (!in_s[static_cast<std::size_t>(c)]) {
        mask[static_cast<std::size_t>(c)] = 1;
      }
    }
    for (NodeId u = state.source_n; u < n; ++u) {
      if (!in_s[static_cast<std::size_t>(u)]) {
        mask[static_cast<std::size_t>(u)] = 1;
      }
    }

    EstimatorOptions est_b = ToEstimatorOptions(options);
    est_b.seed = state.final_seed ^
                 (kSwapSeedStep * static_cast<uint64_t>(i + 1)) ^
                 (kSaltStep * salt);
    DeltaScope scope_b;
    scope_b.subset = &mask;
    scope_b.allow_adaptive_exit = true;
    const DeltaEstimate b = ForestDelta(graph, roots, est_b, pool, scope_b);
    result.total_walk_steps += b.walk_steps;
    result.forests_per_iteration.push_back(b.forests);
    result.total_forests += b.forests;
    for (std::size_t u = 0; u < mask.size(); ++u) {
      if (mask[u]) ++result.rescored_candidates;
    }

    double best_gain = 0.0;
    const NodeId best = BestInSubset(b, mask, &best_gain);
    // Swapping an earlier member perturbs the whole greedy chain, so
    // the challenger must clear the incumbent by the reuse margin, not
    // just win the draw.
    const double incumbent_gain = b.delta[static_cast<std::size_t>(s_i)];
    if (best >= 0 && best != s_i &&
        best_gain > incumbent_gain * (1.0 + options.reuse_margin)) {
      in_s[static_cast<std::size_t>(s_i)] = 0;
      in_s[static_cast<std::size_t>(best)] = 1;
      selection[static_cast<std::size_t>(i)] = best;
      ++result.swap_moves;
    }
  }

  result.selected = selection;
  result.seconds = timer.Seconds();

  // ---- Successor deposit: merged candidate scores, and the arena iff
  // its root set still matches selection[0..k-2] (a Phase B swap of an
  // earlier member invalidates the roots; a last-pick swap does not).
  if (deposit != nullptr) {
    auto next = std::make_shared<WarmState>();
    next->eps = options.eps;
    next->seed = options.seed;
    next->selection = selection;
    next->gains.assign(static_cast<std::size_t>(n), 0.0);
    next->keys.assign(static_cast<std::size_t>(n), 0.0);
    for (NodeId u = 0; u < state.source_n; ++u) {
      next->gains[static_cast<std::size_t>(u)] =
          state.gains[static_cast<std::size_t>(u)];
      next->keys[static_cast<std::size_t>(u)] =
          state.keys[static_cast<std::size_t>(u)];
    }
    for (std::size_t u = 0; u < mask.size(); ++u) {
      // Phase A refreshed these on the current graph; fold them in with
      // the estimator's own width factor, mirroring the lazy heap keys.
      if (!mask[u]) continue;
      const double g = a.delta[u];
      const double rel = std::min(a.rel[u], options.lazy_width_cap);
      next->gains[u] = g;
      next->keys[u] = g * (1.0 + rel);
    }
    for (NodeId s : selection) {
      next->gains[static_cast<std::size_t>(s)] = 0.0;
      next->keys[static_cast<std::size_t>(s)] = 0.0;
    }
    next->last_gain = last_gain;
    next->final_seed = state.final_seed;
    next->base_result = result;
    next->source_n = n;
    next->epoch_salt = state.epoch_salt + 1;
    if (lease != nullptr) {
      const std::vector<NodeId> new_prev(selection.begin(),
                                         selection.end() - 1);
      if (lease->arena.MatchesRound(n, new_prev, state.final_seed)) {
        const int committed_now = lease->arena.committed();
        next->clean.assign(static_cast<std::size_t>(committed_now), 1);
        // Slots past this solve's batch count keep their pre-solve
        // classification (they were neither replayed nor resampled).
        for (int f = a.forests; f < committed_before; ++f) {
          next->clean[static_cast<std::size_t>(f)] =
              replay[static_cast<std::size_t>(f)];
        }
        auto fresh_lease = std::make_shared<ArenaLease>();
        fresh_lease->arena = std::move(lease->arena);
        next->lease = std::move(fresh_lease);
      }
    }
    *deposit = std::move(next);
  }

  RecordIncrementalCounters(result.forests_reused, result.forests_resampled,
                            1, 0, result.swap_moves);
  return result;
}

}  // namespace cfcm
