// EXACT baseline: greedy CFCM via exact Laplacian algebra (paper §V-A).
#ifndef CFCM_CFCM_EXACT_GREEDY_H_
#define CFCM_CFCM_EXACT_GREEDY_H_

#include <vector>

#include "cfcm/options.h"
#include "common/status.h"
#include "graph/graph.h"
#include "linalg/solver.h"

namespace cfcm {

/// Result of the exact greedy baseline.
struct ExactGreedyResult {
  std::vector<NodeId> selected;     ///< greedy order
  std::vector<double> trace_after;  ///< Tr(L_{-S_i}^{-1}) after each pick
  double seconds = 0.0;
  /// Backend that ran the exact algebra (resolved, never kAuto).
  SolverBackend backend = SolverBackend::kDense;
};

/// \brief Exact greedy: first pick argmin L†_uu; then select
/// argmax (M^2)_uu / M_uu with M = L_{-S}^{-1} (Eq. 5), applying the
/// rank-1 downdate M' = M - M e_u e_u^T M / M_uu after each pick.
///
/// The dense backend materializes M explicitly: O(n^3 + k n^2) time,
/// O(n^2) memory — the pinned reference. The sparse_ldlt/cg backends
/// never form M: the pseudoinverse diagonal comes from the identity
/// L† = P H P with H = L_{-g}^{-1} zero-padded at an arbitrary ground g
/// (one factorization + selected-inverse diagonal + one solve), column
/// norms (M^2)_uu are initialized with n solves against the factored
/// L_{-S_1}, and each later round is O(1) solves: the downdates are
/// tracked as rank-1 corrections f^(t) f^(t)T / a_t on top of the fixed
/// base factor, so f = M e_b and g = M f need one base solve each plus
/// the stored corrections. Exact modulo roundoff: selections match the
/// dense reference and scalars agree to ~1e-9 relative (pinned by
/// tests/cfcm/backend_agreement_test.cc).
///
/// `options` supplies solver_backend (kAuto: dense up to
/// kDenseBackendMaxN kept nodes, sparse_ldlt above) and the pool that
/// parallelizes the column-norm initialization (deterministic: each
/// column is an independent solve).
StatusOr<ExactGreedyResult> ExactGreedyMaximize(const Graph& graph, int k,
                                                const CfcmOptions& options);

/// Backward-compatible overload: default options (auto backend).
StatusOr<ExactGreedyResult> ExactGreedyMaximize(const Graph& graph, int k);

}  // namespace cfcm

#endif  // CFCM_CFCM_EXACT_GREEDY_H_
