// EXACT baseline: greedy CFCM via dense matrix inversion (paper §V-A).
#ifndef CFCM_CFCM_EXACT_GREEDY_H_
#define CFCM_CFCM_EXACT_GREEDY_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace cfcm {

/// Result of the exact greedy baseline.
struct ExactGreedyResult {
  std::vector<NodeId> selected;     ///< greedy order
  std::vector<double> trace_after;  ///< Tr(L_{-S_i}^{-1}) after each pick
  double seconds = 0.0;
};

/// \brief Exact greedy: first pick argmin L†_uu from the dense
/// pseudoinverse; then maintain M = L_{-S}^{-1} explicitly and select
/// argmax (M^2)_uu / M_uu (Eq. 5), downdating M with the submatrix-
/// inverse identity M' = M - M e_u e_u^T M / M_uu after each pick.
///
/// O(n^3 + k n^2) time, O(n^2) memory; small/medium graphs only.
StatusOr<ExactGreedyResult> ExactGreedyMaximize(const Graph& graph, int k);

}  // namespace cfcm

#endif  // CFCM_CFCM_EXACT_GREEDY_H_
