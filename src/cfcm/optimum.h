// Exhaustive CFCM optimum for tiny graphs (paper Fig. 1 reference).
#ifndef CFCM_CFCM_OPTIMUM_H_
#define CFCM_CFCM_OPTIMUM_H_

#include <cstdint>
#include <vector>

#include "cfcm/options.h"
#include "common/status.h"
#include "graph/graph.h"
#include "linalg/solver.h"

namespace cfcm {

/// Result of the exhaustive search.
struct OptimumResult {
  std::vector<NodeId> best;  ///< optimal group, ascending node order
  double trace = 0.0;        ///< Tr(L_{-S*}^{-1})
  double cfcc = 0.0;         ///< C(S*) = n / trace
  std::int64_t subsets_evaluated = 0;
  double seconds = 0.0;
  /// Backend that produced the per-branch inverses (resolved).
  SolverBackend backend = SolverBackend::kDense;
};

/// \brief Examines all C(n, k) groups and returns the one minimizing
/// Tr(L_{-S}^{-1}).
///
/// Uses depth-first enumeration with Sherman–Morrison submatrix-inverse
/// downdates so each internal node costs O(n^2) instead of a fresh
/// O(n^3) factorization. Still exponential in k — intended for the
/// paper's tiny graphs (n <= ~70, k <= 5); rejects n > 128.
///
/// The search itself always walks a dense inverse (the whole point is
/// O(n^2) downdates on tiny n), but options.solver_backend chooses the
/// kernel that materializes each branch's L_{-u1}^{-1}: dense inverts
/// directly, sparse_ldlt/cg factor and solve against the identity —
/// useful as an end-to-end cross-check of the factor backends.
StatusOr<OptimumResult> OptimumSearch(const Graph& graph, int k,
                                      const CfcmOptions& options);

/// Backward-compatible overload: default options (auto backend, which
/// resolves dense at optimum's n <= 128 scale).
StatusOr<OptimumResult> OptimumSearch(const Graph& graph, int k);

}  // namespace cfcm

#endif  // CFCM_CFCM_OPTIMUM_H_
