// Command-line CFCM solver: the library as a downstream user would run
// it on their own edge lists.
//
//   cfcm_solve <edge-list> [--k N] [--algo schur|forest|exact|approx|degree]
//              [--eps X] [--seed N] [--threads N]
//
// The input is a whitespace edge list ('#'/'%' comments allowed); the
// largest connected component is extracted automatically (the paper's
// preprocessing), and selected nodes are reported in original ids.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cfcm/approx_greedy.h"
#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "cfcm/schur_cfcm.h"
#include "common/timer.h"
#include "graph/components.h"
#include "graph/io.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <edge-list> [--k N] [--algo "
               "schur|forest|exact|approx|degree] [--eps X] [--seed N] "
               "[--threads N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string path = argv[1];
  int k = 10;
  std::string algo = "schur";
  cfcm::CfcmOptions options;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--k") {
      k = std::atoi(value);
    } else if (flag == "--algo") {
      algo = value;
    } else if (flag == "--eps") {
      options.eps = std::atof(value);
    } else if (flag == "--seed") {
      options.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--threads") {
      options.num_threads = std::atoi(value);
    } else {
      return Usage(argv[0]);
    }
  }

  auto loaded = cfcm::LoadEdgeList(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const cfcm::LccResult lcc = cfcm::LargestConnectedComponent(*loaded);
  std::printf("loaded %s: n=%d m=%lld; LCC n=%d m=%lld\n", path.c_str(),
              loaded->num_nodes(), static_cast<long long>(loaded->num_edges()),
              lcc.graph.num_nodes(),
              static_cast<long long>(lcc.graph.num_edges()));

  cfcm::Timer timer;
  std::vector<cfcm::NodeId> selected;
  if (algo == "schur") {
    auto r = cfcm::SchurCfcmMaximize(lcc.graph, k, options);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    selected = r->selected;
  } else if (algo == "forest") {
    auto r = cfcm::ForestCfcmMaximize(lcc.graph, k, options);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    selected = r->selected;
  } else if (algo == "exact") {
    auto r = cfcm::ExactGreedyMaximize(lcc.graph, k);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    selected = r->selected;
  } else if (algo == "approx") {
    auto r = cfcm::ApproxGreedyMaximize(lcc.graph, k, options);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    selected = r->selected;
  } else if (algo == "degree") {
    selected = cfcm::DegreeSelect(lcc.graph, k);
  } else {
    return Usage(argv[0]);
  }
  const double seconds = timer.Seconds();

  std::printf("%s selected %d nodes in %.3fs (original ids):", algo.c_str(),
              k, seconds);
  for (cfcm::NodeId u : selected) {
    std::printf(" %d", lcc.to_original[u]);
  }
  std::printf("\n");
  if (lcc.graph.num_nodes() <= 3000) {
    std::printf("C(S) = %.6f (dense exact)\n",
                cfcm::ExactGroupCfcc(lcc.graph, selected));
  } else {
    const auto approx = cfcm::ApproximateGroupCfcc(lcc.graph, selected,
                                                   /*probes=*/16, 7);
    std::printf("C(S) = %.6f (Hutchinson+CG, trace stderr %.2g)\n",
                approx.cfcc, approx.trace_std_error);
  }
  return 0;
}
