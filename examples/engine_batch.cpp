// Batch serving: many queries against one cached graph session.
//
// Demonstrates the engine front end — a mixed batch of solve jobs
// (several algorithms, several seeds, several k) plus group evaluations,
// all answered concurrently from one shared session.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/engine_batch
#include <cstdio>
#include <variant>

#include "engine/engine.h"
#include "graph/generators.h"

int main() {
  using cfcm::engine::EvaluateJob;
  using cfcm::engine::EvaluateJobResult;
  using cfcm::engine::Job;
  using cfcm::engine::SolveJob;
  using cfcm::engine::SolveJobResult;

  // A 500-node scale-free graph; the session caches connectivity, the
  // degree ordering and the Laplacian across the whole batch.
  cfcm::engine::Engine engine{cfcm::BarabasiAlbert(500, 3, 42)};
  std::printf("session graph: n=%d, m=%lld, connected=%s\n\n",
              engine.session().num_nodes(),
              static_cast<long long>(engine.session().num_edges()),
              engine.session().is_connected() ? "yes" : "no");

  std::vector<Job> jobs;
  // Compare the paper's two samplers across seeds at k = 8...
  for (uint64_t seed : {1, 2, 3}) {
    jobs.push_back(SolveJob{.algorithm = "forest", .k = 8, .eps = 0.2,
                            .seed = seed});
    jobs.push_back(SolveJob{.algorithm = "schur", .k = 8, .eps = 0.2,
                            .seed = seed});
  }
  // ...against the exact greedy baseline and the degree heuristic,
  jobs.push_back(SolveJob{.algorithm = "exact", .k = 8});
  jobs.push_back(SolveJob{.algorithm = "degree", .k = 8});
  // ...and score a hand-picked hub group for reference.
  jobs.push_back(EvaluateJob{.group = {0, 1, 2, 3, 4, 5, 6, 7}});

  const auto results = engine.RunBatch(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      std::printf("job %zu FAILED: %s\n", i,
                  results[i].status().ToString().c_str());
      continue;
    }
    if (const auto* solve = std::get_if<SolveJobResult>(&*results[i])) {
      const auto& job = std::get<SolveJob>(jobs[i]);
      std::printf("%-8s seed=%llu  C(S) = %.6f  (%.3fs", job.algorithm.c_str(),
                  static_cast<unsigned long long>(job.seed), solve->cfcc,
                  solve->output.seconds);
      if (solve->output.total_forests > 0) {
        std::printf(", %lld forests",
                    static_cast<long long>(solve->output.total_forests));
      }
      std::printf(")\n");
    } else {
      const auto& eval = std::get<EvaluateJobResult>(*results[i]);
      std::printf("evaluate {0..7}   C(S) = %.6f  trace = %.4f\n", eval.cfcc,
                  eval.trace);
    }
  }
  return 0;
}
