// Point-cloud sampling (paper §I: "selecting a representative subset of
// points to preserve the geometric features"). Builds a k-NN graph over
// a synthetic 3D shape and picks landmark points with SchurCFCM; quality
// is measured by the mean squared distance from every point to its
// nearest landmark (coverage), compared with random sampling.
//
//   ./build/examples/point_cloud_sampling [points] [landmarks]
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cfcm/cfcc.h"
#include "cfcm/schur_cfcm.h"
#include "common/rng.h"
#include "graph/components.h"
#include "graph/generators.h"

namespace {

using Point = std::array<double, 3>;

// Two interlocking torus rings: a shape with non-trivial geometry.
std::vector<Point> MakeShape(int count, uint64_t seed) {
  cfcm::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double u = 2 * M_PI * rng.NextDouble();
    const double v = 2 * M_PI * rng.NextDouble();
    const double r = 0.25, big_r = 1.0;
    Point p;
    if (i % 2 == 0) {
      p = {(big_r + r * std::cos(v)) * std::cos(u),
           (big_r + r * std::cos(v)) * std::sin(u), r * std::sin(v)};
    } else {
      p = {big_r + (big_r + r * std::cos(v)) * std::cos(u), r * std::sin(v),
           (big_r + r * std::cos(v)) * std::sin(u)};
    }
    pts.push_back(p);
  }
  return pts;
}

double SquaredDist(const Point& a, const Point& b) {
  double d2 = 0;
  for (int c = 0; c < 3; ++c) d2 += (a[c] - b[c]) * (a[c] - b[c]);
  return d2;
}

double CoverageError(const std::vector<Point>& pts,
                     const std::vector<cfcm::NodeId>& landmarks) {
  double total = 0;
  for (const Point& p : pts) {
    double best = 1e300;
    for (cfcm::NodeId l : landmarks) best = std::min(best, SquaredDist(p, pts[l]));
    total += best;
  }
  return total / static_cast<double>(pts.size());
}

}  // namespace

int main(int argc, char** argv) {
  const int count = argc > 1 ? std::atoi(argv[1]) : 1200;
  const int k = argc > 2 ? std::atoi(argv[2]) : 12;

  const auto pts = MakeShape(count, 5150);
  const cfcm::Graph knn = cfcm::KnnGraph(pts, 8);
  const cfcm::LccResult lcc = cfcm::LargestConnectedComponent(knn);
  std::printf("point cloud: %d points, k-NN graph LCC n=%d m=%lld\n", count,
              lcc.graph.num_nodes(),
              static_cast<long long>(lcc.graph.num_edges()));

  cfcm::CfcmOptions options;
  options.eps = 0.2;
  options.seed = 31;
  options.forest_factor = 6.0;
  options.max_forests = 4096;
  options.jl_rows = 48;
  auto result = cfcm::SchurCfcmMaximize(lcc.graph, k, options);
  if (!result.ok()) {
    std::fprintf(stderr, "solver failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::vector<cfcm::NodeId> landmarks;
  for (cfcm::NodeId u : result->selected) {
    landmarks.push_back(lcc.to_original[u]);
  }

  // Random baseline restricted to the LCC so both selections live on the
  // same graph and C(S) is comparable.
  cfcm::Rng rng(8);
  std::vector<cfcm::NodeId> random_lcc;
  while (static_cast<int>(random_lcc.size()) < k) {
    const auto u = static_cast<cfcm::NodeId>(
        rng.NextBounded(static_cast<uint32_t>(lcc.graph.num_nodes())));
    if (std::find(random_lcc.begin(), random_lcc.end(), u) ==
        random_lcc.end()) {
      random_lcc.push_back(u);
    }
  }
  std::vector<cfcm::NodeId> random_landmarks;
  for (cfcm::NodeId u : random_lcc) {
    random_landmarks.push_back(lcc.to_original[u]);
  }

  // Primary metric: the quantity CFCC optimizes — electrical closeness
  // of every point to the landmark set on the k-NN graph (higher C(S) =
  // lower mean effective resistance). 3D coverage MSE is reported as a
  // secondary, purely geometric view.
  std::printf("\n%-12s %12s %20s\n", "sampling", "C(S) (graph)",
              "coverage MSE (3D)");
  std::printf("%-12s %12.6f %20.6f\n", "SchurCFCM",
              cfcm::ExactGroupCfcc(lcc.graph, result->selected),
              CoverageError(pts, landmarks));
  std::printf("%-12s %12.6f %20.6f\n", "Random",
              cfcm::ExactGroupCfcc(lcc.graph, random_lcc),
              CoverageError(pts, random_landmarks));
  std::printf("\nlandmark indices:");
  for (cfcm::NodeId u : landmarks) std::printf(" %d", u);
  std::printf("\n(CFCC maximizes electrical closeness on the k-NN graph — "
              "the C(S) column; geometric MSE is a secondary view where "
              "spread-out random points can compete on smooth shapes)\n");
  return 0;
}
