// Wireless sensor placement (paper §I motivation): choose k nodes of a
// deployment-area network to host sensors so that every location has low
// effective resistance — i.e. strong multi-path connectivity — to the
// sensor group. Compares SchurCFCM against degree and random placement.
//
//   ./build/examples/sensor_placement [n] [k]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "cfcm/cfcc.h"
#include "cfcm/heuristics.h"
#include "cfcm/schur_cfcm.h"
#include "common/rng.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace {

// Mean and worst effective resistance from any node to the group: the
// "signal accessibility" profile of a placement.
struct Coverage {
  double mean_r;
  double max_r;
};

Coverage Evaluate(const cfcm::Graph& g, const std::vector<cfcm::NodeId>& s) {
  const cfcm::DenseMatrix inv = cfcm::ExactLaplacianSubmatrixInverse(g, s);
  double total = 0, worst = 0;
  for (int i = 0; i < inv.rows(); ++i) {
    total += inv(i, i);
    worst = std::max(worst, inv(i, i));
  }
  return {total / g.num_nodes(), worst};
}

}  // namespace

int main(int argc, char** argv) {
  const cfcm::NodeId n = argc > 1 ? std::atoi(argv[1]) : 800;
  const int k = argc > 2 ? std::atoi(argv[2]) : 6;

  // Deployment area: a random geometric radio-range graph.
  const cfcm::Graph g = cfcm::RandomGeometric(n, 0.06, 2024);
  std::printf("sensor field: n=%d, m=%lld (random geometric, r=0.06)\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()));

  cfcm::CfcmOptions options;
  options.eps = 0.2;
  options.seed = 4;
  auto placed = cfcm::SchurCfcmMaximize(g, k, options);
  if (!placed.ok()) {
    std::fprintf(stderr, "solver failed: %s\n",
                 placed.status().ToString().c_str());
    return 1;
  }

  const auto degree = cfcm::DegreeSelect(g, k);
  std::vector<cfcm::NodeId> random_pick;
  cfcm::Rng rng(9);
  while (static_cast<int>(random_pick.size()) < k) {
    const cfcm::NodeId u =
        static_cast<cfcm::NodeId>(rng.NextBounded(static_cast<uint32_t>(n)));
    if (std::find(random_pick.begin(), random_pick.end(), u) ==
        random_pick.end()) {
      random_pick.push_back(u);
    }
  }

  std::printf("\n%-12s %12s %14s %14s\n", "placement", "C(S)",
              "mean R(u,S)", "max R(u,S)");
  for (const auto& [name, sel] :
       {std::pair<const char*, std::vector<cfcm::NodeId>>{"SchurCFCM",
                                                          placed->selected},
        {"Degree", degree},
        {"Random", random_pick}}) {
    const Coverage cov = Evaluate(g, sel);
    std::printf("%-12s %12.6f %14.4f %14.4f\n", name,
                cfcm::ExactGroupCfcc(g, sel), cov.mean_r, cov.max_r);
  }
  std::printf("\nSchurCFCM sensors:");
  for (cfcm::NodeId u : placed->selected) std::printf(" %d", u);
  std::printf("\n(lower mean/max resistance = every point of the field is "
              "electrically closer to a sensor)\n");
  return 0;
}
