// Network reinforcement (the paper's §VI future-work problem): a fixed
// facility group S exists; we may build k new links. Which links raise
// the group's current-flow closeness the most?
//
// Compares greedy edge addition (cfcm/edge_addition.h) against random
// link addition on a road-like network.
//
//   ./build/examples/reinforce_group [n] [k_edges]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "cfcm/cfcc.h"
#include "cfcm/edge_addition.h"
#include "cfcm/schur_cfcm.h"
#include "common/rng.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace {

double CfccAfterAdding(
    const cfcm::Graph& g, const std::vector<cfcm::NodeId>& group,
    const std::vector<std::pair<cfcm::NodeId, cfcm::NodeId>>& new_edges) {
  auto edges = g.Edges();
  edges.insert(edges.end(), new_edges.begin(), new_edges.end());
  const cfcm::Graph augmented = cfcm::BuildGraph(g.num_nodes(), edges);
  return cfcm::ExactGroupCfcc(augmented, group);
}

}  // namespace

int main(int argc, char** argv) {
  const cfcm::NodeId n = argc > 1 ? std::atoi(argv[1]) : 600;
  const int k_edges = argc > 2 ? std::atoi(argv[2]) : 6;

  const cfcm::Graph g = cfcm::RandomGeometric(n, 0.05, 777);
  std::printf("road network: n=%d, m=%lld\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()));

  // The facility group: a CFCM-optimal placement of 4 depots.
  cfcm::CfcmOptions opts;
  opts.seed = 3;
  auto group_result = cfcm::SchurCfcmMaximize(g, 4, opts);
  if (!group_result.ok()) {
    std::fprintf(stderr, "solver failed: %s\n",
                 group_result.status().ToString().c_str());
    return 1;
  }
  const auto& group = group_result->selected;
  const double before = cfcm::ExactGroupCfcc(g, group);
  std::printf("depot group:");
  for (cfcm::NodeId u : group) std::printf(" %d", u);
  std::printf("   C(S) before reinforcement: %.6f\n\n", before);

  auto greedy =
      cfcm::GreedyEdgeAddition(g, group, k_edges, cfcm::EdgeCandidates::kAny);
  if (!greedy.ok()) {
    std::fprintf(stderr, "edge addition failed: %s\n",
                 greedy.status().ToString().c_str());
    return 1;
  }

  // Random baseline: k uniformly chosen non-edges.
  cfcm::Rng rng(15);
  std::set<std::pair<cfcm::NodeId, cfcm::NodeId>> random_edges;
  while (static_cast<int>(random_edges.size()) < k_edges) {
    auto a = static_cast<cfcm::NodeId>(
        rng.NextBounded(static_cast<uint32_t>(n)));
    auto b = static_cast<cfcm::NodeId>(
        rng.NextBounded(static_cast<uint32_t>(n)));
    if (a == b || g.HasEdge(a, b)) continue;
    random_edges.insert({std::min(a, b), std::max(a, b)});
  }

  const double c_greedy = CfccAfterAdding(g, group, greedy->added);
  const double c_random = CfccAfterAdding(
      g, group,
      std::vector<std::pair<cfcm::NodeId, cfcm::NodeId>>(random_edges.begin(),
                                                         random_edges.end()));

  std::printf("%-16s %12s %14s\n", "reinforcement", "C(S) after",
              "improvement");
  std::printf("%-16s %12.6f %13.2f%%\n", "Greedy (ours)", c_greedy,
              100.0 * (c_greedy - before) / before);
  std::printf("%-16s %12.6f %13.2f%%\n", "Random links", c_random,
              100.0 * (c_random - before) / before);

  std::printf("\ngreedy links:");
  for (const auto& [a, b] : greedy->added) std::printf(" (%d,%d)", a, b);
  std::printf("\n(the paper lists this edge-selection problem as open "
              "future work; this is the exact greedy reference solution)\n");
  return 0;
}
