// Quickstart: maximize group current-flow closeness on Zachary's karate
// club with every algorithm in the solver registry.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/examples/quickstart
#include <cstdio>
#include <variant>

#include "engine/engine.h"
#include "engine/registry.h"
#include "graph/datasets.h"

int main() {
  constexpr int kGroupSize = 5;

  cfcm::engine::EngineOptions options;
  // The karate club is tiny, so spend a generous sampling budget: with
  // it both Monte-Carlo algorithms land on (near-)optimal groups.
  options.solver_defaults.forest_factor = 8.0;
  options.solver_defaults.max_forests = 8192;
  options.solver_defaults.jl_rows = 96;

  cfcm::engine::Engine engine{cfcm::KarateClub(), options};
  std::printf("Karate club: n=%d, m=%lld, maximizing CFCC with k=%d\n\n",
              engine.session().num_nodes(),
              static_cast<long long>(engine.session().num_edges()),
              kGroupSize);

  // One SolveJob per registered algorithm, served as a single batch on
  // the shared session.
  std::vector<cfcm::engine::Job> jobs;
  const auto& registry = cfcm::engine::SolverRegistry::Global();
  for (const auto& solver : registry.solvers()) {
    jobs.push_back(cfcm::engine::SolveJob{.algorithm = solver->name(),
                                          .k = kGroupSize, .eps = 0.2,
                                          .seed = 7});
  }

  const auto results = engine.RunBatch(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& solver = *registry.solvers()[i];
    if (!results[i].ok()) {
      std::fprintf(stderr, "%-9s failed: %s\n", solver.name().c_str(),
                   results[i].status().ToString().c_str());
      return 1;
    }
    const auto& result = std::get<cfcm::engine::SolveJobResult>(*results[i]);
    std::printf("%-9s C(S) = %.6f  S = {", solver.name().c_str(), result.cfcc);
    for (std::size_t j = 0; j < result.output.selected.size(); ++j) {
      std::printf("%s%d", j ? ", " : "", result.output.selected[j]);
    }
    std::printf("}%s\n", solver.capabilities().optimal ? "  (optimal)" : "");
  }

  std::printf(
      "\nRegistry has %zu solvers; randomized ones are deterministic per "
      "seed.\n",
      registry.solvers().size());
  return 0;
}
