// Quickstart: maximize group current-flow closeness on Zachary's karate
// club with every algorithm in the library.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cfcm/cfcc.h"
#include "cfcm/exact_greedy.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "cfcm/optimum.h"
#include "cfcm/schur_cfcm.h"
#include "graph/datasets.h"

namespace {

void Report(const char* name, const cfcm::Graph& graph,
            const std::vector<cfcm::NodeId>& group) {
  std::printf("%-12s C(S) = %.6f  S = {", name,
              cfcm::ExactGroupCfcc(graph, group));
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", group[i]);
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  const cfcm::Graph graph = cfcm::KarateClub();
  constexpr int kGroupSize = 5;
  std::printf("Karate club: n=%d, m=%lld, maximizing CFCC with k=%d\n\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              kGroupSize);

  cfcm::CfcmOptions options;
  options.eps = 0.2;
  options.seed = 7;
  // The karate club is tiny, so spend a generous sampling budget: with
  // it both Monte-Carlo algorithms land on (near-)optimal groups.
  options.forest_factor = 8.0;
  options.max_forests = 8192;
  options.jl_rows = 96;

  auto forest = cfcm::ForestCfcmMaximize(graph, kGroupSize, options);
  auto schur = cfcm::SchurCfcmMaximize(graph, kGroupSize, options);
  auto exact = cfcm::ExactGreedyMaximize(graph, kGroupSize);
  auto optimum = cfcm::OptimumSearch(graph, kGroupSize);
  if (!forest.ok() || !schur.ok() || !exact.ok() || !optimum.ok()) {
    std::fprintf(stderr, "solver failed: %s\n",
                 forest.ok() ? (schur.ok() ? exact.status().ToString().c_str()
                                           : schur.status().ToString().c_str())
                             : forest.status().ToString().c_str());
    return 1;
  }

  Report("Optimum", graph, optimum->best);
  Report("Exact", graph, exact->selected);
  Report("ForestCFCM", graph, forest->selected);
  Report("SchurCFCM", graph, schur->selected);
  Report("Degree", graph, cfcm::DegreeSelect(graph, kGroupSize));
  Report("Top-CFCC", graph, cfcm::TopCfccSelectExact(graph, kGroupSize));

  std::printf(
      "\nForestCFCM sampled %lld forests; SchurCFCM sampled %lld (|T|=%d)\n",
      static_cast<long long>(forest->total_forests),
      static_cast<long long>(schur->total_forests), schur->auxiliary_roots);
  return 0;
}
