// P2P resource placement (paper §I: "how to place resources on k peers
// in P2P networks for easy access by others"). Hosts are placed on a
// scale-free overlay with ForestCFCM; access cost is measured both by
// effective resistance and by simulated random-walk search length.
//
//   ./build/examples/p2p_placement [n] [k]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cfcm/cfcc.h"
#include "cfcm/forest_cfcm.h"
#include "cfcm/heuristics.h"
#include "common/rng.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace {

// Mean number of random-walk hops for a peer to find any resource holder
// (the classic unstructured-P2P search model).
double MeanSearchHops(const cfcm::Graph& g,
                      const std::vector<cfcm::NodeId>& hosts, int trials,
                      uint64_t seed) {
  std::vector<char> is_host(static_cast<std::size_t>(g.num_nodes()), 0);
  for (cfcm::NodeId h : hosts) is_host[h] = 1;
  cfcm::Rng rng(seed);
  long long total = 0;
  for (int t = 0; t < trials; ++t) {
    cfcm::NodeId u = static_cast<cfcm::NodeId>(
        rng.NextBounded(static_cast<uint32_t>(g.num_nodes())));
    int hops = 0;
    while (!is_host[u] && hops < 100000) {
      const auto nbrs = g.neighbors(u);
      u = nbrs[rng.NextBounded(static_cast<uint32_t>(nbrs.size()))];
      ++hops;
    }
    total += hops;
  }
  return static_cast<double>(total) / trials;
}

}  // namespace

// Federated P2P overlay: `communities` scale-free swarms joined by a few
// gateway links — the regime where degree-based placement piles hosts
// into one swarm while CFCM spreads them for global accessibility.
cfcm::Graph MakeOverlay(cfcm::NodeId n, int communities, uint64_t seed) {
  cfcm::GraphBuilder builder(n);
  const cfcm::NodeId per = n / communities;
  for (int c = 0; c < communities; ++c) {
    const cfcm::Graph part =
        cfcm::BarabasiAlbert(per, 2, seed + static_cast<uint64_t>(c));
    const cfcm::NodeId base = c * per;
    for (const auto& [u, v] : part.Edges()) builder.AddEdge(base + u, base + v);
  }
  cfcm::Rng rng(seed ^ 0xfeed);
  for (int c = 1; c < communities; ++c) {
    // Two random gateway links from each community to the previous one.
    for (int link = 0; link < 2; ++link) {
      const auto a = static_cast<cfcm::NodeId>((c - 1) * per +
                                               rng.NextBounded(per));
      const auto b =
          static_cast<cfcm::NodeId>(c * per + rng.NextBounded(per));
      builder.AddEdge(a, b);
    }
  }
  return std::move(std::move(builder).Build()).value();
}

int main(int argc, char** argv) {
  const cfcm::NodeId n = argc > 1 ? std::atoi(argv[1]) : 3000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 8;

  const cfcm::Graph g = MakeOverlay(n, /*communities=*/4, 77);
  std::printf("P2P overlay: n=%d, m=%lld (4 scale-free swarms + gateway "
              "links)\n",
              g.num_nodes(), static_cast<long long>(g.num_edges()));

  cfcm::CfcmOptions options;
  options.eps = 0.2;
  options.seed = 11;
  // Overlay graphs of this size are cheap to sample: buy accuracy.
  options.forest_factor = 6.0;
  options.max_forests = 4096;
  options.jl_rows = 48;
  auto cfcm_hosts = cfcm::ForestCfcmMaximize(g, k, options);
  if (!cfcm_hosts.ok()) {
    std::fprintf(stderr, "solver failed: %s\n",
                 cfcm_hosts.status().ToString().c_str());
    return 1;
  }
  const auto degree_hosts = cfcm::DegreeSelect(g, k);

  std::printf("\n%-12s %12s %18s\n", "placement", "C(S)",
              "mean search hops");
  for (const auto& [name, hosts] :
       {std::pair<const char*, std::vector<cfcm::NodeId>>{
            "ForestCFCM", cfcm_hosts->selected},
        {"Degree", degree_hosts}}) {
    std::printf("%-12s %12.6f %18.2f\n", name,
                cfcm::ExactGroupCfcc(g, hosts),
                MeanSearchHops(g, hosts, 4000, 123));
  }
  std::printf(
      "\nForestCFCM hosts:");
  for (cfcm::NodeId u : cfcm_hosts->selected) std::printf(" %d", u);
  std::printf("\n(higher C(S) tracks shorter random-walk search: CFCC "
              "counts *all* paths, matching how unstructured P2P lookups "
              "actually move)\n");
  return 0;
}
