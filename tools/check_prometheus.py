#!/usr/bin/env python3
"""Validates Prometheus text exposition (CI gate for the admin plane).

Reads the exposition from stdin (or a file argument) and checks:
  - every sample's metric family has a preceding # HELP and # TYPE pair,
    with HELP immediately before TYPE;
  - histogram le="..." bucket values are monotonically non-decreasing in
    file order, and the +Inf bucket equals the family's _count sample;
  - no unparseable lines.

Exits 0 when clean, 1 with one message per violation otherwise.
"""
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9]+(?:\.[0-9]+)?|[+-]Inf|NaN)$'
)
LE_RE = re.compile(r'le="([^"]*)"')


def base_family(name):
    """Maps a sample name to its declared family (histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) > 2:
        print("usage: check_prometheus.py [exposition.txt] < exposition",
              file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()

    errors = []
    helped = set()
    typed = {}
    last_help = None
    bucket_prev = {}   # family -> last cumulative bucket value
    inf_bucket = {}    # family -> +Inf bucket value
    counts = {}        # family -> _count value

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {lineno}: malformed HELP: {line!r}")
                continue
            last_help = parts[2]
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            name, kind = parts[2], parts[3]
            if last_help != name:
                errors.append(
                    f"line {lineno}: TYPE {name} not immediately preceded "
                    f"by its HELP line")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels, value = match.group(1), match.group(2) or "", match.group(3)
        family = base_family(name)
        if family not in typed:
            errors.append(f"line {lineno}: sample {name} has no # TYPE")
        if family not in helped:
            errors.append(f"line {lineno}: sample {name} has no # HELP")
        if name.endswith("_bucket"):
            le = LE_RE.search(labels)
            if le is None:
                errors.append(f"line {lineno}: bucket without le label")
                continue
            v = float(value)
            prev = bucket_prev.get(family, 0.0)
            if v < prev:
                errors.append(
                    f"line {lineno}: {family} bucket le={le.group(1)} value "
                    f"{v} < previous cumulative {prev}")
            bucket_prev[family] = v
            if le.group(1) == "+Inf":
                inf_bucket[family] = v
                bucket_prev[family] = 0.0  # next histogram starts over
        elif name.endswith("_count"):
            counts[family] = float(value)

    for family, count in counts.items():
        if typed.get(family) != "histogram":
            continue
        if family not in inf_bucket:
            errors.append(f"{family}: histogram without a +Inf bucket")
        elif inf_bucket[family] != count:
            errors.append(
                f"{family}: +Inf bucket {inf_bucket[family]} != _count "
                f"{count}")

    for message in errors:
        print(f"check_prometheus: {message}", file=sys.stderr)
    if not errors:
        families = sum(1 for k in typed)
        print(f"check_prometheus: ok ({families} metric families)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
