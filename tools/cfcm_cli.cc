// cfcm_cli: command-line front end for the CFCM engine.
//
// Loads an edge list or a named built-in dataset, runs one or a batch of
// maximization / evaluation jobs through the solver registry, and prints
// a table or JSON.
//
//   cfcm_cli --graph karate --algo forest,schur,exact --k 5 --json
//   cfcm_cli --graph ba:2000,4 --algo schur --k 10 --eps 0.1 --seed 3
//   cfcm_cli --graph path/to/edges.txt --lcc --algo forest --k 8
//   cfcm_cli --graph karate --evaluate 0,33,2
//   cfcm_cli --graph karate --group 0,33 --augment 2 --candidates any
//   cfcm_cli --list
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/parse.h"
#include "common/status.h"
#include "engine/engine.h"
#include "engine/registry.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/spec.h"
#include "obs/trace.h"
#include "serve/json.h"
#include "serve/protocol.h"

namespace {

using cfcm::Graph;
using cfcm::NodeId;
using cfcm::Status;
using cfcm::StatusOr;

struct CliOptions {
  std::string graph_source;
  std::string weighted_spec;  // "lo,hi[,seed]": random conductances
  std::vector<std::string> algorithms;
  std::vector<std::vector<NodeId>> evaluate_groups;
  int k = 5;
  double eps = 0.2;
  uint64_t seed = 1;
  cfcm::SelectionMode selection = cfcm::SelectionMode::kLazy;
  cfcm::SolverBackend solver_backend = cfcm::SolverBackend::kAuto;
  int probes = 0;       // EvaluateJob probes (0 = exact)
  int threads = 0;      // engine pool size; 0 = hardware concurrency
  int augment = 0;      // edges to add greedily (0 = no augment job)
  std::vector<NodeId> augment_group;          // --group, for --augment
  cfcm::EdgeCandidates candidates = cfcm::EdgeCandidates::kToGroup;
  bool candidates_set = false;  // --candidates given explicitly
  bool take_lcc = false;
  bool json = false;
  bool list = false;
  bool verbose = false;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: cfcm_cli --graph <name|path> [options]\n"
               "\n"
               "  --graph S     built-in (karate, karate-w, usa, zebra,\n"
               "                dolphins), generator spec (ba:<n>,<m>[,<seed>]\n"
               "                | ws:<n>,<k>,<beta>[,<seed>] | grid:<r>x<c>),\n"
               "                or an edge-list file path (an optional third\n"
               "                column per line is the edge conductance)\n"
               "  --weighted L,H[,S]  assign uniform random conductances in\n"
               "                [L, H] to the loaded graph (seed S, default 1)\n"
               "  --algo A,B    comma-separated registry names (default forest)\n"
               "  --k N         group size (default 5)\n"
               "  --eps X       error parameter (default 0.2)\n"
               "  --seed N      base RNG seed (default 1)\n"
               "  --selection M greedy argmax strategy for the sampled\n"
               "                solvers: 'lazy' (CELF heap, default) or\n"
               "                'exhaustive' (re-score every candidate each\n"
               "                round); both select identical groups per seed\n"
               "  --solver-backend B  Laplacian kernel for the exact paths\n"
               "                (exact/optimum solve, exact --evaluate,\n"
               "                --augment): 'auto' (default; dense below\n"
               "                513 free nodes, sparse LDLT above),\n"
               "                'dense' (alias 'full'), 'sparse_ldlt'\n"
               "                (fill-reducing factorization) or 'cg'\n"
               "                (Jacobi-preconditioned CG). Explicit\n"
               "                sparse_ldlt/cg also lifts the dense-only\n"
               "                size ceilings on exact evaluate/augment\n"
               "  --evaluate G  evaluate C(S) of group 'u1,u2,...' (repeatable)\n"
               "  --probes N    Hutchinson probes for --evaluate (0 = exact)\n"
               "  --augment N   greedily add the N edges maximizing C(S) of\n"
               "                the --group nodes (paper §VI edge selection);\n"
               "                prints the chosen edges and the trace after\n"
               "                each addition. Dense backend: up to 4096\n"
               "                free nodes; --solver-backend sparse_ldlt\n"
               "                raises the budget 32x\n"
               "  --group G     fixed group 'u1,u2,...' for --augment\n"
               "  --candidates C  'group' (non-edges into the group, default)\n"
               "                or 'any' (any non-edge) for --augment\n"
               "  --threads N   worker pool size shared by the job batch and\n"
               "                the sampling inside each job; 0 = hardware\n"
               "                concurrency (default). Results never depend\n"
               "                on this value\n"
               "  --lcc         reduce the input to its largest component\n"
               "  --verbose     per-phase timing breakdown on stderr (load,\n"
               "                derived-state build, solver / score phases\n"
               "                with forest and walk-step counts); jobs run\n"
               "                sequentially so phases never interleave.\n"
               "                Results are unchanged\n"
               "  --json        machine-readable output\n"
               "  --list-solvers  list registered solvers (capabilities from\n"
               "                the registry) and exit; --list is an alias\n");
}

// Shared strict parsing helpers (same implementations the spec loader
// and cfcm_serve use).
using cfcm::ParseFloat64;
using cfcm::ParseInt64;
using cfcm::SplitString;

// Escaping for JSON string literals (algorithm names, file paths and
// Status messages are user-influenced) — the serving codec's escaper,
// so CLI output and server output stay byte-compatible.
using cfcm::serve::JsonEscapeString;

StatusOr<std::vector<NodeId>> ParseGroup(const std::string& spec,
                                         const char* flag) {
  std::vector<NodeId> group;
  for (const std::string& part : SplitString(spec, ',')) {
    long long value = 0;
    if (!ParseInt64(part, &value) || value < 0 ||
        value > std::numeric_limits<NodeId>::max()) {
      // Narrowing without the range check would silently address a
      // DIFFERENT valid node (2^32 -> 0).
      return Status::InvalidArgument("bad node id '" + part + "' in " +
                                     flag);
    }
    group.push_back(static_cast<NodeId>(value));
  }
  return group;
}

// Structured failure shared with the serving protocol: under --json a
// top-level {"error":{"code","message"}} object goes to stdout (exit
// stays nonzero) so scripted callers parse one error shape everywhere;
// otherwise a human-readable line goes to stderr.
int FailWith(const Status& status, bool json, int exit_code) {
  if (json) {
    cfcm::serve::JsonValue::Object error;
    error["error"] = cfcm::serve::StatusToJsonError(status);
    std::printf("%s\n", cfcm::serve::JsonValue(std::move(error))
                            .Serialize()
                            .c_str());
  } else {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  }
  return exit_code;
}

StatusOr<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int i) -> StatusOr<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(std::string(argv[i]) +
                                     " requires a value");
    }
    return std::string(argv[i + 1]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--list" || arg == "--list-solvers") {
      options.list = true;
    } else if (arg == "--lcc") {
      options.take_lcc = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--graph" || arg == "--algo" || arg == "--k" ||
               arg == "--eps" || arg == "--seed" || arg == "--probes" ||
               arg == "--threads" || arg == "--evaluate" ||
               arg == "--weighted" || arg == "--augment" ||
               arg == "--group" || arg == "--candidates" ||
               arg == "--selection" || arg == "--solver-backend") {
      StatusOr<std::string> value = need_value(i);
      if (!value.ok()) return value.status();
      ++i;
      if (arg == "--graph") {
        options.graph_source = *value;
      } else if (arg == "--weighted") {
        options.weighted_spec = *value;
      } else if (arg == "--algo") {
        options.algorithms = SplitString(*value, ',');
      } else if (arg == "--eps") {
        if (!ParseFloat64(*value, &options.eps)) {
          return Status::InvalidArgument("bad number for --eps: '" + *value +
                                         "'");
        }
      } else if (arg == "--evaluate") {
        StatusOr<std::vector<NodeId>> group = ParseGroup(*value, "--evaluate");
        if (!group.ok()) return group.status();
        options.evaluate_groups.push_back(std::move(*group));
      } else if (arg == "--group") {
        StatusOr<std::vector<NodeId>> group = ParseGroup(*value, "--group");
        if (!group.ok()) return group.status();
        options.augment_group = std::move(*group);
      } else if (arg == "--selection") {
        const std::optional<cfcm::SelectionMode> parsed =
            cfcm::ParseSelectionMode(*value);
        if (!parsed.has_value()) {
          return Status::InvalidArgument(
              "--selection must be 'lazy' or 'exhaustive', got '" + *value +
              "'");
        }
        options.selection = *parsed;
      } else if (arg == "--solver-backend") {
        const std::optional<cfcm::SolverBackend> parsed =
            cfcm::ParseSolverBackend(*value);
        if (!parsed.has_value()) {
          return Status::InvalidArgument(
              "--solver-backend must be 'auto', 'dense' (alias 'full'), "
              "'sparse_ldlt' or 'cg', got '" + *value + "'");
        }
        options.solver_backend = *parsed;
      } else if (arg == "--candidates") {
        options.candidates_set = true;
        if (*value == "group") {
          options.candidates = cfcm::EdgeCandidates::kToGroup;
        } else if (*value == "any") {
          options.candidates = cfcm::EdgeCandidates::kAny;
        } else {
          return Status::InvalidArgument(
              "--candidates must be 'group' or 'any', got '" + *value + "'");
        }
      } else {
        long long number = 0;
        if (!ParseInt64(*value, &number)) {
          return Status::InvalidArgument("bad integer for " + arg + ": '" +
                                         *value + "'");
        }
        if (arg == "--k") options.k = static_cast<int>(number);
        if (arg == "--seed") options.seed = static_cast<uint64_t>(number);
        if (arg == "--probes") options.probes = static_cast<int>(number);
        if (arg == "--threads") options.threads = static_cast<int>(number);
        if (arg == "--augment") {
          // Range-check BEFORE narrowing: a wrapped value would either
          // silently drop the request (<= 0: no augment job AND no
          // default solve) or run with an unintended k.
          if (number < 1 || number > std::numeric_limits<int>::max()) {
            return Status::InvalidArgument(
                "--augment must be a positive int, got " + *value);
          }
          options.augment = static_cast<int>(number);
        }
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  return options;
}

void ListSolvers() {
  std::printf("%-9s %-9s %-44s %s\n", "name", "kind", "complexity",
              "description");
  for (const auto& solver : cfcm::engine::SolverRegistry::Global().solvers()) {
    const auto& caps = solver->capabilities();
    const char* kind = caps.optimal       ? "optimal"
                       : caps.randomized  ? "sampled"
                                          : "exact";
    std::printf("%-9s %-9s %-44s %s\n", solver->name().c_str(), kind,
                caps.complexity.c_str(), solver->description().c_str());
  }
}

void PrintJsonGroup(const std::vector<NodeId>& group) {
  std::printf("[");
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::printf("%s%d", i ? "," : "", group[i]);
  }
  std::printf("]");
}

void PrintJsonEdges(const std::vector<std::pair<NodeId, NodeId>>& edges) {
  std::printf("[");
  for (std::size_t i = 0; i < edges.size(); ++i) {
    std::printf("%s[%d,%d]", i ? "," : "", edges[i].first, edges[i].second);
  }
  std::printf("]");
}

// Writes one JSON object per job result; `spec` describes the request.
void PrintJsonJob(const cfcm::engine::Job& spec,
                  const StatusOr<cfcm::engine::JobResult>& result, bool last) {
  std::printf("    {");
  if (const auto* solve = std::get_if<cfcm::engine::SolveJob>(&spec)) {
    std::printf(
        "\"type\":\"solve\",\"algorithm\":\"%s\",\"k\":%d,\"eps\":%g,"
        "\"seed\":%llu,\"selection\":\"%s\",",
        JsonEscapeString(solve->algorithm).c_str(), solve->k, solve->eps,
        static_cast<unsigned long long>(solve->seed),
        cfcm::SelectionModeName(solve->selection));
  } else if (const auto* augment =
                 std::get_if<cfcm::engine::AugmentJob>(&spec)) {
    std::printf("\"type\":\"augment\",\"k\":%d,\"candidates\":\"%s\","
                "\"group\":",
                augment->k,
                augment->candidates == cfcm::EdgeCandidates::kAny ? "any"
                                                                  : "group");
    PrintJsonGroup(augment->group);
    std::printf(",");
  } else {
    const auto& eval = std::get<cfcm::engine::EvaluateJob>(spec);
    std::printf("\"type\":\"evaluate\",\"group\":");
    PrintJsonGroup(eval.group);
    std::printf(",\"probes\":%d,", eval.probes);
  }
  if (!result.ok()) {
    std::printf("\"status\":\"error\",\"error\":\"%s\"}%s\n",
                JsonEscapeString(result.status().ToString()).c_str(),
                last ? "" : ",");
    return;
  }
  if (const auto* solve =
          std::get_if<cfcm::engine::SolveJobResult>(&*result)) {
    std::printf("\"status\":\"ok\",\"selected\":");
    PrintJsonGroup(solve->output.selected);
    std::printf(
        ",\"cfcc\":%.9g,\"forests\":%lld,\"walk_steps\":%lld,"
        "\"rescored_candidates\":%lld,\"forests_reused\":%lld,"
        "\"forests_resampled\":%lld,\"swap_moves\":%lld,"
        "\"warm_started\":%s,\"cold_fallback\":%s,"
        "\"solver_backend\":\"%s\",\"seconds\":%.6f}",
        solve->cfcc, static_cast<long long>(solve->output.total_forests),
        static_cast<long long>(solve->output.total_walk_steps),
        static_cast<long long>(solve->output.rescored_candidates),
        static_cast<long long>(solve->output.forests_reused),
        static_cast<long long>(solve->output.forests_resampled),
        static_cast<long long>(solve->output.swap_moves),
        solve->output.warm_started ? "true" : "false",
        solve->output.cold_fallback ? "true" : "false",
        JsonEscapeString(solve->output.solver_backend).c_str(),
        solve->output.seconds);
  } else if (const auto* augment =
                 std::get_if<cfcm::engine::AugmentJobResult>(&*result)) {
    std::printf("\"status\":\"ok\",\"added\":");
    PrintJsonEdges(augment->added);
    std::printf(",\"initial_trace\":%.9g,\"trace_after\":[",
                augment->initial_trace);
    for (std::size_t i = 0; i < augment->trace_after.size(); ++i) {
      std::printf("%s%.9g", i ? "," : "", augment->trace_after[i]);
    }
    std::printf("],\"cfcc_before\":%.9g,\"cfcc_after\":%.9g,"
                "\"solver_backend\":\"%s\",\"seconds\":%.6f}",
                augment->cfcc_before, augment->cfcc_after,
                JsonEscapeString(augment->solver_backend).c_str(),
                augment->seconds);
  } else {
    const auto& eval = std::get<cfcm::engine::EvaluateJobResult>(*result);
    std::printf(
        "\"status\":\"ok\",\"cfcc\":%.9g,\"trace\":%.9g,"
        "\"trace_std_error\":%.3g,\"solver_backend\":\"%s\"}",
        eval.cfcc, eval.trace, eval.trace_std_error,
        JsonEscapeString(eval.solver_backend).c_str());
  }
  std::printf("%s\n", last ? "" : ",");
}

void PrintTextJob(const cfcm::engine::Job& spec,
                  const StatusOr<cfcm::engine::JobResult>& result) {
  std::string label;
  if (const auto* solve = std::get_if<cfcm::engine::SolveJob>(&spec)) {
    label = solve->algorithm;
  } else if (std::holds_alternative<cfcm::engine::AugmentJob>(spec)) {
    label = "augment";
  } else {
    label = "evaluate";
  }
  if (!result.ok()) {
    std::printf("%-10s FAILED: %s\n", label.c_str(),
                result.status().ToString().c_str());
    return;
  }
  if (const auto* augment =
          std::get_if<cfcm::engine::AugmentJobResult>(&*result)) {
    std::printf("%-10s C(S) %.6f -> %.6f  added = {", label.c_str(),
                augment->cfcc_before, augment->cfcc_after);
    for (std::size_t i = 0; i < augment->added.size(); ++i) {
      std::printf("%s(%d, %d)", i ? ", " : "", augment->added[i].first,
                  augment->added[i].second);
    }
    std::printf("}  (%.3fs)\n", augment->seconds);
    return;
  }
  if (const auto* solve =
          std::get_if<cfcm::engine::SolveJobResult>(&*result)) {
    std::printf("%-10s C(S) = %.6f  S = {", label.c_str(), solve->cfcc);
    for (std::size_t i = 0; i < solve->output.selected.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", solve->output.selected[i]);
    }
    std::printf("}  (%.3fs", solve->output.seconds);
    if (solve->output.total_forests > 0) {
      std::printf(", %lld forests, %lld walk steps",
                  static_cast<long long>(solve->output.total_forests),
                  static_cast<long long>(solve->output.total_walk_steps));
    }
    std::printf(")\n");
  } else {
    const auto& eval = std::get<cfcm::engine::EvaluateJobResult>(*result);
    std::printf("%-10s C(S) = %.6f  trace = %.6f", label.c_str(), eval.cfcc,
                eval.trace);
    if (eval.trace_std_error > 0) {
      std::printf(" +/- %.3g", eval.trace_std_error);
    }
    std::printf("\n");
  }
}

// --verbose breakdown: prints every span recorded since `first`, one
// stderr line each, so the timing never mixes with the stdout table or
// JSON. The spans come from the same obs::TraceContext machinery the
// daemon's "trace":true path fills — CLI and server report through one
// code path.
void PrintSpans(const cfcm::obs::TraceContext& trace, std::size_t first,
                const std::string& prefix) {
  const auto& spans = trace.spans();
  for (std::size_t i = first; i < spans.size(); ++i) {
    const cfcm::obs::TraceSpan& span = spans[i];
    std::fprintf(stderr, "verbose: %s%-14s %10.3f ms", prefix.c_str(),
                 span.name.c_str(),
                 static_cast<double>(span.duration_ns) / 1e6);
    for (const auto& [key, value] : span.annotations) {
      std::fprintf(stderr, "  %s=%lld", key.c_str(),
                   static_cast<long long>(value));
    }
    std::fprintf(stderr, "\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Error formatting must work before ParseArgs succeeds, so detect
  // --json directly.
  bool json_errors = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_errors = true;
  }

  StatusOr<CliOptions> parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    if (!json_errors) PrintUsage(stderr);
    return FailWith(parsed.status(), json_errors, 2);
  }
  const CliOptions& cli = *parsed;

  if (cli.list) {
    ListSolvers();
    return 0;
  }
  if (cli.graph_source.empty()) {
    if (!json_errors) PrintUsage(stderr);
    return FailWith(Status::InvalidArgument("--graph is required"),
                    json_errors, 2);
  }
  // Unknown solvers fail up front with the shared error shape instead of
  // surfacing later as one per-job failure among many.
  for (const std::string& algorithm : cli.algorithms) {
    if (!cfcm::engine::SolverRegistry::Global().Contains(algorithm)) {
      return FailWith(
          cfcm::engine::SolverRegistry::Global().Find(algorithm).status(),
          cli.json, 1);
    }
  }

  // One trace carries every phase of the run under --verbose; without it
  // the context sits unused (BeginSpan is never called).
  cfcm::obs::TraceContext trace;
  std::size_t load_span = 0;
  if (cli.verbose) load_span = trace.BeginSpan("load");

  StatusOr<Graph> loaded = cfcm::LoadGraphFromSpec(cli.graph_source);
  if (!loaded.ok()) {
    return FailWith(loaded.status(), cli.json, 1);
  }
  Graph graph = std::move(*loaded);
  if (!cli.weighted_spec.empty()) {
    const auto args = SplitString(cli.weighted_spec, ',');
    double lo = 0, hi = 0;
    long long wseed = 1;
    if (args.size() < 2 || args.size() > 3 || !ParseFloat64(args[0], &lo) ||
        !ParseFloat64(args[1], &hi) ||
        (args.size() == 3 && !ParseInt64(args[2], &wseed)) ||
        !std::isfinite(lo) || !std::isfinite(hi) || lo <= 0 || hi < lo) {
      return FailWith(
          Status::InvalidArgument(
              "--weighted expects <lo>,<hi>[,<seed>] with 0 < lo <= hi"),
          cli.json, 2);
    }
    graph = cfcm::AssignUniformWeights(graph, lo, hi,
                                       static_cast<uint64_t>(wseed));
  }
  // With --lcc all ids the user sees stay in the original numbering:
  // evaluate groups are translated into LCC ids before running and
  // selected groups are translated back before printing.
  std::vector<NodeId> to_original;   // LCC id -> input id; empty = identity
  std::vector<NodeId> from_original; // input id -> LCC id or -1
  if (cli.take_lcc && !cfcm::IsConnected(graph)) {
    cfcm::LccResult lcc = cfcm::LargestConnectedComponent(graph);
    from_original.assign(graph.num_nodes(), -1);
    for (NodeId i = 0; i < lcc.graph.num_nodes(); ++i) {
      from_original[lcc.to_original[i]] = i;
    }
    to_original = std::move(lcc.to_original);
    graph = std::move(lcc.graph);
  }
  if (cli.verbose) {
    // Load covers parse/generate + optional reweight + LCC reduction.
    trace.EndSpan(load_span);
    PrintSpans(trace, trace.spans().size() - 1, "");
  }

  if (cli.augment > 0 && cli.augment_group.empty()) {
    return FailWith(
        Status::InvalidArgument("--augment requires --group u1,u2,..."),
        cli.json, 2);
  }
  if (cli.augment == 0 && (!cli.augment_group.empty() || cli.candidates_set)) {
    // Silently ignoring these and running a default solve would answer
    // a question the user did not ask.
    return FailWith(
        Status::InvalidArgument("--group/--candidates require --augment N"),
        cli.json, 2);
  }

  std::vector<cfcm::engine::Job> jobs;
  std::vector<std::string> algorithms = cli.algorithms;
  if (algorithms.empty() && cli.evaluate_groups.empty() && cli.augment == 0) {
    algorithms.push_back("forest");
  }
  for (const std::string& algorithm : algorithms) {
    cfcm::engine::SolveJob job;
    job.algorithm = algorithm;
    job.k = cli.k;
    job.eps = cli.eps;
    job.seed = cli.seed;
    job.selection = cli.selection;
    job.solver_backend = cli.solver_backend;
    jobs.emplace_back(std::move(job));
  }
  for (const std::vector<NodeId>& group : cli.evaluate_groups) {
    cfcm::engine::EvaluateJob job;
    job.group = group;
    job.probes = cli.probes;
    job.seed = cli.seed;
    job.solver_backend = cli.solver_backend;
    jobs.emplace_back(std::move(job));
  }
  if (cli.augment > 0) {
    cfcm::engine::AugmentJob job;
    job.group = cli.augment_group;
    job.k = cli.augment;
    job.candidates = cli.candidates;
    job.solver_backend = cli.solver_backend;
    jobs.emplace_back(std::move(job));
  }

  // `jobs` keeps the user's numbering for display; `exec_jobs` carries
  // the LCC-translated ids actually run.
  std::vector<cfcm::engine::Job> exec_jobs = jobs;
  if (!to_original.empty()) {
    for (cfcm::engine::Job& job : exec_jobs) {
      std::vector<NodeId>* group = nullptr;
      const char* flag = "--evaluate";
      if (auto* eval = std::get_if<cfcm::engine::EvaluateJob>(&job)) {
        group = &eval->group;
      } else if (auto* augment =
                     std::get_if<cfcm::engine::AugmentJob>(&job)) {
        group = &augment->group;
        flag = "--group";
      }
      if (!group) continue;
      for (NodeId& u : *group) {
        if (u < 0 || u >= static_cast<NodeId>(from_original.size()) ||
            from_original[u] < 0) {
          return FailWith(
              Status::OutOfRange(std::string(flag) + " node " +
                                 std::to_string(u) +
                                 " is not in the largest connected component"),
              cli.json, 1);
        }
        u = from_original[u];
      }
    }
  }

  cfcm::engine::EngineOptions engine_options;
  engine_options.num_threads = cli.threads;  // 0 = hardware concurrency
  // The CLI is a trusted local caller: raise the serving daemon's
  // conservative augment ceiling. 4096 free nodes is a ~134 MB dense
  // inverse and minutes of O(n^3) work — a sane local limit; beyond it
  // the engine's rejection names the ceiling.
  engine_options.augment_max_n = 4096;
  std::size_t build_span = 0;
  if (cli.verbose) build_span = trace.BeginSpan("derived_state");
  cfcm::engine::Engine engine{std::move(graph), engine_options};
  if (cli.verbose) {
    // Touch the Laplacian so the derived-state phase is charged here
    // rather than lazily inside the first job's solver span.
    (void)engine.session().laplacian();
    trace.EndSpan(build_span);
    PrintSpans(trace, trace.spans().size() - 1, "");
  }

  std::vector<StatusOr<cfcm::engine::JobResult>> results;
  if (cli.verbose) {
    // Sequential traced execution: one job at a time against a single
    // pinned snapshot, so the span stream reads as a clean per-job
    // breakdown. Per-seed results are scheduling-invariant, so the
    // output matches the concurrent batch exactly.
    const auto snapshot = engine.session().snapshot();
    results.reserve(exec_jobs.size());
    for (std::size_t i = 0; i < exec_jobs.size(); ++i) {
      const std::size_t first = trace.spans().size();
      results.push_back(engine.Run(exec_jobs[i], snapshot, &trace));
      PrintSpans(trace, first, "job" + std::to_string(i) + " ");
    }
    std::fprintf(stderr, "verbose: %-18s %10.3f ms\n", "total",
                 static_cast<double>(trace.ElapsedNs()) / 1e6);
  } else {
    results = engine.RunBatch(exec_jobs);
  }
  if (!to_original.empty()) {
    // Translate selected groups / added edges back into the input
    // numbering.
    for (auto& result : results) {
      if (!result.ok()) continue;
      if (auto* solve = std::get_if<cfcm::engine::SolveJobResult>(&*result)) {
        for (NodeId& u : solve->output.selected) u = to_original[u];
      } else if (auto* augment =
                     std::get_if<cfcm::engine::AugmentJobResult>(&*result)) {
        for (auto& [u, v] : augment->added) {
          u = to_original[u];
          v = to_original[v];
          if (u > v) std::swap(u, v);
        }
      }
    }
  }

  const auto& session = engine.session();
  const NodeId dmax = session.num_nodes() > 0
                          ? session.graph().degree(session.degree_order()[0])
                          : 0;
  // The pool is already materialized (RunBatch ran on it); its size is
  // the resolved --threads value.
  const int resolved_threads = static_cast<int>(session.pool().num_threads());
  if (cli.json) {
    std::printf("{\n  \"graph\":{\"source\":\"%s\",\"nodes\":%d,"
                "\"edges\":%lld,\"dmax\":%d,\"weighted\":%s,"
                "\"total_weight\":%.9g,\"connected\":%s,\"lcc\":%s},\n"
                "  \"threads\":%d,\n"
                "  \"jobs\":[\n",
                JsonEscapeString(cli.graph_source).c_str(), session.num_nodes(),
                static_cast<long long>(session.num_edges()), dmax,
                session.is_weighted() ? "true" : "false",
                session.total_weight(),
                session.is_connected() ? "true" : "false",
                to_original.empty() ? "false" : "true", resolved_threads);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      PrintJsonJob(jobs[i], results[i], i + 1 == jobs.size());
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("graph %s: n=%d, m=%lld, dmax=%d, threads=%d",
                cli.graph_source.c_str(), session.num_nodes(),
                static_cast<long long>(session.num_edges()), dmax,
                resolved_threads);
    if (session.is_weighted()) {
      std::printf(", total_weight=%.6g", session.total_weight());
    }
    std::printf("%s\n", to_original.empty() ? "" : " (largest component)");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      PrintTextJob(jobs[i], results[i]);
    }
  }

  int failures = 0;
  for (const auto& result : results) {
    if (!result.ok()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
