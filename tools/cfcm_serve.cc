// cfcm_serve: network daemon and client for the CFCM serving layer.
//
//   # daemon (default subcommand); prints one JSON line with the bound
//   # port, then serves until a client sends {"op":"shutdown"}:
//   cfcm_serve --port 7471 --preload karate=karate
//
//   # scripted client: --op builder flags or raw JSON lines
//   cfcm_serve client --port 7471 --op load --graph g --source karate
//   cfcm_serve client --port 7471 --op solve --graph g --k 3 --seed 7
//   cfcm_serve client --port 7471 --op mutate --graph g --remove 0,1
//   cfcm_serve client --port 7471 --op augment --graph g --group 0,33 --k 2
//   echo '{"op":"stats"}' | cfcm_serve client --port 7471
//
//   # in-process end-to-end check (used by ctest): load, solve twice,
//   # assert the second response is a byte-identical cache hit, then
//   # mutate -> guaranteed miss -> inverse delta -> hit again, and an
//   # augment round-trip
//   cfcm_serve selftest
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/watchdog.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using cfcm::Status;
using cfcm::StatusOr;
using cfcm::serve::HandlerOptions;
using cfcm::serve::JsonValue;
using cfcm::serve::ServeClient;
using cfcm::serve::ServeHandler;
using cfcm::serve::Server;
using cfcm::serve::ServerOptions;

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: cfcm_serve [serve] [options]        run the daemon\n"
      "       cfcm_serve client [options] [json ...]  send requests\n"
      "       cfcm_serve selftest                 in-process protocol check\n"
      "\n"
      "daemon options:\n"
      "  --host A            bind address (default 127.0.0.1)\n"
      "  --port N            TCP port; 0 = OS-assigned, printed on stdout\n"
      "  --workers N         request dispatch threads (default 2)\n"
      "  --queue N           admission queue bound (default 64)\n"
      "  --cache N           result cache capacity in entries (default 1024)\n"
      "  --memory-budget B   catalog byte budget; 0 = unlimited (default)\n"
      "  --threads N         shared sampling pool size; 0 = hardware\n"
      "  --preload NAME=SPEC define+load a graph at startup (repeatable)\n"
      "  --log-level L       structured stderr logging: debug/info/warn/\n"
      "                      error/off (default warn)\n"
      "  --slow-request-ms N warn-log requests slower than N ms (0 = off);\n"
      "                      also pins them in the flight recorder\n"
      "  --admin-port N      HTTP diagnostics port (/metrics /healthz\n"
      "                      /readyz /statusz /flightz); 0 = OS-assigned,\n"
      "                      printed on stdout; omit to disable\n"
      "  --slo SPEC          per-op latency objectives, e.g.\n"
      "                      solve=50ms,mutate=2s (us/ms/s suffixes)\n"
      "  --flight-capacity N flight-recorder ring size in records\n"
      "                      (default 1024; 0 disables the recorder)\n"
      "  --watchdog-ms N     gauge sampling period (default 1000; 0 =\n"
      "                      sample only on /metrics scrapes)\n"
      "\n"
      "client options:\n"
      "  --host A --port N   server address (port required)\n"
      "  --op OP             build a request: load/unload/solve/evaluate/\n"
      "                      mutate/augment/stats/metrics/shutdown, with\n"
      "                      --graph --source --algo --k --eps --seed\n"
      "                      --selection lazy|exhaustive (solve)\n"
      "                      --warm true|false|auto|on|off and\n"
      "                      --max-stale-epochs E (solve; DESIGN.md §16)\n"
      "                      --probes --group u1,u2,...\n"
      "                      mutate: --add u,v[,w] --remove u,v\n"
      "                      --reweight u,v,w (each repeatable) and\n"
      "                      --add-nodes N\n"
      "                      augment: --group --k --candidates group|any\n"
      "                      --apply true|false\n"
      "                      metrics: --format json|prometheus\n"
      "  --trace true|false  request an inline span breakdown (any op)\n"
      "  [json ...]          raw request lines; with no --op and no json\n"
      "                      arguments, lines are read from stdin\n"
      "\n"
      "Exit code: nonzero if any response has \"status\":\"error\".\n");
}

bool ParseLong(const std::string& s, long long* out) {
  return cfcm::ParseInt64(s, out);
}

bool ParseDoubleArg(const std::string& s, double* out) {
  return cfcm::ParseFloat64(s, out);
}

int RunServe(int argc, char** argv) {
  ServerOptions server_options;
  HandlerOptions handler_options;
  std::vector<std::pair<std::string, std::string>> preloads;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    long long number = 0;
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--host") {
      server_options.host = need_value();
    } else if (arg == "--port" || arg == "--workers" || arg == "--queue" ||
               arg == "--cache" || arg == "--memory-budget" ||
               arg == "--threads" || arg == "--admin-port" ||
               arg == "--flight-capacity" || arg == "--watchdog-ms") {
      const char* value = need_value();
      if (!ParseLong(value, &number) || number < 0) {
        std::fprintf(stderr, "error: bad value for %s: '%s'\n", arg.c_str(),
                     value);
        return 2;
      }
      if (arg == "--port") {
        if (number > 65535) {
          std::fprintf(stderr, "error: --port must be in [0, 65535]\n");
          return 2;
        }
        server_options.port = static_cast<int>(number);
      }
      if (arg == "--workers") {
        server_options.num_workers = static_cast<int>(number);
      }
      if (arg == "--queue") {
        server_options.max_queue = static_cast<std::size_t>(number);
      }
      if (arg == "--cache") {
        handler_options.cache_capacity = static_cast<std::size_t>(number);
      }
      if (arg == "--memory-budget") {
        handler_options.catalog.memory_budget_bytes =
            static_cast<std::size_t>(number);
      }
      if (arg == "--threads") {
        handler_options.catalog.num_threads = static_cast<int>(number);
      }
      if (arg == "--admin-port") {
        if (number > 65535) {
          std::fprintf(stderr, "error: --admin-port must be in [0, 65535]\n");
          return 2;
        }
        server_options.admin_port = static_cast<int>(number);
      }
      if (arg == "--flight-capacity") {
        handler_options.flight_capacity = static_cast<std::size_t>(number);
      }
      if (arg == "--watchdog-ms") {
        server_options.watchdog_interval_ms = static_cast<int>(number);
      }
    } else if (arg == "--slo") {
      const char* value = need_value();
      std::string slo_error;
      if (!cfcm::obs::ParseSloSpec(value, &handler_options.slo, &slo_error)) {
        std::fprintf(stderr, "error: --slo: %s\n", slo_error.c_str());
        return 2;
      }
    } else if (arg == "--log-level") {
      const char* value = need_value();
      cfcm::obs::LogLevel level = cfcm::obs::LogLevel::kWarn;
      if (!cfcm::obs::ParseLogLevel(value, &level)) {
        std::fprintf(stderr,
                     "error: --log-level expects debug/info/warn/error/off, "
                     "got '%s'\n",
                     value);
        return 2;
      }
      cfcm::obs::SetMinLogLevel(level);
    } else if (arg == "--slow-request-ms") {
      const char* value = need_value();
      if (!ParseLong(value, &number) || number < 0) {
        std::fprintf(stderr, "error: bad value for --slow-request-ms: '%s'\n",
                     value);
        return 2;
      }
      server_options.slow_request_ms = number;
      // The same threshold drives flight-recorder pinning, so the slow
      // requests the operator asked to be warned about are the ones held
      // in the reserved ring.
      if (number > 0) handler_options.flight_slow_us = number * 1000;
    } else if (arg == "--preload") {
      const std::string spec = need_value();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "error: --preload expects NAME=SPEC, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr, "error: unknown daemon flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  // Block SIGTERM/SIGINT before any thread exists so every thread
  // inherits the mask and only the dedicated sigwait thread below ever
  // sees the signals — the POSIX-clean way to run nontrivial code (the
  // flight dump + graceful shutdown) on termination.
  sigset_t term_signals;
  sigemptyset(&term_signals);
  sigaddset(&term_signals, SIGTERM);
  sigaddset(&term_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &term_signals, nullptr);

  ServeHandler handler{handler_options};
  for (const auto& [name, spec] : preloads) {
    const JsonValue response = handler.Handle(JsonValue(JsonValue::Object{
        {"op", "load"}, {"graph", name}, {"source", spec}}));
    const JsonValue* status = response.Find("status");
    if (status == nullptr || status->as_string() != "ok") {
      std::fprintf(stderr, "error preloading '%s': %s\n", name.c_str(),
                   response.Serialize().c_str());
      return 1;
    }
  }

  Server server{&handler, server_options};
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  // One machine-readable line so wrappers can discover the bound ports.
  std::printf("{\"serving\":true,\"host\":\"%s\",\"port\":%d,"
              "\"admin_port\":%d,\"graphs\":%zu}\n",
              server_options.host.c_str(), server.port(), server.admin_port(),
              preloads.size());
  std::fflush(stdout);

  // On SIGTERM/SIGINT: dump the flight recorder (the post-hoc record of
  // what the daemon was doing when someone killed it), then shut down
  // gracefully. The dump goes to stderr as one JSON line per record.
  std::atomic<bool> dump_on_signal{true};
  std::thread signal_thread([&] {
    int sig = 0;
    if (sigwait(&term_signals, &sig) != 0) return;
    if (!dump_on_signal.load(std::memory_order_acquire)) return;
    cfcm::obs::LogEvent(cfcm::obs::LogLevel::kWarn, "terminating")
        .Int("signal", sig);
    if (cfcm::obs::FlightRecorder* flight = handler.flight_recorder()) {
      for (const auto& record : flight->Pinned(flight->options()
                                                   .pinned_capacity)) {
        std::fprintf(stderr,
                     "{\"event\":\"flight_record\",\"ring\":\"pinned\","
                     "\"record\":%s}\n",
                     cfcm::serve::FlightRecordJson(record)
                         .Serialize().c_str());
      }
      for (const auto& record : flight->Recent(32)) {
        std::fprintf(stderr,
                     "{\"event\":\"flight_record\",\"ring\":\"recent\","
                     "\"record\":%s}\n",
                     cfcm::serve::FlightRecordJson(record)
                         .Serialize().c_str());
      }
    }
    server.Shutdown();
  });

  server.Wait();
  // Wake the signal thread if no signal ever arrived (shutdown came via
  // the protocol op): disarm the dump, send ourselves the signal it is
  // sigwait-ing for, and join.
  dump_on_signal.store(false, std::memory_order_release);
  ::kill(::getpid(), SIGTERM);
  signal_thread.join();
  return 0;
}

// Parses "u,v" or "u,v,w" into a JSON edge tuple for the mutate op.
// `arity` is 2 (remove), 3 (reweight) or -3 (add: 2 or 3 elements).
StatusOr<JsonValue> ParseEdgeTuple(const std::string& key,
                                   const std::string& value, int arity) {
  const std::vector<std::string> parts = cfcm::SplitString(value, ',');
  const bool size_ok = arity < 0 ? parts.size() == 2 || parts.size() == 3
                                 : parts.size() == static_cast<std::size_t>(arity);
  if (!size_ok) {
    return Status::InvalidArgument(
        "--" + key + " expects " +
        (arity == 2 ? "u,v" : arity == 3 ? "u,v,w" : "u,v or u,v,w") +
        ", got '" + value + "'");
  }
  JsonValue::Array tuple;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i < 2) {
      long long id = 0;
      if (!ParseLong(parts[i], &id)) {
        return Status::InvalidArgument("bad node id in --" + key + ": '" +
                                       parts[i] + "'");
      }
      tuple.emplace_back(static_cast<int64_t>(id));
    } else {
      double weight = 0;
      if (!ParseDoubleArg(parts[i], &weight)) {
        return Status::InvalidArgument("bad weight in --" + key + ": '" +
                                       parts[i] + "'");
      }
      tuple.emplace_back(weight);
    }
  }
  return JsonValue(std::move(tuple));
}

// Builds one request from client --op flags; exits on malformed flags.
StatusOr<JsonValue> BuildRequest(const std::string& op,
                                 const std::vector<std::pair<std::string,
                                                             std::string>>&
                                     fields) {
  JsonValue::Object request{{"op", op}};
  for (const auto& [raw_key, value] : fields) {
    const std::string key = raw_key == "algo" ? "algorithm" : raw_key;
    if (key == "graph" || key == "source" || key == "algorithm" ||
        key == "candidates" || key == "format" || key == "trace-id" ||
        key == "selection") {
      request[key == "trace-id" ? "trace_id" : key] = value;
    } else if (key == "trace") {
      if (value != "true" && value != "false") {
        return Status::InvalidArgument("--trace expects true or false, got '" +
                                       value + "'");
      }
      request["trace"] = value == "true";
    } else if (key == "add" || key == "remove" || key == "reweight") {
      // Repeatable edge flags accumulate into the op's array field.
      const int arity = key == "remove" ? 2 : key == "reweight" ? 3 : -3;
      StatusOr<JsonValue> tuple = ParseEdgeTuple(key, value, arity);
      if (!tuple.ok()) return tuple.status();
      if (request.find(key) == request.end()) {
        request[key] = JsonValue(JsonValue::Array{});
      }
      request[key].array().push_back(std::move(*tuple));
    } else if (key == "add-nodes") {
      long long number = 0;
      if (!ParseLong(value, &number) || number < 0) {
        return Status::InvalidArgument("bad count for --add-nodes: '" +
                                       value + "'");
      }
      request["add_nodes"] = static_cast<int64_t>(number);
    } else if (key == "warm") {
      if (value == "true" || value == "false") {
        request["warm"] = value == "true";
      } else if (value == "auto" || value == "on" || value == "off") {
        request["warm"] = value;
      } else {
        return Status::InvalidArgument(
            "--warm expects true/false/auto/on/off, got '" + value + "'");
      }
    } else if (key == "max-stale-epochs") {
      long long number = 0;
      if (!ParseLong(value, &number) || number < 0) {
        return Status::InvalidArgument("bad count for --max-stale-epochs: '" +
                                       value + "'");
      }
      request["staleness"] = JsonValue(
          JsonValue::Object{{"max_epochs", static_cast<int64_t>(number)}});
    } else if (key == "apply") {
      if (value != "true" && value != "false") {
        return Status::InvalidArgument("--apply expects true or false, got '" +
                                       value + "'");
      }
      request["apply"] = value == "true";
    } else if (key == "k" || key == "seed" || key == "probes") {
      long long number = 0;
      if (!ParseLong(value.c_str(), &number)) {
        return Status::InvalidArgument("bad integer for --" + key + ": '" +
                                       value + "'");
      }
      request[key] = static_cast<int64_t>(number);
    } else if (key == "eps") {
      double number = 0;
      if (!ParseDoubleArg(value.c_str(), &number)) {
        return Status::InvalidArgument("bad number for --eps: '" + value +
                                       "'");
      }
      request[key] = number;
    } else if (key == "group") {
      JsonValue::Array group;
      std::size_t start = 0;
      while (start <= value.size()) {
        std::size_t end = value.find(',', start);
        if (end == std::string::npos) end = value.size();
        if (end > start) {
          long long id = 0;
          if (!ParseLong(value.substr(start, end - start).c_str(), &id)) {
            return Status::InvalidArgument("bad node id in --group");
          }
          group.emplace_back(static_cast<int64_t>(id));
        }
        start = end + 1;
      }
      request[key] = JsonValue(std::move(group));
    } else {
      return Status::InvalidArgument("unknown client flag --" + raw_key);
    }
  }
  return JsonValue(std::move(request));
}

int RunClient(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string op;
  std::vector<std::pair<std::string, std::string>> fields;
  std::vector<std::string> raw_lines;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--host") {
      host = need_value();
    } else if (arg == "--port") {
      long long number = 0;
      if (!ParseLong(need_value(), &number) || number <= 0 ||
          number > 65535) {
        std::fprintf(stderr, "error: bad --port\n");
        return 2;
      }
      port = static_cast<int>(number);
    } else if (arg == "--op") {
      op = need_value();
    } else if (arg.rfind("--", 0) == 0) {
      fields.emplace_back(arg.substr(2), need_value());
    } else {
      raw_lines.push_back(arg);
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "error: client requires --port\n");
    return 2;
  }
  if (op.empty() && !fields.empty()) {
    // Request flags without --op would otherwise be dropped silently and
    // the tool would block reading stdin.
    std::fprintf(stderr, "error: request flags like --%s require --op\n",
                 fields.front().first.c_str());
    return 2;
  }

  std::vector<std::string> requests = raw_lines;
  if (!op.empty()) {
    StatusOr<JsonValue> request = BuildRequest(op, fields);
    if (!request.ok()) {
      std::fprintf(stderr, "error: %s\n", request.status().ToString().c_str());
      return 2;
    }
    requests.push_back(request->Serialize());
  }
  if (requests.empty()) {
    // Pipe mode: one request line per stdin line.
    char line[1 << 16];
    while (std::fgets(line, sizeof(line), stdin) != nullptr) {
      std::string text = line;
      while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
        text.pop_back();
      }
      if (!text.empty()) requests.push_back(std::move(text));
    }
  }

  StatusOr<ServeClient> client = ServeClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }
  int failures = 0;
  for (const std::string& request : requests) {
    Status sent = client->SendLine(request);
    if (!sent.ok()) {
      std::fprintf(stderr, "error: %s\n", sent.ToString().c_str());
      return 1;
    }
    StatusOr<std::string> response = client->ReadLine();
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response->c_str());
    if (response->find("\"status\":\"error\"") != std::string::npos) {
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// In-process protocol check: proves the cache-hit determinism contract
// end to end over a real loopback socket, with no external orchestration.
int RunSelftest() {
  ServeHandler handler{{}};
  Server server{&handler, ServerOptions{.port = 0, .num_workers = 2}};
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "selftest: %s\n", started.ToString().c_str());
    return 1;
  }
  StatusOr<ServeClient> client =
      ServeClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "selftest: %s\n", client.status().ToString().c_str());
    return 1;
  }

  auto call = [&](const char* line) -> std::string {
    if (!client->SendLine(line).ok()) return "";
    StatusOr<std::string> response = client->ReadLine();
    return response.ok() ? *response : "";
  };

  const std::string solve_line =
      R"({"op":"solve","graph":"karate","algorithm":"forest","k":3,"seed":7})";
  const std::string loaded =
      call(R"({"op":"load","graph":"karate","source":"karate"})");
  const std::string first = call(solve_line.c_str());
  const std::string second = call(solve_line.c_str());

  std::printf("%s\n%s\n%s\n", loaded.c_str(), first.c_str(), second.c_str());
  if (loaded.find("\"status\":\"ok\"") == std::string::npos ||
      first.find("\"cache\":\"miss\"") == std::string::npos ||
      second.find("\"cache\":\"hit\"") == std::string::npos) {
    std::fprintf(stderr, "selftest: unexpected responses\n");
    return 1;
  }
  // Byte-identical apart from the cache marker: the determinism contract.
  std::string normalized_first = first;
  const std::size_t miss = normalized_first.find("\"cache\":\"miss\"");
  normalized_first.replace(miss, 14, "\"cache\":\"hit\"");
  if (normalized_first != second) {
    std::fprintf(stderr, "selftest: hit response differs from miss response\n");
    return 1;
  }

  // Dynamic sessions: a mutation changes the content fingerprint, so
  // the identical request line re-solves (cache miss); the inverse
  // delta restores the bytes and the original cached answer hits again.
  const std::string mutated =
      call(R"({"op":"mutate","graph":"karate","remove":[[0,1]]})");
  const std::string resolved = call(solve_line.c_str());
  const std::string reverted =
      call(R"({"op":"mutate","graph":"karate","add":[[0,1]]})");
  const std::string restored = call(solve_line.c_str());
  std::printf("%s\n%s\n%s\n%s\n", mutated.c_str(), resolved.c_str(),
              reverted.c_str(), restored.c_str());
  if (mutated.find("\"status\":\"ok\"") == std::string::npos ||
      mutated.find("\"epoch\":1") == std::string::npos ||
      resolved.find("\"cache\":\"miss\"") == std::string::npos ||
      reverted.find("\"status\":\"ok\"") == std::string::npos ||
      restored != second) {
    std::fprintf(stderr,
                 "selftest: mutate -> miss -> revert -> hit loop failed\n");
    server.Shutdown();
    return 1;
  }

  // Augment: the §VI edge-selection answer is servable.
  const std::string augmented =
      call(R"({"op":"augment","graph":"karate","group":[0,33],"k":1})");
  std::printf("%s\n", augmented.c_str());
  if (augmented.find("\"status\":\"ok\"") == std::string::npos ||
      augmented.find("\"added\":[[") == std::string::npos) {
    std::fprintf(stderr, "selftest: augment round-trip failed\n");
    server.Shutdown();
    return 1;
  }

  // Observability: a traced solve carries its span breakdown and echoes
  // the requested trace id; the metrics op has recorded solve latency.
  const std::string traced = call(
      R"({"op":"solve","graph":"karate","algorithm":"forest","k":3,"seed":7,)"
      R"("trace":true,"trace_id":"selftest-trace"})");
  const std::string metrics = call(R"({"op":"metrics"})");
  const std::string flightz = call(R"({"op":"flightz"})");
  server.Shutdown();
  std::printf("%s\n%s\n%s\n", traced.c_str(), metrics.c_str(),
              flightz.c_str());
  if (traced.find("\"trace_id\":\"selftest-trace\"") == std::string::npos ||
      traced.find("\"spans\":[") == std::string::npos ||
      traced.find("\"queue_wait\"") == std::string::npos) {
    std::fprintf(stderr, "selftest: traced solve missing span breakdown\n");
    return 1;
  }
  // Non-empty bucket list == at least one recorded solve latency sample.
  if (metrics.find("\"serve.solve.latency_us\":{\"buckets\":[[") ==
          std::string::npos ||
      metrics.find("\"serve.cache.hits\"") == std::string::npos) {
    std::fprintf(stderr, "selftest: metrics op missing solve latency\n");
    return 1;
  }
  // Flight recorder: every request above commits a record; the traced
  // solve must be findable by its trace id, and the pinned ring member
  // must be present in the answer (even if empty on a fast machine).
  if (flightz.find("\"trace_id\":\"selftest-trace\"") == std::string::npos ||
      flightz.find("\"pinned\":[") == std::string::npos) {
    std::fprintf(stderr, "selftest: flightz missing traced solve record\n");
    return 1;
  }
  std::printf("selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "client") == 0) {
    return RunClient(argc - 2, argv + 2);
  }
  if (argc > 1 && std::strcmp(argv[1], "selftest") == 0) {
    return RunSelftest();
  }
  const int skip = (argc > 1 && std::strcmp(argv[1], "serve") == 0) ? 2 : 1;
  return RunServe(argc - skip, argv + skip);
}
