#include "engine/registry.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "graph/datasets.h"

namespace cfcm::engine {
namespace {

TEST(RegistryTest, EnumeratesAllBuiltinSolvers) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  const std::set<std::string> got(names.begin(), names.end());
  const std::set<std::string> want = {"approx", "degree", "exact",  "forest",
                                      "optimum", "schur",  "topcfcc"};
  EXPECT_EQ(got, want);
  EXPECT_EQ(names.size(), got.size()) << "duplicate registration";
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, FindReturnsEachRegisteredSolver) {
  const SolverRegistry& registry = SolverRegistry::Global();
  for (const std::string& name : registry.Names()) {
    EXPECT_TRUE(registry.Contains(name));
    auto solver = registry.Find(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ((*solver)->name(), name);
    EXPECT_FALSE((*solver)->description().empty()) << name;
    EXPECT_FALSE((*solver)->capabilities().complexity.empty()) << name;
  }
}

TEST(RegistryTest, RejectsUnknownNames) {
  const SolverRegistry& registry = SolverRegistry::Global();
  EXPECT_FALSE(registry.Contains("simulated-annealing"));
  auto missing = registry.Find("simulated-annealing");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  // The error names the valid alternatives so the CLI surfaces them.
  EXPECT_NE(missing.status().message().find("forest"), std::string::npos);
  EXPECT_NE(missing.status().message().find("schur"), std::string::npos);
}

TEST(RegistryTest, CapabilityMetadataIsConsistent) {
  const SolverRegistry& registry = SolverRegistry::Global();
  for (const auto& solver : registry.solvers()) {
    const SolverCapabilities& caps = solver->capabilities();
    // A solver is either seed-sensitive or deterministic, never both.
    EXPECT_NE(caps.randomized, caps.deterministic) << solver->name();
    if (caps.optimal) EXPECT_TRUE(caps.deterministic) << solver->name();
  }
  EXPECT_TRUE((*registry.Find("optimum"))->capabilities().optimal);
  EXPECT_EQ((*registry.Find("optimum"))->capabilities().max_recommended_n,
            128);
  EXPECT_TRUE((*registry.Find("forest"))->capabilities().randomized);
  EXPECT_TRUE((*registry.Find("schur"))->capabilities().randomized);
  EXPECT_TRUE((*registry.Find("exact"))->capabilities().deterministic);
  EXPECT_TRUE((*registry.Find("degree"))->capabilities().deterministic);
}

TEST(RegistryTest, EverySolverSolvesKarate) {
  const Graph graph = KarateClub();
  const int k = 3;
  CfcmOptions options;
  options.seed = 11;
  options.num_threads = 1;
  options.forest_factor = 4.0;
  for (const auto& solver : SolverRegistry::Global().solvers()) {
    auto result = solver->Solve(graph, k, options);
    ASSERT_TRUE(result.ok()) << solver->name() << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->selected.size(), static_cast<std::size_t>(k))
        << solver->name();
    std::set<NodeId> unique(result->selected.begin(), result->selected.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k))
        << solver->name() << " returned duplicate nodes";
    for (NodeId u : result->selected) {
      EXPECT_GE(u, 0) << solver->name();
      EXPECT_LT(u, graph.num_nodes()) << solver->name();
    }
    // Any group it returns must be scoreable.
    EXPECT_GT(ExactGroupCfcc(graph, result->selected), 0.0) << solver->name();
  }
}

TEST(RegistryTest, SolversValidateArguments) {
  const Graph graph = KarateClub();
  for (const auto& solver : SolverRegistry::Global().solvers()) {
    EXPECT_FALSE(solver->Solve(graph, 0, {}).ok()) << solver->name();
    EXPECT_FALSE(solver->Solve(graph, graph.num_nodes(), {}).ok())
        << solver->name();
  }
}

}  // namespace
}  // namespace cfcm::engine
