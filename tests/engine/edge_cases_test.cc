// Engine edge cases the serving layer exposes to untrusted input:
// k >= n solve requests, full-node-set evaluations, malformed groups,
// and concurrent jobs against two different catalog sessions.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/registry.h"
#include "graph/datasets.h"
#include "serve/catalog.h"

namespace cfcm::engine {
namespace {

TEST(EngineEdgeCasesTest, KAtOrAboveNFailsCleanlyForEverySolver) {
  Engine engine{KarateClub()};
  const NodeId n = engine.session().num_nodes();
  for (const auto& solver : SolverRegistry::Global().solvers()) {
    for (int k : {static_cast<int>(n), static_cast<int>(n) + 5}) {
      auto result = engine.Run(SolveJob{.algorithm = solver->name(), .k = k});
      ASSERT_FALSE(result.ok()) << solver->name() << " k=" << k;
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << solver->name() << " k=" << k;
    }
  }
}

TEST(EngineEdgeCasesTest, KJustBelowNSolves) {
  Engine engine{KarateClub()};
  const NodeId n = engine.session().num_nodes();
  // The largest legal k: every solver must cope with one free node left.
  for (const std::string algorithm : {"degree", "exact"}) {
    auto result =
        engine.Run(SolveJob{.algorithm = algorithm, .k = static_cast<int>(n) - 1});
    ASSERT_TRUE(result.ok()) << algorithm << ": "
                             << result.status().ToString();
    EXPECT_EQ(std::get<SolveJobResult>(*result).output.selected.size(),
              static_cast<std::size_t>(n - 1));
  }
}

TEST(EngineEdgeCasesTest, FullNodeSetEvaluationIsRejected) {
  Engine engine{KarateClub()};
  const NodeId n = engine.session().num_nodes();
  std::vector<NodeId> everyone(n);
  for (NodeId u = 0; u < n; ++u) everyone[u] = u;
  // C(S) with no free node is undefined (empty trace); must be a
  // structured error, for exact and probed evaluation alike.
  for (int probes : {0, 16}) {
    auto result = engine.Run(EvaluateJob{.group = everyone, .probes = probes});
    ASSERT_FALSE(result.ok()) << "probes=" << probes;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  // All but one node is the boundary case that must work.
  everyone.pop_back();
  auto result = engine.Run(EvaluateJob{.group = everyone});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(std::get<EvaluateJobResult>(*result).cfcc, 0.0);
}

TEST(EngineEdgeCasesTest, MalformedGroupsAreRejectedNotUndefined) {
  Engine engine{KarateClub()};
  const struct {
    std::vector<NodeId> group;
    StatusCode code;
  } cases[] = {
      {{}, StatusCode::kInvalidArgument},
      {{0, 5, 0}, StatusCode::kInvalidArgument},   // duplicate
      {{-1}, StatusCode::kOutOfRange},             // negative id
      {{34}, StatusCode::kOutOfRange},             // == n
      {{0, 1000}, StatusCode::kOutOfRange},        // far out of range
  };
  for (const auto& test_case : cases) {
    // Both evaluation modes go through the same validation.
    for (int probes : {0, 8}) {
      auto result =
          engine.Run(EvaluateJob{.group = test_case.group, .probes = probes});
      ASSERT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), test_case.code);
    }
  }
}

// The serving scenario: one process, two catalog sessions, concurrent
// job batches against both — results must match the sequential baseline
// bit for bit on each graph.
TEST(EngineEdgeCasesTest, ConcurrentJobsAgainstTwoCatalogSessions) {
  serve::SessionCatalog catalog;
  ASSERT_TRUE(catalog.Define("karate", "karate").ok());
  ASSERT_TRUE(catalog.Define("grid", "grid:7x7").ok());
  auto karate = catalog.Acquire("karate");
  auto grid = catalog.Acquire("grid");
  ASSERT_TRUE(karate.ok() && grid.ok());

  auto make_jobs = [] {
    std::vector<Job> jobs;
    for (uint64_t seed : {1u, 9u}) {
      jobs.push_back(SolveJob{.algorithm = "forest", .k = 3, .eps = 0.3,
                              .seed = seed});
      jobs.push_back(SolveJob{.algorithm = "schur", .k = 3, .eps = 0.3,
                              .seed = seed});
    }
    jobs.push_back(EvaluateJob{.group = {0, 1}});
    return jobs;
  };

  Engine karate_engine{*karate};
  Engine grid_engine{*grid};
  const std::vector<Job> jobs = make_jobs();

  // Sequential baselines first.
  const auto karate_baseline = karate_engine.RunBatch(jobs);
  const auto grid_baseline = grid_engine.RunBatch(jobs);

  // Now both batches at once, racing on the shared catalog pool.
  std::vector<StatusOr<JobResult>> karate_concurrent, grid_concurrent;
  std::thread karate_thread(
      [&] { karate_concurrent = karate_engine.RunBatch(jobs); });
  std::thread grid_thread(
      [&] { grid_concurrent = grid_engine.RunBatch(jobs); });
  karate_thread.join();
  grid_thread.join();

  auto expect_same = [](const std::vector<StatusOr<JobResult>>& actual,
                        const std::vector<StatusOr<JobResult>>& expected,
                        const std::string& context) {
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      ASSERT_TRUE(actual[i].ok() && expected[i].ok()) << context << " " << i;
      if (const auto* solve = std::get_if<SolveJobResult>(&*actual[i])) {
        const auto& baseline = std::get<SolveJobResult>(*expected[i]);
        EXPECT_EQ(solve->output.selected, baseline.output.selected)
            << context << " " << i;
        EXPECT_EQ(solve->output.total_forests, baseline.output.total_forests)
            << context << " " << i;
        EXPECT_EQ(solve->cfcc, baseline.cfcc) << context << " " << i;
      } else {
        EXPECT_EQ(std::get<EvaluateJobResult>(*actual[i]).cfcc,
                  std::get<EvaluateJobResult>(*expected[i]).cfcc)
            << context << " " << i;
      }
    }
  };
  expect_same(karate_concurrent, karate_baseline, "karate");
  expect_same(grid_concurrent, grid_baseline, "grid");
}

}  // namespace
}  // namespace cfcm::engine
