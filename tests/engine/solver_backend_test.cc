// Engine-level contract of the pluggable Laplacian kernel (DESIGN.md
// §14): jobs carry a requested backend, results name the resolved one,
// explicit factor backends lift the dense-only size gates, and the
// augment admission budget scales with the backend.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/solver.h"

namespace cfcm::engine {
namespace {

TEST(SolverBackendTest, SolveResultNamesResolvedBackend) {
  Engine engine{KarateClub()};
  auto dense = engine.Run(SolveJob{.algorithm = "exact", .k = 3});
  ASSERT_TRUE(dense.ok());
  // kAuto resolves dense on 33 remaining nodes.
  EXPECT_EQ(std::get<SolveJobResult>(*dense).output.solver_backend, "dense");

  auto sparse = engine.Run(SolveJob{
      .algorithm = "exact", .k = 3,
      .solver_backend = SolverBackend::kSparseLdlt});
  ASSERT_TRUE(sparse.ok());
  const auto& out = std::get<SolveJobResult>(*sparse).output;
  EXPECT_EQ(out.solver_backend, "sparse_ldlt");
  // Backends agree to tolerance: same group either way.
  EXPECT_EQ(out.selected, std::get<SolveJobResult>(*dense).output.selected);
}

TEST(SolverBackendTest, ExplicitSparseLiftsExactEvalCeiling) {
  // 600 remaining > exact_eval_max_n = 512: kAuto must keep refusing
  // (the pinned gate), while an explicit factor backend runs exactly.
  Engine engine{BarabasiAlbert(603, 3, 2)};
  auto refused = engine.Run(EvaluateJob{.group = {0, 1, 2}, .probes = 0});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("solver_backend=sparse_ldlt"),
            std::string::npos)
      << refused.status().message();

  auto exact = engine.Run(EvaluateJob{
      .group = {0, 1, 2}, .probes = 0,
      .solver_backend = SolverBackend::kSparseLdlt});
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  const auto& eval = std::get<EvaluateJobResult>(*exact);
  EXPECT_EQ(eval.solver_backend, "sparse_ldlt");
  EXPECT_EQ(eval.trace_std_error, 0.0);  // exact, not probed
  EXPECT_GT(eval.cfcc, 0.0);
}

TEST(SolverBackendTest, EvaluateNamesBackendOnBothPaths) {
  Engine engine{KarateClub()};
  auto exact = engine.Run(EvaluateJob{.group = {0, 33}, .probes = 0});
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(std::get<EvaluateJobResult>(*exact).solver_backend, "dense");
  auto probed = engine.Run(EvaluateJob{.group = {0, 33}, .probes = 16});
  ASSERT_TRUE(probed.ok());
  // Hutchinson's solves default to matrix-free CG.
  EXPECT_EQ(std::get<EvaluateJobResult>(*probed).solver_backend, "cg");
}

TEST(SolverBackendTest, AugmentBudgetScalesWithBackend) {
  EngineOptions options;
  options.augment_max_n = 8;
  const NodeId n = KarateClub().num_nodes();  // 34, remaining 32 with |S|=2

  // kAuto on 32 remaining resolves dense: over the dense limit of 8.
  AugmentBudget dense = CheckAugmentBudget(options, n, 2, 1,
                                           SolverBackend::kAuto,
                                           EdgeCandidates::kToGroup);
  EXPECT_FALSE(dense.admitted);
  EXPECT_EQ(dense.backend, SolverBackend::kDense);
  EXPECT_EQ(dense.remaining, 32);
  EXPECT_EQ(dense.limit, 8);

  // Explicit sparse_ldlt widens the limit by the budget factor.
  AugmentBudget sparse = CheckAugmentBudget(options, n, 2, 1,
                                            SolverBackend::kSparseLdlt,
                                            EdgeCandidates::kToGroup);
  EXPECT_TRUE(sparse.admitted);
  EXPECT_EQ(sparse.backend, SolverBackend::kSparseLdlt);
  EXPECT_EQ(sparse.limit, 8 * kSparseAugmentBudgetFactor);
  EXPECT_EQ(sparse.k_limit, 8);  // k ceiling stays backend-independent

  // kAny candidates need arbitrary M_uv entries: always the dense
  // budget, whatever was requested.
  AugmentBudget any = CheckAugmentBudget(options, n, 2, 1,
                                         SolverBackend::kSparseLdlt,
                                         EdgeCandidates::kAny);
  EXPECT_FALSE(any.admitted);
  EXPECT_EQ(any.backend, SolverBackend::kDense);
}

TEST(SolverBackendTest, AugmentSparseRunsPastDenseCeiling) {
  EngineOptions options;
  options.augment_max_n = 8;
  Engine engine{KarateClub(), options};
  AugmentJob job;
  job.group = {0, 33};
  job.k = 1;
  StatusOr<JobResult> refused = engine.Run(Job{job});
  ASSERT_FALSE(refused.ok());
  // The structured message names the backend, both limits and the size.
  const std::string& message = refused.status().message();
  EXPECT_NE(message.find("augment work budget exceeded"), std::string::npos)
      << message;
  EXPECT_NE(message.find("backend=dense"), std::string::npos) << message;
  EXPECT_NE(message.find("remaining=32"), std::string::npos) << message;

  job.solver_backend = SolverBackend::kSparseLdlt;
  StatusOr<JobResult> admitted = engine.Run(Job{job});
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  const auto& augment = std::get<AugmentJobResult>(*admitted);
  EXPECT_EQ(augment.solver_backend, "sparse_ldlt");
  EXPECT_EQ(augment.added.size(), 1u);
}

TEST(SolverBackendTest, AugmentResultsAgreeAcrossBackends) {
  Engine engine{KarateClub()};
  AugmentJob job;
  job.group = {0, 33};
  job.k = 2;
  auto dense = engine.Run(Job{job});
  job.solver_backend = SolverBackend::kSparseLdlt;
  auto sparse = engine.Run(Job{job});
  ASSERT_TRUE(dense.ok() && sparse.ok());
  const auto& d = std::get<AugmentJobResult>(*dense);
  const auto& s = std::get<AugmentJobResult>(*sparse);
  EXPECT_EQ(s.added, d.added);
  EXPECT_NEAR(s.cfcc_after, d.cfcc_after, 1e-9 * d.cfcc_after);
}

}  // namespace
}  // namespace cfcm::engine
