// Versioned sessions (DESIGN.md §11): epoch bumps, snapshot-scoped
// cache invalidation (fingerprint / memory_bytes / degree order can
// never be stale), in-flight jobs pinned to the pre-mutation snapshot,
// and AugmentJob as a first-class engine job.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/edge_addition.h"
#include "engine/engine.h"
#include "engine/session.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/delta.h"

namespace cfcm::engine {
namespace {

GraphDelta RemoveEdge01() {
  GraphDelta delta;
  delta.RemoveEdge(0, 1);
  return delta;
}

GraphDelta AddEdge01() {
  GraphDelta delta;
  delta.AddEdge(0, 1);
  return delta;
}

TEST(DynamicSessionTest, MutateBumpsEpochAndSwapsSnapshot) {
  GraphSession session{KarateClub(), 1};
  EXPECT_EQ(session.epoch(), 0u);
  const uint64_t fp0 = session.fingerprint();
  const EdgeId m0 = session.num_edges();

  ASSERT_TRUE(session.Mutate(RemoveEdge01()).ok());
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.num_edges(), m0 - 1);
  EXPECT_NE(session.fingerprint(), fp0);

  ASSERT_TRUE(session.Mutate(AddEdge01()).ok());
  EXPECT_EQ(session.epoch(), 2u);
  EXPECT_EQ(session.num_edges(), m0);
  // The inverse mutation restores the exact bytes: same fingerprint.
  EXPECT_EQ(session.fingerprint(), fp0);
}

TEST(DynamicSessionTest, FailedMutateLeavesSessionUntouched) {
  GraphSession session{KarateClub(), 1};
  const uint64_t fp0 = session.fingerprint();
  GraphDelta bad;
  bad.RemoveEdge(0, 9);  // not an edge of karate
  EXPECT_EQ(session.Mutate(bad).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.epoch(), 0u);
  EXPECT_EQ(session.fingerprint(), fp0);
}

TEST(DynamicSessionTest, DerivedStateIsEpochKeyedNeverStale) {
  GraphSession session{BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}})};
  ASSERT_TRUE(session.is_connected());
  const std::size_t bytes0 = session.memory_bytes();
  EXPECT_EQ(session.degree_order()[0], 1);  // degree-2 node, smallest id
  EXPECT_EQ(session.laplacian().rows(), 4);

  GraphDelta grow;
  grow.AddNodes(2);
  grow.AddEdge(3, 4);
  grow.AddEdge(4, 5);
  grow.AddEdge(5, 0);  // cycle of 6
  ASSERT_TRUE(session.Mutate(grow).ok());

  // Every derived value reflects the new snapshot immediately.
  EXPECT_EQ(session.num_nodes(), 6);
  EXPECT_TRUE(session.is_connected());
  EXPECT_GT(session.memory_bytes(), bytes0);
  EXPECT_EQ(session.degree_order().size(), 6u);
  EXPECT_EQ(session.degree_order()[0], 0);  // all degree 2, smallest id
  EXPECT_EQ(session.laplacian().rows(), 6);

  // Disconnecting mutation: solvers must reject with the existing
  // not-connected error.
  GraphDelta cut;
  cut.RemoveEdge(0, 1);
  cut.RemoveEdge(1, 2);
  ASSERT_TRUE(session.Mutate(cut).ok());
  EXPECT_FALSE(session.is_connected());
}

TEST(DynamicSessionTest, SolversRejectDisconnectingMutation) {
  auto session = std::make_shared<GraphSession>(
      BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}}), 1);
  Engine engine{session};
  SolveJob solve;
  solve.algorithm = "exact";
  solve.k = 1;
  ASSERT_TRUE(engine.Run(Job{solve}).ok());

  GraphDelta cut;
  cut.RemoveEdge(1, 2);
  ASSERT_TRUE(session->Mutate(cut).ok());
  StatusOr<JobResult> after = engine.Run(Job{solve});
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);

  EvaluateJob evaluate;
  evaluate.group = {0};
  StatusOr<JobResult> eval = engine.Run(Job{evaluate});
  ASSERT_FALSE(eval.ok());
  EXPECT_EQ(eval.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DynamicSessionTest, PinnedSnapshotSurvivesMutation) {
  GraphSession session{KarateClub(), 1};
  const std::shared_ptr<const GraphSnapshot> pinned = session.snapshot();
  const uint64_t fp0 = pinned->fingerprint();

  ASSERT_TRUE(session.Mutate(RemoveEdge01()).ok());
  ASSERT_TRUE(session.Mutate(AddEdge01()).ok());
  GraphDelta reweight;
  reweight.ReweightEdge(0, 1, 3.0);
  ASSERT_TRUE(session.Mutate(reweight).ok());

  // The pinned snapshot still exposes the original graph, bit for bit.
  EXPECT_EQ(pinned->fingerprint(), fp0);
  EXPECT_EQ(pinned->num_edges(), 78);
  EXPECT_TRUE(pinned->graph().is_unit_weighted());
  EXPECT_DOUBLE_EQ(session.graph().EdgeWeight(0, 1), 3.0);
}

// Acceptance: concurrent in-flight solves during Mutate complete
// against a coherent snapshot bit-for-bit — every response equals the
// deterministic result of one of the graph versions, never a torn mix.
TEST(DynamicSessionTest, ConcurrentSolvesDuringMutateMatchAVersionBaseline) {
  auto session = std::make_shared<GraphSession>(KarateClub(), 2);
  EngineOptions engine_options;
  Engine engine{session};

  SolveJob job;
  job.algorithm = "forest";
  job.k = 3;
  job.eps = 0.3;
  job.seed = 11;

  // Version baselines, computed on static sessions.
  auto baseline_for = [&](const Graph& graph) {
    Engine baseline{Graph(graph), engine_options};
    StatusOr<JobResult> result = baseline.Run(Job{job});
    EXPECT_TRUE(result.ok());
    return std::get<SolveJobResult>(*result);
  };
  const SolveJobResult base_v0 = baseline_for(KarateClub());
  StatusOr<Graph> removed = KarateClub().Apply(RemoveEdge01());
  ASSERT_TRUE(removed.ok());
  const SolveJobResult base_v1 = baseline_for(*removed);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> solvers;
  for (int t = 0; t < 3; ++t) {
    solvers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        StatusOr<JobResult> result = engine.Run(Job{job});
        if (!result.ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const auto& solve = std::get<SolveJobResult>(*result);
        const bool matches_v0 =
            solve.output.selected == base_v0.output.selected &&
            solve.cfcc == base_v0.cfcc;
        const bool matches_v1 =
            solve.output.selected == base_v1.output.selected &&
            solve.cfcc == base_v1.cfcc;
        if (!matches_v0 && !matches_v1) mismatches.fetch_add(1);
      }
    });
  }
  // Toggle between the two versions while solves are in flight.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session->Mutate(RemoveEdge01()).ok());
    ASSERT_TRUE(session->Mutate(AddEdge01()).ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& thread : solvers) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(session->epoch(), 40u);
  // An even number of toggles lands back on the original bytes.
  EXPECT_EQ(session->fingerprint(), GraphSession{KarateClub()}.fingerprint());
}

TEST(DynamicSessionTest, AugmentJobMatchesDirectGreedyEdgeAddition) {
  auto session = std::make_shared<GraphSession>(KarateClub(), 1);
  Engine engine{session};

  AugmentJob job;
  job.group = {0, 33};
  job.k = 2;
  job.candidates = EdgeCandidates::kAny;
  StatusOr<JobResult> result = engine.Run(Job{job});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& augment = std::get<AugmentJobResult>(*result);

  StatusOr<EdgeAdditionResult> direct =
      GreedyEdgeAddition(KarateClub(), {0, 33}, 2, EdgeCandidates::kAny);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(augment.added, direct->added);
  EXPECT_EQ(augment.trace_after, direct->trace_after);
  EXPECT_DOUBLE_EQ(augment.initial_trace, direct->initial_trace);
  ASSERT_EQ(augment.trace_after.size(), 2u);
  EXPECT_DOUBLE_EQ(augment.cfcc_before, 34.0 / augment.initial_trace);
  EXPECT_DOUBLE_EQ(augment.cfcc_after, 34.0 / augment.trace_after.back());
  EXPECT_GT(augment.cfcc_after, augment.cfcc_before);

  // Augment then apply: feeding the chosen edges back as a delta must
  // land the session on a graph where they exist.
  GraphDelta apply;
  for (const auto& [u, v] : augment.added) apply.AddEdge(u, v);
  ASSERT_TRUE(session->Mutate(apply).ok());
  for (const auto& [u, v] : augment.added) {
    EXPECT_TRUE(session->graph().HasEdge(u, v));
  }
  EXPECT_EQ(session->epoch(), 1u);
}

TEST(DynamicSessionTest, AugmentRejectsBadGroups) {
  Engine engine{KarateClub()};
  AugmentJob job;
  job.k = 1;
  EXPECT_FALSE(engine.Run(Job{job}).ok());  // empty group
  job.group = {99};
  EXPECT_FALSE(engine.Run(Job{job}).ok());  // out of range
  // Duplicate ids must be rejected BEFORE the dense ceiling gate: they
  // would understate the kept-node count and bypass it.
  job.group = {0, 0, 33};
  StatusOr<JobResult> dup = engine.Run(Job{job});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST(DynamicSessionTest, AugmentEnforcesDenseWorkCeiling) {
  // GreedyEdgeAddition is dense (O(n^2) memory, O(n^3 + k n^2) time);
  // the engine must bound what one job can allocate.
  EngineOptions options;
  options.augment_max_n = 8;
  Engine engine{KarateClub(), options};
  AugmentJob job;
  job.group = {0, 33};
  job.k = 1;
  StatusOr<JobResult> over_n = engine.Run(Job{job});  // 32 remaining > 8
  ASSERT_FALSE(over_n.ok());
  EXPECT_EQ(over_n.status().code(), StatusCode::kInvalidArgument);

  EngineOptions wide;
  wide.augment_max_n = 64;
  Engine roomy{KarateClub(), wide};
  job.k = 65;  // k beyond the ceiling is rejected too
  StatusOr<JobResult> over_k = roomy.Run(Job{job});
  ASSERT_FALSE(over_k.ok());
  EXPECT_EQ(over_k.status().code(), StatusCode::kInvalidArgument);
  job.k = 2;
  EXPECT_TRUE(roomy.Run(Job{job}).ok());
}

}  // namespace
}  // namespace cfcm::engine
