#include "engine/engine.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cfcm/cfcc.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"

namespace cfcm::engine {
namespace {

// Everything except wall-time must match bit-for-bit between a batched
// and a sequential run of the same job.
void ExpectSameResult(const StatusOr<JobResult>& batched,
                      const StatusOr<JobResult>& sequential,
                      const std::string& context) {
  ASSERT_EQ(batched.ok(), sequential.ok()) << context;
  if (!batched.ok()) {
    EXPECT_EQ(batched.status().code(), sequential.status().code()) << context;
    return;
  }
  ASSERT_EQ(batched->index(), sequential->index()) << context;
  if (const auto* solve = std::get_if<SolveJobResult>(&*batched)) {
    const auto& expected = std::get<SolveJobResult>(*sequential);
    EXPECT_EQ(solve->algorithm, expected.algorithm) << context;
    EXPECT_EQ(solve->output.selected, expected.output.selected) << context;
    EXPECT_EQ(solve->output.total_forests, expected.output.total_forests)
        << context;
    EXPECT_EQ(solve->output.jl_rows, expected.output.jl_rows) << context;
    EXPECT_EQ(solve->output.auxiliary_roots, expected.output.auxiliary_roots)
        << context;
    EXPECT_EQ(solve->output.solver_calls, expected.output.solver_calls)
        << context;
    EXPECT_EQ(solve->cfcc, expected.cfcc) << context;
  } else {
    const auto& eval = std::get<EvaluateJobResult>(*batched);
    const auto& expected = std::get<EvaluateJobResult>(*sequential);
    EXPECT_EQ(eval.cfcc, expected.cfcc) << context;
    EXPECT_EQ(eval.trace, expected.trace) << context;
    EXPECT_EQ(eval.trace_std_error, expected.trace_std_error) << context;
  }
}

// The acceptance batch: >= 8 jobs mixing algorithms, seeds, k and an
// evaluation, all served from one shared session.
std::vector<Job> MixedBatch() {
  std::vector<Job> jobs;
  for (uint64_t seed : {1u, 7u, 42u}) {
    jobs.push_back(SolveJob{.algorithm = "forest", .k = 4, .eps = 0.3,
                            .seed = seed});
    jobs.push_back(SolveJob{.algorithm = "schur", .k = 4, .eps = 0.3,
                            .seed = seed});
  }
  jobs.push_back(SolveJob{.algorithm = "exact", .k = 5});
  jobs.push_back(SolveJob{.algorithm = "degree", .k = 3});
  jobs.push_back(EvaluateJob{.group = {0, 1, 2}});
  return jobs;
}

TEST(EngineTest, BatchMatchesSequentialOnKarate) {
  Engine engine{KarateClub(), EngineOptions{.num_threads = 4}};
  const std::vector<Job> jobs = MixedBatch();
  ASSERT_GE(jobs.size(), 8u);

  const auto batched = engine.RunBatch(jobs);
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ExpectSameResult(batched[i], engine.Run(jobs[i]),
                     "karate job " + std::to_string(i));
  }
}

TEST(EngineTest, BatchMatchesSequentialOnBarabasiAlbert) {
  Engine engine{BarabasiAlbert(150, 3, 5), EngineOptions{.num_threads = 4}};
  const std::vector<Job> jobs = MixedBatch();

  const auto batched = engine.RunBatch(jobs);
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ExpectSameResult(batched[i], engine.Run(jobs[i]),
                     "ba job " + std::to_string(i));
  }
}

TEST(EngineTest, RepeatedBatchesAreDeterministicPerSeed) {
  Engine engine{KarateClub(), EngineOptions{.num_threads = 3}};
  const std::vector<Job> jobs = MixedBatch();
  const auto first = engine.RunBatch(jobs);
  const auto second = engine.RunBatch(jobs);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ExpectSameResult(second[i], first[i], "rerun job " + std::to_string(i));
  }
}

TEST(EngineTest, DifferentSeedsAreIndependentJobs) {
  Engine engine{KarateClub()};
  const Job a = SolveJob{.algorithm = "forest", .k = 4, .seed = 1};
  const Job b = SolveJob{.algorithm = "forest", .k = 4, .seed = 2};
  auto ra = engine.Run(a);
  auto rb = engine.Run(b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  // Not asserting inequality of groups (both may find the same optimum);
  // but each must equal its own sequential rerun, proving the seed is
  // what determines the output.
  ExpectSameResult(engine.Run(a), ra, "seed 1");
  ExpectSameResult(engine.Run(b), rb, "seed 2");
}

TEST(EngineTest, EvaluateJobAgreesWithExactGroupCfcc) {
  const Graph karate = KarateClub();
  Engine engine{KarateClub()};
  for (const std::vector<NodeId>& group :
       {std::vector<NodeId>{0}, {33, 0}, {5, 10, 20}, {0, 1, 2, 3, 4}}) {
    auto result = engine.Run(EvaluateJob{.group = group});
    ASSERT_TRUE(result.ok());
    const auto& eval = std::get<EvaluateJobResult>(*result);
    EXPECT_DOUBLE_EQ(eval.cfcc, ExactGroupCfcc(karate, group));
    EXPECT_NEAR(eval.trace, karate.num_nodes() / eval.cfcc, 1e-9);
    EXPECT_EQ(eval.trace_std_error, 0.0);
  }
}

TEST(EngineTest, ProbedEvaluationApproximatesExact) {
  const Graph graph = BarabasiAlbert(200, 3, 9);
  Engine engine{BarabasiAlbert(200, 3, 9)};
  const std::vector<NodeId> group = {0, 1, 2};
  auto probed = engine.Run(EvaluateJob{.group = group, .probes = 256,
                                       .seed = 4});
  ASSERT_TRUE(probed.ok());
  const auto& eval = std::get<EvaluateJobResult>(*probed);
  const double exact = ExactGroupCfcc(graph, group);
  EXPECT_NEAR(eval.cfcc, exact, 0.15 * exact);
  EXPECT_GT(eval.trace_std_error, 0.0);
}

TEST(EngineTest, ExactEvaluationRefusesOversizedGraphs) {
  // 600 remaining nodes > the default exact_eval_max_n = 512: exact
  // evaluation must fail per-job instead of attempting a dense inverse.
  Engine engine{BarabasiAlbert(603, 3, 2)};
  auto exact = engine.Run(EvaluateJob{.group = {0, 1, 2}, .probes = 0});
  EXPECT_EQ(exact.status().code(), StatusCode::kInvalidArgument);
  auto probed = engine.Run(EvaluateJob{.group = {0, 1, 2}, .probes = 32});
  EXPECT_TRUE(probed.ok());
}

TEST(EngineTest, SolveResultCarriesEvaluatedCfcc) {
  Engine engine{KarateClub()};
  auto result = engine.Run(SolveJob{.algorithm = "exact", .k = 5});
  ASSERT_TRUE(result.ok());
  const auto& solve = std::get<SolveJobResult>(*result);
  EXPECT_DOUBLE_EQ(solve.cfcc,
                   ExactGroupCfcc(KarateClub(), solve.output.selected));
}

TEST(EngineTest, BadJobsFailIndividuallyWithoutPoisoningTheBatch) {
  Engine engine{KarateClub()};
  std::vector<Job> jobs = {
      SolveJob{.algorithm = "no-such-solver", .k = 3},
      SolveJob{.algorithm = "forest", .k = 0},
      EvaluateJob{.group = {}},
      EvaluateJob{.group = {999}},
      EvaluateJob{.group = {0, 0, 2}},  // duplicates must not dedup silently
      SolveJob{.algorithm = "exact", .k = 4},
  };
  const auto results = engine.RunBatch(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  EXPECT_EQ(results[0].status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[3].status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(results[4].status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(results[5].ok());
  EXPECT_EQ(std::get<SolveJobResult>(*results[5]).output.selected.size(), 4u);
}

TEST(EngineTest, RejectsDisconnectedGraphs) {
  // Two disjoint triangles.
  const Graph disconnected = BuildGraph(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  Engine engine{Graph(disconnected)};
  auto solve = engine.Run(SolveJob{.algorithm = "forest", .k = 2});
  EXPECT_EQ(solve.status().code(), StatusCode::kFailedPrecondition);
  auto eval = engine.Run(EvaluateJob{.group = {0}});
  EXPECT_EQ(eval.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, SharedSessionServesMultipleEngines) {
  auto session = std::make_shared<GraphSession>(KarateClub());
  Engine a{session};
  Engine b{session};
  auto ra = a.Run(SolveJob{.algorithm = "degree", .k = 3});
  auto rb = b.Run(SolveJob{.algorithm = "degree", .k = 3});
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(std::get<SolveJobResult>(*ra).output.selected,
            std::get<SolveJobResult>(*rb).output.selected);
}

}  // namespace
}  // namespace cfcm::engine
