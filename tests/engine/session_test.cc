#include "engine/session.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "linalg/dense.h"
#include "linalg/laplacian.h"

namespace cfcm::engine {
namespace {

TEST(SessionTest, ExposesGraphDimensions) {
  GraphSession session{KarateClub()};
  EXPECT_EQ(session.num_nodes(), 34);
  EXPECT_EQ(session.num_edges(), 78);
  EXPECT_TRUE(session.is_connected());
}

TEST(SessionTest, DegreeOrderIsSortedDescendingWithIdTiebreak) {
  GraphSession session{KarateClub()};
  const std::vector<NodeId>& order = session.degree_order();
  ASSERT_EQ(order.size(), 34u);
  const Graph& graph = session.graph();
  for (std::size_t i = 1; i < order.size(); ++i) {
    const NodeId prev = order[i - 1], cur = order[i];
    const bool strictly_less = graph.degree(cur) < graph.degree(prev);
    const bool tie_by_id = graph.degree(cur) == graph.degree(prev) &&
                           prev < cur;
    EXPECT_TRUE(strictly_less || tie_by_id) << "position " << i;
  }
  EXPECT_EQ(order.front(), graph.MaxDegreeNode());
  // Cached: same object on every call.
  EXPECT_EQ(&session.degree_order(), &order);
}

TEST(SessionTest, LaplacianMatchesDenseReference) {
  GraphSession session{ContiguousUsa()};
  const DenseMatrix expected = DenseLaplacian(session.graph());
  const DenseMatrix got = session.laplacian().ToDense();
  ASSERT_EQ(got.rows(), expected.rows());
  for (int i = 0; i < expected.rows(); ++i) {
    for (int j = 0; j < expected.cols(); ++j) {
      EXPECT_DOUBLE_EQ(got(i, j), expected(i, j)) << i << "," << j;
    }
  }
}

TEST(SessionTest, DetectsDisconnectedGraphs) {
  GraphSession session{BuildGraph(4, {{0, 1}, {2, 3}})};
  EXPECT_FALSE(session.is_connected());
}

TEST(SessionTest, LazyStateIsSafeUnderConcurrentFirstUse) {
  GraphSession session{KarateClub(), 2};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (!session.is_connected()) mismatches.fetch_add(1);
        if (session.degree_order().size() != 34u) mismatches.fetch_add(1);
        if (session.laplacian().rows() != 34) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(session.pool().num_threads(), 1u);
}


TEST(SessionTest, WeightedLaplacianUsesConductances) {
  GraphSession session{KarateClubWeighted()};
  EXPECT_TRUE(session.is_weighted());
  EXPECT_NEAR(session.total_weight(), session.graph().total_weight(), 1e-12);
  const DenseMatrix dense = DenseLaplacian(session.graph());
  const DenseMatrix sparse = session.laplacian().ToDense();
  EXPECT_LT(DenseMatrix::MaxAbsDiff(dense, sparse), 1e-12);
}

TEST(SessionTest, UnitSessionReportsUnweighted) {
  GraphSession session{KarateClub()};
  EXPECT_FALSE(session.is_weighted());
  EXPECT_EQ(session.total_weight(), 78.0);
}

}  // namespace
}  // namespace cfcm::engine
