#include "linalg/laplacian.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/ldlt.h"

namespace cfcm {
namespace {

TEST(LaplacianTest, DenseLaplacianRowsSumToZero) {
  const Graph g = KarateClub();
  const DenseMatrix l = DenseLaplacian(g);
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    double row_sum = 0;
    for (NodeId j = 0; j < g.num_nodes(); ++j) row_sum += l(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
    EXPECT_EQ(l(i, i), g.degree(i));
  }
}

TEST(LaplacianTest, SubmatrixIndexMapsCorrectly) {
  const SubmatrixIndex idx = MakeSubmatrixIndex(5, {1, 3});
  ASSERT_EQ(idx.kept.size(), 3u);
  EXPECT_EQ(idx.kept[0], 0);
  EXPECT_EQ(idx.kept[1], 2);
  EXPECT_EQ(idx.kept[2], 4);
  EXPECT_EQ(idx.pos[0], 0);
  EXPECT_EQ(idx.pos[1], -1);
  EXPECT_EQ(idx.pos[2], 1);
  EXPECT_EQ(idx.pos[3], -1);
  EXPECT_EQ(idx.pos[4], 2);
}

TEST(LaplacianTest, SubmatrixKeepsFullDegrees) {
  const Graph g = PathGraph(4);  // 0-1-2-3
  const SubmatrixIndex idx = MakeSubmatrixIndex(4, {0});
  const DenseMatrix l = DenseLaplacianSubmatrix(g, idx);
  // Node 1 keeps degree 2 even though neighbor 0 was removed.
  EXPECT_EQ(l(0, 0), 2.0);
  EXPECT_EQ(l(0, 1), -1.0);
  EXPECT_EQ(l(2, 2), 1.0);
}

TEST(LaplacianTest, PathGraphSubmatrixInverseIsKnown) {
  // Path 0-1-2 grounded at 2: L_{-S} = [[1,-1],[-1,2]],
  // inverse = [[2,1],[1,1]].
  const Graph g = PathGraph(3);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, {2});
  EXPECT_NEAR(inv(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(inv(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(inv(1, 1), 1.0, 1e-12);
}

TEST(LaplacianTest, TriangleSubmatrixInverseIsKnown) {
  // Triangle grounded at node 2: L_{-S}^{-1} = (1/3)[[2,1],[1,2]].
  const Graph g = CompleteGraph(3);
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, {2});
  EXPECT_NEAR(inv(0, 0), 2.0 / 3, 1e-12);
  EXPECT_NEAR(inv(0, 1), 1.0 / 3, 1e-12);
}

TEST(LaplacianTest, PseudoinverseProperties) {
  const Graph g = KarateClub();
  const DenseMatrix l = DenseLaplacian(g);
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  // L L† L = L.
  const DenseMatrix lpl = l.Multiply(pinv).Multiply(l);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(lpl, l), 1e-8);
  // L† 1 = 0.
  const Vector ones(static_cast<std::size_t>(g.num_nodes()), 1.0);
  for (double v : pinv.MultiplyVec(ones)) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(LaplacianTest, ResistanceDistanceViaTwoFormulas) {
  // Eq. (1): R(i,j) = L†_ii + L†_jj - 2 L†_ij equals
  // Eq. (2): R(i,j) = (L_{-i}^{-1})_jj.
  const Graph g = ContiguousUsa();
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  for (NodeId i : {0, 7, 20}) {
    const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), {i});
    const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, {i});
    for (NodeId j : {3, 11, 40}) {
      if (i == j) continue;
      const double r1 = pinv(i, i) + pinv(j, j) - 2 * pinv(i, j);
      const double r2 = inv(idx.pos[j], idx.pos[j]);
      EXPECT_NEAR(r1, r2, 1e-9) << "i=" << i << " j=" << j;
    }
  }
}

TEST(LaplacianTest, OperatorMatchesDenseSubmatrix) {
  const Graph g = BarabasiAlbert(60, 2, 17);
  const std::vector<NodeId> removed = {3, 10, 41};
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), removed);
  const DenseMatrix dense = DenseLaplacianSubmatrix(g, idx);

  std::vector<char> mask(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId s : removed) mask[s] = 1;
  const LaplacianSubmatrixOp op(g, mask);

  Vector x(static_cast<std::size_t>(g.num_nodes()), 0.0);
  Rng rng(4);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    x[u] = mask[u] ? 0.0 : rng.NextDouble();
  }
  Vector y(x.size(), 0.0);
  op.Apply(x, &y);

  Vector xs(idx.kept.size());
  for (std::size_t i = 0; i < idx.kept.size(); ++i) xs[i] = x[idx.kept[i]];
  const Vector ys = dense.MultiplyVec(xs);
  for (std::size_t i = 0; i < idx.kept.size(); ++i) {
    EXPECT_NEAR(y[idx.kept[i]], ys[i], 1e-10);
  }
  for (NodeId s : removed) EXPECT_EQ(y[s], 0.0);
}

TEST(LaplacianTest, JacobiPreconditionerDividesByDegree) {
  const Graph g = StarGraph(5);
  const LaplacianSubmatrixOp op(g, std::vector<char>(5, 0));
  Vector r = {4, 1, 1, 1, 1};
  Vector z(5, 0.0);
  op.ApplyJacobi(r, &z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);  // degree 4
  EXPECT_DOUBLE_EQ(z[1], 1.0);  // degree 1
}

TEST(LaplacianTest, ExactTraceMatchesInverseTrace) {
  const Graph g = KarateClub();
  const std::vector<NodeId> removed = {0, 33};
  EXPECT_NEAR(ExactTraceInverseSubmatrix(g, removed),
              ExactLaplacianSubmatrixInverse(g, removed).Trace(), 1e-10);
}


TEST(LaplacianTest, WeightedDenseLaplacianEntries) {
  const Graph g =
      BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 0.5}, {0, 2, 4.0}});
  const DenseMatrix l = DenseLaplacian(g);
  EXPECT_DOUBLE_EQ(l(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(l(1, 1), 2.5);
  EXPECT_DOUBLE_EQ(l(2, 2), 4.5);
  EXPECT_DOUBLE_EQ(l(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(l(1, 2), -0.5);
  EXPECT_DOUBLE_EQ(l(0, 2), -4.0);
  for (NodeId i = 0; i < 3; ++i) {
    double row_sum = 0;
    for (NodeId j = 0; j < 3; ++j) row_sum += l(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
}

TEST(LaplacianTest, WeightedOperatorMatchesDenseSubmatrix) {
  const Graph g = KarateClubWeighted();
  const std::vector<NodeId> removed = {0, 17};
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), removed);
  const DenseMatrix sub = DenseLaplacianSubmatrix(g, idx);
  std::vector<char> mask(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId s : removed) mask[s] = 1;
  const LaplacianSubmatrixOp op(g, mask);

  Rng rng(7);
  Vector x(static_cast<std::size_t>(g.num_nodes()), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!mask[u]) x[u] = rng.NextDouble() - 0.5;
  }
  Vector y(x.size(), 0.0);
  op.Apply(x, &y);
  for (std::size_t i = 0; i < idx.kept.size(); ++i) {
    double expected = 0;
    for (std::size_t j = 0; j < idx.kept.size(); ++j) {
      expected += sub(static_cast<int>(i), static_cast<int>(j)) *
                  x[idx.kept[j]];
    }
    EXPECT_NEAR(y[idx.kept[i]], expected, 1e-11);
  }
}

TEST(LaplacianTest, WeightedJacobiDividesByWeightedDegree) {
  const Graph g =
      BuildWeightedGraph(3, {{0, 1, 2.0}, {1, 2, 0.5}, {0, 2, 4.0}});
  const LaplacianSubmatrixOp op(g, std::vector<char>(3, 0));
  Vector r = {6.0, 2.5, 9.0}, z(3, 0.0);
  op.ApplyJacobi(r, &z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
  EXPECT_DOUBLE_EQ(z[2], 2.0);
}

TEST(LaplacianTest, WeightedAbsorptionCostUsesWeightedDegrees) {
  const Graph g = KarateClubWeighted();
  const std::vector<NodeId> removed = {33};
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, removed);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), removed);
  double expected = 0;
  for (std::size_t i = 0; i < idx.kept.size(); ++i) {
    expected += g.weighted_degree(idx.kept[i]) *
                inv(static_cast<int>(i), static_cast<int>(i));
  }
  EXPECT_NEAR(ExactAbsorptionWalkCost(g, removed), expected, 1e-9);
}

}  // namespace
}  // namespace cfcm
