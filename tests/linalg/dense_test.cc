#include "linalg/dense.h"

#include <gtest/gtest.h>

namespace cfcm {
namespace {

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(DenseMatrixTest, IdentityAndTrace) {
  const DenseMatrix eye = DenseMatrix::Identity(4);
  EXPECT_EQ(eye.Trace(), 4.0);
  EXPECT_EQ(eye(2, 2), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
}

TEST(DenseMatrixTest, MultiplyMatchesHandComputation) {
  DenseMatrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  int v = 1;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) a(i, j) = v++;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) b(i, j) = v++;
  const DenseMatrix c = a.Multiply(b);
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(DenseMatrixTest, MultiplyVec) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Vector y = a.MultiplyVec({5, 6});
  EXPECT_EQ(y[0], 17.0);
  EXPECT_EQ(y[1], 39.0);
}

TEST(DenseMatrixTest, Transpose) {
  DenseMatrix a(2, 3);
  a(0, 2) = 5;
  a(1, 0) = 7;
  const DenseMatrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 0), 5.0);
  EXPECT_EQ(t(0, 1), 7.0);
}

TEST(DenseMatrixTest, MaxAbsDiff) {
  DenseMatrix a(2, 2), b(2, 2);
  b(1, 1) = -3.5;
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(a, b), 3.5);
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(a, a), 0.0);
}

TEST(VectorKernelsTest, DotNormAxpyScale) {
  Vector x = {1, 2, 3};
  Vector y = {4, 5, 6};
  EXPECT_EQ(Dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  Axpy(2.0, x, &y);
  EXPECT_EQ(y[0], 6.0);
  EXPECT_EQ(y[2], 12.0);
  Scale(0.5, &y);
  EXPECT_EQ(y[0], 3.0);
}

TEST(DenseMatrixTest, RowSpanViewsData) {
  DenseMatrix a(2, 3);
  a(1, 0) = 9;
  const auto row = a.Row(1);
  EXPECT_EQ(row[0], 9.0);
  a.MutableRow(1)[2] = 4;
  EXPECT_EQ(a(1, 2), 4.0);
}

}  // namespace
}  // namespace cfcm
