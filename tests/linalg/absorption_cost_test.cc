#include <gtest/gtest.h>

#include "common/rng.h"
#include "forest/wilson.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

TEST(AbsorptionCostTest, PathGraphKnownValue) {
  // Path 0-1-2 absorbed at {0}: (L_{-S}^{-1}) = [[1,1],[1,2]] over {1,2}
  // (check: L_{-S} = [[2,-1],[-1,1]]). Cost = d_1*1 + d_2*2 = 2*1+1*2 = 4.
  const Graph g = PathGraph(3);
  EXPECT_NEAR(ExactAbsorptionWalkCost(g, {0}), 4.0, 1e-10);
}

TEST(AbsorptionCostTest, MoreRootsLowerCost) {
  const Graph g = KarateClub();
  const double one = ExactAbsorptionWalkCost(g, {33});
  const double two = ExactAbsorptionWalkCost(g, {33, 0});
  const double three = ExactAbsorptionWalkCost(g, {33, 0, 2});
  EXPECT_LT(two, one);
  EXPECT_LT(three, two);
}

TEST(AbsorptionCostTest, WilsonMeanStepsMatchesTrace) {
  // Lemma 3.7 via Marchal's identity: the expected number of random-walk
  // steps Wilson's algorithm performs equals Tr((I - P_{-S})^{-1}).
  const Graph g = KarateClub();
  const std::vector<NodeId> roots_vec = {33};
  const double expected = ExactAbsorptionWalkCost(g, roots_vec);

  std::vector<char> roots(static_cast<std::size_t>(g.num_nodes()), 0);
  roots[33] = 1;
  ForestSampler sampler(g);
  Rng rng(29);
  double total = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sampler.Sample(roots, &rng);
    total += static_cast<double>(sampler.last_walk_steps());
  }
  const double mean = total / kSamples;
  EXPECT_NEAR(mean, expected, 0.05 * expected);
}

TEST(AbsorptionCostTest, HubRootIsCheaperThanLeafRoot) {
  // Grounding a hub absorbs walks quickly: the cost driver behind
  // SchurCFCM's speed advantage.
  const Graph g = BarabasiAlbert(300, 2, 5);
  const NodeId hub = g.MaxDegreeNode();
  NodeId leaf = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) < g.degree(leaf)) leaf = u;
  }
  EXPECT_LT(ExactAbsorptionWalkCost(g, {hub}),
            ExactAbsorptionWalkCost(g, {leaf}));
}

}  // namespace
}  // namespace cfcm
