#include "linalg/cg.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

std::vector<char> Mask(NodeId n, const std::vector<NodeId>& removed) {
  std::vector<char> mask(static_cast<std::size_t>(n), 0);
  for (NodeId s : removed) mask[s] = 1;
  return mask;
}

TEST(CgTest, GroundedSolveMatchesDenseInverse) {
  const Graph g = KarateClub();
  const std::vector<NodeId> removed = {33};
  const LaplacianSubmatrixOp op(g, Mask(g.num_nodes(), removed));
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, removed);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), removed);

  Vector b(static_cast<std::size_t>(g.num_nodes()), 0.0);
  b[0] = 1.0;  // e_0
  Vector x(b.size(), 0.0);
  const CgSummary summary = SolveGroundedLaplacian(op, b, &x);
  EXPECT_TRUE(summary.converged);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == 33) {
      EXPECT_EQ(x[u], 0.0);
    } else {
      EXPECT_NEAR(x[u], inv(idx.pos[u], idx.pos[0]), 1e-6);
    }
  }
}

TEST(CgTest, GroundedSolveMultipleRemoved) {
  const Graph g = BarabasiAlbert(80, 2, 3);
  const std::vector<NodeId> removed = {0, 17, 42};
  const LaplacianSubmatrixOp op(g, Mask(g.num_nodes(), removed));
  const DenseMatrix inv = ExactLaplacianSubmatrixInverse(g, removed);
  const SubmatrixIndex idx = MakeSubmatrixIndex(g.num_nodes(), removed);

  Rng rng(5);
  Vector b(static_cast<std::size_t>(g.num_nodes()));
  for (auto& v : b) v = rng.NextDouble() - 0.5;
  Vector x(b.size(), 0.0);
  EXPECT_TRUE(SolveGroundedLaplacian(op, b, &x).converged);

  // Reference dense solve.
  Vector bs(idx.kept.size());
  for (std::size_t i = 0; i < idx.kept.size(); ++i) bs[i] = b[idx.kept[i]];
  const Vector xs = inv.MultiplyVec(bs);
  for (std::size_t i = 0; i < idx.kept.size(); ++i) {
    EXPECT_NEAR(x[idx.kept[i]], xs[i], 1e-5);
  }
}

TEST(CgTest, PseudoinverseSolveMatchesDense) {
  const Graph g = ContiguousUsa();
  const DenseMatrix pinv = LaplacianPseudoinverse(g);
  Vector b(static_cast<std::size_t>(g.num_nodes()), 0.0);
  b[5] = 1.0;
  b[20] = -1.0;  // already orthogonal to ones
  Vector x(b.size(), 0.0);
  const CgSummary summary = SolveLaplacianPseudoinverse(g, b, &x);
  EXPECT_TRUE(summary.converged);
  const Vector expected = pinv.MultiplyVec(b);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(x[u], expected[u], 1e-6);
  }
}

TEST(CgTest, PseudoinverseProjectsNonOrthogonalRhs) {
  const Graph g = CycleGraph(12);
  Vector b(12, 0.0);
  b[0] = 3.0;  // mean != 0; solver must project
  Vector x(12, 0.0);
  EXPECT_TRUE(SolveLaplacianPseudoinverse(g, b, &x).converged);
  double mean = 0;
  for (double v : x) mean += v;
  EXPECT_NEAR(mean / 12.0, 0.0, 1e-8);
}

TEST(CgTest, ZeroRhsGivesZeroSolution) {
  const Graph g = PathGraph(10);
  const LaplacianSubmatrixOp op(g, Mask(10, {0}));
  Vector b(10, 0.0), x(10, 0.0);
  const CgSummary summary = SolveGroundedLaplacian(op, b, &x);
  EXPECT_TRUE(summary.converged);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

TEST(CgTest, IterationCapReportsNonConverged) {
  const Graph g = PathGraph(400);  // ill-conditioned chain
  const LaplacianSubmatrixOp op(g, Mask(400, {0}));
  Vector b(400, 1.0), x(400, 0.0);
  CgOptions opts;
  opts.max_iterations = 3;
  const CgSummary summary = SolveGroundedLaplacian(op, b, &x, opts);
  EXPECT_FALSE(summary.converged);
  EXPECT_GT(summary.relative_residual, opts.tolerance);
}

TEST(CgTest, WarmStartNearSolutionConvergesFast) {
  const Graph g = KarateClub();
  const LaplacianSubmatrixOp op(g, Mask(g.num_nodes(), {0}));
  Vector b(static_cast<std::size_t>(g.num_nodes()), 0.0);
  b[7] = 1.0;
  Vector x(b.size(), 0.0);
  SolveGroundedLaplacian(op, b, &x);
  Vector x2 = x;  // warm start from the solution
  const CgSummary again = SolveGroundedLaplacian(op, b, &x2);
  EXPECT_TRUE(again.converged);
  EXPECT_LE(again.iterations, 2);
}

}  // namespace
}  // namespace cfcm
