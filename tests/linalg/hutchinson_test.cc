#include "linalg/hutchinson.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace cfcm {
namespace {

TEST(HutchinsonTest, ConvergesToExactTrace) {
  const Graph g = KarateClub();
  const std::vector<NodeId> removed = {0, 33};
  const double exact = ExactTraceInverseSubmatrix(g, removed);
  const TraceEstimate est = HutchinsonTraceInverse(g, removed, 400, 7);
  EXPECT_NEAR(est.trace, exact, 0.05 * exact);
}

TEST(HutchinsonTest, StdErrorShrinksWithProbes) {
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> removed = {10};
  const TraceEstimate few = HutchinsonTraceInverse(g, removed, 16, 3);
  const TraceEstimate many = HutchinsonTraceInverse(g, removed, 256, 3);
  EXPECT_LT(many.std_error, few.std_error);
}

TEST(HutchinsonTest, DeterministicInSeed) {
  const Graph g = KarateClub();
  const TraceEstimate a = HutchinsonTraceInverse(g, {5}, 32, 11);
  const TraceEstimate b = HutchinsonTraceInverse(g, {5}, 32, 11);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(HutchinsonTest, SingleProbeHasNoStdError) {
  const Graph g = CycleGraph(10);
  const TraceEstimate est = HutchinsonTraceInverse(g, {0}, 1, 2);
  EXPECT_EQ(est.probes, 1);
  EXPECT_EQ(est.std_error, 0.0);
}

TEST(HutchinsonTest, LargerGroundSetShrinksTrace) {
  // Monotonicity: Tr(L_{-S'}^{-1}) < Tr(L_{-S}^{-1}) for S ⊂ S'.
  const Graph g = BarabasiAlbert(300, 2, 9);
  const TraceEstimate small_s = HutchinsonTraceInverse(g, {0}, 64, 5);
  const TraceEstimate big_s = HutchinsonTraceInverse(g, {0, 1, 2, 3}, 64, 5);
  EXPECT_LT(big_s.trace, small_s.trace);
}

}  // namespace
}  // namespace cfcm
