#include "linalg/schur_exact.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "linalg/ldlt.h"

namespace cfcm {
namespace {

TEST(SchurExactTest, SchurOfBlockDiagonalIsBlock) {
  // M = diag(A, B) => S_T(M) = B when T indexes the B block.
  DenseMatrix m(4, 4);
  m(0, 0) = 2;
  m(1, 1) = 3;
  m(2, 2) = 5;
  m(2, 3) = 1;
  m(3, 2) = 1;
  m(3, 3) = 4;
  const DenseMatrix s = ExactSchurComplement(m, {2, 3});
  EXPECT_NEAR(s(0, 0), 5.0, 1e-12);
  EXPECT_NEAR(s(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(s(1, 1), 4.0, 1e-12);
}

TEST(SchurExactTest, InverseOfSchurIsSubblockOfInverse) {
  // Standard identity: (M^{-1})_TT = (S_T(M))^{-1}.
  const Graph g = KarateClub();
  const DenseMatrix l_sub = DenseLaplacianSubmatrix(
      g, MakeSubmatrixIndex(g.num_nodes(), {0}));
  const std::vector<int> t = {5, 10, 20};
  const DenseMatrix schur = ExactSchurComplement(l_sub, t);
  const DenseMatrix schur_inv = LdltFactorization::Compute(schur)->Inverse();
  const DenseMatrix full_inv = LdltFactorization::Compute(l_sub)->Inverse();
  for (std::size_t i = 0; i < t.size(); ++i) {
    for (std::size_t j = 0; j < t.size(); ++j) {
      EXPECT_NEAR(schur_inv(static_cast<int>(i), static_cast<int>(j)),
                  full_inv(t[i], t[j]), 1e-9);
    }
  }
}

TEST(SchurExactTest, SchurOfLaplacianIsLaplacianOfWeightedGraph) {
  // S_T(L) has zero row sums and non-positive off-diagonals [52].
  const Graph g = ContiguousUsa();
  const DenseMatrix l = DenseLaplacian(g);
  const std::vector<int> t = {0, 3, 9, 17, 25, 33};
  const DenseMatrix s = ExactSchurComplement(l, t);
  for (int i = 0; i < s.rows(); ++i) {
    double row_sum = 0;
    for (int j = 0; j < s.cols(); ++j) {
      row_sum += s(i, j);
      if (i != j) EXPECT_LE(s(i, j), 1e-12);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-9);
  }
}

TEST(SchurExactTest, Lemma43SchurOfSubmatrixEqualsSubmatrixOfSchur) {
  // S_T(L_{-S}) = (S_{S∪T}(L))_{-S}.
  const Graph g = BarabasiAlbert(50, 2, 23);
  const std::vector<NodeId> s_nodes = {7, 19};
  const std::vector<NodeId> t_nodes = {0, 1, 2};

  // Left side: Schur of the grounded submatrix onto T.
  const SubmatrixIndex idx_s = MakeSubmatrixIndex(g.num_nodes(), s_nodes);
  const DenseMatrix l_minus_s = DenseLaplacianSubmatrix(g, idx_s);
  std::vector<int> t_in_sub;
  for (NodeId t : t_nodes) t_in_sub.push_back(idx_s.pos[t]);
  const DenseMatrix lhs = ExactSchurComplement(l_minus_s, t_in_sub);

  // Right side: Schur of L onto S∪T, then remove S rows/cols.
  std::vector<int> st;
  for (NodeId v : s_nodes) st.push_back(v);
  for (NodeId v : t_nodes) st.push_back(v);
  std::sort(st.begin(), st.end());
  const DenseMatrix schur_st = ExactSchurComplement(DenseLaplacian(g), st);
  // Locate T rows inside the sorted S∪T ordering.
  DenseMatrix rhs(static_cast<int>(t_nodes.size()),
                  static_cast<int>(t_nodes.size()));
  auto pos_in_st = [&](NodeId v) {
    return static_cast<int>(std::lower_bound(st.begin(), st.end(), v) -
                            st.begin());
  };
  for (std::size_t i = 0; i < t_nodes.size(); ++i) {
    for (std::size_t j = 0; j < t_nodes.size(); ++j) {
      rhs(static_cast<int>(i), static_cast<int>(j)) =
          schur_st(pos_in_st(t_nodes[i]), pos_in_st(t_nodes[j]));
    }
  }
  // lhs is ordered by t_in_sub ascending == t_nodes ascending here.
  EXPECT_LT(DenseMatrix::MaxAbsDiff(lhs, rhs), 1e-9);
}

TEST(SchurExactTest, RootedProbabilitiesAreStochasticOverTPlusS) {
  const Graph g = KarateClub();
  const std::vector<NodeId> s_nodes = {0};
  const std::vector<NodeId> t_nodes = {33, 32};
  const DenseMatrix f = ExactRootedProbabilities(g, s_nodes, t_nodes);
  // Each row: probabilities of absorbing at each t; in [0,1]; row sums
  // <= 1 (remaining mass goes to S).
  for (int i = 0; i < f.rows(); ++i) {
    double row_sum = 0;
    for (int j = 0; j < f.cols(); ++j) {
      EXPECT_GE(f(i, j), -1e-12);
      EXPECT_LE(f(i, j), 1.0 + 1e-12);
      row_sum += f(i, j);
    }
    EXPECT_LE(row_sum, 1.0 + 1e-9);
  }
}

TEST(SchurExactTest, RootedProbabilitiesPathGraphKnown) {
  // Path 0-1-2-3-4, S={0}, T={4}: gambler's ruin absorbing at 4 from u
  // has probability u/4.
  const Graph g = PathGraph(5);
  const DenseMatrix f = ExactRootedProbabilities(g, {0}, {4});
  // U = {1,2,3} in ascending order.
  EXPECT_NEAR(f(0, 0), 1.0 / 4, 1e-10);
  EXPECT_NEAR(f(1, 0), 2.0 / 4, 1e-10);
  EXPECT_NEAR(f(2, 0), 3.0 / 4, 1e-10);
}

TEST(SchurExactTest, Equation11BlockReconstruction) {
  // L_{-S}^{-1} block form (Eq. 11) matches the direct dense inverse.
  const Graph g = ContiguousUsa();
  const std::vector<NodeId> s_nodes = {5};
  const std::vector<NodeId> t_nodes = {0, 20, 40};
  const NodeId n = g.num_nodes();

  const DenseMatrix direct = ExactLaplacianSubmatrixInverse(g, s_nodes);
  const SubmatrixIndex idx_s = MakeSubmatrixIndex(n, s_nodes);

  // Pieces: F, (S_T(L_{-S}))^{-1}, L_UU^{-1}.
  const DenseMatrix f = ExactRootedProbabilities(g, s_nodes, t_nodes);
  std::vector<int> t_in_sub;
  for (NodeId t : t_nodes) t_in_sub.push_back(idx_s.pos[t]);
  const DenseMatrix schur =
      ExactSchurComplement(DenseLaplacianSubmatrix(g, idx_s), t_in_sub);
  const DenseMatrix schur_inv = LdltFactorization::Compute(schur)->Inverse();

  std::vector<NodeId> su = s_nodes;
  su.insert(su.end(), t_nodes.begin(), t_nodes.end());
  const SubmatrixIndex idx_su = MakeSubmatrixIndex(n, su);
  const DenseMatrix l_uu_inv = ExactLaplacianSubmatrixInverse(g, su);

  // Check the three block identities on sampled entries.
  // (1) TT block: direct[t1,t2] == schur_inv.
  for (std::size_t a = 0; a < t_nodes.size(); ++a) {
    for (std::size_t b = 0; b < t_nodes.size(); ++b) {
      EXPECT_NEAR(direct(idx_s.pos[t_nodes[a]], idx_s.pos[t_nodes[b]]),
                  schur_inv(static_cast<int>(a), static_cast<int>(b)), 1e-9);
    }
  }
  // (2) UT block: direct[u,t] == (F schur_inv)[u,t].
  const DenseMatrix f_si = f.Multiply(schur_inv);
  for (NodeId u : {1, 2, 30}) {
    if (idx_su.pos[u] < 0) continue;
    for (std::size_t b = 0; b < t_nodes.size(); ++b) {
      EXPECT_NEAR(direct(idx_s.pos[u], idx_s.pos[t_nodes[b]]),
                  f_si(idx_su.pos[u], static_cast<int>(b)), 1e-9);
    }
  }
  // (3) UU block: direct[u,v] == L_UU^{-1}[u,v] + (F schur_inv F^T)[u,v].
  const DenseMatrix fsf = f_si.Multiply(f.Transpose());
  for (NodeId u : {1, 2, 30}) {
    for (NodeId v : {3, 10, 48}) {
      if (idx_su.pos[u] < 0 || idx_su.pos[v] < 0) continue;
      EXPECT_NEAR(direct(idx_s.pos[u], idx_s.pos[v]),
                  l_uu_inv(idx_su.pos[u], idx_su.pos[v]) +
                      fsf(idx_su.pos[u], idx_su.pos[v]),
                  1e-9);
    }
  }
}


TEST(SchurExactTest, WeightedRootedProbabilitiesMatchAbsorptionFrequencies) {
  // Weighted path 0 -1- 1 -2- 2 with conductances w01 = 1, w12 = 3,
  // S = {0}, T = {2}: from node 1 the walk steps to 2 with probability
  // 3/4 each step and to the absorbing 0 with 1/4, so rho_1 = 2 with
  // probability 3/4.
  const Graph g = BuildWeightedGraph(3, {{0, 1, 1.0}, {1, 2, 3.0}});
  const DenseMatrix f = ExactRootedProbabilities(g, {0}, {2});
  ASSERT_EQ(f.rows(), 1);
  EXPECT_NEAR(f(0, 0), 0.75, 1e-12);
}

TEST(SchurExactTest, WeightedSchurComplementMatchesDense) {
  const Graph g = KarateClubWeighted();
  const std::vector<NodeId> t_nodes = {33, 0, 2};
  std::vector<int> onto(t_nodes.begin(), t_nodes.end());
  std::sort(onto.begin(), onto.end());
  const DenseMatrix l = DenseLaplacian(g);
  const DenseMatrix schur = ExactSchurComplement(l, onto);
  // The Schur complement of a weighted Laplacian onto T is again a
  // weighted Laplacian: symmetric with zero row sums.
  for (int i = 0; i < schur.rows(); ++i) {
    double row_sum = 0;
    for (int j = 0; j < schur.cols(); ++j) {
      EXPECT_NEAR(schur(i, j), schur(j, i), 1e-9);
      row_sum += schur(i, j);
    }
    EXPECT_NEAR(row_sum, 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace cfcm
